//! Property tests of the pluggable failure models (ISSUE 7 acceptance):
//!
//! * every [`FailureModelSpec`] round-trips through its canonical spec string
//!   **bit-exactly** (parameters and pinned rates included);
//! * `weibull:1.0` (and `shifted:0`) are the exponential law, and the sweep
//!   engine treats them so: their rows are byte-identical to `exp` rows
//!   (modulo the two failure-model columns) for **any** worker-thread count,
//!   shard split, cache setting and search strategy — the keystone of the
//!   failure-model determinism contract;
//! * distinct failure families over the same λ never share a cache entry
//!   (covered at unit level in `ayd-sweep`; here the end-to-end CSVs of a
//!   mixed grid keep the families apart row by row).

use proptest::prelude::*;

use ayd_platforms::{PlatformId, ScenarioId};
use ayd_sweep::{
    merge_parts, FailureModelSpec, ProcessorAxis, RunOptions, ScenarioGrid, SearchStrategy,
    ShardPart, ShardSpec, SweepExecutor, SweepManifest, SweepOptions,
};

fn arb_failure_spec() -> impl Strategy<Value = FailureModelSpec> {
    (
        0usize..4,
        0.05f64..8.0,
        0.0f64..100_000.0,
        0u64..2,
        1e-9f64..1e-5,
        0u64..u64::MAX,
    )
        .prop_map(|(kind, shape, shift, has_lambda, lambda, path_bits)| {
            let base = match kind {
                0 => FailureModelSpec::exponential(),
                1 => FailureModelSpec::weibull(shape).unwrap(),
                2 => FailureModelSpec::shifted(shift).unwrap(),
                _ => {
                    return FailureModelSpec::trace(&format!("logs/node-{path_bits:x}.trace"))
                        .unwrap()
                }
            };
            if has_lambda == 1 {
                base.with_lambda(lambda).unwrap()
            } else {
                base
            }
        })
}

proptest! {
    #[test]
    fn failure_specs_round_trip_bit_exactly(spec in arb_failure_spec()) {
        let rendered = spec.to_string();
        let reparsed = FailureModelSpec::parse(&rendered).unwrap();
        prop_assert_eq!(&reparsed, &spec, "spec string: {}", rendered);
        prop_assert_eq!(
            reparsed.param().map(f64::to_bits),
            spec.param().map(f64::to_bits)
        );
        prop_assert_eq!(
            reparsed.lambda().map(f64::to_bits),
            spec.lambda().map(f64::to_bits)
        );
        // Rendering is a fixed point: parse(render(x)) renders identically.
        prop_assert_eq!(reparsed.to_string(), rendered);
    }
}

fn small_grid(models: &[FailureModelSpec]) -> ScenarioGrid {
    ScenarioGrid::builder()
        .platforms(&[PlatformId::Hera])
        .scenarios(&[ScenarioId::S1, ScenarioId::S3])
        .failure_models(models)
        .lambda_multipliers(&[1.0, 10.0])
        .processors(ProcessorAxis::Fixed(vec![512.0]))
        .build()
        .unwrap()
}

/// Drops the `failure_model`/`failure_param` columns (1-indexed 6 and 7) from
/// every line of a sweep CSV — the same projection the CI smoke step applies
/// with `cut -d, -f1-5,8-`.
fn strip_failure_columns(csv: &str) -> String {
    csv.lines()
        .map(|line| {
            let columns: Vec<&str> = line.split(',').collect();
            let mut kept: Vec<&str> = columns[..5].to_vec();
            kept.extend(&columns[7..]);
            kept.join(",")
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// Runs a grid unsharded or as a merged N-way shard split; both paths return
/// the canonical CSV bytes.
fn csv_of(grid: &ScenarioGrid, options: SweepOptions, shards: usize) -> String {
    if shards == 1 {
        return SweepExecutor::new(options).run(grid).to_csv();
    }
    let parts: Vec<ShardPart> = (0..shards)
        .map(|index| {
            let shard = ShardSpec::new(index, shards).unwrap();
            ShardPart {
                manifest: SweepManifest::complete(grid, &options, shard),
                csv: SweepExecutor::new(options)
                    .run_cells(&grid.shard_cells(shard))
                    .to_csv(),
            }
        })
        .collect();
    merge_parts(&parts).unwrap()
}

#[test]
fn weibull_shape_one_matches_exponential_for_every_execution_shape() {
    // Exhaustive over the execution shapes the determinism contract names:
    // thread counts, shard splits, cache on/off and every search strategy.
    // Simulation is ON, so the equivalence also covers the sampler path (a
    // `weibull:1.0` cell must draw the exact exponential variates).
    let exp_grid = small_grid(&[FailureModelSpec::exponential()]);
    let weibull_grid = small_grid(&[FailureModelSpec::weibull(1.0).unwrap()]);
    let shifted_grid = small_grid(&[FailureModelSpec::shifted(0.0).unwrap()]);
    let mut baseline: Option<String> = None;
    for strategy in [
        SearchStrategy::Reference,
        SearchStrategy::Fast,
        SearchStrategy::FastStrict,
    ] {
        for threads in [1usize, 4] {
            for cache in [true, false] {
                for shards in [1usize, 3] {
                    let options = SweepOptions::new(RunOptions {
                        threads: Some(threads),
                        cache,
                        search: strategy,
                        ..RunOptions::smoke()
                    });
                    let exp_csv = csv_of(&exp_grid, options, shards);
                    let weibull_csv = csv_of(&weibull_grid, options, shards);
                    let shifted_csv = csv_of(&shifted_grid, options, shards);
                    let stripped = strip_failure_columns(&exp_csv);
                    assert_eq!(
                        strip_failure_columns(&weibull_csv),
                        stripped,
                        "weibull:1.0 drifted from exp \
                         ({strategy:?}, {threads} threads, cache {cache}, {shards} shards)"
                    );
                    assert_eq!(
                        strip_failure_columns(&shifted_csv),
                        stripped,
                        "shifted:0 drifted from exp \
                         ({strategy:?}, {threads} threads, cache {cache}, {shards} shards)"
                    );
                    // The failure columns themselves keep the declared family.
                    assert!(weibull_csv.lines().nth(1).unwrap().contains(",weibull,1,"));
                    // And every execution shape produces the same exp bytes.
                    match &baseline {
                        None => baseline = Some(exp_csv),
                        Some(baseline) => assert_eq!(&exp_csv, baseline),
                    }
                }
            }
        }
    }
}

#[test]
fn mixed_family_grids_keep_families_apart_row_by_row() {
    // A grid mixing exp and weibull:0.7 over the same λ axis: the two
    // families' rows must carry their own analytic series — a cache-key
    // collision between the families would make them identical.
    let grid = small_grid(&[
        FailureModelSpec::exponential(),
        FailureModelSpec::weibull(0.7).unwrap(),
    ]);
    let options = SweepOptions::new(RunOptions {
        simulate: false,
        ..RunOptions::smoke()
    });
    let csv = SweepExecutor::new(options).run(&grid).to_csv();
    let exp_rows: Vec<&str> = csv.lines().filter(|l| l.contains(",exp,,")).collect();
    let weibull_rows: Vec<&str> = csv
        .lines()
        .filter(|l| l.contains(",weibull,0.7,"))
        .collect();
    assert_eq!(exp_rows.len(), 4);
    assert_eq!(weibull_rows.len(), 4);
    // The analytic columns agree (the paper's model is exponential either
    // way); the family columns keep the rows distinguishable.
    for (exp_row, weibull_row) in exp_rows.iter().zip(&weibull_rows) {
        assert_ne!(exp_row, weibull_row);
    }
}
