//! Golden test of the sweep CSV format.
//!
//! Pins the canonical CSV header and the first/last rows of a small fixed grid
//! (analytical only, so every cell is a deterministic pure-`f64` computation).
//! Any drift in the output schema, the column order, the value formatting or
//! the grid's deterministic cell order fails here before it reaches a consumer
//! of `reproduce sweep --csv` output. A second grid pins a non-Amdahl row, so
//! the profile columns and the numerical-only fallback are golden too.

use ayd_platforms::{PlatformId, ScenarioId};
use ayd_sweep::{
    ProcessorAxis, RunOptions, ScenarioGrid, SpeedupProfile, SweepExecutor, SweepOptions,
    CSV_HEADER,
};

fn golden_grid() -> ScenarioGrid {
    ScenarioGrid::builder()
        .platforms(&[PlatformId::Hera])
        .scenarios(&[ScenarioId::S1, ScenarioId::S3])
        .lambda_multipliers(&[1.0, 10.0])
        .processors(ProcessorAxis::Fixed(vec![256.0, 1024.0]))
        .pattern_lengths(&[3_600.0])
        .build()
        .unwrap()
}

fn run_csv(grid: &ScenarioGrid) -> String {
    let options = SweepOptions::new(RunOptions {
        simulate: false,
        ..RunOptions::smoke()
    });
    SweepExecutor::new(options).run(grid).to_csv()
}

fn golden_csv() -> String {
    run_csv(&golden_grid())
}

#[test]
fn sweep_csv_header_is_pinned() {
    assert_eq!(
        CSV_HEADER,
        "platform,scenario,alpha,profile,profile_param,failure_model,failure_param,\
lambda_ind,lambda_multiplier,processors,\
pattern_length,fo_processors,fo_period,fo_overhead,fo_formula_overhead,fo_sim_mean,fo_sim_ci95,\
num_processors,num_period,num_overhead,num_sim_mean,num_sim_ci95,\
pattern_overhead,pattern_sim_mean,pattern_sim_ci95,stream_sim_mean,stream_sim_ci95"
    );
}

#[test]
fn sweep_csv_first_and_last_rows_are_pinned() {
    let csv = golden_csv();
    let lines: Vec<&str> = csv.lines().collect();
    assert_eq!(lines.len(), 1 + 8, "2 scenarios × 2 multipliers × 2 P");
    assert_eq!(lines[0], CSV_HEADER);
    assert_eq!(
        lines[1],
        "Hera,1,0.1,amdahl,0.1,exp,,0.0000000169,1,256,3600,256,6551.836818431605,\
0.10923732682928215,0.10874209350020253,,,256,6469.2375895385285,0.10923689384439697,,,\
0.11018235679785451,,,,"
    );
    assert_eq!(
        lines[8],
        "Hera,3,0.1,amdahl,0.1,exp,,0.000000169,10,1024,3600,1024,1430.5273600525854,\
0.17749510125302212,0.14536209184958257,,,1024,1280.6146752871186,0.17710358937015436,,,\
0.22113748594843097,,,,"
    );
}

#[test]
fn non_amdahl_rows_are_pinned() {
    // One power-law cell: the profile columns carry the spec, the alpha column
    // and the whole first-order series are empty (numerical-only fallback).
    let grid = ScenarioGrid::builder()
        .platforms(&[PlatformId::Hera])
        .scenarios(&[ScenarioId::S1])
        .profiles(&[SpeedupProfile::power_law(0.8).unwrap()])
        .processors(ProcessorAxis::Fixed(vec![256.0]))
        .build()
        .unwrap();
    let csv = run_csv(&grid);
    let lines: Vec<&str> = csv.lines().collect();
    assert_eq!(lines.len(), 2);
    let line = lines[1];
    assert!(
        line.starts_with("Hera,1,,powerlaw,0.8,exp,,0.0000000169,1,256,,,,,,,,256,"),
        "line: {line}"
    );
    let columns: Vec<&str> = line.split(',').collect();
    assert_eq!(columns.len(), CSV_HEADER.split(',').count());
    // The numerical series is present and positive.
    let num_overhead: f64 = columns[19].parse().unwrap();
    assert!(num_overhead > 0.0, "line: {line}");
}

#[test]
fn non_exponential_rows_are_pinned() {
    // One Weibull cell: the failure-model columns carry the family and its
    // shape, while the analytic series stays the exponential model's (the
    // misspecification report, not the CSV, carries the comparison).
    let grid = ScenarioGrid::builder()
        .platforms(&[PlatformId::Hera])
        .scenarios(&[ScenarioId::S1])
        .failure_models(&[ayd_sweep::FailureModelSpec::weibull(0.7).unwrap()])
        .processors(ProcessorAxis::Fixed(vec![256.0]))
        .pattern_lengths(&[3_600.0])
        .build()
        .unwrap();
    let csv = run_csv(&grid);
    let lines: Vec<&str> = csv.lines().collect();
    assert_eq!(lines.len(), 2);
    let line = lines[1];
    assert!(
        line.starts_with("Hera,1,0.1,amdahl,0.1,weibull,0.7,0.0000000169,1,256,3600,"),
        "line: {line}"
    );
    assert_eq!(line.split(',').count(), CSV_HEADER.split(',').count());
    // Analytic-only run: the analytic columns are identical to the same grid
    // under the default exponential axis (stripping the two failure columns).
    let exp_grid = ScenarioGrid::builder()
        .platforms(&[PlatformId::Hera])
        .scenarios(&[ScenarioId::S1])
        .processors(ProcessorAxis::Fixed(vec![256.0]))
        .pattern_lengths(&[3_600.0])
        .build()
        .unwrap();
    let exp_line = run_csv(&exp_grid).lines().nth(1).unwrap().to_string();
    assert_eq!(
        strip_failure_columns(line),
        strip_failure_columns(&exp_line)
    );
}

/// Drops the `failure_model`/`failure_param` columns (1-indexed 6 and 7) from
/// a CSV line, mirroring the CI smoke step's `cut -d, -f1-5,8-`.
fn strip_failure_columns(line: &str) -> String {
    let columns: Vec<&str> = line.split(',').collect();
    let mut kept: Vec<&str> = columns[..5].to_vec();
    kept.extend(&columns[7..]);
    kept.join(",")
}

#[test]
fn sharded_merge_reproduces_the_golden_bytes() {
    // The golden grid run as 3 shards and merged must reproduce the exact
    // golden bytes — the pinned first/last rows included. This is the
    // golden-level anchor of the shard determinism contract (the property
    // suite covers arbitrary grids and shard counts).
    let grid = golden_grid();
    let options = SweepOptions::new(RunOptions {
        simulate: false,
        ..RunOptions::smoke()
    });
    let parts: Vec<ayd_sweep::ShardPart> = (0..3)
        .map(|index| {
            let shard = ayd_sweep::ShardSpec::new(index, 3).unwrap();
            ayd_sweep::ShardPart {
                manifest: ayd_sweep::SweepManifest::complete(&grid, &options, shard),
                csv: SweepExecutor::new(options)
                    .run_cells(&grid.shard_cells(shard))
                    .to_csv(),
            }
        })
        .collect();
    assert_eq!(ayd_sweep::merge_parts(&parts).unwrap(), golden_csv());
}

#[test]
fn every_golden_row_has_the_full_column_count() {
    let csv = golden_csv();
    let columns = CSV_HEADER.split(',').count();
    assert_eq!(columns, 27);
    for line in csv.lines() {
        assert_eq!(line.split(',').count(), columns, "line: {line}");
    }
}
