//! Integration tests of the experiment harness: every table/figure runner
//! produces well-formed, serialisable data whose headline shapes match the
//! paper.

use ayd_exp::config::RunOptions;
use ayd_exp::{ablation, extensions, figure2, figure3, figure5, figure7, report, tables};

fn analytical() -> RunOptions {
    RunOptions {
        simulate: false,
        ..RunOptions::smoke()
    }
}

/// Every runner's output survives the machine-readable export path (the CSV
/// consumed by `reproduce --csv`): the numeric cells parse back and match the
/// in-memory data. (The JSON round trip needs the real `serde_json`, which the
/// offline build replaces with a stand-in; see `vendor/serde`.)
#[test]
fn experiment_outputs_round_trip_through_csv() {
    let t2 = tables::table2();
    let csv = tables::render_table2(&t2).to_csv();
    assert_eq!(csv.lines().count(), 1 + 4);

    let fig3 = figure3::run_with_processors(&[400.0, 800.0], &analytical());
    let csv = figure3::render(&fig3).to_csv();
    let lines: Vec<&str> = csv.lines().collect();
    assert_eq!(lines.len(), 1 + fig3.rows.len());
    for (line, row) in lines[1..].iter().zip(&fig3.rows) {
        let cells: Vec<&str> = line.split(',').collect();
        assert_eq!(cells[0].parse::<usize>().unwrap(), row.scenario);
        let processors: f64 = cells[1].parse().unwrap();
        assert!((processors - row.processors).abs() < 1e-6, "{line}");
    }

    let fig7 = figure7::run_with_downtimes(&[0.0, 3_600.0], &analytical());
    let csv = figure7::render(&fig7).to_csv();
    assert_eq!(csv.lines().count(), 1 + 6);
}

/// The headline quantitative claims of the paper hold in the reproduction
/// (who wins, by what order, where the scaling laws sit).
#[test]
fn headline_claims_hold() {
    // Claim 1 (Figure 2): on every platform, the first-order solution is within
    // 1% of the numerical optimum for the realistic scenarios, and the overhead
    // at the optimum is close to alpha = 0.1 (between 0.10 and 0.15).
    let fig2 = figure2::run(&analytical());
    for row in fig2.rows.iter().filter(|r| r.scenario <= 4) {
        let gap = row.comparison.overhead_gap().unwrap();
        // Coastal SSD under scenario 2 is the one mild outlier: its per-processor
        // verification cost (180 s at 2048 processors) is large and ignored by
        // Theorem 2, so the first-order point loses ~2% there (still "almost
        // identical" on the scale of the paper's Figure 2). Everywhere else the
        // gap stays below 1%.
        let tolerance =
            if row.platform == ayd_platforms::PlatformId::CoastalSsd && row.scenario == 2 {
                0.03
            } else {
                0.01
            };
        assert!(
            gap < tolerance,
            "platform {:?} scenario {}: gap {gap}",
            row.platform,
            row.scenario
        );
        let h = row.comparison.numerical.predicted_overhead;
        assert!(
            h > 0.10 && h < 0.15,
            "platform {:?} scenario {}: H={h}",
            row.platform,
            row.scenario
        );
    }

    // Claim 2 (Theorems 2-3 / Figure 5): the asymptotic scaling laws. Checked via
    // the shape-check machinery used by EXPERIMENTS.md.
    let fig5 = figure5::run_with(&[1e-11, 1e-10, 1e-9, 1e-8], 0.1, &analytical());
    let fig6 = ayd_exp::figure6::run_with(&[1e-10, 1e-9, 1e-8], &analytical());
    let checks = report::headline_checks(&fig5, &fig6);
    let passing = report::passing(&checks);
    assert!(
        passing >= checks.len() - 2,
        "{passing}/{} shape checks pass; failing: {:?}",
        checks.len(),
        checks
            .iter()
            .filter(|c| !c.passes())
            .map(|c| &c.name)
            .collect::<Vec<_>>()
    );

    // Claim 3 (Figure 3(c)): for fixed P in the paper's range, the first-order
    // period loses at most a fraction of a percent against the optimal period.
    let fig3 = figure3::run_with_processors(&[200.0, 800.0, 1_400.0], &analytical());
    for row in &fig3.rows {
        assert!(
            row.overhead_difference_percent < 0.5,
            "scenario {} P={}",
            row.scenario,
            row.processors
        );
    }
}

/// The ablation and extension experiments produce coherent results when driven
/// end-to-end with simulation enabled at smoke fidelity.
#[test]
fn ablations_and_extensions_run_end_to_end() {
    let gap = ablation::run_first_order_gap(&analytical());
    assert_eq!(gap.rows.len(), 21);
    let engines = ablation::run_engine_comparison(&RunOptions::smoke());
    assert_eq!(engines.rows.len(), 3);
    for row in &engines.rows {
        assert!(row.relative_disagreement < 0.05);
    }
    let ext = extensions::run(&analytical());
    assert_eq!(ext.rows.len(), 8);
    // Rendering never panics and contains every row.
    assert_eq!(ablation::render_first_order_gap(&gap).len(), 21);
    assert_eq!(extensions::render(&ext).len(), 8);
}

/// Rendering to text and CSV is consistent: same number of data rows, CSV has a
/// header line.
#[test]
fn rendering_is_consistent_across_formats() {
    let data = figure2::run_platform(ayd_platforms::PlatformId::Atlas, &analytical());
    let table = figure2::render(&figure2::Figure2Data {
        alpha: 0.1,
        rows: data,
    });
    let text = table.render();
    let csv = table.to_csv();
    assert_eq!(csv.lines().count(), table.len() + 1);
    assert!(text.lines().count() >= table.len() + 2);
}
