//! Property-based tests (proptest) of the core invariants, spanning crates.
//!
//! Parameter ranges are chosen to cover the physically meaningful regime of the
//! paper (individual error rates between 1e-12 and 1e-6 per second, costs up to
//! an hour, patterns between minutes and days, platforms up to ~100k processors)
//! while keeping the exponentials finite.

use proptest::prelude::*;

use ayd_core::{
    failure, CheckpointCost, ExactModel, FailureModel, FirstOrder, ResilienceCosts, SpeedupProfile,
    VerificationCost,
};
use ayd_optim::{brent_minimize, golden_section};
use ayd_platforms::{Platform, PlatformId, Scenario, ScenarioId};
use ayd_sim::{PatternParams, RunningStats, SimulationConfig};
use ayd_sweep::{ProcessorAxis, ScenarioGrid, SweepExecutor, SweepOptions};

/// Strategy for a random but physically sensible exact model.
fn arb_model() -> impl Strategy<Value = ExactModel> {
    (
        // λ_ind is sampled log-uniformly between 1e-12 and 1e-6 so that the whole
        // reliability range is exercised without concentrating on the extreme
        // high-error end.
        (-12.0f64..-6.0).prop_map(|e| 10f64.powf(e)),
        0.0f64..=1.0,    // fail-stop fraction
        0.001f64..0.5,   // alpha
        0.0f64..2.0,     // c
        0.0f64..2_000.0, // a
        0.0f64..1e6,     // b
        0.0f64..200.0,   // v
        0.0f64..1e5,     // u
        0.0f64..7_200.0, // downtime
    )
        .prop_map(|(lambda, f, alpha, c, a, b, v, u, d)| {
            ExactModel::new(
                SpeedupProfile::amdahl(alpha).unwrap(),
                ResilienceCosts::new(
                    CheckpointCost::new(a, b, c).unwrap(),
                    VerificationCost::new(v, u).unwrap(),
                    d,
                )
                .unwrap(),
                FailureModel::new(lambda, f).unwrap(),
            )
        })
}

/// Strategy for an operating point that keeps `λ_P · (T + V + C)` far from
/// overflow.
fn arb_operating_point() -> impl Strategy<Value = (f64, f64)> {
    (60.0f64..200_000.0, 1.0f64..100_000.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The expected overhead is the reciprocal of the expected speedup, and both
    /// are finite and positive in the physical regime.
    #[test]
    fn overhead_is_reciprocal_of_speedup(model in arb_model(), (t, p) in arb_operating_point()) {
        let overhead = model.expected_overhead(t, p);
        let speedup = model.expected_speedup(t, p);
        prop_assume!(overhead.is_finite());
        prop_assert!(overhead > 0.0);
        prop_assert!((overhead * speedup - 1.0).abs() < 1e-9);
    }

    /// The expected pattern time always exceeds the error-free duration
    /// `T + V_P + C_P`, and equals it in the limit of a vanishing error rate.
    #[test]
    fn expected_time_dominates_error_free_time(model in arb_model(), (t, p) in arb_operating_point()) {
        let expected = model.expected_pattern_time(t, p);
        prop_assume!(expected.is_finite());
        let floor = t + model.costs.verification_at(p) + model.costs.checkpoint_at(p);
        prop_assert!(expected >= floor - 1e-9);
    }

    /// The component-recurrence evaluation and the closed form of Eq. (2) agree
    /// whenever the fail-stop rate is positive.
    #[test]
    fn closed_form_matches_components(model in arb_model(), (t, p) in arb_operating_point()) {
        prop_assume!(model.failures.fail_stop_fraction > 1e-3);
        let a = model.expected_pattern_time(t, p);
        let b = model.expected_pattern_time_closed_form(t, p);
        prop_assume!(a.is_finite() && b.is_finite());
        prop_assert!((a - b).abs() <= 1e-8 * a.abs().max(1.0), "components {a} vs closed form {b}");
    }

    /// The expected pattern time is monotone in the individual error rate.
    #[test]
    fn expected_time_is_monotone_in_error_rate(
        model in arb_model(),
        (t, p) in arb_operating_point(),
        factor in 1.5f64..10.0,
    ) {
        // Skip configurations whose amplified error load would overflow the
        // exponentials (they are outside any physically meaningful regime).
        prop_assume!(
            model.failures.total_rate(p)
                * factor
                * (t + model.costs.checkpoint_plus_verification_at(p))
                < 200.0
        );
        let base = model.expected_pattern_time(t, p);
        let worse_failures = model
            .failures
            .with_lambda_ind(model.failures.lambda_ind * factor)
            .unwrap();
        let worse = model.with_failures(worse_failures).expected_pattern_time(t, p);
        prop_assume!(base.is_finite() && worse.is_finite());
        prop_assert!(worse >= base - 1e-9);
    }

    /// Theorem 1's period is a stationary point of the dominant-term first-order
    /// overhead: small perturbations never decrease it.
    #[test]
    fn theorem1_period_is_stationary(model in arb_model(), p in 1.0f64..50_000.0) {
        let costs = model.costs.checkpoint_plus_verification_at(p);
        prop_assume!(costs > 1e-6);
        let fo = FirstOrder::new(&model);
        let optimum = fo.optimal_period_for(p);
        prop_assume!(optimum.period.is_finite() && optimum.period > 0.0);
        let h = |t: f64| fo.approx_overhead(t, p);
        let best = h(optimum.period);
        prop_assert!(h(optimum.period * 1.05) >= best - 1e-12);
        prop_assert!(h(optimum.period * 0.95) >= best - 1e-12);
    }

    /// Theorem 2's closed form minimises the Theorem-1 overhead envelope over P,
    /// whenever the checkpoint cost is genuinely linear in P.
    #[test]
    fn theorem2_processor_count_is_stationary(
        lambda in 1e-11f64..1e-7,
        f in 0.01f64..0.99,
        alpha in 0.01f64..0.5,
        c in 0.01f64..5.0,
        v in 0.0f64..100.0,
    ) {
        let model = ExactModel::new(
            SpeedupProfile::amdahl(alpha).unwrap(),
            ResilienceCosts::new(CheckpointCost::linear(c), VerificationCost::constant(v), 0.0).unwrap(),
            FailureModel::new(lambda, f).unwrap(),
        );
        let fo = FirstOrder::new(&model);
        let optimum = fo.theorem2_optimum().unwrap();
        // Theorem 2 assumes the linear checkpoint cost dominates the (constant)
        // verification cost at the optimum; require that dominance, otherwise the
        // closed form is (by design) only asymptotically exact.
        prop_assume!(c * optimum.processors > 10.0 * v);
        let envelope = |p: f64| fo.optimal_period_for(p).overhead;
        let best = envelope(optimum.processors);
        prop_assert!(envelope(optimum.processors * 1.1) >= best - 1e-12);
        prop_assert!(envelope(optimum.processors * 0.9) >= best - 1e-12);
    }

    /// The probability helper is a genuine probability and the expected time lost
    /// to an interrupted window stays inside the window.
    #[test]
    fn failure_helpers_are_well_behaved(rate in 0.0f64..1e-2, w in 0.0f64..1e6) {
        let q = failure::probability_of_error(rate, w);
        prop_assert!((0.0..=1.0).contains(&q));
        if w > 0.0 && rate > 0.0 {
            let lost = failure::expected_time_lost(rate, w);
            prop_assert!(lost > 0.0 && lost < w, "lost={lost} w={w}");
        }
    }

    /// Golden-section and Brent agree on random shifted quadratics in log-space.
    #[test]
    fn scalar_minimisers_agree_on_quadratics(center in 1.0f64..1e6, scale in 0.1f64..10.0) {
        let f = |x: f64| scale * (x.ln() - center.ln()).powi(2) + 1.0;
        let (xg, _) = golden_section(1e-3, 1e9, 1e-12, 400, f);
        let (xb, _) = brent_minimize(1e-3, 1e9, 1e-12, 400, f);
        prop_assert!((xg - center).abs() / center < 1e-3, "golden {xg} vs {center}");
        prop_assert!((xb - center).abs() / center < 1e-3, "brent {xb} vs {center}");
    }

    /// Parallel-merge statistics are identical to sequential accumulation for any
    /// split point.
    #[test]
    fn running_stats_merge_is_associative(values in prop::collection::vec(-1e3f64..1e3, 2..200), split in 0usize..200) {
        let split = split.min(values.len());
        let mut all = RunningStats::new();
        for &v in &values { all.push(v); }
        let mut left = RunningStats::new();
        let mut right = RunningStats::new();
        for &v in &values[..split] { left.push(v); }
        for &v in &values[split..] { right.push(v); }
        left.merge(&right);
        prop_assert_eq!(left.count(), all.count());
        prop_assert!((left.mean() - all.mean()).abs() < 1e-9);
        prop_assert!((left.variance() - all.variance()).abs() < 1e-6);
    }

    /// Scenario fitting reproduces the measured costs at the measured processor
    /// count for every platform, scenario and downtime.
    #[test]
    fn scenario_fit_reproduces_measurements(
        platform_index in 0usize..4,
        scenario_index in 0usize..6,
        downtime in 0.0f64..1e5,
    ) {
        let platform = Platform::get(PlatformId::ALL[platform_index]);
        let scenario = Scenario::get(ScenarioId::ALL[scenario_index]);
        let costs = scenario.fit(&platform, downtime).unwrap();
        let p = platform.measured_processors as f64;
        prop_assert!((costs.checkpoint_at(p) - platform.measured_checkpoint).abs() < 1e-9);
        prop_assert!((costs.verification_at(p) - platform.measured_verification).abs() < 1e-9);
        prop_assert!((costs.downtime - downtime).abs() < 1e-12);
    }

    /// Amdahl speedup is bounded by `1/α`, is at least 1, and increases with P.
    #[test]
    fn amdahl_speedup_bounds(alpha in 0.001f64..1.0, p in 1.0f64..1e9, factor in 1.01f64..100.0) {
        let profile = SpeedupProfile::amdahl(alpha).unwrap();
        let s = profile.speedup(p);
        prop_assert!(s >= 1.0 - 1e-12);
        prop_assert!(s <= 1.0 / alpha + 1e-9);
        prop_assert!(profile.speedup(p * factor) >= s - 1e-12);
    }
}

/// Strategy for one arbitrary (valid) speedup profile, covering all four
/// families with a shared in-range parameter.
fn arb_profile() -> impl Strategy<Value = SpeedupProfile> {
    (0usize..4, 0.05f64..1.0).prop_map(|(kind, param)| match kind {
        0 => SpeedupProfile::Amdahl { alpha: param },
        1 => SpeedupProfile::PerfectlyParallel,
        2 => SpeedupProfile::PowerLaw { sigma: param },
        _ => SpeedupProfile::Gustafson { alpha: param },
    })
}

proptest! {
    // Sweep determinism needs several executor runs per case: fewer cases.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Sweep determinism contract, analytic half: for any grid — including a
    /// mixed speedup-profile axis — and seed, the sweep CSV bytes are
    /// identical for 1, 2 and 8 worker threads, and with the memoisation
    /// cache disabled.
    #[test]
    fn sweep_csv_is_invariant_under_threads_and_cache(
        seed in 0u64..1_000,
        scenario_index in 0usize..6,
        profiles in prop::collection::vec(arb_profile(), 1..4),
        multipliers in prop::collection::vec(0.2f64..30.0, 1..3),
        processors in prop::collection::vec(64.0f64..4_096.0, 1..3),
    ) {
        let grid = ScenarioGrid::builder()
            .scenarios(&[ScenarioId::ALL[scenario_index]])
            .profiles(&profiles)
            .lambda_multipliers(&multipliers)
            .processors(ProcessorAxis::Fixed(processors))
            .build()
            .unwrap();
        let run = ayd_sweep::RunOptions {
            seed,
            simulate: false,
            ..ayd_sweep::RunOptions::smoke()
        };
        let reference = SweepExecutor::new(SweepOptions::new(run).with_threads(1))
            .run(&grid)
            .to_csv();
        for threads in [2usize, 8] {
            let csv = SweepExecutor::new(SweepOptions::new(run).with_threads(threads))
                .run(&grid)
                .to_csv();
            prop_assert_eq!(&reference, &csv);
        }
        let uncached = SweepExecutor::new(
            SweepOptions::new(run).with_cache_capacity(None).with_threads(8),
        )
        .run(&grid)
        .to_csv();
        prop_assert_eq!(&reference, &uncached);
    }
}

proptest! {
    // Simulation-backed properties are more expensive: fewer cases.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The simulated overhead of any configuration is at least the error-free
    /// overhead and, in expectation, close to the analytical prediction.
    #[test]
    fn simulation_respects_error_free_floor(
        model in arb_model(),
        t in 600.0f64..50_000.0,
        p in 8.0f64..5_000.0,
        seed in 0u64..1_000,
    ) {
        // Keep the per-pattern error expectation moderate so the test stays fast.
        prop_assume!(model.failures.total_rate(p) * (t + model.costs.checkpoint_plus_verification_at(p)) < 2.0);
        let params = PatternParams::from_model(&model, t, p);
        let config = SimulationConfig { runs: 4, patterns_per_run: 20, seed, ..Default::default() };
        let stats = ayd_sim::batch::simulate_params(&params, &config);
        prop_assert!(stats.mean >= params.error_free_overhead() - 1e-12);
        let predicted = model.expected_overhead(t, p);
        prop_assume!(predicted.is_finite());
        // 4x20 patterns is noisy; just require the right order of magnitude.
        prop_assert!(stats.mean < predicted * 3.0 + 1.0);
    }
}

/// Removes the `profile`/`profile_param` columns from every line of a sweep
/// CSV, leaving the rest byte-for-byte intact.
fn strip_profile_columns(csv: &str) -> String {
    csv.lines()
        .map(|line| {
            let fields: Vec<&str> = line.split(',').collect();
            let mut kept: Vec<&str> = Vec::with_capacity(fields.len() - 2);
            kept.extend(&fields[..3]); // platform, scenario, alpha
            kept.extend(&fields[5..]); // everything after profile_param
            kept.join(",")
        })
        .collect::<Vec<String>>()
        .join("\n")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// `amdahl:0.0` and `perfect` describe the same application: a grid swept
    /// with one is row-for-row bit-identical to the other modulo the profile
    /// columns, for any worker-thread count and with the cache on or off.
    #[test]
    fn amdahl_zero_sweeps_bit_identical_to_perfect(
        seed in 0u64..1_000,
        scenario_index in 0usize..6,
        threads_index in 0usize..3,
        cache_switch in 0usize..2,
        processors in prop::collection::vec(64.0f64..4_096.0, 1..3),
    ) {
        let threads = [1usize, 2, 8][threads_index];
        let cache = cache_switch == 1;
        let grid_for = |profile: SpeedupProfile| {
            ScenarioGrid::builder()
                .scenarios(&[ScenarioId::ALL[scenario_index]])
                .profiles(&[profile])
                .lambda_multipliers(&[1.0, 10.0])
                .processors(ProcessorAxis::Fixed(processors.clone()))
                .build()
                .unwrap()
        };
        let run = ayd_sweep::RunOptions {
            seed,
            simulate: false,
            ..ayd_sweep::RunOptions::smoke()
        };
        let options = SweepOptions::new(run)
            .with_threads(threads)
            .with_cache_capacity(cache.then_some(1024));
        let amdahl_zero = SweepExecutor::new(options)
            .run(&grid_for(SpeedupProfile::Amdahl { alpha: 0.0 }));
        let perfect = SweepExecutor::new(options)
            .run(&grid_for(SpeedupProfile::PerfectlyParallel));
        prop_assert_eq!(amdahl_zero.rows.len(), perfect.rows.len());
        for (a, p) in amdahl_zero.rows.iter().zip(&perfect.rows) {
            // Identical modulo the profile field itself…
            let mut normalized = p.clone();
            normalized.profile = a.profile;
            prop_assert_eq!(a, &normalized);
            // …including the Amdahl-equivalent alpha column (both are 0).
            prop_assert_eq!(a.alpha, Some(0.0));
            prop_assert_eq!(p.alpha, Some(0.0));
        }
        // And the CSV bytes agree once the two profile columns are spliced out.
        prop_assert_eq!(
            strip_profile_columns(&amdahl_zero.to_csv()),
            strip_profile_columns(&perfect.to_csv())
        );
    }
}

/// Sweep determinism contract, simulation half: with simulation enabled the
/// CSV bytes are still identical across 1/2/8 worker threads and with the
/// cache disabled — simulations are seeded per cell index, never per thread.
/// A different base seed, by contrast, must change the simulated bytes.
#[test]
fn simulating_sweep_is_thread_count_and_cache_invariant() {
    let grid = ScenarioGrid::builder()
        .scenarios(&[ScenarioId::S1, ScenarioId::S5])
        .lambda_multipliers(&[1.0, 20.0])
        .processors(ProcessorAxis::Fixed(vec![400.0]))
        .build()
        .unwrap();
    let run = ayd_sweep::RunOptions::smoke();
    let csv = |options: SweepOptions| SweepExecutor::new(options).run(&grid).to_csv();
    let reference = csv(SweepOptions::new(run).with_threads(1));
    assert!(reference.contains(','), "sanity: rows were produced");
    for threads in [2usize, 8] {
        assert_eq!(reference, csv(SweepOptions::new(run).with_threads(threads)));
    }
    assert_eq!(
        reference,
        csv(SweepOptions::new(run)
            .with_cache_capacity(None)
            .with_threads(8))
    );
    let reseeded = ayd_sweep::RunOptions {
        seed: run.seed + 1,
        ..run
    };
    assert_ne!(reference, csv(SweepOptions::new(reseeded).with_threads(8)));
}
