//! Cross-crate integration: the discrete-event simulator (`ayd-sim`) must agree
//! with the exact analytical model (`ayd-core`, Proposition 1) on every platform
//! of Table II and every scenario of Table III.

use ayd_core::FirstOrder;
use ayd_platforms::{ExperimentSetup, PlatformId, ScenarioId};
use ayd_sim::{EngineKind, SimulationConfig, Simulator};

/// Simulated overhead matches the analytical expectation within a few percent on
/// every platform (scenario 1, the paper's default operating regime).
#[test]
fn simulation_matches_proposition1_on_all_platforms() {
    let config = SimulationConfig {
        runs: 40,
        patterns_per_run: 100,
        ..Default::default()
    };
    for platform in PlatformId::ALL {
        let model = ExperimentSetup::paper_default(platform, ScenarioId::S1)
            .model()
            .unwrap();
        // Evaluate at the first-order optimum of the platform.
        let optimum = FirstOrder::new(&model).joint_optimum().unwrap();
        let predicted = model.expected_overhead(optimum.period, optimum.processors);
        let stats =
            Simulator::new(model).simulate_overhead(optimum.period, optimum.processors, &config);
        let rel = (stats.mean - predicted).abs() / predicted;
        assert!(
            rel < 0.05,
            "{}: simulated {} vs predicted {} (rel {rel})",
            platform.name(),
            stats.mean,
            predicted
        );
    }
}

/// Simulated overhead matches the analytical expectation for every scenario on
/// Hera, at a mid-range operating point that is not the optimum of any of them.
#[test]
fn simulation_matches_proposition1_for_all_scenarios() {
    let config = SimulationConfig {
        runs: 40,
        patterns_per_run: 100,
        ..Default::default()
    };
    let (t, p) = (5_000.0, 600.0);
    for scenario in ScenarioId::ALL {
        let model = ExperimentSetup::paper_default(PlatformId::Hera, scenario)
            .model()
            .unwrap();
        let predicted = model.expected_overhead(t, p);
        let stats = Simulator::new(model).simulate_overhead(t, p, &config);
        let rel = (stats.mean - predicted).abs() / predicted;
        assert!(
            rel < 0.05,
            "scenario {}: simulated {} vs predicted {} (rel {rel})",
            scenario.number(),
            stats.mean,
            predicted
        );
    }
}

/// Both simulation engines agree with each other (and the model) on a
/// high-error-rate configuration where rollbacks are frequent.
#[test]
fn engines_agree_under_heavy_error_rates() {
    let model = ExperimentSetup::paper_default(PlatformId::Atlas, ScenarioId::S3)
        .with_lambda_ind(5e-7)
        .model()
        .unwrap();
    let (t, p) = (2_000.0, 1_024.0);
    let config = SimulationConfig {
        runs: 60,
        patterns_per_run: 80,
        ..Default::default()
    };
    let window = Simulator::new(model).simulate_overhead(t, p, &config);
    let stream =
        Simulator::new(model).simulate_overhead(t, p, &config.with_engine(EngineKind::EventStream));
    let predicted = model.expected_overhead(t, p);
    for (name, stats) in [("window", &window), ("stream", &stream)] {
        let rel = (stats.mean - predicted).abs() / predicted;
        assert!(
            rel < 0.08,
            "{name}: simulated {} vs predicted {predicted}",
            stats.mean
        );
    }
    assert!((window.mean - stream.mean).abs() / window.mean < 0.08);
    // Heavy error rates mean plenty of injected events of both kinds.
    assert!(window.fail_stop_errors > 0);
    assert!(window.silent_errors_detected > 0);
}

/// The simulated overhead is minimised near the analytical optimum: moving the
/// period well away from `T*` in either direction increases the simulated
/// overhead (Hera, scenario 1).
#[test]
fn simulated_overhead_is_minimised_near_the_predicted_optimum() {
    let model = ExperimentSetup::paper_default(PlatformId::Hera, ScenarioId::S1)
        .model()
        .unwrap();
    let optimum = FirstOrder::new(&model).joint_optimum().unwrap();
    let config = SimulationConfig {
        runs: 60,
        patterns_per_run: 120,
        ..Default::default()
    };
    let simulator = Simulator::new(model);
    let at_optimum = simulator
        .simulate_overhead(optimum.period, optimum.processors, &config)
        .mean;
    let too_short = simulator
        .simulate_overhead(optimum.period / 8.0, optimum.processors, &config)
        .mean;
    let too_long = simulator
        .simulate_overhead(optimum.period * 8.0, optimum.processors, &config)
        .mean;
    assert!(
        at_optimum < too_short,
        "optimum {at_optimum} vs short-period {too_short}"
    );
    assert!(
        at_optimum < too_long,
        "optimum {at_optimum} vs long-period {too_long}"
    );
}

/// Statistical validation with real tolerances, in place of ad-hoc epsilons:
/// for three representative platform/application cells, the simulated mean
/// pattern overhead must fall within a 3-sigma confidence interval of the
/// exact-model prediction (Proposition 1) for BOTH engines.
///
/// `sigma` here is the standard error of the simulated mean
/// (`std_dev / sqrt(runs)`), so the bound tightens as replication grows —
/// an honest test of unbiasedness, not a loose percentage. With the fixed
/// default seed the check is deterministic; under resampling a correct
/// simulator would pass each of the 6 assertions with probability ≈ 99.7%.
#[test]
fn simulated_mean_is_within_three_sigma_of_the_exact_model_for_both_engines() {
    let cells = [
        (PlatformId::Hera, ScenarioId::S1),
        (PlatformId::Atlas, ScenarioId::S3),
        (PlatformId::Coastal, ScenarioId::S5),
    ];
    let config = SimulationConfig {
        runs: 150,
        patterns_per_run: 150,
        ..Default::default()
    };
    for (platform, scenario) in cells {
        let model = ExperimentSetup::paper_default(platform, scenario)
            .model()
            .unwrap();
        let optimum = FirstOrder::new(&model).joint_optimum().unwrap();
        let predicted = model.expected_overhead(optimum.period, optimum.processors);
        for engine in [EngineKind::WindowSampling, EngineKind::EventStream] {
            let stats = Simulator::new(model).simulate_overhead(
                optimum.period,
                optimum.processors,
                &config.with_engine(engine),
            );
            let sigma_mean = stats.std_dev / (stats.runs as f64).sqrt();
            assert!(sigma_mean > 0.0, "degenerate spread on {platform:?}");
            let deviation = (stats.mean - predicted).abs();
            assert!(
                deviation <= 3.0 * sigma_mean,
                "{:?}/{:?}/{:?}: simulated {} vs predicted {predicted} \
                 (deviation {deviation:.3e} > 3 sigma = {:.3e})",
                platform,
                scenario,
                engine,
                stats.mean,
                3.0 * sigma_mean
            );
        }
    }
}

/// Downtime only matters when fail-stop errors strike: with a pure-silent-error
/// platform the simulated overhead is unaffected by the downtime value.
#[test]
fn downtime_is_irrelevant_without_fail_stop_errors() {
    let base = ExperimentSetup::paper_default(PlatformId::Hera, ScenarioId::S3)
        .model()
        .unwrap();
    let silent_only = base.with_failures(ayd_core::FailureModel::new(1.69e-8, 0.0).unwrap());
    let (t, p) = (5_000.0, 512.0);
    let config = SimulationConfig {
        runs: 20,
        patterns_per_run: 60,
        ..Default::default()
    };
    let short =
        Simulator::new(silent_only.with_costs(silent_only.costs.with_downtime(0.0).unwrap()))
            .simulate_overhead(t, p, &config);
    let long =
        Simulator::new(silent_only.with_costs(silent_only.costs.with_downtime(36_000.0).unwrap()))
            .simulate_overhead(t, p, &config);
    assert_eq!(short.mean, long.mean);
    assert_eq!(short.fail_stop_errors, 0);
    assert_eq!(long.fail_stop_errors, 0);
}
