//! Cross-crate integration: the closed-form first-order optima of `ayd-core`
//! (Theorems 2 and 3) against the generic numerical optimiser of `ayd-optim`
//! applied to the exact model, across platforms and scenarios.

use ayd_core::{CostCase, FirstOrder};
use ayd_exp::{Evaluator, RunOptions};
use ayd_platforms::{ExperimentSetup, PlatformId, ScenarioId};

fn evaluator() -> Evaluator {
    Evaluator::new(RunOptions::analytical_only())
}

/// In every realistic scenario (1–4) and on every platform, the first-order
/// operating point achieves an exact-model overhead within 1% of the numerical
/// optimum — the paper's Figure 2 claim.
#[test]
fn first_order_is_within_one_percent_of_numerical_for_scenarios_1_to_4() {
    let eval = evaluator();
    for platform in PlatformId::ALL {
        for scenario in [
            ScenarioId::S1,
            ScenarioId::S2,
            ScenarioId::S3,
            ScenarioId::S4,
        ] {
            let model = ExperimentSetup::paper_default(platform, scenario)
                .model()
                .unwrap();
            let comparison = eval.compare(&model);
            let gap = comparison
                .overhead_gap()
                .expect("first-order optimum exists");
            assert!(
                gap >= -1e-9,
                "{platform:?}/{scenario:?}: numerical must be at least as good"
            );
            // Coastal SSD / scenario 2 is the single mild outlier (~2%): its large
            // per-processor verification cost is ignored by Theorem 2. See
            // EXPERIMENTS.md.
            let tolerance = if platform == PlatformId::CoastalSsd && scenario == ScenarioId::S2 {
                0.03
            } else {
                0.01
            };
            assert!(
                gap < tolerance,
                "{platform:?}/{scenario:?}: first-order loses {:.3}% against the optimum",
                gap * 100.0
            );
        }
    }
}

/// The theorem selection matches the scenario structure on every platform.
#[test]
fn cost_case_dispatch_is_consistent_across_platforms() {
    for platform in PlatformId::ALL {
        for scenario in ScenarioId::ALL {
            let model = ExperimentSetup::paper_default(platform, scenario)
                .model()
                .unwrap();
            let case = FirstOrder::new(&model).cost_case();
            let expected = match scenario.number() {
                1..=2 => CostCase::LinearGrowth,
                3..=5 => CostCase::Constant,
                _ => CostCase::Decreasing,
            };
            assert_eq!(case, expected, "{platform:?}/{scenario:?}");
        }
    }
}

/// The numerical optimum of the exact model is a genuine local minimum: moving
/// either coordinate by ±20% cannot improve the overhead (Hera, all scenarios).
#[test]
fn numerical_optimum_is_a_local_minimum_in_both_coordinates() {
    let eval = evaluator();
    for scenario in ScenarioId::ALL {
        let model = ExperimentSetup::paper_default(PlatformId::Hera, scenario)
            .model()
            .unwrap();
        let optimum = eval.numerical_point(&model);
        let h = |t: f64, p: f64| model.expected_overhead(t, p);
        let best = optimum.predicted_overhead;
        for factor in [0.8, 1.25] {
            assert!(
                h(optimum.period * factor, optimum.processors) >= best - 1e-9,
                "scenario {}: period perturbation improves the overhead",
                scenario.number()
            );
            assert!(
                h(optimum.period, optimum.processors * factor) >= best - 1e-9,
                "scenario {}: processor perturbation improves the overhead",
                scenario.number()
            );
        }
    }
}

/// Theorem 1's period is numerically optimal for a fixed processor count: the
/// generic scalar optimiser finds (essentially) the same period on every
/// platform/scenario pair at the measured processor count.
#[test]
fn theorem1_period_agrees_with_scalar_optimisation_everywhere() {
    let eval = evaluator();
    for platform in PlatformId::ALL {
        for scenario in ScenarioId::ALL {
            let setup = ExperimentSetup::paper_default(platform, scenario);
            let model = setup.model().unwrap();
            let p = setup.platform_data().measured_processors as f64;
            let theorem = FirstOrder::new(&model).optimal_period_for(p);
            let (numerical_period, numerical_overhead) = eval.numerical_period_for(&model, p);
            // Overheads agree to within 0.5%; periods to within ~15% (the exact
            // optimum deviates slightly from the first-order formula).
            let theorem_overhead = model.expected_overhead(theorem.period, p);
            assert!(
                (theorem_overhead - numerical_overhead) / numerical_overhead < 5e-3,
                "{platform:?}/{scenario:?}"
            );
            assert!(
                (theorem.period - numerical_period).abs() / numerical_period < 0.15,
                "{platform:?}/{scenario:?}: {} vs {}",
                theorem.period,
                numerical_period
            );
        }
    }
}

/// Young/Daly as a degenerate case: with no silent errors and no verification
/// cost, Theorem 1 and the classical formula give the same period, and the
/// numerical optimiser agrees.
#[test]
fn young_daly_limit_is_recovered() {
    use ayd_core::{
        CheckpointCost, ExactModel, FailureModel, ResilienceCosts, SpeedupProfile, VerificationCost,
    };
    let model = ExactModel::new(
        SpeedupProfile::amdahl(0.1).unwrap(),
        ResilienceCosts::new(
            CheckpointCost::constant(300.0),
            VerificationCost::zero(),
            0.0,
        )
        .unwrap(),
        FailureModel::new(1e-8, 1.0).unwrap(),
    );
    let p = 1_000.0;
    let theorem = FirstOrder::new(&model).optimal_period_for(p).period;
    let young_daly = ayd_core::young_daly_period(300.0, model.failures.fail_stop_rate(p));
    assert!((theorem - young_daly).abs() / young_daly < 1e-12);
    let (numerical, _) = evaluator().numerical_period_for(&model, p);
    assert!((numerical - young_daly).abs() / young_daly < 0.05);
}
