//! Property tests of the sharding subsystem (ISSUE 5 acceptance):
//!
//! For **any** shard count in `1..=8`, any grid shape and any seed:
//!
//! * the shards partition the grid — concatenating the shard runs' rows is a
//!   permutation of the full grid's rows (same multiset, every cell exactly
//!   once);
//! * the deterministic merge of the shard CSVs is **byte-identical** to the
//!   unsharded sweep CSV — including across different worker-thread counts
//!   and cache settings per shard, and with simulation enabled (per-cell
//!   seeding is global-index-based, so sharding cannot reseed anything).

use proptest::prelude::*;

use ayd_platforms::ScenarioId;
use ayd_sweep::{
    merge_parts, ProcessorAxis, ScenarioGrid, ShardPart, ShardSpec, SweepExecutor, SweepManifest,
    SweepOptions, SweepRow,
};

fn arb_profile() -> impl Strategy<Value = ayd_sweep::SpeedupProfile> {
    use ayd_sweep::SpeedupProfile;
    (0usize..4, 0.05f64..1.0).prop_map(|(kind, param)| match kind {
        0 => SpeedupProfile::Amdahl { alpha: param },
        1 => SpeedupProfile::PerfectlyParallel,
        2 => SpeedupProfile::PowerLaw { sigma: param },
        _ => SpeedupProfile::Gustafson { alpha: param },
    })
}

/// A key that identifies one row's cell coordinates (for the permutation
/// check; full `SweepRow` equality is used via the merged CSV bytes).
fn row_key(row: &SweepRow) -> String {
    format!(
        "{}|{}|{:?}|{}|{}|{:?}|{:?}",
        row.platform.name(),
        row.scenario,
        row.profile,
        row.lambda_ind,
        row.lambda_multiplier,
        row.fixed_processors,
        row.pattern_length,
    )
}

proptest! {
    // Each case runs the executor count+1 times; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn shards_partition_and_merge_byte_identically(
        seed in 0u64..1_000,
        count in 1usize..=8,
        threads_per_shard in prop::collection::vec(1usize..5, 8..9),
        scenario_index in 0usize..6,
        profiles in prop::collection::vec(arb_profile(), 1..3),
        multipliers in prop::collection::vec(0.2f64..30.0, 1..3),
        processors in prop::collection::vec(64.0f64..4_096.0, 1..3),
    ) {
        let grid = ScenarioGrid::builder()
            .scenarios(&[ScenarioId::ALL[scenario_index]])
            .profiles(&profiles)
            .lambda_multipliers(&multipliers)
            .processors(ProcessorAxis::Fixed(processors))
            .build()
            .unwrap();
        let run = ayd_sweep::RunOptions {
            seed,
            simulate: false,
            ..ayd_sweep::RunOptions::smoke()
        };
        let options = SweepOptions::new(run);
        let full = SweepExecutor::new(options.with_threads(2)).run(&grid);

        let mut concatenated: Vec<SweepRow> = Vec::new();
        let mut parts: Vec<ShardPart> = Vec::new();
        for (index, &threads) in threads_per_shard.iter().enumerate().take(count) {
            let shard = ShardSpec::new(index, count).unwrap();
            // Every shard may use a different thread count — and shard 0 (when
            // sharded at all) runs uncached — without changing a byte.
            let shard_options = if index == 0 && count > 1 {
                options.with_threads(threads).with_cache_capacity(None)
            } else {
                options.with_threads(threads)
            };
            let results = SweepExecutor::new(shard_options).run_cells(&grid.shard_cells(shard));
            prop_assert_eq!(results.rows.len(), shard.cell_count(grid.len()));
            concatenated.extend(results.rows.iter().cloned());
            parts.push(ShardPart {
                manifest: SweepManifest::complete(&grid, &options, shard),
                csv: results.to_csv(),
            });
        }

        // Permutation: same row multiset, same total count.
        prop_assert_eq!(concatenated.len(), full.rows.len());
        let mut full_keys: Vec<String> = full.rows.iter().map(row_key).collect();
        let mut shard_keys: Vec<String> = concatenated.iter().map(row_key).collect();
        full_keys.sort();
        shard_keys.sort();
        prop_assert_eq!(full_keys, shard_keys);

        // Byte-identical merge.
        let merged = merge_parts(&parts).unwrap();
        prop_assert_eq!(merged, full.to_csv());
    }
}

/// The simulation half of the contract on a fixed grid: shard runs simulate
/// each cell with its global-index seed, so merging shards of a *simulating*
/// sweep still reproduces the unsharded bytes exactly.
#[test]
fn simulating_shards_merge_byte_identically() {
    let grid = ScenarioGrid::builder()
        .scenarios(&[ScenarioId::S1, ScenarioId::S5])
        .lambda_multipliers(&[1.0, 20.0])
        .processors(ProcessorAxis::Fixed(vec![400.0, 800.0]))
        .build()
        .unwrap();
    let options = SweepOptions::new(ayd_sweep::RunOptions::smoke());
    let full = SweepExecutor::new(options.with_threads(2))
        .run(&grid)
        .to_csv();
    for count in [2usize, 3] {
        let parts: Vec<ShardPart> = (0..count)
            .map(|index| {
                let shard = ShardSpec::new(index, count).unwrap();
                ShardPart {
                    manifest: SweepManifest::complete(&grid, &options, shard),
                    csv: SweepExecutor::new(options.with_threads(1))
                        .run_cells(&grid.shard_cells(shard))
                        .to_csv(),
                }
            })
            .collect();
        assert_eq!(merge_parts(&parts).unwrap(), full, "count={count}");
    }
}
