//! Property-based equivalence of the warm-started search strategies.
//!
//! The `SearchStrategy` contract (see `ayd_optim::seeded`) is that `fast` and
//! `fast-strict` are **bit-identical** to the `reference` grid-scan + Brent
//! search on every output: the fast path either proves it located the
//! reference search's operating point or silently demotes itself to the
//! reference search for that scalar call. This suite exercises the contract
//! end-to-end through the sweep engine on randomized grids spanning all four
//! speedup-profile families, every platform, both lambda axes, fixed and
//! jointly-optimised processor counts, pattern-length axes, several worker
//! thread counts, and the cache both on and off.

use proptest::prelude::*;

use ayd_core::SpeedupProfile;
use ayd_platforms::{PlatformId, ScenarioId};
use ayd_sweep::{
    ProcessorAxis, RunOptions, ScenarioGrid, SearchStrategy, SweepExecutor, SweepOptions,
};

/// One arbitrary (valid) speedup profile, covering all four families.
fn arb_profile() -> impl Strategy<Value = SpeedupProfile> {
    (0usize..4, 0.05f64..1.0).prop_map(|(kind, param)| match kind {
        0 => SpeedupProfile::Amdahl { alpha: param },
        1 => SpeedupProfile::PerfectlyParallel,
        2 => SpeedupProfile::PowerLaw { sigma: param },
        _ => SpeedupProfile::Gustafson { alpha: param },
    })
}

/// One arbitrary processor axis: jointly optimised, fixed counts, or the
/// lambda-order ablation axis.
fn arb_processor_axis() -> impl Strategy<Value = ProcessorAxis> {
    (
        0usize..3,
        prop::collection::vec(64.0f64..65_536.0, 1..3),
        prop::collection::vec(0.2f64..0.5, 1..3),
    )
        .prop_map(|(kind, fixed, orders)| match kind {
            0 => ProcessorAxis::Optimize,
            1 => ProcessorAxis::Fixed(fixed),
            _ => ProcessorAxis::LambdaOrders(orders),
        })
}

/// One arbitrary grid: random platform, scenario, profiles, error-rate axis,
/// processor axis and (for fixed-P cells) pattern lengths.
fn arb_grid() -> impl Strategy<Value = ScenarioGrid> {
    (
        0usize..4,
        0usize..6,
        prop::collection::vec(arb_profile(), 1..3),
        prop::collection::vec(0.2f64..30.0, 1..3),
        arb_processor_axis(),
        prop::collection::vec(600.0f64..100_000.0, 0..3),
    )
        .prop_map(
            |(platform, scenario, profiles, multipliers, axis, patterns)| {
                let mut builder = ScenarioGrid::builder()
                    .platforms(&[PlatformId::ALL[platform]])
                    .scenarios(&[ScenarioId::ALL[scenario]])
                    .profiles(&profiles)
                    .lambda_multipliers(&multipliers)
                    .processors(axis.clone());
                // Pattern-length axes only combine with fixed processor counts.
                if !patterns.is_empty() && matches!(axis, ProcessorAxis::Fixed(_)) {
                    builder = builder.pattern_lengths(&patterns);
                }
                builder.build().unwrap()
            },
        )
}

fn run_csv(grid: &ScenarioGrid, options: SweepOptions) -> String {
    SweepExecutor::new(options).run(grid).to_csv()
}

proptest! {
    // Each case runs the sweep engine several times; keep the case count low.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For any grid, the three search strategies produce byte-for-byte
    /// identical sweep CSVs — i.e. bit-identical `(P*, T*, overhead)` per
    /// cell — regardless of thread count, and with the cache on or off.
    #[test]
    fn search_strategies_are_byte_identical_on_random_grids(
        grid in arb_grid(),
        seed in 0u64..1_000,
        threads_index in 0usize..3,
        cache_switch in 0usize..2,
    ) {
        let threads = [1usize, 2, 8][threads_index];
        let cache = cache_switch == 1;
        let run_for = |search: SearchStrategy| RunOptions {
            seed,
            simulate: false,
            search,
            ..RunOptions::smoke()
        };
        let options_for = |search: SearchStrategy| {
            SweepOptions::new(run_for(search))
                .with_threads(threads)
                .with_cache_capacity(cache.then_some(1024))
        };
        let reference = run_csv(&grid, options_for(SearchStrategy::Reference));
        prop_assert!(reference.contains(','), "sanity: rows were produced");
        let fast = run_csv(&grid, options_for(SearchStrategy::Fast));
        prop_assert_eq!(&reference, &fast, "fast differs from reference");
        let strict = run_csv(&grid, options_for(SearchStrategy::FastStrict));
        prop_assert_eq!(&reference, &strict, "fast-strict differs from reference");
    }

    /// Simulation rides on the analytic operating points, so with simulation
    /// enabled the strategies must still agree byte-for-byte (the simulated
    /// columns are seeded per cell index, independent of the search path).
    #[test]
    fn search_strategies_agree_with_simulation_enabled(
        seed in 0u64..1_000,
        scenario_index in 0usize..6,
        processors in prop::collection::vec(64.0f64..4_096.0, 1..3),
    ) {
        let grid = ScenarioGrid::builder()
            .scenarios(&[ScenarioId::ALL[scenario_index]])
            .lambda_multipliers(&[1.0, 10.0])
            .processors(ProcessorAxis::Fixed(processors))
            .build()
            .unwrap();
        let csv_for = |search: SearchStrategy| {
            let run = RunOptions {
                seed,
                search,
                ..RunOptions::smoke()
            };
            run_csv(&grid, SweepOptions::new(run).with_threads(2))
        };
        let reference = csv_for(SearchStrategy::Reference);
        prop_assert_eq!(&reference, &csv_for(SearchStrategy::Fast));
        prop_assert_eq!(&reference, &csv_for(SearchStrategy::FastStrict));
    }
}

/// The strict fast path on the demo-scale mixed axes never *diverges* from
/// the reference: a deterministic spot-check pinning the exact cell set the
/// CI equivalence step sweeps (platforms × scenarios × profiles × lambdas ×
/// fixed P × pattern lengths), small enough to run in a unit-test budget.
#[test]
fn mixed_profile_fixed_p_grid_is_strategy_invariant() {
    let grid = ScenarioGrid::builder()
        .platforms(&[PlatformId::ALL[0], PlatformId::ALL[2]])
        .scenarios(&[ScenarioId::S1, ScenarioId::S6])
        .profiles(&[
            SpeedupProfile::amdahl(0.1).unwrap(),
            SpeedupProfile::power_law(0.8).unwrap(),
            SpeedupProfile::gustafson(0.05).unwrap(),
            SpeedupProfile::perfectly_parallel(),
        ])
        .lambda_multipliers(&[1.0, 10.0])
        .processors(ProcessorAxis::Fixed(vec![256.0, 4_096.0]))
        .pattern_lengths(&[3_600.0, 57_600.0])
        .build()
        .unwrap();
    let csv_for = |search: SearchStrategy| {
        let run = RunOptions {
            simulate: false,
            search,
            ..RunOptions::default()
        };
        SweepExecutor::new(SweepOptions::new(run))
            .run(&grid)
            .to_csv()
    };
    let reference = csv_for(SearchStrategy::Reference);
    assert_eq!(reference, csv_for(SearchStrategy::Fast));
    assert_eq!(reference, csv_for(SearchStrategy::FastStrict));
    assert_eq!(reference.lines().count(), 1 + grid.len());
}

/// Joint-optimisation cells (the expensive path the warm start exists for)
/// are strategy-invariant across every platform and scenario at the default
/// paper error rates.
#[test]
fn joint_optimisation_cells_are_strategy_invariant_everywhere() {
    let grid = ScenarioGrid::builder()
        .platforms(PlatformId::ALL.as_slice())
        .scenarios(ScenarioId::ALL.as_slice())
        .lambda_multipliers(&[1.0, 10.0])
        .processors(ProcessorAxis::Optimize)
        .build()
        .unwrap();
    let csv_for = |search: SearchStrategy| {
        let run = RunOptions {
            simulate: false,
            search,
            ..RunOptions::default()
        };
        SweepExecutor::new(SweepOptions::new(run))
            .run(&grid)
            .to_csv()
    };
    let reference = csv_for(SearchStrategy::Reference);
    assert_eq!(reference, csv_for(SearchStrategy::Fast));
    assert_eq!(reference, csv_for(SearchStrategy::FastStrict));
}
