//! Scenario explorer: how the checkpointing protocol shapes the optimal pattern.
//!
//! For a chosen platform (default Hera, override with the first CLI argument:
//! `hera`, `atlas`, `coastal`, `coastal-ssd`) this example sweeps the processor
//! count and prints, for every resilience scenario of Table III, the first-order
//! optimal period `T*_P` (Theorem 1), the expected overhead at that period, and
//! how much the classical Young/Daly period (which ignores silent errors and the
//! verification cost) would lose on the same platform.
//!
//! Run with: `cargo run --release --example scenario_explorer [platform]`

use ayd_core::young_daly::young_daly_period;
use ayd_core::FirstOrder;
use ayd_exp::table::{fmt_value, TextTable};
use ayd_platforms::{ExperimentSetup, PlatformId, ScenarioId};

fn main() {
    let platform = std::env::args()
        .nth(1)
        .map(|name| PlatformId::parse(&name).expect("unknown platform name"))
        .unwrap_or(PlatformId::Hera);

    println!("Exploring resilience scenarios on {}\n", platform.name());

    let processor_sweep: Vec<f64> = (1..=7).map(|i| (i * 200) as f64).collect();
    for scenario in ScenarioId::ALL {
        let model = ExperimentSetup::paper_default(platform, scenario)
            .model()
            .expect("paper-default setup");
        let first_order = FirstOrder::new(&model);
        let mut table = TextTable::new(
            format!(
                "Scenario {} (C_P: {:?}, V_P: {:?})",
                scenario.number(),
                ExperimentSetup::paper_default(platform, scenario)
                    .scenario_data()
                    .checkpoint,
                ExperimentSetup::paper_default(platform, scenario)
                    .scenario_data()
                    .verification,
            ),
            &[
                "P",
                "C_P (s)",
                "V_P (s)",
                "T*_P (s)",
                "H(T*_P, P)",
                "Young/Daly T (s)",
                "H @ Young/Daly T",
            ],
        );
        for &p in &processor_sweep {
            let optimum = first_order.optimal_period_for(p);
            // Young/Daly ignores silent errors (uses the fail-stop rate only) and
            // the verification cost.
            let yd_period = young_daly_period(
                model.costs.checkpoint_at(p),
                model.failures.fail_stop_rate(p),
            );
            let yd_overhead = model.expected_overhead(yd_period, p);
            table.push_row(vec![
                fmt_value(p),
                fmt_value(model.costs.checkpoint_at(p)),
                fmt_value(model.costs.verification_at(p)),
                fmt_value(optimum.period),
                fmt_value(model.expected_overhead(optimum.period, p)),
                fmt_value(yd_period),
                fmt_value(yd_overhead),
            ]);
        }
        println!("{}", table.render());
    }

    println!(
        "The generalised period of Theorem 1 accounts for silent errors (which\n\
         dominate on these platforms: 78-94% of all errors) and is therefore shorter\n\
         than the classical Young/Daly period; using the Young/Daly period directly\n\
         would leave the pattern exposed to silent errors for too long and increase\n\
         the expected overhead."
    );
}
