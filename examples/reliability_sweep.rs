//! Reliability sweep: how the optimal degree of parallelism scales with the
//! individual error rate — the headline result of the paper.
//!
//! Sweeps `λ_ind` over four orders of magnitude on a Hera-like platform and
//! fits the power laws `P*(λ_ind)` and `T*(λ_ind)` for two checkpointing
//! protocols:
//!
//! * coordinated checkpointing, `C_P = cP` (scenario 1) — expected
//!   `P* = Θ(λ^{-1/4})`, `T* = Θ(λ^{-1/2})` (Theorem 2);
//! * constant-cost checkpointing, `C_P = a` (scenario 3) — expected
//!   `P* = Θ(λ^{-1/3})`, `T* = Θ(λ^{-1/3})` (Theorem 3).
//!
//! The example also simulates the overhead at the optimum for the largest and
//! smallest rates to show it approaching the Amdahl floor `α = 0.1`.
//!
//! Run with: `cargo run --release --example reliability_sweep`

use ayd_core::{fit_power_law, FirstOrder};
use ayd_exp::table::{fmt_value, TextTable};
use ayd_exp::{Evaluator, RunOptions};
use ayd_platforms::{ExperimentSetup, PlatformId, ScenarioId};
use ayd_sim::{SimulationConfig, Simulator};

fn main() {
    let lambdas: Vec<f64> = (0..=8)
        .map(|i| 1e-12 * 10f64.powf(i as f64 / 2.0))
        .collect();
    let evaluator = Evaluator::new(RunOptions::analytical_only());

    for scenario in [ScenarioId::S1, ScenarioId::S3] {
        let mut table = TextTable::new(
            format!(
                "Scenario {} — optimal pattern vs individual error rate",
                scenario.number()
            ),
            &[
                "lambda_ind",
                "P* (Thm)",
                "T* (Thm, s)",
                "P* (numerical)",
                "T* (numerical, s)",
                "H (numerical)",
            ],
        );
        let mut p_points = Vec::new();
        let mut t_points = Vec::new();
        for &lambda in &lambdas {
            let model = ExperimentSetup::paper_default(PlatformId::Hera, scenario)
                .with_lambda_ind(lambda)
                .model()
                .expect("valid setup");
            let theorem = FirstOrder::new(&model)
                .joint_optimum()
                .expect("theorem applies");
            let numerical = evaluator.numerical_point(&model);
            p_points.push((lambda, numerical.processors));
            t_points.push((lambda, numerical.period));
            table.push_row(vec![
                format!("{lambda:.2e}"),
                fmt_value(theorem.processors),
                fmt_value(theorem.period),
                fmt_value(numerical.processors),
                fmt_value(numerical.period),
                fmt_value(numerical.predicted_overhead),
            ]);
        }
        println!("{}", table.render());
        let p_fit = fit_power_law(&p_points);
        let t_fit = fit_power_law(&t_points);
        let (expected_p, expected_t) = if scenario == ScenarioId::S1 {
            (-0.25, -0.5)
        } else {
            (-1.0 / 3.0, -1.0 / 3.0)
        };
        println!(
            "  fitted P* ~ lambda^{:.3} (theory {:.3}),  T* ~ lambda^{:.3} (theory {:.3})\n",
            p_fit.exponent, expected_p, t_fit.exponent, expected_t
        );
    }

    // Simulate the achieved overhead at the two ends of the sweep (scenario 1).
    println!("Simulated overhead at the numerical optimum (scenario 1):");
    let config = SimulationConfig {
        runs: 60,
        patterns_per_run: 120,
        ..Default::default()
    };
    for &lambda in &[1e-8, 1e-12] {
        let model = ExperimentSetup::paper_default(PlatformId::Hera, ScenarioId::S1)
            .with_lambda_ind(lambda)
            .model()
            .expect("valid setup");
        let optimum = evaluator.numerical_point(&model);
        let stats =
            Simulator::new(model).simulate_overhead(optimum.period, optimum.processors, &config);
        println!(
            "  lambda_ind = {lambda:.0e}:  H = {:.4} ± {:.4}  (floor alpha = 0.1)",
            stats.mean, stats.ci95
        );
    }
}
