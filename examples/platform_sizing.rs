//! Platform sizing: how many processors should a job enrol on each platform?
//!
//! This is the question the paper answers. For every platform of Table II and
//! every resilience scenario of Table III, this example prints the first-order
//! and numerically optimal processor allocation, checkpointing period and
//! expected overhead for an application with a 10% sequential fraction —
//! essentially regenerating Figure 2 in textual form — and then shows how the
//! answer changes for a more parallel application (α = 1%).
//!
//! Run with: `cargo run --release --example platform_sizing`

use ayd_exp::table::{fmt_option, fmt_value, TextTable};
use ayd_exp::{Evaluator, RunOptions};
use ayd_platforms::{ExperimentSetup, PlatformId, ScenarioId};

fn sizing_table(alpha: f64, options: &RunOptions) -> TextTable {
    let evaluator = Evaluator::new(*options).with_processor_range(1.0, 1e8);
    let mut table = TextTable::new(
        format!("Recommended allocation per platform and scenario (alpha = {alpha})"),
        &[
            "platform",
            "scenario",
            "P* (first-order)",
            "P* (optimal)",
            "T* (s)",
            "expected overhead",
        ],
    );
    for platform in PlatformId::ALL {
        for scenario in ScenarioId::ALL {
            let model = ExperimentSetup::paper_default(platform, scenario)
                .with_alpha(alpha)
                .model()
                .expect("valid setup");
            let comparison = evaluator.compare(&model);
            table.push_row(vec![
                platform.name().to_string(),
                scenario.number().to_string(),
                fmt_option(comparison.first_order.map(|p| p.processors)),
                fmt_value(comparison.numerical.processors),
                fmt_value(comparison.numerical.period),
                fmt_value(comparison.numerical.predicted_overhead),
            ]);
        }
    }
    table
}

fn main() {
    // Analytical + numerical only: simulation is not needed for sizing decisions.
    let options = RunOptions::analytical_only();

    println!("{}", sizing_table(0.1, &options).render());
    println!(
        "Note: enrolling *all* available processors is never optimal — beyond P* the\n\
         increased error rate (and, in scenarios 1-2, the growing checkpoint cost)\n\
         outweighs the extra parallelism.\n"
    );
    println!("{}", sizing_table(0.01, &options).render());
    println!(
        "A more parallel application (alpha = 1%) enrols roughly 3-5x more processors\n\
         and reaches a ~10x smaller overhead, exactly as Amdahl's law combined with\n\
         Theorems 2 and 3 predicts."
    );
}
