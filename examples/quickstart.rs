//! Quickstart: from platform parameters to an optimal checkpointing pattern.
//!
//! Walks through the full pipeline of the library on the paper's "Hera" platform:
//!
//! 1. describe the failure model and the resilience costs,
//! 2. compute the classical Young/Daly period (fail-stop errors only) as a
//!    baseline,
//! 3. compute the generalised first-order optimum of the paper (Theorem 2):
//!    optimal processor count `P*`, period `T*` and predicted overhead,
//! 4. cross-check against the numerical optimum of the exact model, and
//! 5. validate both operating points with the discrete-event simulator.
//!
//! Run with: `cargo run --release --example quickstart`

use amdahl_young_daly::prelude::*;
use ayd_core::young_daly::young_daly_period;
use ayd_exp::{Evaluator, OperatingPoint};

fn describe(label: &str, point: &OperatingPoint) {
    println!(
        "  {label:<22} P* = {:>9.1}   T* = {:>9.1} s   predicted H = {:.4}{}",
        point.processors,
        point.period,
        point.predicted_overhead,
        point
            .simulated
            .map(|s| format!("   simulated H = {:.4} (±{:.4})", s.mean, s.ci95))
            .unwrap_or_default()
    );
}

fn main() {
    // 1. The Hera platform of the paper (Table II): individual error rate
    //    1.69e-8 per second, 21.88% of errors are fail-stop, measured checkpoint
    //    cost 300 s at 512 processors, verification 15.4 s, one-hour downtime.
    let failures = FailureModel::new(1.69e-8, 0.2188).expect("valid failure model");
    let costs = ResilienceCosts::new(
        CheckpointCost::linear(300.0 / 512.0), // coordinated checkpointing: C_P = cP
        VerificationCost::constant(15.4),
        3600.0,
    )
    .expect("valid resilience costs");
    let speedup = SpeedupProfile::amdahl(0.1).expect("valid sequential fraction");
    let model = ExactModel::new(speedup, costs, failures);

    println!(
        "Platform: Hera-like, individual MTBF = {:.1} years",
        failures.mtbf_ind() / 3.156e7
    );

    // 2. Classical Young/Daly baseline: ignore silent errors and the verification,
    //    fix P at the measured 512 processors.
    let p_measured = 512.0;
    let yd = young_daly_period(
        costs.checkpoint_at(p_measured),
        failures.fail_stop_rate(p_measured),
    );
    println!("\nClassical Young/Daly period at P = 512 (fail-stop only): {yd:.0} s");

    // 3. The paper's generalised first-order optimum (Theorem 2).
    let first_order = FirstOrder::new(&model)
        .joint_optimum()
        .expect("Theorem 2 applies");
    println!(
        "\nTheorem 2 closed forms: P* = {:.1}, T* = {:.1} s, H* = {:.4}",
        first_order.processors, first_order.period, first_order.overhead
    );

    // 4 & 5. Numerical optimum of the exact model, and simulation of both points.
    let evaluator = Evaluator::new(ayd_exp::RunOptions::default());
    println!("\nOperating points (predicted by Proposition 1, validated by simulation):");
    let fo_point = evaluator
        .first_order_point(&model)
        .expect("first-order point exists");
    describe("first-order optimum", &fo_point);
    let numerical = evaluator.numerical_point(&model);
    describe("numerical optimum", &numerical);

    // Project a concrete application: one month of sequential work.
    let app = Application::new(30.0 * 86_400.0).expect("valid application");
    let projection = app.project(&model, numerical.period, numerical.processors);
    println!(
        "\nA 30-day (sequential) application at the numerical optimum:\n  \
         {:.0} patterns, error-free makespan {:.1} h, expected makespan {:.1} h",
        projection.patterns,
        projection.error_free_makespan / 3600.0,
        projection.expected_makespan / 3600.0
    );
}
