//! Offline stand-in for the `rand` crate (0.8-compatible surface).
//!
//! Implements the subset of the `rand` 0.8 API that this workspace uses:
//! [`RngCore`], the [`Rng`] extension trait with `gen::<f64>()`/`gen::<u64>()`,
//! [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`]. `StdRng` here is a
//! xoshiro256++ generator seeded through SplitMix64 — statistically solid for
//! the Monte-Carlo use in `ayd-sim`, deterministic for a given seed, but *not*
//! stream-compatible with the real `StdRng` (which is ChaCha12). Swap this
//! crate for the registry version when a registry is reachable; only hardcoded
//! simulation outputs would change, not their statistics.

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from an [`RngCore`] (the subset of the
/// real `Standard` distribution that this workspace needs).
pub trait SampleStandard {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleStandard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Extension trait with the convenience sampling methods of `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard (uniform) distribution.
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators (the `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanding it deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for the real `StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_interval_samples_are_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn different_seeds_decorrelate() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }
}
