//! Offline stand-in for the real `serde` crate.
//!
//! Provides just enough surface for the workspace to compile without network
//! access: the `Serialize`/`Deserialize` *derive macros* (which expand to
//! nothing, see `vendor/serde_derive`) and marker traits of the same names so
//! that `use serde::{Deserialize, Serialize};` resolves in both the type and
//! macro namespaces, exactly as with the real crate.
//!
//! No code in the workspace calls serialisation functions (the JSON output of
//! the `reproduce` CLI is gated off), so the traits carry no methods.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`. The no-op derive never implements
/// it; nothing in this workspace requires the bound.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
