//! Offline stand-in for the `rand_distr` crate (0.4-compatible surface).
//!
//! Provides [`Distribution`] and the exponential distribution [`Exp`], sampled
//! by inversion (`-ln(1 - u) / λ`) instead of the real crate's ziggurat — the
//! distribution is identical, only the stream differs.

use rand::Rng;

/// Types that produce samples of `T` from a random source.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error returned when constructing a distribution from invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExpError {
    /// The rate `λ` was not strictly positive and finite.
    LambdaTooSmall,
}

impl std::fmt::Display for ExpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "exponential rate must be strictly positive and finite")
    }
}

impl std::error::Error for ExpError {}

/// The exponential distribution `Exp(λ)` with mean `1/λ`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exp {
    lambda: f64,
}

impl Exp {
    /// Builds the distribution, validating `λ > 0` and finite.
    pub fn new(lambda: f64) -> Result<Self, ExpError> {
        if lambda.is_finite() && lambda > 0.0 {
            Ok(Exp { lambda })
        } else {
            Err(ExpError::LambdaTooSmall)
        }
    }
}

impl Distribution<f64> for Exp {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // u ∈ [0, 1); 1 - u ∈ (0, 1] keeps the logarithm finite.
        let u: f64 = rng.gen();
        -(1.0 - u).ln() / self.lambda
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_rates() {
        assert!(Exp::new(0.0).is_err());
        assert!(Exp::new(-1.0).is_err());
        assert!(Exp::new(f64::NAN).is_err());
        assert!(Exp::new(f64::INFINITY).is_err());
    }

    #[test]
    fn mean_matches_inverse_rate() {
        let mut rng = StdRng::seed_from_u64(9);
        let d = Exp::new(0.01).unwrap();
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 100.0).abs() < 1.5, "mean={mean}");
    }

    #[test]
    fn samples_are_non_negative_and_finite() {
        let mut rng = StdRng::seed_from_u64(10);
        let d = Exp::new(3.0).unwrap();
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!(x.is_finite() && x >= 0.0);
        }
    }
}
