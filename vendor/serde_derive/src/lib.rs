//! Offline stand-in for the real `serde_derive` crate.
//!
//! The workspace builds without network access, so the registry `serde_derive`
//! is unavailable. Nothing in the workspace performs actual serialisation (the
//! JSON output of the `reproduce` CLI is gated off, see `crates/exp`), so the
//! derives only need to *compile*: they expand to nothing. Swap this crate for
//! the registry version (and drop the gate) once a registry is reachable.

use proc_macro::TokenStream;

/// No-op `Serialize` derive. Accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive. Accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
