//! Offline stand-in for the `criterion` crate (0.5-compatible surface).
//!
//! Implements the subset of the Criterion API used by the `ayd-bench` targets:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] (with
//! `sample_size` and `finish`), [`Bencher::iter`], [`black_box`] and the
//! [`criterion_group!`]/[`criterion_main!`] macros. Measurements are simple
//! wall-clock means (no resampling, no statistical analysis, no HTML
//! reports); `cargo bench` prints one line per benchmark. Swap this crate for
//! the registry version when a registry is reachable — no bench source changes
//! are needed.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimiser from deleting benchmarked
/// computations (re-export of `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Per-iteration timer handed to benchmark closures.
pub struct Bencher {
    /// Mean nanoseconds per iteration of the last `iter` call.
    last_ns_per_iter: f64,
}

impl Bencher {
    /// Times `routine` over enough iterations to obtain a stable mean, storing
    /// the result for the caller to report.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: one untimed call (also primes caches and lazy statics).
        black_box(routine());
        // Calibrate: run batches until ~50 ms of total measurement or the
        // iteration cap is reached, whichever comes first.
        let budget = Duration::from_millis(50);
        let start = Instant::now();
        let mut iters: u64 = 0;
        while start.elapsed() < budget && iters < 10_000 {
            black_box(routine());
            iters += 1;
        }
        let elapsed = start.elapsed();
        self.last_ns_per_iter = elapsed.as_nanos() as f64 / iters.max(1) as f64;
    }
}

fn format_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Benchmark driver (stand-in for `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs one named benchmark and prints its mean iteration time.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            last_ns_per_iter: 0.0,
        };
        f(&mut bencher);
        println!(
            "bench: {name:<45} {:>12}/iter",
            format_time(bencher.last_ns_per_iter)
        );
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in harness does not resample.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stand-in harness does not bound
    /// measurement time per benchmark beyond its fixed budget.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a function that runs the listed benchmark targets with a fresh
/// [`Criterion`] (same call shape as the real macro's simple form).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the `main` function of a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` forwards flags like `--bench`; the stand-in harness
            // runs everything unconditionally.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_target(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("grouped");
        group.sample_size(10);
        group.bench_function("add", |b| b.iter(|| black_box(2 + 2)));
        group.finish();
    }

    criterion_group!(benches, sample_target);

    #[test]
    fn harness_runs_end_to_end() {
        benches();
    }

    #[test]
    fn time_formatting_scales() {
        assert!(format_time(12.0).ends_with("ns"));
        assert!(format_time(12_000.0).ends_with("µs"));
        assert!(format_time(12_000_000.0).ends_with("ms"));
        assert!(format_time(12_000_000_000.0).ends_with('s'));
    }
}
