//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API used by this workspace's property
//! suites: the [`proptest!`] macro (with `#![proptest_config(..)]`), the
//! [`strategy::Strategy`] trait with `prop_map`, strategies for numeric ranges,
//! tuples and `prop::collection::vec`, plus `prop_assert!`/`prop_assert_eq!`/
//! `prop_assume!`. Unlike the real crate there is **no shrinking** and no
//! persisted failure seeds: each test draws deterministic samples from a
//! per-test seed, so failures are reproducible across runs and machines.
//!
//! The case count honours the real crate's `PROPTEST_CASES` environment
//! variable as a *cap*: the effective count is
//! `min(config.cases, PROPTEST_CASES)` when the variable is set.

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map {
                source: self,
                map: f,
            }
        }
    }

    /// Strategy adapter produced by [`Strategy::prop_map`].
    #[derive(Debug, Clone, Copy)]
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.map)(self.source.generate(rng))
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone, Copy)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    impl Strategy for core::ops::RangeInclusive<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            lo + (hi - lo) * rng.unit_f64_inclusive()
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty integer range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + (rng.next_u64() % (span + 1)) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+);)*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A);
        (A, B);
        (A, B, C);
        (A, B, C, D);
        (A, B, C, D, E);
        (A, B, C, D, E, F);
        (A, B, C, D, E, F, G);
        (A, B, C, D, E, F, G, H);
        (A, B, C, D, E, F, G, H, I);
        (A, B, C, D, E, F, G, H, I, J);
        (A, B, C, D, E, F, G, H, I, J, K);
        (A, B, C, D, E, F, G, H, I, J, K, L);
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec<T>` with a length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// Generates vectors whose length is drawn uniformly from `len` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Deterministic per-test random source and configuration.

    /// Per-test deterministic RNG (SplitMix64 stream seeded from the test name).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Derives a reproducible generator from a test's name.
        pub fn for_test(name: &str) -> Self {
            // FNV-1a over the name, mixed once so short names diverge.
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for byte in name.bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                state: hash ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform `f64` in `[0, 1]`.
        pub fn unit_f64_inclusive(&mut self) -> f64 {
            self.next_u64() as f64 / u64::MAX as f64
        }
    }

    /// Subset of proptest's `Config` that the [`crate::proptest!`] macro reads.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Config {
        /// Requested number of test cases.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases (before the `PROPTEST_CASES` cap).
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }
}

pub use test_runner::Config as ProptestConfig;

/// Effective case count: the configured count, capped by the `PROPTEST_CASES`
/// environment variable when it is set to a parsable integer.
pub fn resolve_cases(configured: u32) -> u32 {
    match std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
    {
        Some(cap) => configured.min(cap),
        None => configured,
    }
}

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Asserts a property inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*);
    };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_ne!($left, $right, $($fmt)*);
    };
}

/// Skips the current case when its sampled inputs do not satisfy a
/// precondition. Without shrinking there is nothing to retry, so the case is
/// simply abandoned (the real crate rejects and resamples).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Declares property tests: each `fn name(bindings in strategies) { body }`
/// item expands to a `#[test]` that runs the body over many sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cases = $crate::resolve_cases(($config).cases);
            let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for __case in 0..__cases {
                let _ = __case;
                $( let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng); )+
                $body
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (f64, u64)> {
        (0.0f64..10.0, 1u64..100).prop_map(|(x, n)| (x * 2.0, n + 1))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in -3.0f64..7.0, n in 5u64..50, m in 0usize..=4) {
            prop_assert!((-3.0..7.0).contains(&x));
            prop_assert!((5..50).contains(&n));
            prop_assert!(m <= 4);
        }

        #[test]
        fn mapped_tuples_flow_through((x, n) in arb_pair()) {
            prop_assert!((0.0..20.0).contains(&x));
            prop_assert!((2..=100).contains(&n));
        }

        #[test]
        fn assume_skips_cases(n in 0u64..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn vectors_have_requested_lengths(v in prop::collection::vec(0.0f64..1.0, 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
            for x in &v {
                prop_assert!((0.0..1.0).contains(x));
            }
        }
    }

    #[test]
    fn cases_cap_never_raises_the_configured_count() {
        // The ambient PROPTEST_CASES (if any) can only lower the result, so
        // only the upper bound is environment-independent.
        assert!(crate::resolve_cases(128) <= 128);
        assert!(crate::resolve_cases(0) == 0);
    }

    #[test]
    fn test_rng_is_deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::for_test("demo");
        let mut b = crate::test_runner::TestRng::for_test("demo");
        let mut c = crate::test_runner::TestRng::for_test("other");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
