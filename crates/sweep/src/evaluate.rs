//! Shared evaluation machinery: first-order optima, numerical optima and
//! simulation at both operating points.
//!
//! Every figure of the paper compares up to four series per configuration:
//!
//! * **First-order prediction** — the closed-form overhead of Theorem 2/3.
//! * **First-order simulation** — the simulated overhead at the first-order
//!   operating point `(P*, T*)`.
//! * **Optimal prediction** — the exact-model overhead at the numerically
//!   optimised operating point.
//! * **Optimal simulation** — the simulated overhead at that numerical optimum.
//!
//! [`Evaluator`] produces all four from an [`ayd_core::ExactModel`]. It is the
//! per-cell kernel of the sweep engine (see [`crate::executor`]) and used to
//! live in `ayd-exp`, which now re-exports it.

use serde::{Deserialize, Serialize};

use ayd_core::{ExactModel, FirstOrder};
use ayd_optim::{JointSearch, OptimizeOptions, SearchReport};
use ayd_sim::Simulator;

use crate::options::RunOptions;

/// Summary of a simulation batch at one operating point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimSummary {
    /// Mean simulated execution overhead across runs.
    pub mean: f64,
    /// Half-width of the 95% confidence interval of the mean.
    pub ci95: f64,
}

/// One operating point `(P, T)` together with its predicted and simulated
/// overheads.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// Processor allocation.
    pub processors: f64,
    /// Checkpointing period (seconds).
    pub period: f64,
    /// Exact-model expected overhead at this point (Proposition 1).
    pub predicted_overhead: f64,
    /// Closed-form first-order overhead (Theorem 2/3), when the point came from
    /// the first-order analysis.
    pub formula_overhead: Option<f64>,
    /// Simulated overhead, when simulation was requested.
    pub simulated: Option<SimSummary>,
}

/// First-order and numerical optima of one configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OptimumComparison {
    /// First-order optimum (absent when the closed forms do not apply:
    /// scenario 6, `α = 0`, non-Amdahl profiles).
    pub first_order: Option<OperatingPoint>,
    /// Numerical optimum of the exact model.
    pub numerical: OperatingPoint,
}

impl OptimumComparison {
    /// Relative gap between the first-order and numerical predicted overheads
    /// (`None` when no first-order optimum exists).
    pub fn overhead_gap(&self) -> Option<f64> {
        self.first_order.map(|fo| {
            (fo.predicted_overhead - self.numerical.predicted_overhead)
                / self.numerical.predicted_overhead
        })
    }
}

/// Evaluation engine: computes optima and simulates them.
#[derive(Debug, Clone, Copy)]
pub struct Evaluator {
    /// Run options (simulation fidelity, seed, whether to simulate).
    pub options: RunOptions,
    /// Search range for the processor count of the numerical optimiser.
    pub processor_range: (f64, f64),
    /// Search range for the checkpointing period of the numerical optimiser.
    pub period_range: (f64, f64),
}

impl Evaluator {
    /// Creates an evaluator with the default search ranges (processors up to
    /// 10^7, periods between 1 second and 10^9 seconds).
    pub fn new(options: RunOptions) -> Self {
        Self {
            options,
            processor_range: (1.0, 1e7),
            period_range: (1.0, 1e9),
        }
    }

    /// Overrides the processor search range (Figure 6 needs up to ~10^13).
    pub fn with_processor_range(mut self, lo: f64, hi: f64) -> Self {
        self.processor_range = (lo, hi);
        self
    }

    /// Overrides the period search range.
    pub fn with_period_range(mut self, lo: f64, hi: f64) -> Self {
        self.period_range = (lo, hi);
        self
    }

    fn joint_search(&self) -> JointSearch {
        JointSearch::new(self.processor_range, self.period_range)
            .with_options(OptimizeOptions::default(), OptimizeOptions::nested())
    }

    /// The first-order operating point of a model, when Theorem 2 or 3 applies.
    ///
    /// The processor count is the closed-form `P*` of Theorem 2/3; the period is
    /// Theorem 1's `T*_P` evaluated at that `P*` (with the full cost model). This
    /// is how a practitioner would apply the paper's formulas — and how the
    /// paper's Figure 2 reports the first-order period: the asymptotic `T*`
    /// expression of the theorems drops the cost terms that vanish with `P`
    /// (e.g. scenario 5's `b/P`), which are not always negligible at the actual
    /// `P*`. The closed-form `T*` remains available through
    /// [`ayd_core::FirstOrder::joint_optimum`].
    pub fn first_order_point(&self, model: &ExactModel) -> Option<OperatingPoint> {
        let fo = FirstOrder::new(model);
        let optimum = fo.joint_optimum().ok()?;
        let period = fo.optimal_period_for(optimum.processors).period;
        let mut point = OperatingPoint {
            processors: optimum.processors,
            period,
            predicted_overhead: model.expected_overhead(period, optimum.processors),
            formula_overhead: Some(optimum.overhead),
            simulated: None,
        };
        self.maybe_simulate(model, &mut point);
        Some(point)
    }

    /// The numerically optimal operating point of the exact model.
    pub fn numerical_point(&self, model: &ExactModel) -> OperatingPoint {
        let result = self
            .joint_search()
            .optimize(|p, t| model.expected_overhead(t, p));
        let mut point = OperatingPoint {
            processors: result.processors,
            period: result.period,
            predicted_overhead: result.value,
            formula_overhead: None,
            simulated: None,
        };
        self.maybe_simulate(model, &mut point);
        point
    }

    /// The numerically optimal period (and resulting overhead) for a fixed
    /// processor count.
    pub fn numerical_period_for(&self, model: &ExactModel, p: f64) -> (f64, f64) {
        let minimum = self
            .joint_search()
            .optimize_period(p, |pp, t| model.expected_overhead(t, pp));
        (minimum.argument, minimum.value)
    }

    /// Theorem 1's `T*_P = sqrt((V_P + C_P)/Λ_P)` as a warm start for the
    /// period search at processor count `p`. Valid for every profile family —
    /// the closed form only involves the cost and failure models — but only
    /// used as a *seed*: correctness never depends on it.
    fn period_seed(model: &ExactModel, p: f64) -> Option<f64> {
        let seed = FirstOrder::new(model).optimal_period_for(p).period;
        (seed.is_finite() && seed > 0.0).then_some(seed)
    }

    /// [`Self::numerical_point`], evaluated through the warm-started search:
    /// the outer processor search is seeded with the closed-form `P*` of
    /// Theorem 2/3 (when the profile family has one) and every inner period
    /// search with Theorem 1's `T*_P`. The result is bit-identical to
    /// [`Self::numerical_point`] — every scalar sub-search either proves it
    /// matched the reference or self-demotes to it — and `report` tallies the
    /// fast/fallback split.
    pub fn numerical_point_seeded(
        &self,
        model: &ExactModel,
        strict: bool,
        report: &mut SearchReport,
    ) -> OperatingPoint {
        let processor_seed = FirstOrder::new(model)
            .joint_optimum()
            .ok()
            .map(|o| o.processors)
            .filter(|p| p.is_finite() && *p > 0.0);
        let result = self.joint_search().optimize_seeded(
            processor_seed,
            |p| Self::period_seed(model, p),
            strict,
            report,
            |p, t| model.expected_overhead(t, p),
        );
        let mut point = OperatingPoint {
            processors: result.processors,
            period: result.period,
            predicted_overhead: result.value,
            formula_overhead: None,
            simulated: None,
        };
        self.maybe_simulate(model, &mut point);
        point
    }

    /// [`Self::numerical_period_for`] through the warm-started search (seeded
    /// with Theorem 1's `T*_P`); bit-identical by the same argument as
    /// [`Self::numerical_point_seeded`].
    pub fn numerical_period_for_seeded(
        &self,
        model: &ExactModel,
        p: f64,
        strict: bool,
        report: &mut SearchReport,
    ) -> (f64, f64) {
        let minimum = self.joint_search().optimize_period_seeded(
            p,
            Self::period_seed(model, p),
            strict,
            report,
            |pp, t| model.expected_overhead(t, pp),
        );
        (minimum.argument, minimum.value)
    }

    /// Both optima (and, if requested, their simulated overheads).
    pub fn compare(&self, model: &ExactModel) -> OptimumComparison {
        OptimumComparison {
            first_order: self.first_order_point(model),
            numerical: self.numerical_point(model),
        }
    }

    /// Simulates the overhead at an explicit operating point.
    pub fn simulate_at(&self, model: &ExactModel, t: f64, p: f64) -> SimSummary {
        let stats =
            Simulator::new(*model).simulate_overhead(t, p, &self.options.simulation_config());
        SimSummary {
            mean: stats.mean,
            ci95: stats.ci95,
        }
    }

    fn maybe_simulate(&self, model: &ExactModel, point: &mut OperatingPoint) {
        if self.options.simulate {
            point.simulated = Some(self.simulate_at(model, point.period, point.processors));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ayd_platforms::{ExperimentSetup, PlatformId, ScenarioId};

    fn evaluator(simulate: bool) -> Evaluator {
        let mut options = RunOptions::smoke();
        options.simulate = simulate;
        Evaluator::new(options)
    }

    #[test]
    fn first_order_and_numerical_agree_on_hera_scenario1() {
        // Figure 2's headline observation: the first-order optimum is very close
        // to the numerical optimum in the realistic scenarios.
        let model = ExperimentSetup::paper_default(PlatformId::Hera, ScenarioId::S1)
            .model()
            .unwrap();
        let eval = evaluator(false);
        let cmp = eval.compare(&model);
        let fo = cmp
            .first_order
            .expect("scenario 1 has a first-order optimum");
        let gap = cmp.overhead_gap().unwrap();
        assert!(gap.abs() < 0.01, "overhead gap {gap}");
        // Processor allocations agree within ~20% and overheads within 1%.
        let rel_p = (fo.processors - cmp.numerical.processors).abs() / cmp.numerical.processors;
        assert!(
            rel_p < 0.35,
            "P gap {rel_p}: fo={} num={}",
            fo.processors,
            cmp.numerical.processors
        );
        assert!(fo.predicted_overhead >= cmp.numerical.predicted_overhead - 1e-9);
    }

    #[test]
    fn scenario6_has_no_first_order_optimum() {
        let model = ExperimentSetup::paper_default(PlatformId::Hera, ScenarioId::S6)
            .model()
            .unwrap();
        let cmp = evaluator(false).compare(&model);
        assert!(cmp.first_order.is_none());
        assert!(cmp.overhead_gap().is_none());
        assert!(cmp.numerical.predicted_overhead > 0.1);
    }

    #[test]
    fn numerical_period_for_fixed_p_matches_first_order_closely() {
        let model = ExperimentSetup::paper_default(PlatformId::Hera, ScenarioId::S3)
            .model()
            .unwrap();
        let eval = evaluator(false);
        let p = 512.0;
        let (t_num, h_num) = eval.numerical_period_for(&model, p);
        let fo = ayd_core::FirstOrder::new(&model).optimal_period_for(p);
        assert!(
            (t_num - fo.period).abs() / fo.period < 0.1,
            "num={t_num} fo={}",
            fo.period
        );
        assert!(h_num <= model.expected_overhead(fo.period, p) + 1e-12);
    }

    #[test]
    fn simulation_is_attached_when_requested() {
        let model = ExperimentSetup::paper_default(PlatformId::Hera, ScenarioId::S1)
            .model()
            .unwrap();
        let with_sim = evaluator(true).first_order_point(&model).unwrap();
        let without = evaluator(false).first_order_point(&model).unwrap();
        assert!(with_sim.simulated.is_some());
        assert!(without.simulated.is_none());
        let sim = with_sim.simulated.unwrap();
        // Smoke-level simulation still lands in the right ballpark (±10%).
        assert!((sim.mean - with_sim.predicted_overhead).abs() / with_sim.predicted_overhead < 0.1);
    }

    #[test]
    fn seeded_numerical_point_is_bit_identical_across_scenarios() {
        use ayd_core::SpeedupProfile;
        let eval = evaluator(false);
        for platform in [PlatformId::Hera, PlatformId::Atlas] {
            for scenario in [ScenarioId::S1, ScenarioId::S3, ScenarioId::S6] {
                for profile in [
                    SpeedupProfile::amdahl(0.1).unwrap(),
                    SpeedupProfile::power_law(0.8).unwrap(),
                    SpeedupProfile::gustafson(0.05).unwrap(),
                    SpeedupProfile::perfectly_parallel(),
                ] {
                    let model = ayd_platforms::ExperimentSetup::paper_default(platform, scenario)
                        .with_profile(profile)
                        .model()
                        .unwrap();
                    let reference = eval.numerical_point(&model);
                    for strict in [false, true] {
                        let mut report = SearchReport::default();
                        let fast = eval.numerical_point_seeded(&model, strict, &mut report);
                        assert_eq!(
                            fast.processors.to_bits(),
                            reference.processors.to_bits(),
                            "{platform:?}/{scenario:?}/{profile:?} strict={strict}"
                        );
                        assert_eq!(fast.period.to_bits(), reference.period.to_bits());
                        assert_eq!(
                            fast.predicted_overhead.to_bits(),
                            reference.predicted_overhead.to_bits()
                        );
                        assert!(report.total() > 0);
                    }
                }
            }
        }
    }

    #[test]
    fn seeded_period_search_is_bit_identical_and_mostly_fast() {
        let eval = evaluator(false);
        let model = ExperimentSetup::paper_default(PlatformId::Hera, ScenarioId::S3)
            .model()
            .unwrap();
        for p in [64.0, 512.0, 4096.0] {
            let (t_ref, h_ref) = eval.numerical_period_for(&model, p);
            let mut report = SearchReport::default();
            let (t_fast, h_fast) = eval.numerical_period_for_seeded(&model, p, true, &mut report);
            assert_eq!(t_fast.to_bits(), t_ref.to_bits(), "P={p}");
            assert_eq!(h_fast.to_bits(), h_ref.to_bits(), "P={p}");
            // Theorem 1 lands within a grid cell of the optimum: the single
            // inner search must be answered by the fast path, and the Brent
            // refinement it ran is reflected in the iteration tally.
            assert_eq!((report.fast, report.fallback), (1, 0), "P={p}");
            assert!(report.brent_iterations > 0, "P={p}: {report:?}");
            assert_eq!(report.fallback_reasons, [0; 4], "P={p}");
        }
    }

    #[test]
    fn custom_ranges_are_respected() {
        let model = ExperimentSetup::paper_default(PlatformId::Hera, ScenarioId::S1)
            .model()
            .unwrap();
        let eval = evaluator(false)
            .with_processor_range(1.0, 100.0)
            .with_period_range(10.0, 1e6);
        let point = eval.numerical_point(&model);
        assert!(point.processors <= 100.0 + 1e-6);
        assert!(point.period <= 1e6 + 1e-3);
    }
}
