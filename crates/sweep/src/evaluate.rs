//! Shared evaluation machinery: first-order optima, numerical optima and
//! simulation at both operating points.
//!
//! Every figure of the paper compares up to four series per configuration:
//!
//! * **First-order prediction** — the closed-form overhead of Theorem 2/3.
//! * **First-order simulation** — the simulated overhead at the first-order
//!   operating point `(P*, T*)`.
//! * **Optimal prediction** — the exact-model overhead at the numerically
//!   optimised operating point.
//! * **Optimal simulation** — the simulated overhead at that numerical optimum.
//!
//! [`Evaluator`] produces all four from an [`ayd_core::ExactModel`]. It is the
//! per-cell kernel of the sweep engine (see [`crate::executor`]) and used to
//! live in `ayd-exp`, which now re-exports it.

use serde::{Deserialize, Serialize};

use ayd_core::{ExactModel, FirstOrder};
use ayd_optim::{JointSearch, OptimizeOptions};
use ayd_sim::Simulator;

use crate::options::RunOptions;

/// Summary of a simulation batch at one operating point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimSummary {
    /// Mean simulated execution overhead across runs.
    pub mean: f64,
    /// Half-width of the 95% confidence interval of the mean.
    pub ci95: f64,
}

/// One operating point `(P, T)` together with its predicted and simulated
/// overheads.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// Processor allocation.
    pub processors: f64,
    /// Checkpointing period (seconds).
    pub period: f64,
    /// Exact-model expected overhead at this point (Proposition 1).
    pub predicted_overhead: f64,
    /// Closed-form first-order overhead (Theorem 2/3), when the point came from
    /// the first-order analysis.
    pub formula_overhead: Option<f64>,
    /// Simulated overhead, when simulation was requested.
    pub simulated: Option<SimSummary>,
}

/// First-order and numerical optima of one configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OptimumComparison {
    /// First-order optimum (absent when the closed forms do not apply:
    /// scenario 6, `α = 0`, non-Amdahl profiles).
    pub first_order: Option<OperatingPoint>,
    /// Numerical optimum of the exact model.
    pub numerical: OperatingPoint,
}

impl OptimumComparison {
    /// Relative gap between the first-order and numerical predicted overheads
    /// (`None` when no first-order optimum exists).
    pub fn overhead_gap(&self) -> Option<f64> {
        self.first_order.map(|fo| {
            (fo.predicted_overhead - self.numerical.predicted_overhead)
                / self.numerical.predicted_overhead
        })
    }
}

/// Evaluation engine: computes optima and simulates them.
#[derive(Debug, Clone, Copy)]
pub struct Evaluator {
    /// Run options (simulation fidelity, seed, whether to simulate).
    pub options: RunOptions,
    /// Search range for the processor count of the numerical optimiser.
    pub processor_range: (f64, f64),
    /// Search range for the checkpointing period of the numerical optimiser.
    pub period_range: (f64, f64),
}

impl Evaluator {
    /// Creates an evaluator with the default search ranges (processors up to
    /// 10^7, periods between 1 second and 10^9 seconds).
    pub fn new(options: RunOptions) -> Self {
        Self {
            options,
            processor_range: (1.0, 1e7),
            period_range: (1.0, 1e9),
        }
    }

    /// Overrides the processor search range (Figure 6 needs up to ~10^13).
    pub fn with_processor_range(mut self, lo: f64, hi: f64) -> Self {
        self.processor_range = (lo, hi);
        self
    }

    /// Overrides the period search range.
    pub fn with_period_range(mut self, lo: f64, hi: f64) -> Self {
        self.period_range = (lo, hi);
        self
    }

    fn joint_search(&self) -> JointSearch {
        JointSearch::new(self.processor_range, self.period_range)
            .with_options(OptimizeOptions::default(), OptimizeOptions::nested())
    }

    /// The first-order operating point of a model, when Theorem 2 or 3 applies.
    ///
    /// The processor count is the closed-form `P*` of Theorem 2/3; the period is
    /// Theorem 1's `T*_P` evaluated at that `P*` (with the full cost model). This
    /// is how a practitioner would apply the paper's formulas — and how the
    /// paper's Figure 2 reports the first-order period: the asymptotic `T*`
    /// expression of the theorems drops the cost terms that vanish with `P`
    /// (e.g. scenario 5's `b/P`), which are not always negligible at the actual
    /// `P*`. The closed-form `T*` remains available through
    /// [`ayd_core::FirstOrder::joint_optimum`].
    pub fn first_order_point(&self, model: &ExactModel) -> Option<OperatingPoint> {
        let fo = FirstOrder::new(model);
        let optimum = fo.joint_optimum().ok()?;
        let period = fo.optimal_period_for(optimum.processors).period;
        let mut point = OperatingPoint {
            processors: optimum.processors,
            period,
            predicted_overhead: model.expected_overhead(period, optimum.processors),
            formula_overhead: Some(optimum.overhead),
            simulated: None,
        };
        self.maybe_simulate(model, &mut point);
        Some(point)
    }

    /// The numerically optimal operating point of the exact model.
    pub fn numerical_point(&self, model: &ExactModel) -> OperatingPoint {
        let result = self
            .joint_search()
            .optimize(|p, t| model.expected_overhead(t, p));
        let mut point = OperatingPoint {
            processors: result.processors,
            period: result.period,
            predicted_overhead: result.value,
            formula_overhead: None,
            simulated: None,
        };
        self.maybe_simulate(model, &mut point);
        point
    }

    /// The numerically optimal period (and resulting overhead) for a fixed
    /// processor count.
    pub fn numerical_period_for(&self, model: &ExactModel, p: f64) -> (f64, f64) {
        let minimum = self
            .joint_search()
            .optimize_period(p, |pp, t| model.expected_overhead(t, pp));
        (minimum.argument, minimum.value)
    }

    /// Both optima (and, if requested, their simulated overheads).
    pub fn compare(&self, model: &ExactModel) -> OptimumComparison {
        OptimumComparison {
            first_order: self.first_order_point(model),
            numerical: self.numerical_point(model),
        }
    }

    /// Simulates the overhead at an explicit operating point.
    pub fn simulate_at(&self, model: &ExactModel, t: f64, p: f64) -> SimSummary {
        let stats =
            Simulator::new(*model).simulate_overhead(t, p, &self.options.simulation_config());
        SimSummary {
            mean: stats.mean,
            ci95: stats.ci95,
        }
    }

    fn maybe_simulate(&self, model: &ExactModel, point: &mut OperatingPoint) {
        if self.options.simulate {
            point.simulated = Some(self.simulate_at(model, point.period, point.processors));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ayd_platforms::{ExperimentSetup, PlatformId, ScenarioId};

    fn evaluator(simulate: bool) -> Evaluator {
        let mut options = RunOptions::smoke();
        options.simulate = simulate;
        Evaluator::new(options)
    }

    #[test]
    fn first_order_and_numerical_agree_on_hera_scenario1() {
        // Figure 2's headline observation: the first-order optimum is very close
        // to the numerical optimum in the realistic scenarios.
        let model = ExperimentSetup::paper_default(PlatformId::Hera, ScenarioId::S1)
            .model()
            .unwrap();
        let eval = evaluator(false);
        let cmp = eval.compare(&model);
        let fo = cmp
            .first_order
            .expect("scenario 1 has a first-order optimum");
        let gap = cmp.overhead_gap().unwrap();
        assert!(gap.abs() < 0.01, "overhead gap {gap}");
        // Processor allocations agree within ~20% and overheads within 1%.
        let rel_p = (fo.processors - cmp.numerical.processors).abs() / cmp.numerical.processors;
        assert!(
            rel_p < 0.35,
            "P gap {rel_p}: fo={} num={}",
            fo.processors,
            cmp.numerical.processors
        );
        assert!(fo.predicted_overhead >= cmp.numerical.predicted_overhead - 1e-9);
    }

    #[test]
    fn scenario6_has_no_first_order_optimum() {
        let model = ExperimentSetup::paper_default(PlatformId::Hera, ScenarioId::S6)
            .model()
            .unwrap();
        let cmp = evaluator(false).compare(&model);
        assert!(cmp.first_order.is_none());
        assert!(cmp.overhead_gap().is_none());
        assert!(cmp.numerical.predicted_overhead > 0.1);
    }

    #[test]
    fn numerical_period_for_fixed_p_matches_first_order_closely() {
        let model = ExperimentSetup::paper_default(PlatformId::Hera, ScenarioId::S3)
            .model()
            .unwrap();
        let eval = evaluator(false);
        let p = 512.0;
        let (t_num, h_num) = eval.numerical_period_for(&model, p);
        let fo = ayd_core::FirstOrder::new(&model).optimal_period_for(p);
        assert!(
            (t_num - fo.period).abs() / fo.period < 0.1,
            "num={t_num} fo={}",
            fo.period
        );
        assert!(h_num <= model.expected_overhead(fo.period, p) + 1e-12);
    }

    #[test]
    fn simulation_is_attached_when_requested() {
        let model = ExperimentSetup::paper_default(PlatformId::Hera, ScenarioId::S1)
            .model()
            .unwrap();
        let with_sim = evaluator(true).first_order_point(&model).unwrap();
        let without = evaluator(false).first_order_point(&model).unwrap();
        assert!(with_sim.simulated.is_some());
        assert!(without.simulated.is_none());
        let sim = with_sim.simulated.unwrap();
        // Smoke-level simulation still lands in the right ballpark (±10%).
        assert!((sim.mean - with_sim.predicted_overhead).abs() / with_sim.predicted_overhead < 0.1);
    }

    #[test]
    fn custom_ranges_are_respected() {
        let model = ExperimentSetup::paper_default(PlatformId::Hera, ScenarioId::S1)
            .model()
            .unwrap();
        let eval = evaluator(false)
            .with_processor_range(1.0, 100.0)
            .with_period_range(10.0, 1e6);
        let point = eval.numerical_point(&model);
        assert!(point.processors <= 100.0 + 1e-6);
        assert!(point.period <= 1e6 + 1e-3);
    }
}
