//! Sharded, resumable sweep execution and the deterministic shard merge.
//!
//! A [`ShardSpec`] `i/N` partitions any [`ScenarioGrid`] by cell index:
//! shard `i` owns exactly the cells whose global index `g` satisfies
//! `g % N == i`. Because every cell's seed derives from its *global* index
//! (see [`crate::executor::cell_seed`]) and every cell's analytic evaluation
//! depends only on the cell itself, a shard computes bit-identical rows to
//! the same cells of an unsharded run — for any shard count, worker-thread
//! count and cache setting. [`merge_parts`] re-assembles the N shard CSVs by
//! global cell id into bytes **identical** to the unsharded sweep CSV.
//!
//! [`run_shard_to_files`] executes one shard against a CSV file plus an
//! atomically-updated sidecar manifest (see [`crate::manifest`]). Because the
//! executor emits rows in cell order, the CSV on disk is always the header
//! plus an in-order prefix of the shard's rows; an interrupted run — torn
//! final line and all — can therefore be resumed by truncating to the last
//! complete row and evaluating only the remaining cells.

use std::fmt;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::AtomicBool;

use crate::executor::{SweepExecutor, SweepResults, SweepRow};
use crate::grid::{ScenarioGrid, SweepCell};
use crate::manifest::{manifest_path, SweepManifest};
use crate::sink::{csv_line, SweepSink, CSV_HEADER};

/// One shard of a sweep: `index` of `count`, partitioning cells by
/// `global_index % count == index`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShardSpec {
    /// Zero-based shard index (`< count`).
    pub index: usize,
    /// Total number of shards (`>= 1`).
    pub count: usize,
}

/// Upper bound on the shard count: far beyond any useful fan-out, but low
/// enough that a typo (`--shard 3/30000000`) is caught instead of producing
/// millions of empty shard files.
pub const MAX_SHARDS: usize = 4096;

impl ShardSpec {
    /// The trivial 0/1 shard covering the whole grid.
    pub const WHOLE: ShardSpec = ShardSpec { index: 0, count: 1 };

    /// Validates and builds a shard spec.
    pub fn new(index: usize, count: usize) -> Result<Self, ShardError> {
        if count == 0 || count > MAX_SHARDS {
            return Err(ShardError::Spec(format!(
                "shard count must be in 1..={MAX_SHARDS}, got {count}"
            )));
        }
        if index >= count {
            return Err(ShardError::Spec(format!(
                "shard index {index} out of range for {count} shards"
            )));
        }
        Ok(Self { index, count })
    }

    /// Parses the `i/N` CLI syntax (e.g. `0/4`).
    pub fn parse(text: &str) -> Result<Self, ShardError> {
        let bad = || ShardError::Spec(format!("shard spec must be `i/N` (e.g. 0/4), got `{text}`"));
        let (index, count) = text.split_once('/').ok_or_else(bad)?;
        Self::new(
            index.trim().parse().map_err(|_| bad())?,
            count.trim().parse().map_err(|_| bad())?,
        )
    }

    /// True when this shard owns the cell with the given global index.
    pub fn owns(&self, cell_index: usize) -> bool {
        cell_index % self.count == self.index
    }

    /// Number of cells this shard owns out of `total` grid cells.
    pub fn cell_count(&self, total: usize) -> usize {
        total / self.count + usize::from(self.index < total % self.count)
    }

    /// Global cell index of this shard's `k`-th row.
    pub fn global_index(&self, k: usize) -> usize {
        self.index + k * self.count
    }
}

impl fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// Errors of shard parsing, manifest handling, resuming and merging.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardError {
    /// Malformed `i/N` spec or out-of-range shard coordinates.
    Spec(String),
    /// Malformed or inconsistent manifest content.
    Manifest(String),
    /// A resume or merge input does not belong to the sweep at hand.
    Mismatch(String),
    /// Filesystem failure (reading, writing or renaming shard files).
    Io(String),
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::Spec(m) => write!(f, "invalid shard spec: {m}"),
            ShardError::Manifest(m) => write!(f, "invalid manifest: {m}"),
            ShardError::Mismatch(m) => write!(f, "shard mismatch: {m}"),
            ShardError::Io(m) => write!(f, "shard i/o: {m}"),
        }
    }
}

impl std::error::Error for ShardError {}

/// One merge input: a shard's manifest plus its CSV text.
#[derive(Debug, Clone)]
pub struct ShardPart {
    /// The shard's sidecar manifest.
    pub manifest: SweepManifest,
    /// The shard's CSV (header + rows, exactly as written by the shard run).
    pub csv: String,
}

impl ShardPart {
    /// Loads a merge input from a shard CSV path and its sidecar manifest.
    pub fn load(csv_path: &Path) -> Result<Self, ShardError> {
        let manifest = SweepManifest::read(&manifest_path(csv_path))?;
        let csv = std::fs::read_to_string(csv_path)
            .map_err(|e| ShardError::Io(format!("read {}: {e}", csv_path.display())))?;
        Ok(Self { manifest, csv })
    }
}

/// Merges complete shard outputs into the unsharded sweep CSV.
///
/// Validates that the parts all belong to one sweep (fingerprints agree),
/// that together they form a complete partition (`count` parts with indices
/// `0..count`, every one fully materialised, headers intact), then re-sorts
/// the rows by global cell id. The result is **byte-identical** to the CSV an
/// unsharded run over the same grid and options would produce.
pub fn merge_parts(parts: &[ShardPart]) -> Result<String, ShardError> {
    let first = parts
        .first()
        .ok_or_else(|| ShardError::Mismatch("no shard inputs to merge".to_string()))?;
    let count = first.manifest.shard.count;
    if parts.len() != count {
        return Err(ShardError::Mismatch(format!(
            "expected {count} shard inputs (shard count of the first manifest), got {}",
            parts.len()
        )));
    }
    let mut seen = vec![false; count];
    let mut rows: Vec<(usize, &str)> = Vec::with_capacity(first.manifest.grid_cells);
    for part in parts {
        let manifest = &part.manifest;
        if !manifest.same_sweep(&first.manifest) {
            return Err(ShardError::Mismatch(format!(
                "shard {} belongs to a different sweep (grid {:016x}/options {:016x} \
                 vs grid {:016x}/options {:016x})",
                manifest.shard,
                manifest.grid_fingerprint,
                manifest.options_fingerprint,
                first.manifest.grid_fingerprint,
                first.manifest.options_fingerprint,
            )));
        }
        if !manifest.is_complete() {
            return Err(ShardError::Mismatch(format!(
                "shard {} is incomplete ({}/{} rows); resume it before merging",
                manifest.shard, manifest.completed, manifest.shard_cells
            )));
        }
        if std::mem::replace(&mut seen[manifest.shard.index], true) {
            return Err(ShardError::Mismatch(format!(
                "duplicate input for shard {}",
                manifest.shard
            )));
        }
        let mut lines = part.csv.lines();
        if lines.next() != Some(CSV_HEADER) {
            return Err(ShardError::Mismatch(format!(
                "shard {} CSV does not start with the canonical header",
                manifest.shard
            )));
        }
        let mut row_count = 0;
        for (k, line) in lines.enumerate() {
            rows.push((manifest.shard.global_index(k), line));
            row_count += 1;
        }
        if row_count != manifest.shard_cells {
            return Err(ShardError::Mismatch(format!(
                "shard {} CSV has {row_count} rows but the manifest promises {}",
                manifest.shard, manifest.shard_cells
            )));
        }
    }
    rows.sort_unstable_by_key(|&(id, _)| id);
    debug_assert!(rows.iter().enumerate().all(|(i, &(id, _))| i == id));
    let mut out = String::with_capacity(
        CSV_HEADER.len() + 1 + rows.iter().map(|(_, l)| l.len() + 1).sum::<usize>(),
    );
    out.push_str(CSV_HEADER);
    out.push('\n');
    for (_, line) in rows {
        out.push_str(line);
        out.push('\n');
    }
    Ok(out)
}

/// Outcome of [`run_shard_to_files`].
#[derive(Debug)]
pub struct ShardRunReport {
    /// The shard that ran.
    pub shard: ShardSpec,
    /// Cells owned by the shard.
    pub shard_cells: usize,
    /// Rows found already materialised and skipped (`--resume`).
    pub resumed_rows: usize,
    /// Rows newly evaluated by this run (with the executor's cache counters).
    pub results: SweepResults,
    /// True when the run was cancelled before materialising every cell.
    pub cancelled: bool,
}

impl ShardRunReport {
    /// True when the shard's CSV now contains every row.
    pub fn is_complete(&self) -> bool {
        self.resumed_rows + self.results.rows.len() >= self.shard_cells
    }
}

/// Streaming sink of a shard run: appends each row to the CSV file, then
/// rewrites the sidecar manifest atomically. The manifest therefore never
/// claims more rows than the CSV holds; after a kill the CSV may be at most
/// one torn row ahead, which resume truncates away.
///
/// The `SweepSink` trait cannot return errors, so a filesystem failure
/// (disk full, volume gone read-only) is *recorded*, the shared stop flag is
/// raised to end the sweep cooperatively, and further rows are dropped;
/// [`run_shard_to_files`] surfaces the recorded error as a clean
/// [`ShardError::Io`] instead of panicking mid-run. The files on disk stay
/// resumable either way (the manifest is never ahead of the CSV).
struct ShardFileSink<'a> {
    file: std::fs::File,
    manifest: SweepManifest,
    manifest_file: std::path::PathBuf,
    stop: &'a AtomicBool,
    error: Option<ShardError>,
}

impl ShardFileSink<'_> {
    fn try_row(&mut self, row: &SweepRow) -> Result<(), ShardError> {
        writeln!(self.file, "{}", csv_line(row))
            .and_then(|()| self.file.flush())
            .map_err(|e| ShardError::Io(format!("append shard row: {e}")))?;
        self.manifest.completed += 1;
        self.manifest.write_atomic(&self.manifest_file)
    }
}

impl SweepSink for ShardFileSink<'_> {
    fn on_row(&mut self, row: &SweepRow) {
        if self.error.is_some() {
            return;
        }
        if let Err(error) = self.try_row(row) {
            self.error = Some(error);
            self.stop.store(true, std::sync::atomic::Ordering::Relaxed);
        }
    }

    fn finish(&mut self, _results: &SweepResults) {
        if self.error.is_none() {
            if let Err(e) = self.file.flush() {
                self.error = Some(ShardError::Io(format!("flush shard CSV: {e}")));
            }
        }
    }
}

/// Number of complete (newline-terminated) data rows in shard CSV `text`,
/// after validating the header. Returns the byte length of the valid prefix
/// (header + complete rows) alongside the row count, so a torn final row can
/// be truncated away on resume.
fn complete_rows(text: &str) -> Result<(usize, usize), ShardError> {
    let header_len = CSV_HEADER.len() + 1;
    // Byte-wise comparison: a clobbered file may put a multibyte character
    // across the header boundary, where a str slice would panic.
    let bytes = text.as_bytes();
    if bytes.len() < header_len
        || &bytes[..CSV_HEADER.len()] != CSV_HEADER.as_bytes()
        || bytes[CSV_HEADER.len()] != b'\n'
    {
        return Err(ShardError::Mismatch(
            "existing CSV does not start with the canonical sweep header".to_string(),
        ));
    }
    let mut rows = 0;
    let mut end = header_len;
    for line in text[header_len..].split_inclusive('\n') {
        if !line.ends_with('\n') {
            break; // torn final row from an interrupted write
        }
        rows += 1;
        end += line.len();
    }
    Ok((rows, end))
}

/// Runs one shard of `grid` into `csv_path` (+ its `.manifest` sidecar).
///
/// With `resume`, an existing CSV/manifest pair is validated against the
/// grid, options and shard (fingerprints must match), truncated to its last
/// complete row, and only the remaining cells are evaluated — finished cells
/// are **never recomputed**. Without `resume`, existing files are overwritten.
/// `cancel` (when given) cooperatively stops the run between cells, leaving
/// resumable files behind.
pub fn run_shard_to_files(
    executor: &SweepExecutor,
    grid: &ScenarioGrid,
    shard: ShardSpec,
    csv_path: &Path,
    resume: bool,
    cancel: Option<&AtomicBool>,
) -> Result<ShardRunReport, ShardError> {
    let cells: Vec<SweepCell> = grid.shard_cells(shard);
    let manifest_file = manifest_path(csv_path);
    let mut manifest = SweepManifest::new(grid, &executor.options, shard);

    let completed = if resume && csv_path.exists() {
        let text = std::fs::read_to_string(csv_path)
            .map_err(|e| ShardError::Io(format!("read {}: {e}", csv_path.display())))?;
        if format!("{CSV_HEADER}\n")
            .as_bytes()
            .starts_with(text.as_bytes())
        {
            // The CSV holds zero data rows — at most a (possibly torn) header,
            // from a run killed before its first row. Resume degenerates to a
            // fresh start: rewrite the header and evaluate every cell. The
            // manifest may not exist yet (the kill can land between the two
            // file creations), but one that *does* read back and describes a
            // different sweep still refuses, like any other resume.
            if let Ok(existing) = SweepManifest::read(&manifest_file) {
                if !existing.same_sweep(&manifest) || existing.shard != shard {
                    return Err(ShardError::Mismatch(format!(
                        "cannot resume: {} describes {existing}, expected shard {shard} of this sweep",
                        manifest_file.display()
                    )));
                }
            }
            std::fs::write(csv_path, format!("{CSV_HEADER}\n"))
                .map_err(|e| ShardError::Io(format!("write {}: {e}", csv_path.display())))?;
            0
        } else {
            let existing = SweepManifest::read(&manifest_file)?;
            if !existing.same_sweep(&manifest) || existing.shard != shard {
                return Err(ShardError::Mismatch(format!(
                    "cannot resume: {} describes {existing}, expected shard {shard} of this sweep",
                    manifest_file.display()
                )));
            }
            let (csv_rows, valid_len) = complete_rows(&text)?;
            // Trust whichever of the manifest and the CSV is *behind*: the CSV
            // may hold a torn row the manifest never acknowledged, and an
            // unsynced manifest may trail the CSV by a row.
            let completed = existing.completed.min(csv_rows).min(cells.len());
            let file = std::fs::OpenOptions::new()
                .write(true)
                .open(csv_path)
                .map_err(|e| ShardError::Io(format!("open {}: {e}", csv_path.display())))?;
            let keep = (CSV_HEADER.len() + 1)
                + text[CSV_HEADER.len() + 1..valid_len]
                    .split_inclusive('\n')
                    .take(completed)
                    .map(str::len)
                    .sum::<usize>();
            file.set_len(keep as u64)
                .map_err(|e| ShardError::Io(format!("truncate {}: {e}", csv_path.display())))?;
            completed
        }
    } else {
        std::fs::write(csv_path, format!("{CSV_HEADER}\n"))
            .map_err(|e| ShardError::Io(format!("write {}: {e}", csv_path.display())))?;
        0
    };

    manifest.completed = completed;
    manifest.write_atomic(&manifest_file)?;
    let file = std::fs::OpenOptions::new()
        .append(true)
        .open(csv_path)
        .map_err(|e| ShardError::Io(format!("open {}: {e}", csv_path.display())))?;
    // One flag serves both the caller's cancellation and the sink's own
    // abort-on-I/O-failure (the executor takes a single stop signal).
    let own_stop = AtomicBool::new(false);
    let stop = cancel.unwrap_or(&own_stop);
    let mut sink = ShardFileSink {
        file,
        manifest,
        manifest_file,
        stop,
        error: None,
    };
    // The shard span wraps the executor run, so its nested sweep/chunk spans
    // parent under it; resumed rows show up as the gap between `cells` and
    // the inner sweep's `rows` field.
    let mut shard_span = ayd_obs::span("shard");
    if shard_span.is_recording() {
        shard_span.field_u64("shard_index", shard.index as u64);
        shard_span.field_u64("shard_count", shard.count as u64);
        shard_span.field_u64("cells", cells.len() as u64);
        shard_span.field_u64("resumed_rows", completed as u64);
    }
    let results = executor.run_cells_controlled(&cells[completed..], &mut sink, Some(stop), None);
    shard_span.finish();
    if let Some(error) = sink.error {
        return Err(error);
    }
    let cancelled = completed + results.rows.len() < cells.len();
    Ok(ShardRunReport {
        shard,
        shard_cells: cells.len(),
        resumed_rows: completed,
        results,
        cancelled,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::SweepOptions;
    use crate::grid::ProcessorAxis;
    use crate::options::RunOptions;
    use ayd_platforms::ScenarioId;
    use std::sync::atomic::Ordering;

    fn options() -> SweepOptions {
        SweepOptions::new(RunOptions {
            simulate: false,
            ..RunOptions::smoke()
        })
    }

    fn grid() -> ScenarioGrid {
        ScenarioGrid::builder()
            .scenarios(&ScenarioId::ALL)
            .lambda_multipliers(&[1.0, 10.0])
            .processors(ProcessorAxis::Fixed(vec![256.0, 1024.0]))
            .build()
            .unwrap()
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("ayd-shard-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn shard_spec_parses_and_partitions() {
        let spec = ShardSpec::parse("2/5").unwrap();
        assert_eq!(spec, ShardSpec { index: 2, count: 5 });
        assert_eq!(spec.to_string(), "2/5");
        assert!(spec.owns(2) && spec.owns(7) && !spec.owns(3));
        assert_eq!(spec.cell_count(12), 2);
        assert_eq!(spec.cell_count(13), 3);
        assert_eq!(spec.global_index(2), 12);
        for bad in ["", "3", "a/b", "5/5", "1/0", "0/999999", "-1/2"] {
            assert!(ShardSpec::parse(bad).is_err(), "`{bad}` should not parse");
        }
        // Every cell belongs to exactly one shard, and counts add up.
        for count in 1..=8usize {
            let total = 23;
            let mut owned = 0;
            for g in 0..total {
                let owners = (0..count)
                    .filter(|&i| ShardSpec::new(i, count).unwrap().owns(g))
                    .count();
                assert_eq!(owners, 1);
            }
            for i in 0..count {
                owned += ShardSpec::new(i, count).unwrap().cell_count(total);
            }
            assert_eq!(owned, total);
        }
    }

    #[test]
    fn merged_shards_are_byte_identical_to_the_unsharded_sweep() {
        let grid = grid();
        let options = options();
        let executor = SweepExecutor::new(options);
        let unsharded = executor.run(&grid).to_csv();
        for count in [1usize, 2, 3, 4] {
            let parts: Vec<ShardPart> = (0..count)
                .map(|index| {
                    let shard = ShardSpec::new(index, count).unwrap();
                    let results = executor.run_cells(&grid.shard_cells(shard));
                    ShardPart {
                        manifest: SweepManifest::complete(&grid, &options, shard),
                        csv: results.to_csv(),
                    }
                })
                .collect();
            assert_eq!(merge_parts(&parts).unwrap(), unsharded, "count={count}");
        }
    }

    #[test]
    fn merge_rejects_incomplete_foreign_and_duplicate_parts() {
        let grid = grid();
        let options = options();
        let executor = SweepExecutor::new(options);
        let part = |index: usize, count: usize| {
            let shard = ShardSpec::new(index, count).unwrap();
            ShardPart {
                manifest: SweepManifest::complete(&grid, &options, shard),
                csv: executor.run_cells(&grid.shard_cells(shard)).to_csv(),
            }
        };
        assert!(merge_parts(&[]).is_err());
        // Wrong part count for the declared shard count.
        assert!(merge_parts(&[part(0, 2)]).is_err());
        // Duplicate shard indices.
        assert!(merge_parts(&[part(0, 2), part(0, 2)]).is_err());
        // Incomplete shard.
        let mut torn = part(0, 2);
        torn.manifest.completed -= 1;
        assert!(merge_parts(&[torn, part(1, 2)]).is_err());
        // A shard of a different sweep (different seed → different options).
        let reseeded = SweepOptions::new(RunOptions {
            seed: 99,
            simulate: false,
            ..RunOptions::smoke()
        });
        let mut foreign = part(0, 2);
        foreign.manifest = SweepManifest::complete(&grid, &reseeded, ShardSpec::new(0, 2).unwrap());
        assert!(merge_parts(&[foreign, part(1, 2)]).is_err());
        // A CSV whose rows do not match its manifest's count.
        let mut short = part(0, 2);
        short.csv = short.csv.lines().take(3).collect::<Vec<_>>().join("\n") + "\n";
        assert!(merge_parts(&[short, part(1, 2)]).is_err());
    }

    #[test]
    fn file_runs_produce_resumable_artifacts() {
        let dir = temp_dir("files");
        let grid = grid();
        let executor = SweepExecutor::new(options());
        let csv_path = dir.join("shard-1-of-3.csv");
        let shard = ShardSpec::new(1, 3).unwrap();
        let report = run_shard_to_files(&executor, &grid, shard, &csv_path, false, None).unwrap();
        assert!(report.is_complete() && !report.cancelled);
        assert_eq!(report.resumed_rows, 0);
        assert_eq!(report.results.rows.len(), shard.cell_count(grid.len()));
        let manifest = SweepManifest::read(&manifest_path(&csv_path)).unwrap();
        assert!(manifest.is_complete());
        // The file bytes match the in-memory run of the same cells.
        let text = std::fs::read_to_string(&csv_path).unwrap();
        assert_eq!(text, executor.run_cells(&grid.shard_cells(shard)).to_csv());
        // A no-op resume recomputes nothing.
        let again = run_shard_to_files(&executor, &grid, shard, &csv_path, true, None).unwrap();
        assert_eq!(again.resumed_rows, shard.cell_count(grid.len()));
        assert!(again.results.rows.is_empty());
        assert_eq!(std::fs::read_to_string(&csv_path).unwrap(), text);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn killed_mid_run_resume_completes_without_recomputing_finished_cells() {
        // The "gated sink" interruption: cancel the shard run after the first
        // rows land, then resume. The resume must (a) skip every materialised
        // cell, (b) complete the shard, (c) end with bytes identical to an
        // uninterrupted run.
        let dir = temp_dir("resume");
        let grid = grid();
        let executor = SweepExecutor::new(options().with_threads(2));
        let shard = ShardSpec::new(0, 2).unwrap();
        let csv_path = dir.join("shard-0-of-2.csv");
        let manifest_file = manifest_path(&csv_path);

        let cancel = AtomicBool::new(false);
        let interrupted = std::thread::scope(|scope| {
            let handle = scope.spawn(|| {
                run_shard_to_files(&executor, &grid, shard, &csv_path, false, Some(&cancel))
                    .unwrap()
            });
            // Wait (via the atomically-written manifest) for real progress,
            // then kill the run cooperatively.
            loop {
                if let Ok(manifest) = SweepManifest::read(&manifest_file) {
                    if manifest.completed >= 1 {
                        break;
                    }
                }
                std::thread::yield_now();
            }
            cancel.store(true, Ordering::Relaxed);
            handle.join().unwrap()
        });
        // (The scheduler may have drained every cell before the flag landed;
        // in the common case the run really was interrupted.)
        let done_early = interrupted.resumed_rows + interrupted.results.rows.len();
        assert!(done_early >= 1);
        assert_eq!(
            interrupted.cancelled,
            done_early < shard.cell_count(grid.len())
        );

        // Simulate the torn final row a hard kill can leave behind.
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(&csv_path)
            .unwrap();
        write!(file, "Hera,1,0.1,amdahl,0.1,1e-8").unwrap();
        drop(file);

        let resumed = run_shard_to_files(&executor, &grid, shard, &csv_path, true, None).unwrap();
        assert!(resumed.is_complete() && !resumed.cancelled);
        assert_eq!(
            resumed.resumed_rows, done_early,
            "finished cells recomputed"
        );
        assert_eq!(
            resumed.results.rows.len(),
            shard.cell_count(grid.len()) - done_early
        );
        let text = std::fs::read_to_string(&csv_path).unwrap();
        assert_eq!(text, executor.run_cells(&grid.shard_cells(shard)).to_csv());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn header_only_csv_resumes_as_a_fresh_start() {
        // A run killed before its first row leaves a CSV holding exactly the
        // header (zero data rows) — possibly before the manifest was ever
        // created. Resuming such a shard must behave like a fresh start, not
        // error out or mis-count rows.
        let dir = temp_dir("header-only");
        let grid = grid();
        let executor = SweepExecutor::new(options().with_threads(2));
        let shard = ShardSpec::new(0, 2).unwrap();
        let expected = executor.run_cells(&grid.shard_cells(shard)).to_csv();

        // Exactly the header, no manifest sidecar at all.
        let csv_path = dir.join("shard.csv");
        std::fs::write(&csv_path, format!("{CSV_HEADER}\n")).unwrap();
        let report = run_shard_to_files(&executor, &grid, shard, &csv_path, true, None).unwrap();
        assert!(report.is_complete());
        assert_eq!(report.resumed_rows, 0);
        assert_eq!(report.results.rows.len(), shard.cell_count(grid.len()));
        assert_eq!(std::fs::read_to_string(&csv_path).unwrap(), expected);

        // A header torn mid-write (hard kill during the very first write):
        // still a fresh start, with the header repaired.
        let torn_path = dir.join("torn-header.csv");
        std::fs::write(&torn_path, &CSV_HEADER[..CSV_HEADER.len() / 2]).unwrap();
        let report = run_shard_to_files(&executor, &grid, shard, &torn_path, true, None).unwrap();
        assert!(report.is_complete());
        assert_eq!(report.resumed_rows, 0);
        assert_eq!(std::fs::read_to_string(&torn_path).unwrap(), expected);

        // But a header-only CSV whose sidecar manifest describes a *different*
        // sweep still refuses, like any other resume.
        let foreign_path = dir.join("foreign.csv");
        std::fs::write(&foreign_path, format!("{CSV_HEADER}\n")).unwrap();
        let foreign_options = SweepOptions::new(RunOptions {
            seed: 999,
            simulate: false,
            ..RunOptions::smoke()
        });
        SweepManifest::new(&grid, &foreign_options, shard)
            .write_atomic(&manifest_path(&foreign_path))
            .unwrap();
        let err = run_shard_to_files(&executor, &grid, shard, &foreign_path, true, None);
        assert!(matches!(err, Err(ShardError::Mismatch(_))), "{err:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sink_io_failures_surface_as_clean_errors_not_panics() {
        // Point the manifest at a directory that does not exist: the first
        // row's atomic manifest write fails, the sink records the error and
        // raises the stop flag, and run_shard_to_files returns ShardError::Io
        // (no worker panic, no poisoned emitter).
        let dir = temp_dir("sink-io");
        let grid = grid();
        let executor = SweepExecutor::new(options().with_threads(2));
        let csv_path = dir.join("shard.csv");
        std::fs::write(&csv_path, format!("{CSV_HEADER}\n")).unwrap();
        let stop = AtomicBool::new(false);
        let mut sink = ShardFileSink {
            file: std::fs::OpenOptions::new()
                .append(true)
                .open(&csv_path)
                .unwrap(),
            manifest: SweepManifest::new(&grid, &executor.options, ShardSpec::WHOLE),
            manifest_file: dir.join("missing-dir").join("shard.csv.manifest"),
            stop: &stop,
            error: None,
        };
        let results = executor.run_cells_controlled(
            &grid.shard_cells(ShardSpec::WHOLE),
            &mut sink,
            Some(&stop),
            None,
        );
        assert!(
            matches!(sink.error, Some(ShardError::Io(_))),
            "{:?}",
            sink.error
        );
        assert!(stop.load(Ordering::Relaxed), "stop flag raised on failure");
        assert!(
            results.rows.len() < grid.len(),
            "the failed run stopped early instead of draining every cell"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_rejects_mismatched_artifacts() {
        let dir = temp_dir("mismatch");
        let grid = grid();
        let executor = SweepExecutor::new(options());
        let csv_path = dir.join("shard.csv");
        let shard = ShardSpec::new(0, 2).unwrap();
        run_shard_to_files(&executor, &grid, shard, &csv_path, false, None).unwrap();
        // Wrong shard coordinates.
        let other = ShardSpec::new(1, 2).unwrap();
        assert!(run_shard_to_files(&executor, &grid, other, &csv_path, true, None).is_err());
        // Different seed → different sweep → refuse to resume.
        let reseeded = SweepExecutor::new(SweepOptions::new(RunOptions {
            seed: 99,
            simulate: false,
            ..RunOptions::smoke()
        }));
        assert!(run_shard_to_files(&reseeded, &grid, shard, &csv_path, true, None).is_err());
        // A clobbered CSV header is caught even when the manifest looks sane —
        // including multibyte text straddling the header length (a str slice
        // there would panic on the char boundary).
        std::fs::write(&csv_path, "bogus,header\n1,2\n").unwrap();
        assert!(run_shard_to_files(&executor, &grid, shard, &csv_path, true, None).is_err());
        std::fs::write(&csv_path, "é".repeat(CSV_HEADER.len())).unwrap();
        assert!(run_shard_to_files(&executor, &grid, shard, &csv_path, true, None).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
