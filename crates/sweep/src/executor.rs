//! Parallel execution of a [`ScenarioGrid`] over a self-scheduling worker pool.
//!
//! [`SweepExecutor`] evaluates every cell of a grid — exact model, first-order
//! model and (optionally) either simulation engine — over `std::thread::scope`
//! workers that pull cells from a shared atomic work queue (the same
//! work-sharing scheme as `ayd-sim`'s batch replication: no idle worker while
//! cells remain, no per-worker queues to balance).
//!
//! ## Determinism contract
//!
//! For a given grid and base seed the results are **bit-identical regardless of
//! the worker-thread count**:
//!
//! * every cell's analytic evaluation depends only on the cell and the options;
//! * every cell's simulations are seeded from `(base seed, cell index)` with
//!   the same SplitMix64 derivation as `ayd_sim::rng::rng_for_replicate`, never
//!   from scheduling order;
//! * rows are re-assembled in cell order after the parallel phase, and the
//!   streaming sinks observe them in cell order through a reorder buffer.
//!
//! The memoisation cache (see [`crate::cache`]) only short-circuits
//! recomputation of deterministic values, so cache on/off also yields identical
//! results. Both halves of the contract are asserted by the property suite.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize};

use ayd_core::{ExactModel, FailureModelSpec, FirstOrder, ProfileSpec, SpeedupProfile};
use ayd_optim::SearchReport;
use ayd_platforms::PlatformId;
use ayd_sim::rng::splitmix64;
use ayd_sim::{ArrivalLaw, EngineKind, Simulator};

use crate::cache::{CacheKey, CacheStats, ShardedEvalCache};
use crate::evaluate::{Evaluator, OperatingPoint, OptimumComparison, SimSummary};
use crate::grid::{ScenarioGrid, SweepCell};
use crate::options::RunOptions;
use crate::sink::SweepSink;

/// The closed-form joint optimum of Theorem 2/3 (`P*`, `T*`, `H*`), recorded
/// alongside the practical first-order point for asymptotic-slope fits.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClosedForm {
    /// Closed-form optimal processor count `P*`.
    pub processors: f64,
    /// Closed-form optimal period `T*`.
    pub period: f64,
    /// Closed-form overhead `H*`.
    pub overhead: f64,
}

/// Options of a sweep execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepOptions {
    /// Fidelity/seed/simulate options shared with the experiment runners.
    pub run: RunOptions,
    /// Worker-thread count (`None` = all available cores).
    pub threads: Option<usize>,
    /// Memoisation-cache capacity (`None` disables caching).
    pub cache_capacity: Option<usize>,
    /// Engine used for the primary simulations.
    pub engine: EngineKind,
    /// Also simulate the event-stream engine at the primary operating point of
    /// every cell (the engine-ablation mode).
    pub compare_engines: bool,
    /// Simulate the first-order operating point (when simulation is on).
    pub simulate_first_order: bool,
    /// Simulate the numerical operating point of jointly-optimised cells.
    pub simulate_numerical: bool,
    /// Processor search range of the numerical optimiser.
    pub processor_range: (f64, f64),
    /// Period search range of the numerical optimiser.
    pub period_range: (f64, f64),
}

impl SweepOptions {
    /// Default sweep options for the given run options: the run options'
    /// thread/cache knobs (all cores, 4096-entry cache by default),
    /// window-sampling engine, and the default `Evaluator` search ranges.
    pub fn new(run: RunOptions) -> Self {
        let reference = Evaluator::new(run);
        Self {
            run,
            threads: run.threads,
            cache_capacity: run.cache.then_some(4096),
            engine: EngineKind::default(),
            compare_engines: false,
            simulate_first_order: true,
            simulate_numerical: true,
            processor_range: reference.processor_range,
            period_range: reference.period_range,
        }
    }

    /// Selects the numerical-search strategy (a shorthand for setting
    /// `run.search`).
    pub fn with_search(mut self, search: crate::options::SearchStrategy) -> Self {
        self.run.search = search;
        self
    }

    /// Sets an explicit worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Sets the cache capacity, or disables caching with `None`.
    pub fn with_cache_capacity(mut self, capacity: Option<usize>) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Selects the engine for the primary simulations.
    pub fn with_engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// Enables the engine-comparison mode (adds an event-stream simulation at
    /// the primary operating point of every cell).
    pub fn with_compare_engines(mut self, compare: bool) -> Self {
        self.compare_engines = compare;
        self
    }

    /// Controls whether the first-order operating point is simulated (when
    /// simulation is on).
    pub fn with_simulate_first_order(mut self, simulate: bool) -> Self {
        self.simulate_first_order = simulate;
        self
    }

    /// Controls whether the numerical point of jointly-optimised cells is
    /// simulated.
    pub fn with_simulate_numerical(mut self, simulate: bool) -> Self {
        self.simulate_numerical = simulate;
        self
    }

    /// Overrides the processor search range of the numerical optimiser.
    pub fn with_processor_range(mut self, lo: f64, hi: f64) -> Self {
        self.processor_range = (lo, hi);
        self
    }

    /// Overrides the period search range of the numerical optimiser.
    pub fn with_period_range(mut self, lo: f64, hi: f64) -> Self {
        self.period_range = (lo, hi);
        self
    }

    /// A 64-bit fingerprint of every option that can change the *bytes* of a
    /// sweep's output. Worker-thread count and cache capacity are deliberately
    /// excluded (the determinism contract guarantees they never matter), so a
    /// shard computed with `--threads 8` merges cleanly with one computed
    /// single-threaded. The search strategy is excluded for the same reason:
    /// all strategies are bit-identical, so a shard computed under
    /// `--search fast` merges and resumes cleanly with a `--search reference`
    /// one. Used by shard manifests to refuse cross-configuration resumes and
    /// merges.
    pub fn output_fingerprint(&self) -> u64 {
        use crate::grid::{bits_or_marker, mix};
        let mut h: u64 = 0x0B71_0555_F17E_9A2D;
        h = mix(h, self.run.seed);
        h = mix(h, self.run.simulate as u64);
        h = mix(
            h,
            match self.run.fidelity {
                crate::options::Fidelity::Smoke => 0,
                crate::options::Fidelity::Standard => 1,
                crate::options::Fidelity::Paper => 2,
            },
        );
        h = mix(
            h,
            match self.engine {
                EngineKind::WindowSampling => 0,
                EngineKind::EventStream => 1,
            },
        );
        h = mix(h, self.compare_engines as u64);
        h = mix(h, self.simulate_first_order as u64);
        h = mix(h, self.simulate_numerical as u64);
        h = mix(h, bits_or_marker(Some(self.processor_range.0)));
        h = mix(h, bits_or_marker(Some(self.processor_range.1)));
        h = mix(h, bits_or_marker(Some(self.period_range.0)));
        h = mix(h, bits_or_marker(Some(self.period_range.1)));
        h
    }
}

/// One evaluated cell of a sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepRow {
    /// Platform of the cell.
    pub platform: PlatformId,
    /// Scenario number (1–6).
    pub scenario: usize,
    /// Speedup profile of the cell.
    pub profile: SpeedupProfile,
    /// Failure-arrival model the cell's simulations sample from. The analytic
    /// series always assume the paper's exponential model, so a
    /// non-exponential row measures the model's misspecification error.
    pub failure_model: FailureModelSpec,
    /// Amdahl-equivalent sequential fraction (`α` for Amdahl, `0` for
    /// perfectly parallel, `None` for extension profiles).
    pub alpha: Option<f64>,
    /// Individual error rate `λ_ind` of the cell.
    pub lambda_ind: f64,
    /// Ratio of `λ_ind` to the platform's measured rate.
    pub lambda_multiplier: f64,
    /// Fixed processor count of the cell (`None` when `P` was optimised).
    pub fixed_processors: Option<f64>,
    /// Order `x` with `P = λ_ind^{-x}` (lambda-order axes only).
    pub processor_order: Option<f64>,
    /// Fixed pattern length `T` of the cell, when prescribed.
    pub pattern_length: Option<f64>,
    /// First-order series: the joint first-order point for optimised cells, or
    /// Theorem 1's `T*_P` at the cell's fixed `P`.
    pub first_order: Option<OperatingPoint>,
    /// Closed-form joint optimum (Theorem 2/3), when it exists.
    pub closed_form: Option<ClosedForm>,
    /// Exact-model series: the numerical joint optimum, or the numerically
    /// optimal period at the cell's fixed `P`.
    pub numerical: OperatingPoint,
    /// Exact evaluation (and optional simulation) of the prescribed pattern,
    /// when the cell fixes the pattern length.
    pub prescribed: Option<OperatingPoint>,
    /// Event-stream simulation at the primary operating point, in
    /// engine-comparison mode.
    pub stream_simulated: Option<SimSummary>,
}

impl SweepRow {
    /// The primary operating point of the row: the prescribed pattern when the
    /// cell fixes one, the first-order point when it exists, the numerical
    /// optimum otherwise.
    pub fn primary_point(&self) -> OperatingPoint {
        self.prescribed
            .or(self.first_order)
            .unwrap_or(self.numerical)
    }

    /// The first-order/numerical pair as an [`OptimumComparison`].
    pub fn comparison(&self) -> OptimumComparison {
        OptimumComparison {
            first_order: self.first_order,
            numerical: self.numerical,
        }
    }
}

/// All rows of a sweep, in cell order, plus cache and search counters.
#[derive(Debug, Clone, Default)]
pub struct SweepResults {
    /// One row per grid cell, in the grid's deterministic order.
    pub rows: Vec<SweepRow>,
    /// Hit/miss/eviction counters of the memoisation cache (all zero when the
    /// cache was disabled).
    pub cache: CacheStats,
    /// Fast/fallback tallies of the warm-started search (all zero under the
    /// reference strategy). Like the cache counters, these may vary with
    /// thread scheduling (concurrent misses can compute twice) and are
    /// therefore never part of the CSV output.
    pub search: SearchReport,
}

impl SweepResults {
    /// Renders the rows as the canonical sweep CSV (see [`crate::sink`]).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(crate::sink::CSV_HEADER);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&crate::sink::csv_line(row));
            out.push('\n');
        }
        out
    }
}

/// Cached analytic (simulation-free) evaluation of one configuration.
///
/// Deliberately independent of the cell's fixed pattern length: the optimiser
/// evaluations (joint search, or period search at fixed `P`) are the expensive
/// part of a sweep, and grids crossing pattern lengths with the other axes
/// reuse them; the exact-model evaluation of a prescribed `(T, P)` is a cheap
/// closed form computed outside the cache.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalyticEval {
    /// First-order series (joint first-order point, or Theorem 1's `T*_P` at
    /// the fixed `P`); absent when the closed forms do not apply.
    pub first_order: Option<OperatingPoint>,
    /// Closed-form joint optimum (Theorem 2/3), when it exists.
    pub closed_form: Option<ClosedForm>,
    /// Numerical optimum of the exact model (joint, or at the fixed `P`).
    pub numerical: OperatingPoint,
}

/// Derives the simulation base seed of a cell from the sweep seed and the cell
/// index (same SplitMix64 scheme as `ayd_sim::rng::rng_for_replicate`, so the
/// result depends only on the grid order, never on thread scheduling).
pub fn cell_seed(base_seed: u64, cell_index: usize) -> u64 {
    splitmix64(base_seed ^ splitmix64(cell_index as u64 ^ 0xCE11_5EED_0000_0000))
}

/// Parallel, deterministic sweep executor.
#[derive(Debug, Clone, Copy)]
pub struct SweepExecutor {
    /// Execution options.
    pub options: SweepOptions,
}

impl SweepExecutor {
    /// Creates an executor with the given options.
    pub fn new(options: SweepOptions) -> Self {
        Self { options }
    }

    /// Evaluates every cell of the grid and returns the rows in cell order.
    pub fn run(&self, grid: &ScenarioGrid) -> SweepResults {
        let mut sink = crate::sink::NullSink;
        self.run_with_sink(grid, &mut sink)
    }

    /// Evaluates the grid, streaming every row (in cell order) into `sink` as
    /// soon as it and all its predecessors are available.
    pub fn run_with_sink(&self, grid: &ScenarioGrid, sink: &mut dyn SweepSink) -> SweepResults {
        run_cells(&self.options, &grid.cells(), sink, None, None)
    }

    /// Evaluates an explicit cell list (e.g. one shard of a grid, from
    /// [`ScenarioGrid::shard_cells`]) and returns the rows in list order.
    /// Each cell keeps its own (global) `index`, so seeding — and therefore
    /// every value — matches the full-grid run of the same cells.
    pub fn run_cells(&self, cells: &[SweepCell]) -> SweepResults {
        let mut sink = crate::sink::NullSink;
        self.run_cells_controlled(cells, &mut sink, None, None)
    }

    /// [`Self::run_cells`] with a streaming sink, cooperative cancellation and
    /// an external progress counter (incremented once per evaluated cell).
    /// This is the building block the sharded file runner
    /// ([`crate::shard::run_shard_to_files`]) and `ayd-serve`'s sharded job
    /// controller drive directly.
    pub fn run_cells_controlled(
        &self,
        cells: &[SweepCell],
        sink: &mut dyn SweepSink,
        cancel: Option<&AtomicBool>,
        progress: Option<&AtomicUsize>,
    ) -> SweepResults {
        run_cells(&self.options, cells, sink, cancel, progress)
    }

    /// Starts the sweep on a background thread and returns immediately with a
    /// [`SweepJobHandle`] for status/progress polling and cancellation.
    ///
    /// The handle's thread runs the same scoped-thread core as [`Self::run`]
    /// (same determinism contract); rows stream into `sink` in cell order.
    /// Cancelling stops workers from picking up new cells; already-started
    /// cells finish, and [`SweepJobHandle::join`] returns the completed
    /// in-order prefix of the rows.
    pub fn spawn_with_sink(
        &self,
        grid: &ScenarioGrid,
        mut sink: Box<dyn SweepSink>,
    ) -> SweepJobHandle {
        let cells = grid.cells();
        let total = cells.len();
        let cancel = Arc::new(AtomicBool::new(false));
        let completed = Arc::new(AtomicUsize::new(0));
        let options = self.options;
        let (cancel_flag, progress) = (Arc::clone(&cancel), Arc::clone(&completed));
        let thread = std::thread::spawn(move || {
            run_cells(
                &options,
                &cells,
                sink.as_mut(),
                Some(&cancel_flag),
                Some(&progress),
            )
        });
        SweepJobHandle {
            total,
            completed,
            cancel,
            thread,
        }
    }

    /// [`Self::spawn_with_sink`] with a [`crate::sink::NullSink`] (results are
    /// only collected into the returned handle).
    pub fn spawn(&self, grid: &ScenarioGrid) -> SweepJobHandle {
        self.spawn_with_sink(grid, Box::new(crate::sink::NullSink))
    }
}

/// Status of a background sweep job (see [`SweepExecutor::spawn`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepJobStatus {
    /// The job's thread is still evaluating cells.
    Running,
    /// Every cell was evaluated (the job thread may still be unwinding its
    /// scope, but no further work remains).
    Done,
    /// Cancellation was requested; workers stop after their current cell.
    Cancelled,
}

/// Final outcome of a background sweep job.
#[derive(Debug, Clone)]
pub struct SweepJobResult {
    /// The evaluated rows: all of them for a completed job, the in-order
    /// prefix completed before cancellation took effect otherwise.
    pub results: SweepResults,
    /// True when the job was cancelled before evaluating every cell.
    pub cancelled: bool,
}

/// Handle on a sweep running on a background thread: poll progress, cancel,
/// and eventually [`join`](Self::join) for the results.
#[derive(Debug)]
pub struct SweepJobHandle {
    total: usize,
    completed: Arc<AtomicUsize>,
    cancel: Arc<AtomicBool>,
    thread: std::thread::JoinHandle<SweepResults>,
}

impl SweepJobHandle {
    /// Total number of cells in the job's grid.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Number of cells evaluated so far.
    pub fn completed(&self) -> usize {
        self.completed.load(Ordering::Relaxed).min(self.total)
    }

    /// Current status of the job. A job whose every cell completed reports
    /// [`SweepJobStatus::Done`] even when a cancellation raced in after the
    /// last cell.
    pub fn status(&self) -> SweepJobStatus {
        if self.completed() >= self.total {
            SweepJobStatus::Done
        } else if self.cancel.load(Ordering::Relaxed) {
            SweepJobStatus::Cancelled
        } else {
            SweepJobStatus::Running
        }
    }

    /// True when the job's thread has finished (all cells done, or the
    /// cancellation drained).
    pub fn is_finished(&self) -> bool {
        self.thread.is_finished()
    }

    /// Requests cancellation: workers stop pulling new cells. Non-blocking;
    /// use [`join`](Self::join) to wait for the drain.
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::Relaxed);
    }

    /// Waits for the job thread and returns the (possibly partial) results.
    ///
    /// # Panics
    /// Propagates a panic from the job's worker threads, like
    /// [`SweepExecutor::run`] does.
    pub fn join(self) -> SweepJobResult {
        let results = self.thread.join().expect("sweep job thread panicked");
        let cancelled = self.cancel.load(Ordering::Relaxed) && results.rows.len() < self.total;
        SweepJobResult { results, cancelled }
    }
}

/// The shared parallel core of [`SweepExecutor::run_with_sink`] and
/// [`SweepExecutor::spawn_with_sink`]: a self-scheduling scoped worker pool
/// over `cells`, with optional cooperative cancellation and a progress
/// counter (incremented once per evaluated cell).
fn run_cells(
    options: &SweepOptions,
    cells: &[SweepCell],
    sink: &mut dyn SweepSink,
    cancel: Option<&AtomicBool>,
    progress: Option<&AtomicUsize>,
) -> SweepResults {
    if cells.is_empty() {
        // Still honour the sink contract: finish() writes the CSV header
        // and flushes even when no rows were produced.
        let results = SweepResults::default();
        sink.finish(&results);
        return results;
    }
    // Tracing reads clocks and counters only — never values — so the
    // determinism contract (CSV bytes identical with tracing on or off)
    // holds by construction.
    let mut sweep_span = ayd_obs::span("sweep");
    let workers = options
        .threads
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .clamp(1, cells.len());
    // One shard per worker (rounded up to a power of two) keeps concurrent
    // misses on distinct keys from serialising on a single mutex.
    let cache = options
        .cache_capacity
        .map(|capacity| ShardedEvalCache::<AnalyticEval>::new(cache_shards(workers), capacity));

    let next_cell = AtomicUsize::new(0);
    // Full-report merge (fast/fallback plus Brent-iteration and per-reason
    // tallies) under a mutex taken once per chunk, not per cell.
    let search_total = Mutex::new(SearchReport::default());
    let emitter = Mutex::new(Emitter {
        pending: std::collections::BTreeMap::new(),
        ordered: Vec::with_capacity(cells.len()),
        sink,
    });
    // Analytic-only sweeps pull small chunks from the work queue so that one
    // `evaluate_many` batch amortises the evaluator setup across cells;
    // simulating sweeps keep per-cell scheduling (each cell is expensive, so
    // load balance matters more than setup amortisation). Chunking cannot
    // affect the output: rows keep their global indices through the reorder
    // buffer and every evaluation depends only on its cell.
    let chunk = if options.run.simulate { 1 } else { 8 };

    if sweep_span.is_recording() {
        sweep_span.field_u64("cells", cells.len() as u64);
        sweep_span.field_u64("workers", workers as u64);
        sweep_span.field_u64("chunk", chunk as u64);
        sweep_span.field_str("strategy", options.run.search.as_str());
        sweep_span.field_bool("simulate", options.run.simulate);
    }
    let sweep_ctx = sweep_span.context();

    // Panics in workers propagate when the scope joins them at the end.
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                loop {
                    if cancel.is_some_and(|flag| flag.load(Ordering::Relaxed)) {
                        break;
                    }
                    let start = next_cell.fetch_add(chunk, Ordering::Relaxed);
                    if start >= cells.len() {
                        break;
                    }
                    let batch = &cells[start..(start + chunk).min(cells.len())];
                    let mut chunk_span = ayd_obs::child_of(sweep_ctx, "chunk");
                    let queries: Vec<(ExactModel, Option<f64>, FailureModelSpec)> = batch
                        .iter()
                        .map(|cell| {
                            (
                                cell.setup
                                    .model()
                                    .expect("grid builders only emit valid setups"),
                                cell.fixed_processors,
                                cell.failure_model.clone(),
                            )
                        })
                        .collect();
                    let (evals, search) = evaluate_many(&queries, options, cache.as_ref());
                    if chunk_span.is_recording() {
                        chunk_span.field_u64("start_cell", batch[0].index as u64);
                        chunk_span.field_u64("cells", batch.len() as u64);
                        chunk_span.field_u64("search_fast", search.fast);
                        chunk_span.field_u64("search_fallback", search.fallback);
                        chunk_span.field_u64("brent_iterations", search.brent_iterations);
                    }
                    search_total
                        .lock()
                        .expect("search tally poisoned")
                        .merge(&search);
                    for (offset, (cell, eval)) in batch.iter().zip(evals).enumerate() {
                        let row = finish_row(cell, options, &queries[offset].0, eval);
                        if let Some(counter) = progress {
                            counter.fetch_add(1, Ordering::Relaxed);
                        }
                        emitter
                            .lock()
                            .expect("emitter poisoned")
                            .push(start + offset, row);
                    }
                }
                // Workers only produce child spans; drain this thread's
                // buffer before the scope joins it.
                ayd_obs::flush();
            });
        }
    });

    let emitter = emitter.into_inner().expect("emitter poisoned");
    debug_assert!(
        cancel.is_some() || emitter.pending.is_empty(),
        "all cells must have drained"
    );
    let results = SweepResults {
        rows: emitter.ordered,
        cache: cache.map(|c| c.stats()).unwrap_or_default(),
        search: search_total.into_inner().expect("search tally poisoned"),
    };
    emitter.sink.finish(&results);
    if sweep_span.is_recording() {
        sweep_span.field_u64("rows", results.rows.len() as u64);
        sweep_span.field_u64("cache_hits", results.cache.hits);
        sweep_span.field_u64("cache_misses", results.cache.misses);
        sweep_span.field_u64("search_fast", results.search.fast);
        sweep_span.field_u64("search_fallback", results.search.fallback);
    }
    sweep_span.finish();
    results
}

/// Shard count used for a given worker count: the next power of two, capped
/// at 16 (beyond that the shards outnumber any realistic lock contention).
/// Public because the `ayd-serve` process-wide cache sizes itself with the
/// same policy.
pub fn cache_shards(workers: usize) -> usize {
    workers.max(1).next_power_of_two().min(16)
}

/// Reorder buffer: accumulates out-of-order completions, releases rows in cell
/// order — both into the streaming sink and into the final ordered vector.
struct Emitter<'a> {
    pending: std::collections::BTreeMap<usize, SweepRow>,
    ordered: Vec<SweepRow>,
    sink: &'a mut dyn SweepSink,
}

impl Emitter<'_> {
    fn push(&mut self, index: usize, row: SweepRow) {
        self.pending.insert(index, row);
        while let Some(row) = self.pending.remove(&self.ordered.len()) {
            self.sink.on_row(&row);
            self.ordered.push(row);
        }
    }
}

/// The memoisation key of one analytic evaluation: quantized model inputs —
/// including the speedup-profile family tag and its parameter, so e.g.
/// `powerlaw:0.8` and `gustafson:0.8` never collide — the failure-model
/// family tag and parameters (so `weibull:1.0` and `exp` never collide
/// either, even though their rows are bit-identical), the fixed processor
/// count (NaN-marked when `P` is optimised) and the optimiser search ranges.
/// Shared by the sweep executor and the `ayd-serve` query service, so both
/// populate the same cache entries.
pub fn analytic_cache_key(
    model: &ExactModel,
    fixed_processors: Option<f64>,
    failure_model: &FailureModelSpec,
    options: &SweepOptions,
) -> CacheKey {
    let absent = f64::NAN;
    let profile = ProfileSpec::from(model.speedup);
    CacheKey::from_inputs(&[
        model.failures.lambda_ind,
        model.failures.fail_stop_fraction,
        profile.kind_tag() as f64,
        profile.param().unwrap_or(absent),
        failure_model.kind_tag() as f64,
        failure_model.param().unwrap_or(absent),
        failure_model.lambda().unwrap_or(absent),
        trace_path_hash(failure_model),
        model.costs.checkpoint.a,
        model.costs.checkpoint.b,
        model.costs.checkpoint.c,
        model.costs.verification.v,
        model.costs.verification.u,
        model.costs.downtime,
        fixed_processors.unwrap_or(absent),
        options.processor_range.0,
        options.processor_range.1,
        options.period_range.0,
        options.period_range.1,
        // The strategies are bit-identical, but each keeps its own cache
        // entries so fast/fallback accounting (and any strategy comparison)
        // is never confounded by values another strategy computed.
        options.run.search.cache_tag(),
    ])
}

/// A 40-bit hash of a trace spec's path, widened to `f64` (NaN for the
/// parametric families). Any integer below 2^41 has an all-zero low mantissa
/// chunk, so the value survives the cache key's low-bit quantization exactly.
fn trace_path_hash(failure_model: &FailureModelSpec) -> f64 {
    match failure_model.trace_path() {
        None => f64::NAN,
        Some(path) => {
            let mut h: u64 = 0x7AC3_5EED_0000_0001;
            for byte in path.as_bytes() {
                h = splitmix64(h ^ u64::from(*byte));
            }
            (h >> 24) as f64
        }
    }
}

/// The analytic (simulation-free) evaluation of one configuration, optionally
/// memoised in a shared [`ShardedEvalCache`].
///
/// This is the per-cell kernel of the executor, exposed so that long-lived
/// services can answer single queries against a process-wide cache with
/// results bit-identical to a sweep over the same configuration (and to the
/// offline [`Evaluator`], which it delegates to).
pub fn evaluate_analytic(
    model: &ExactModel,
    fixed_processors: Option<f64>,
    failure_model: &FailureModelSpec,
    options: &SweepOptions,
    cache: Option<&ShardedEvalCache<AnalyticEval>>,
) -> AnalyticEval {
    evaluate_analytic_observed(model, fixed_processors, failure_model, options, cache).0
}

/// What actually happened during one [`evaluate_analytic_observed`] call:
/// whether the optimiser ran (a cache-cold evaluation) and, if so, how its
/// scalar sub-searches split between the warm-started fast path and the
/// reference fallback. Cache hits report `computed: false` and an empty
/// search tally.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalObservation {
    /// True when the optimiser ran (cache miss or cache disabled).
    pub computed: bool,
    /// Fast/fallback tallies of the scalar sub-searches of this evaluation.
    pub search: SearchReport,
}

/// [`evaluate_analytic`] plus an [`EvalObservation`]: long-lived services use
/// the observation to time *cold* evaluations separately from cache hits and
/// to export fast/fallback counters.
pub fn evaluate_analytic_observed(
    model: &ExactModel,
    fixed_processors: Option<f64>,
    failure_model: &FailureModelSpec,
    options: &SweepOptions,
    cache: Option<&ShardedEvalCache<AnalyticEval>>,
) -> (AnalyticEval, EvalObservation) {
    let mut observation = EvalObservation::default();
    let eval = match cache {
        Some(cache) => cache.get_or_insert_with(
            analytic_cache_key(model, fixed_processors, failure_model, options),
            || {
                observation.computed = true;
                let (eval, search) = compute_analytic(model, fixed_processors, options);
                observation.search = search;
                eval
            },
        ),
        None => {
            observation.computed = true;
            let (eval, search) = compute_analytic(model, fixed_processors, options);
            observation.search = search;
            eval
        }
    };
    (eval, observation)
}

/// Batch variant of [`evaluate_analytic`]: evaluates every
/// `(model, fixed P, failure model)` query against the same options and
/// shared cache, amortising the evaluator/strategy setup across the batch.
/// Returns the evaluations in query order plus the merged fast/fallback tally
/// of the cache-cold queries. Used by the sweep executor (per worker chunk)
/// and `ayd-serve`'s `/v1/batch` fan-out.
pub fn evaluate_many(
    queries: &[(ExactModel, Option<f64>, FailureModelSpec)],
    options: &SweepOptions,
    cache: Option<&ShardedEvalCache<AnalyticEval>>,
) -> (Vec<AnalyticEval>, SearchReport) {
    let context = AnalyticContext::new(options);
    let mut search = SearchReport::default();
    let evals = queries
        .iter()
        .map(|(model, fixed_processors, failure_model)| match cache {
            Some(cache) => cache.get_or_insert_with(
                analytic_cache_key(model, *fixed_processors, failure_model, options),
                || {
                    let (eval, report) = context.evaluate(model, *fixed_processors);
                    search.merge(&report);
                    eval
                },
            ),
            None => {
                let (eval, report) = context.evaluate(model, *fixed_processors);
                search.merge(&report);
                eval
            }
        })
        .collect();
    (evals, search)
}

fn compute_analytic(
    model: &ExactModel,
    fixed_processors: Option<f64>,
    options: &SweepOptions,
) -> (AnalyticEval, SearchReport) {
    AnalyticContext::new(options).evaluate(model, fixed_processors)
}

/// Per-batch evaluation context: the configured [`Evaluator`] and strategy,
/// built once and reused across the queries of an [`evaluate_many`] batch.
struct AnalyticContext {
    evaluator: Evaluator,
    search: crate::options::SearchStrategy,
}

impl AnalyticContext {
    fn new(options: &SweepOptions) -> Self {
        let analytic_options = RunOptions {
            simulate: false,
            ..options.run
        };
        Self {
            evaluator: Evaluator::new(analytic_options)
                .with_processor_range(options.processor_range.0, options.processor_range.1)
                .with_period_range(options.period_range.0, options.period_range.1),
            search: options.run.search,
        }
    }

    fn evaluate(
        &self,
        model: &ExactModel,
        fixed_processors: Option<f64>,
    ) -> (AnalyticEval, SearchReport) {
        let evaluator = &self.evaluator;
        let mut report = SearchReport::default();
        // The paper's first-order closed forms apply to the Amdahl family only
        // (including its perfectly parallel `α = 0` limit). Extension profiles
        // (power law, Gustafson) fall back to the numerical-only series — the
        // dispatch that used to live in `ayd-exp`'s extension experiment.
        let amdahl_family = model.speedup.sequential_fraction().is_some();
        let first_order_model = FirstOrder::new(model);
        let closed_form = if amdahl_family {
            first_order_model.joint_optimum().ok().map(|o| ClosedForm {
                processors: o.processors,
                period: o.period,
                overhead: o.overhead,
            })
        } else {
            None
        };
        let eval = match fixed_processors {
            Some(p) => {
                let first_order = amdahl_family.then(|| {
                    let period_optimum = first_order_model.optimal_period_for(p);
                    OperatingPoint {
                        processors: p,
                        period: period_optimum.period,
                        predicted_overhead: model.expected_overhead(period_optimum.period, p),
                        formula_overhead: Some(period_optimum.overhead),
                        simulated: None,
                    }
                });
                let (period, overhead) = if self.search.is_fast() {
                    evaluator.numerical_period_for_seeded(
                        model,
                        p,
                        self.search.is_strict(),
                        &mut report,
                    )
                } else {
                    evaluator.numerical_period_for(model, p)
                };
                let numerical = OperatingPoint {
                    processors: p,
                    period,
                    predicted_overhead: overhead,
                    formula_overhead: None,
                    simulated: None,
                };
                AnalyticEval {
                    first_order,
                    closed_form,
                    numerical,
                }
            }
            None => {
                // The first-order point is a closed form (no search); only the
                // numerical optimum dispatches on the strategy.
                let first_order = if amdahl_family {
                    evaluator.first_order_point(model)
                } else {
                    None
                };
                let numerical = if self.search.is_fast() {
                    evaluator.numerical_point_seeded(model, self.search.is_strict(), &mut report)
                } else {
                    evaluator.numerical_point(model)
                };
                AnalyticEval {
                    first_order,
                    closed_form,
                    numerical,
                }
            }
        };
        (eval, report)
    }
}

fn simulate_point(
    model: &ExactModel,
    point: &OperatingPoint,
    config: &ayd_sim::SimulationConfig,
    law: &ArrivalLaw,
) -> SimSummary {
    let stats = Simulator::new(*model).simulate_overhead_with_law(
        point.period,
        point.processors,
        config,
        law,
    );
    SimSummary {
        mean: stats.mean,
        ci95: stats.ci95,
    }
}

/// Assembles a cell's row from its (possibly cached) analytic evaluation:
/// prescribed-pattern closed form, simulation attachment policy, engine
/// comparison.
fn finish_row(
    cell: &SweepCell,
    options: &SweepOptions,
    model: &ExactModel,
    analytic: AnalyticEval,
) -> SweepRow {
    let model = *model;
    let mut first_order = analytic.first_order;
    let closed_form = analytic.closed_form;
    let mut numerical = analytic.numerical;
    // The prescribed pattern is a cheap exact-model closed form, computed
    // outside the cache so that pattern-length axes reuse the optimiser work.
    let mut prescribed = match (cell.fixed_processors, cell.pattern_length) {
        (Some(p), Some(t)) => Some(OperatingPoint {
            processors: p,
            period: t,
            predicted_overhead: model.expected_overhead(t, p),
            formula_overhead: None,
            simulated: None,
        }),
        _ => None,
    };
    let config = RunOptions {
        seed: cell_seed(options.run.seed, cell.index),
        ..options.run
    }
    .simulation_config()
    .with_engine(options.engine);
    // Degenerate parameterisations (weibull:1.0, shifted:0) canonicalise to
    // the exponential law here, which keeps their rows bit-identical to
    // `exp` rows: the exponential arm of the sampler is the very code path
    // exponential cells take.
    let law = if options.run.simulate {
        ArrivalLaw::from_spec(&cell.failure_model).unwrap_or_else(|e| {
            panic!(
                "cell {}: failure model `{}` cannot simulate: {e}",
                cell.index, cell.failure_model
            )
        })
    } else {
        ArrivalLaw::Exponential
    };

    if options.run.simulate {
        match prescribed.as_mut() {
            // Fully prescribed (T, P): simulate exactly that pattern.
            Some(point) => {
                point.simulated = Some(simulate_point(&model, point, &config, &law));
            }
            None => {
                // Fixed P (Figure 3) or jointly optimised (Figures 5–6):
                // simulate the first-order point, and — for optimised cells —
                // the numerical optimum as well.
                if options.simulate_first_order {
                    if let Some(point) = first_order.as_mut() {
                        point.simulated = Some(simulate_point(&model, point, &config, &law));
                    }
                }
                if options.simulate_numerical && cell.fixed_processors.is_none() {
                    numerical.simulated = Some(simulate_point(&model, &numerical, &config, &law));
                }
            }
        }
        if !law.is_memoryless() {
            // Simulation-first policy for non-exponential cells: whatever the
            // attachment flags say, the primary point always carries a
            // simulation under the true law — it is the ground truth the
            // misspecification report compares the (exponential-model)
            // analytics against.
            let slot = prescribed
                .as_mut()
                .or(first_order.as_mut())
                .unwrap_or(&mut numerical);
            if slot.simulated.is_none() {
                slot.simulated = Some(simulate_point(&model, slot, &config, &law));
            }
        }
    }

    let stream_simulated = (options.run.simulate && options.compare_engines).then(|| {
        // Engine comparison guarantees a window-engine simulation at the
        // primary point, even when the standard policy above skipped it (e.g.
        // no first-order optimum and `simulate_numerical` off), so consumers
        // can always pair `primary_point().simulated` with this value.
        let slot = prescribed
            .as_mut()
            .or(first_order.as_mut())
            .unwrap_or(&mut numerical);
        if slot.simulated.is_none() {
            slot.simulated = Some(simulate_point(&model, slot, &config, &law));
        }
        simulate_point(
            &model,
            slot,
            &config.with_engine(EngineKind::EventStream),
            &law,
        )
    });

    SweepRow {
        platform: cell.setup.platform,
        scenario: cell.setup.scenario.number(),
        profile: cell.setup.profile,
        failure_model: cell.failure_model.clone(),
        alpha: cell.setup.alpha(),
        lambda_ind: model.failures.lambda_ind,
        lambda_multiplier: cell.lambda_multiplier,
        fixed_processors: cell.fixed_processors,
        processor_order: cell.processor_order,
        pattern_length: cell.pattern_length,
        first_order,
        closed_form,
        numerical,
        prescribed,
        stream_simulated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::ProcessorAxis;
    use ayd_platforms::ScenarioId;

    fn analytic_options() -> SweepOptions {
        SweepOptions::new(RunOptions {
            simulate: false,
            ..RunOptions::smoke()
        })
    }

    fn small_fixed_grid() -> ScenarioGrid {
        ScenarioGrid::builder()
            .scenarios(&ScenarioId::ALL)
            .processors(ProcessorAxis::Fixed(vec![200.0, 800.0]))
            .build()
            .unwrap()
    }

    #[test]
    fn rows_come_back_in_cell_order_for_any_thread_count() {
        let grid = small_fixed_grid();
        let baseline = SweepExecutor::new(analytic_options().with_threads(1)).run(&grid);
        assert_eq!(baseline.rows.len(), grid.len());
        for threads in [2, 8] {
            let parallel = SweepExecutor::new(analytic_options().with_threads(threads)).run(&grid);
            assert_eq!(baseline.rows, parallel.rows, "threads={threads}");
        }
    }

    #[test]
    fn cache_dedupes_repeated_configurations_without_changing_results() {
        // A degenerate λ axis repeats the same model twice → the analytic part
        // of the second cell must come from the cache.
        let grid = ScenarioGrid::builder()
            .scenarios(&[ScenarioId::S1])
            .lambda_multipliers(&[1.0, 1.0])
            .processors(ProcessorAxis::Fixed(vec![512.0]))
            .build()
            .unwrap();
        let cached = SweepExecutor::new(analytic_options().with_threads(1)).run(&grid);
        assert!(cached.cache.hits >= 1, "stats: {:?}", cached.cache);
        let uncached =
            SweepExecutor::new(analytic_options().with_cache_capacity(None).with_threads(1))
                .run(&grid);
        assert_eq!(cached.rows, uncached.rows);
        assert_eq!(uncached.cache, CacheStats::default());
    }

    #[test]
    fn fixed_point_cells_evaluate_the_prescribed_pattern() {
        let grid = ScenarioGrid::builder()
            .scenarios(&[ScenarioId::S3])
            .processors(ProcessorAxis::Fixed(vec![512.0]))
            .pattern_lengths(&[3_600.0])
            .build()
            .unwrap();
        let results = SweepExecutor::new(analytic_options()).run(&grid);
        let row = &results.rows[0];
        let prescribed = row.prescribed.unwrap();
        assert_eq!(prescribed.period, 3_600.0);
        assert_eq!(prescribed.processors, 512.0);
        let model = row_model(row);
        assert_eq!(
            prescribed.predicted_overhead,
            model.expected_overhead(3_600.0, 512.0)
        );
        assert_eq!(row.primary_point(), prescribed);
        // The first-order period and the numerically optimal period at this P
        // are still reported for reference, and a prescribed-but-suboptimal
        // pattern cannot beat the optimised period.
        assert!(row.first_order.unwrap().period > 0.0);
        assert!(prescribed.predicted_overhead >= row.numerical.predicted_overhead - 1e-12);
    }

    #[test]
    fn pattern_length_axes_reuse_the_optimiser_evaluations() {
        let grid = ScenarioGrid::builder()
            .scenarios(&[ScenarioId::S1])
            .processors(ProcessorAxis::Fixed(vec![512.0]))
            .pattern_lengths(&[1_800.0, 3_600.0, 7_200.0])
            .build()
            .unwrap();
        let results = SweepExecutor::new(analytic_options().with_threads(1)).run(&grid);
        // One optimiser evaluation, two cache hits: the prescribed-pattern
        // evaluations are closed forms outside the cache.
        assert_eq!(results.cache.misses, 1, "stats: {:?}", results.cache);
        assert_eq!(results.cache.hits, 2, "stats: {:?}", results.cache);
        let overheads: Vec<f64> = results
            .rows
            .iter()
            .map(|r| r.prescribed.unwrap().predicted_overhead)
            .collect();
        assert!(overheads.windows(2).all(|w| w[0] != w[1]), "{overheads:?}");
        // All three rows share the same cached numerical optimum.
        assert!(results
            .rows
            .iter()
            .all(|r| r.numerical == results.rows[0].numerical));
    }

    fn row_model(row: &SweepRow) -> ExactModel {
        ayd_platforms::ExperimentSetup::paper_default(
            row.platform,
            ayd_platforms::ScenarioId::from_number(row.scenario).unwrap(),
        )
        .with_profile(row.profile)
        .with_lambda_ind(row.lambda_ind)
        .model()
        .unwrap()
    }

    #[test]
    fn simulations_attach_where_the_figures_expect_them() {
        let options = SweepOptions::new(RunOptions::smoke()).with_compare_engines(true);
        let grid = ScenarioGrid::builder()
            .scenarios(&[ScenarioId::S1])
            .processors(ProcessorAxis::Fixed(vec![400.0]))
            .build()
            .unwrap();
        let row = SweepExecutor::new(options).run(&grid).rows[0].clone();
        let fo = row.first_order.unwrap();
        assert!(fo.simulated.is_some(), "fixed-P cells simulate T*_P");
        assert!(row.numerical.simulated.is_none());
        let stream = row.stream_simulated.unwrap();
        // Both engines land near the analytical prediction.
        assert!((stream.mean - fo.predicted_overhead).abs() / fo.predicted_overhead < 0.15);
    }

    #[test]
    fn engine_comparison_simulates_cells_without_a_first_order_optimum() {
        // Scenario 6 has no first-order solution; even with the numerical
        // simulation switched off, engine-comparison mode must still produce a
        // window/stream pair at the primary (numerical) point instead of
        // leaving `primary_point().simulated` empty.
        let options = SweepOptions::new(RunOptions::smoke())
            .with_compare_engines(true)
            .with_simulate_numerical(false);
        let grid = ScenarioGrid::builder()
            .scenarios(&[ScenarioId::S6])
            .build()
            .unwrap();
        let row = SweepExecutor::new(options).run(&grid).rows[0].clone();
        assert!(row.first_order.is_none());
        let primary = row.primary_point();
        assert_eq!(primary, row.numerical);
        assert!(primary.simulated.is_some());
        assert!(row.stream_simulated.is_some());
    }

    #[test]
    fn per_cell_seeds_are_deterministic_and_decorrelated() {
        assert_eq!(cell_seed(2016, 3), cell_seed(2016, 3));
        assert_ne!(cell_seed(2016, 3), cell_seed(2016, 4));
        assert_ne!(cell_seed(2016, 3), cell_seed(2017, 3));
    }

    #[test]
    fn evaluate_analytic_matches_the_offline_evaluator_bit_for_bit() {
        let model = ayd_platforms::ExperimentSetup::paper_default(
            ayd_platforms::PlatformId::Hera,
            ScenarioId::S1,
        )
        .model()
        .unwrap();
        let options = analytic_options();
        let exp = FailureModelSpec::exponential();
        let cache = crate::cache::ShardedEvalCache::new(4, 64);
        let eval = evaluate_analytic(&model, None, &exp, &options, Some(&cache));
        let evaluator = crate::evaluate::Evaluator::new(RunOptions {
            simulate: false,
            ..options.run
        });
        let cmp = evaluator.compare(&model);
        assert_eq!(eval.first_order, cmp.first_order);
        assert_eq!(eval.numerical, cmp.numerical);
        // A cached replay returns the identical value and scores a hit.
        let replay = evaluate_analytic(&model, None, &exp, &options, Some(&cache));
        assert_eq!(eval, replay);
        assert_eq!(cache.stats().hits, 1);
        // The fixed-P path matches the evaluator's period search, too.
        let fixed = evaluate_analytic(&model, Some(512.0), &exp, &options, Some(&cache));
        let (period, overhead) = evaluator.numerical_period_for(&model, 512.0);
        assert_eq!(fixed.numerical.period, period);
        assert_eq!(fixed.numerical.predicted_overhead, overhead);
    }

    #[test]
    fn extension_profiles_fall_back_to_numerical_only_series() {
        let profiles = [
            SpeedupProfile::amdahl(0.1).unwrap(),
            SpeedupProfile::power_law(0.8).unwrap(),
            SpeedupProfile::gustafson(0.05).unwrap(),
        ];
        // Jointly optimised and fixed-P cells in one grid.
        for axis in [ProcessorAxis::Optimize, ProcessorAxis::Fixed(vec![512.0])] {
            let grid = ScenarioGrid::builder()
                .scenarios(&[ScenarioId::S1])
                .profiles(&profiles)
                .processors(axis)
                .build()
                .unwrap();
            let results = SweepExecutor::new(analytic_options()).run(&grid);
            let by_profile = |p: SpeedupProfile| {
                results
                    .rows
                    .iter()
                    .find(|r| r.profile == p)
                    .unwrap()
                    .clone()
            };
            let amdahl = by_profile(profiles[0]);
            assert!(amdahl.first_order.is_some(), "Amdahl keeps Theorem 1/2");
            assert_eq!(amdahl.alpha, Some(0.1));
            for &extension in &profiles[1..] {
                let row = by_profile(extension);
                assert!(row.first_order.is_none(), "{extension:?}");
                assert!(row.closed_form.is_none(), "{extension:?}");
                assert!(row.numerical.predicted_overhead > 0.0);
                assert_eq!(row.alpha, None);
            }
        }
    }

    #[test]
    fn cache_keys_distinguish_profiles_with_equal_parameters() {
        // powerlaw:0.8 and gustafson:0.8 share the parameter value but must
        // not share a cache entry.
        let base = ayd_platforms::ExperimentSetup::paper_default(
            ayd_platforms::PlatformId::Hera,
            ScenarioId::S1,
        );
        let options = analytic_options();
        let power = base
            .with_profile(SpeedupProfile::power_law(0.8).unwrap())
            .model()
            .unwrap();
        let gustafson = base
            .with_profile(SpeedupProfile::gustafson(0.8).unwrap())
            .model()
            .unwrap();
        let exp = FailureModelSpec::exponential();
        assert_ne!(
            analytic_cache_key(&power, None, &exp, &options),
            analytic_cache_key(&gustafson, None, &exp, &options)
        );
        let cache = crate::cache::ShardedEvalCache::new(2, 16);
        let a = evaluate_analytic(&power, None, &exp, &options, Some(&cache));
        let b = evaluate_analytic(&gustafson, None, &exp, &options, Some(&cache));
        assert_eq!(cache.stats().misses, 2, "no spurious sharing");
        assert_ne!(a.numerical, b.numerical);
    }

    #[test]
    fn spawned_jobs_report_progress_and_match_the_blocking_path() {
        let grid = small_fixed_grid();
        let executor = SweepExecutor::new(analytic_options().with_threads(2));
        let handle = executor.spawn(&grid);
        assert_eq!(handle.total(), grid.len());
        let result = handle.join();
        assert!(!result.cancelled);
        assert_eq!(result.results.rows.len(), grid.len());
        assert_eq!(result.results.rows, executor.run(&grid).rows);
    }

    #[test]
    fn cancel_mid_run_keeps_the_completed_in_order_prefix() {
        // A sink that parks the emitter on the first row until released: with
        // the in-order frontier blocked, workers pile up behind the emitter
        // mutex, so the cancel flag is guaranteed to be observed mid-run.
        struct GatedSink {
            rows: usize,
            gate: std::sync::mpsc::Receiver<()>,
        }
        impl crate::sink::SweepSink for GatedSink {
            fn on_row(&mut self, _row: &SweepRow) {
                if self.rows == 0 {
                    self.gate.recv().ok();
                }
                self.rows += 1;
            }
        }

        let grid = ScenarioGrid::builder()
            .scenarios(&ScenarioId::ALL)
            .processors(ProcessorAxis::Fixed(vec![200.0, 400.0, 800.0, 1600.0]))
            .lambda_multipliers(&[1.0, 10.0])
            .build()
            .unwrap();
        assert!(grid.len() >= 48);
        let (release, gate) = std::sync::mpsc::channel();
        let executor = SweepExecutor::new(analytic_options().with_threads(2));
        let handle = executor.spawn_with_sink(&grid, Box::new(GatedSink { rows: 0, gate }));
        while handle.completed() == 0 {
            std::thread::yield_now();
        }
        handle.cancel();
        assert_eq!(handle.status(), SweepJobStatus::Cancelled);
        release.send(()).unwrap();
        let result = handle.join();
        assert!(result.cancelled);
        let partial = result.results.rows;
        assert!(!partial.is_empty());
        assert!(partial.len() < grid.len(), "job was not interrupted");
        // The partial rows are the in-order prefix of an uncancelled run.
        let full = SweepExecutor::new(analytic_options().with_threads(1)).run(&grid);
        assert_eq!(partial[..], full.rows[..partial.len()]);
    }

    #[test]
    fn empty_threads_clamp_and_empty_grid_is_ok() {
        let grid = ScenarioGrid::builder()
            .scenarios(&[ScenarioId::S1])
            .build()
            .unwrap();
        // More threads than cells is fine (clamped to the cell count).
        let results = SweepExecutor::new(analytic_options().with_threads(64)).run(&grid);
        assert_eq!(results.rows.len(), 1);
    }

    fn test_model() -> ExactModel {
        ayd_platforms::ExperimentSetup::paper_default(
            ayd_platforms::PlatformId::Hera,
            ScenarioId::S1,
        )
        .model()
        .unwrap()
    }

    #[test]
    fn observed_evaluations_report_cold_and_warm_paths() {
        let options = analytic_options();
        let exp = FailureModelSpec::exponential();
        let cache = ShardedEvalCache::new(64, 4);
        let model = test_model();
        // First call computes (cache miss) and, under the default fast-strict
        // strategy, answers at least one scalar search via the fast path.
        let (first, observation) =
            evaluate_analytic_observed(&model, None, &exp, &options, Some(&cache));
        assert!(observation.computed);
        assert!(observation.search.total() > 0, "{:?}", observation.search);
        // Second call is a cache hit: same bits, no computation, no searches.
        let (second, observation) =
            evaluate_analytic_observed(&model, None, &exp, &options, Some(&cache));
        assert!(!observation.computed);
        assert_eq!(observation.search, SearchReport::default());
        assert_eq!(first, second);
        // Without a cache every call computes.
        let (uncached, observation) =
            evaluate_analytic_observed(&model, None, &exp, &options, None);
        assert!(observation.computed);
        assert_eq!(first, uncached);
    }

    #[test]
    fn evaluate_many_matches_one_by_one_evaluation_and_consults_the_cache() {
        let options = analytic_options();
        let model = test_model();
        let exp = FailureModelSpec::exponential();
        let queries: Vec<(ExactModel, Option<f64>, FailureModelSpec)> = vec![
            (model, None, exp.clone()),
            (model, Some(512.0), exp.clone()),
            (model, None, exp.clone()), // repeat → cache hit inside the batch
            (model, Some(2_048.0), exp.clone()),
        ];
        let cache = ShardedEvalCache::new(4, 64);
        let (evals, search) = evaluate_many(&queries, &options, Some(&cache));
        assert_eq!(evals.len(), queries.len());
        assert!(search.total() > 0);
        // The repeated query was answered from the cache (3 misses, 1 hit).
        let stats = cache.stats();
        assert_eq!((stats.misses, stats.hits), (3, 1), "{stats:?}");
        // Each batched answer is bit-identical to a standalone evaluation.
        for ((model, fixed, failure), eval) in queries.iter().zip(&evals) {
            let alone = evaluate_analytic(model, *fixed, failure, &options, None);
            assert_eq!(&alone, eval);
        }
        // Uncached batches agree too.
        let (uncached, _) = evaluate_many(&queries, &options, None);
        assert_eq!(evals, uncached);
    }

    #[test]
    fn cache_keys_distinguish_failure_families_with_identical_rows() {
        // weibull:1.0 rows are bit-identical to exp rows, but the families
        // must still keep separate cache entries (the family tag is part of
        // the key), exactly like powerlaw:0.8 vs gustafson:0.8 above.
        let model = test_model();
        let options = analytic_options();
        let exp = FailureModelSpec::exponential();
        let weibull_one = FailureModelSpec::weibull(1.0).unwrap();
        let weibull = FailureModelSpec::weibull(0.7).unwrap();
        let shifted = FailureModelSpec::shifted(0.0).unwrap();
        let keys = [
            analytic_cache_key(&model, None, &exp, &options),
            analytic_cache_key(&model, None, &weibull_one, &options),
            analytic_cache_key(&model, None, &weibull, &options),
            analytic_cache_key(&model, None, &shifted, &options),
        ];
        for (i, a) in keys.iter().enumerate() {
            for b in &keys[i + 1..] {
                assert_ne!(a, b, "failure families must not share cache entries");
            }
        }
        // Distinct traces hash to distinct keys; the same trace twice agrees.
        let trace_a = FailureModelSpec::trace("logs/a.trace").unwrap();
        let trace_b = FailureModelSpec::trace("logs/b.trace").unwrap();
        assert_ne!(
            analytic_cache_key(&model, None, &trace_a, &options),
            analytic_cache_key(&model, None, &trace_b, &options)
        );
        assert_eq!(
            analytic_cache_key(&model, None, &trace_a, &options),
            analytic_cache_key(
                &model,
                None,
                &FailureModelSpec::trace("logs/a.trace").unwrap(),
                &options
            )
        );
        // The values behind the distinct exp/weibull:1.0 entries are still
        // bit-identical — the keystone of the degenerate-spec contract.
        let a = evaluate_analytic(&model, None, &exp, &options, None);
        let b = evaluate_analytic(&model, None, &weibull_one, &options, None);
        assert_eq!(a, b);
    }

    #[test]
    fn non_exponential_cells_simulate_the_primary_point_under_the_true_law() {
        // Even with every simulation-attachment flag off, a weibull cell gets
        // a primary-point simulation (the misspecification ground truth), and
        // it differs from the exponential cell's simulation.
        let options = SweepOptions::new(RunOptions::smoke())
            .with_simulate_first_order(false)
            .with_simulate_numerical(false);
        let grid = ScenarioGrid::builder()
            .scenarios(&[ScenarioId::S1])
            .failure_models(&[
                FailureModelSpec::exponential(),
                FailureModelSpec::weibull(0.7).unwrap(),
            ])
            .lambda_multipliers(&[10.0])
            .processors(ProcessorAxis::Fixed(vec![512.0]))
            .build()
            .unwrap();
        let results = SweepExecutor::new(options).run(&grid);
        let exp_row = &results.rows[0];
        let weibull_row = &results.rows[1];
        assert!(exp_row.failure_model.is_exponential());
        assert_eq!(weibull_row.failure_model.kind(), "weibull");
        // The flags suppressed the exponential cell's simulations entirely…
        assert!(exp_row.primary_point().simulated.is_none());
        // …but the weibull cell still simulated its primary point.
        let simulated = weibull_row.primary_point().simulated.unwrap();
        assert!(simulated.mean.is_finite() && simulated.mean > 0.0);
        // And the analytic series are identical across the two rows: the
        // model is exponential regardless of the sampling law.
        assert_eq!(exp_row.numerical, {
            let mut n = weibull_row.numerical;
            n.simulated = None;
            n
        });
    }

    #[test]
    fn sweep_results_tally_fast_and_fallback_searches() {
        let grid = small_fixed_grid();
        // The default strategy is fast-strict: the tally must account for
        // every scalar search the grid ran.
        let results = SweepExecutor::new(analytic_options().with_threads(2)).run(&grid);
        assert!(results.search.total() > 0, "{:?}", results.search);
        // The reference strategy never touches the fast path.
        let reference_run = RunOptions {
            simulate: false,
            search: crate::options::SearchStrategy::Reference,
            ..RunOptions::smoke()
        };
        let reference = SweepExecutor::new(SweepOptions::new(reference_run)).run(&grid);
        assert_eq!(reference.search, SearchReport::default());
        // And the rows agree byte-for-byte regardless (the core contract).
        assert_eq!(results.rows, reference.rows);
    }

    #[test]
    fn cache_entries_are_keyed_per_search_strategy() {
        let model = test_model();
        let exp = FailureModelSpec::exponential();
        let fast = analytic_options();
        let reference = SweepOptions::new(RunOptions {
            simulate: false,
            search: crate::options::SearchStrategy::Reference,
            ..RunOptions::smoke()
        });
        assert_ne!(
            analytic_cache_key(&model, None, &exp, &fast),
            analytic_cache_key(&model, None, &exp, &reference),
            "strategies must not share cache entries"
        );
        // A shared cache serves both strategies without cross-talk: two
        // strategies, two misses, then one hit each.
        let cache = ShardedEvalCache::new(64, 4);
        let (a, _) = evaluate_analytic_observed(&model, None, &exp, &fast, Some(&cache));
        let (b, _) = evaluate_analytic_observed(&model, None, &exp, &reference, Some(&cache));
        assert_eq!(a, b, "strategies are bit-identical");
        assert_eq!(cache.stats().misses, 2);
        evaluate_analytic_observed(&model, None, &exp, &fast, Some(&cache));
        evaluate_analytic_observed(&model, None, &exp, &reference, Some(&cache));
        assert_eq!(cache.stats().hits, 2);
    }
}
