//! LRU-style memoisation of per-cell model evaluations.
//!
//! Sweeps frequently revisit the same analytical configuration — e.g. a grid
//! that crosses pattern lengths with processor counts rebuilds the same model
//! per `(platform, scenario, α, λ)` combination, and the numerical optimiser is
//! by far the most expensive part of a no-simulation sweep. [`EvalCache`]
//! memoises those evaluations behind a mutex, keyed on *quantized* model inputs
//! (the low 12 mantissa bits of every `f64` are masked off, ≈ 4 × 10⁻¹³
//! relative) so that axis values reconstructed through arithmetically different
//! but mathematically equal routes still hit the same entry.
//!
//! Because the cached value is itself the output of a deterministic
//! computation, caching never changes results — a sweep with the cache
//! disabled produces bit-identical output (asserted by the property suite).
//!
//! The merge tolerance is part of that contract: two configurations whose
//! inputs differ by less than the quantization step (≈ 4 × 10⁻¹³ relative)
//! are *defined* to be the same configuration and share one evaluation. Grid
//! axes with meaningful spacing (every realistic sweep) sit many orders of
//! magnitude above the step; only axes deliberately constructed with
//! sub-quantum spacing would observe the merge.

use std::collections::HashMap;
use std::sync::Mutex;

/// A cache key: quantized bit patterns of the inputs of one evaluation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey(Vec<u64>);

impl CacheKey {
    /// Builds a key from raw `f64` inputs, quantizing each one.
    pub fn from_inputs(inputs: &[f64]) -> Self {
        Self(inputs.iter().map(|&x| quantize(x)).collect())
    }
}

/// Maps an `f64` to its quantized bit pattern: NaN (used as an "absent" marker)
/// canonicalises to a fixed value, zero to zero, and any other finite value has
/// its 12 low mantissa bits cleared.
pub fn quantize(x: f64) -> u64 {
    if x.is_nan() {
        return u64::MAX;
    }
    if x == 0.0 {
        return 0;
    }
    x.to_bits() & !0xFFF
}

/// Hit/miss counters of a cache (or of a whole sweep).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CacheStats {
    /// Number of lookups answered from the cache.
    pub hits: u64,
    /// Number of lookups that had to compute.
    pub misses: u64,
    /// Number of entries evicted to respect the capacity bound.
    pub evictions: u64,
}

impl CacheStats {
    /// Fraction of lookups answered from the cache (0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Component-wise sum of two counter sets (used to merge per-shard stats).
    pub fn merged(self, other: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            evictions: self.evictions + other.evictions,
        }
    }
}

struct Entry<V> {
    stamp: u64,
    value: V,
}

struct Inner<V> {
    map: HashMap<CacheKey, Entry<V>>,
    clock: u64,
    stats: CacheStats,
}

/// A bounded, thread-safe memoisation cache with least-recently-used eviction.
pub struct EvalCache<V> {
    inner: Mutex<Inner<V>>,
    capacity: usize,
}

impl<V: Clone> EvalCache<V> {
    /// Creates a cache holding at most `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                clock: 0,
                stats: CacheStats::default(),
            }),
            capacity: capacity.max(1),
        }
    }

    /// Returns the cached value for `key`, computing and inserting it on a miss.
    ///
    /// The lock is *not* held while `compute` runs, so concurrent misses on the
    /// same key may compute twice; both arrive at the same deterministic value,
    /// so this is a throughput trade-off, not a correctness one.
    pub fn get_or_insert_with(&self, key: CacheKey, compute: impl FnOnce() -> V) -> V {
        {
            let mut inner = self.inner.lock().expect("cache poisoned");
            inner.clock += 1;
            let clock = inner.clock;
            if let Some(entry) = inner.map.get_mut(&key) {
                entry.stamp = clock;
                let value = entry.value.clone();
                inner.stats.hits += 1;
                return value;
            }
            inner.stats.misses += 1;
        }
        let value = compute();
        let mut inner = self.inner.lock().expect("cache poisoned");
        if inner.map.len() >= self.capacity && !inner.map.contains_key(&key) {
            // Evict the least-recently-used entry. The linear scan is fine: it
            // only runs once the cache is full, and sweep caches are sized so
            // that eviction is the exception, not the steady state.
            if let Some(oldest) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k.clone())
            {
                inner.map.remove(&oldest);
                inner.stats.evictions += 1;
            }
        }
        inner.clock += 1;
        let clock = inner.clock;
        inner.map.insert(
            key,
            Entry {
                stamp: clock,
                value: value.clone(),
            },
        );
        value
    }

    /// Current hit/miss/eviction counters.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().expect("cache poisoned").stats
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache poisoned").map.len()
    }

    /// True when the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A sharded variant of [`EvalCache`] for highly concurrent callers.
///
/// Keys are routed to one of `N` independently locked shards by their hash, so
/// concurrent lookups of *different* configurations proceed without contending
/// on a single mutex (the single-lock [`EvalCache`] serialises every lookup).
/// The long-lived query service (`ayd-serve`) keeps one process-wide instance;
/// the sweep executor shards by worker count.
///
/// Semantics are identical to [`EvalCache`] for any workload that fits in the
/// per-shard capacity: a key deduplicates onto the same shard every time, so
/// hit/miss counts — and therefore the hit rate — match the single-shard cache
/// exactly as long as no shard evicts (asserted by the property suite). Under
/// eviction pressure the LRU horizon is per-shard rather than global, which can
/// change *which* entry is evicted but never the cached values themselves.
pub struct ShardedEvalCache<V> {
    shards: Vec<EvalCache<V>>,
}

impl<V: Clone> ShardedEvalCache<V> {
    /// Creates a cache of `shards` independent shards (minimum 1) holding at
    /// most `capacity` entries in total (split evenly, rounding up).
    pub fn new(shards: usize, capacity: usize) -> Self {
        let shards = shards.max(1);
        let per_shard = capacity.div_ceil(shards).max(1);
        Self {
            shards: (0..shards).map(|_| EvalCache::new(per_shard)).collect(),
        }
    }

    /// The shard a key routes to (stable for the lifetime of the cache).
    fn shard(&self, key: &CacheKey) -> &EvalCache<V> {
        use std::hash::{Hash, Hasher};
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % self.shards.len()]
    }

    /// Returns the cached value for `key`, computing and inserting it on a
    /// miss. Same locking contract as [`EvalCache::get_or_insert_with`], but
    /// only the key's shard is locked.
    pub fn get_or_insert_with(&self, key: CacheKey, compute: impl FnOnce() -> V) -> V {
        self.shard(&key).get_or_insert_with(key, compute)
    }

    /// Merged hit/miss/eviction counters across every shard.
    pub fn stats(&self) -> CacheStats {
        self.shard_stats()
            .into_iter()
            .fold(CacheStats::default(), CacheStats::merged)
    }

    /// Per-shard counters, in shard order.
    pub fn shard_stats(&self) -> Vec<CacheStats> {
        self.shards.iter().map(EvalCache::stats).collect()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total number of live entries across every shard.
    pub fn len(&self) -> usize {
        self.shards.iter().map(EvalCache::len).sum()
    }

    /// True when no shard holds any entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_after_first_computation() {
        let cache: EvalCache<u64> = EvalCache::new(8);
        let key = || CacheKey::from_inputs(&[1.0, 2.0]);
        assert_eq!(cache.get_or_insert_with(key(), || 7), 7);
        // The second lookup must not recompute.
        assert_eq!(cache.get_or_insert_with(key(), || panic!("recomputed")), 7);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn quantization_merges_ulp_noise_but_separates_axis_values() {
        // One-ulp perturbations collapse onto the same key...
        let x: f64 = 1.69e-8;
        let x_ulp = f64::from_bits(x.to_bits() + 1);
        assert_eq!(quantize(x), quantize(x_ulp));
        // ...but genuinely different axis values do not.
        assert_ne!(quantize(200.0), quantize(400.0));
        assert_ne!(quantize(1e-9), quantize(1.0001e-9));
        // NaN is a canonical "absent" marker and zero is exact.
        assert_eq!(quantize(f64::NAN), quantize(f64::NAN));
        assert_eq!(quantize(0.0), 0);
    }

    #[test]
    fn capacity_is_enforced_with_lru_eviction() {
        let cache: EvalCache<usize> = EvalCache::new(2);
        let key = |i: usize| CacheKey::from_inputs(&[i as f64]);
        cache.get_or_insert_with(key(1), || 1);
        cache.get_or_insert_with(key(2), || 2);
        // Touch 1 so that 2 is the LRU entry.
        cache.get_or_insert_with(key(1), || panic!("must hit"));
        cache.get_or_insert_with(key(3), || 3);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        // 1 survived, 2 was evicted.
        cache.get_or_insert_with(key(1), || panic!("must hit"));
        assert_eq!(cache.get_or_insert_with(key(2), || 22), 22);
    }

    #[test]
    fn concurrent_access_is_consistent() {
        let cache: EvalCache<u64> = EvalCache::new(64);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for i in 0..200u64 {
                        let got = cache
                            .get_or_insert_with(CacheKey::from_inputs(&[(i % 16) as f64]), || {
                                (i % 16) * 10
                            });
                        assert_eq!(got, (i % 16) * 10);
                    }
                });
            }
        });
        assert_eq!(cache.len(), 16);
    }

    #[test]
    fn sharded_cache_routes_each_key_to_one_stable_shard() {
        let cache: ShardedEvalCache<u64> = ShardedEvalCache::new(8, 64);
        assert_eq!(cache.shard_count(), 8);
        for i in 0..32u64 {
            cache.get_or_insert_with(CacheKey::from_inputs(&[i as f64]), || i);
        }
        // Replaying the same keys must hit — same key, same shard.
        for i in 0..32u64 {
            let got =
                cache.get_or_insert_with(CacheKey::from_inputs(&[i as f64]), || unreachable!());
            assert_eq!(got, i);
        }
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.evictions), (32, 32, 0));
        assert_eq!(cache.len(), 32);
        // The merged stats are exactly the sum of the per-shard stats.
        let summed = cache
            .shard_stats()
            .into_iter()
            .fold(CacheStats::default(), CacheStats::merged);
        assert_eq!(stats, summed);
    }

    #[test]
    fn sharded_cache_is_consistent_under_concurrency() {
        let cache: ShardedEvalCache<u64> = ShardedEvalCache::new(4, 256);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for i in 0..400u64 {
                        let got = cache
                            .get_or_insert_with(CacheKey::from_inputs(&[(i % 32) as f64]), || {
                                (i % 32) * 3
                            });
                        assert_eq!(got, (i % 32) * 3);
                    }
                });
            }
        });
        assert_eq!(cache.len(), 32);
        let stats = cache.stats();
        // Concurrent misses on one key may compute twice, but every lookup is
        // accounted for exactly once.
        assert_eq!(stats.hits + stats.misses, 4 * 400);
    }

    #[test]
    fn shard_capacity_splits_the_total_and_enforces_a_floor() {
        // Total capacity 4 over 8 shards → 1 entry per shard, never 0.
        let tiny: ShardedEvalCache<u64> = ShardedEvalCache::new(8, 4);
        for i in 0..64u64 {
            tiny.get_or_insert_with(CacheKey::from_inputs(&[i as f64]), || i);
        }
        assert!(tiny.len() <= 8, "len {} exceeds shard capacity", tiny.len());
        assert!(tiny.stats().evictions > 0);
        // A zero-shard request is clamped to one shard.
        let one: ShardedEvalCache<u64> = ShardedEvalCache::new(0, 16);
        assert_eq!(one.shard_count(), 1);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// Replays a workload sequentially and returns (stats, values).
        fn replay(workload: &[u64], lookup: impl Fn(CacheKey, u64) -> u64) -> Vec<u64> {
            workload
                .iter()
                .map(|&k| lookup(CacheKey::from_inputs(&[k as f64]), k))
                .collect()
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// For any eviction-free workload the sharded cache scores exactly
            /// the same hit/miss counts (hence hit rate) as the single-shard
            /// cache, its merged stats are the sum of the shard stats, and the
            /// returned values are identical.
            #[test]
            fn sharded_stats_match_single_shard(
                workload in prop::collection::vec(0u64..24, 1..160),
                shards in 1usize..9,
            ) {
                // Capacity ≥ domain × shards ⇒ no shard can evict.
                let capacity = 24 * shards;
                let single: EvalCache<u64> = EvalCache::new(capacity);
                let sharded: ShardedEvalCache<u64> = ShardedEvalCache::new(shards, capacity);
                let single_values =
                    replay(&workload, |key, k| single.get_or_insert_with(key, || k * 7));
                let sharded_values =
                    replay(&workload, |key, k| sharded.get_or_insert_with(key, || k * 7));
                prop_assert_eq!(single_values, sharded_values);

                let merged = sharded.stats();
                prop_assert_eq!(single.stats(), merged);
                prop_assert_eq!(merged.evictions, 0);
                prop_assert!((single.stats().hit_rate() - merged.hit_rate()).abs() < 1e-15);
                prop_assert_eq!(single.len(), sharded.len());

                // The merged counters are exactly the component-wise sum of the
                // per-shard counters.
                let summed = sharded
                    .shard_stats()
                    .into_iter()
                    .fold(CacheStats::default(), CacheStats::merged);
                prop_assert_eq!(merged, summed);
            }

            /// Even under eviction pressure (where LRU horizons differ), every
            /// lookup is counted exactly once and values stay correct.
            #[test]
            fn sharded_lookups_are_fully_accounted(
                workload in prop::collection::vec(0u64..48, 1..200),
                shards in 1usize..7,
                capacity in 1usize..16,
            ) {
                let sharded: ShardedEvalCache<u64> = ShardedEvalCache::new(shards, capacity);
                let values =
                    replay(&workload, |key, k| sharded.get_or_insert_with(key, || k + 1));
                for (&k, &v) in workload.iter().zip(&values) {
                    prop_assert_eq!(v, k + 1);
                }
                let stats = sharded.stats();
                prop_assert_eq!(stats.hits + stats.misses, workload.len() as u64);
            }
        }
    }
}
