//! LRU-style memoisation of per-cell model evaluations.
//!
//! Sweeps frequently revisit the same analytical configuration — e.g. a grid
//! that crosses pattern lengths with processor counts rebuilds the same model
//! per `(platform, scenario, α, λ)` combination, and the numerical optimiser is
//! by far the most expensive part of a no-simulation sweep. [`EvalCache`]
//! memoises those evaluations behind a mutex, keyed on *quantized* model inputs
//! (the low 12 mantissa bits of every `f64` are masked off, ≈ 4 × 10⁻¹³
//! relative) so that axis values reconstructed through arithmetically different
//! but mathematically equal routes still hit the same entry.
//!
//! Because the cached value is itself the output of a deterministic
//! computation, caching never changes results — a sweep with the cache
//! disabled produces bit-identical output (asserted by the property suite).
//!
//! The merge tolerance is part of that contract: two configurations whose
//! inputs differ by less than the quantization step (≈ 4 × 10⁻¹³ relative)
//! are *defined* to be the same configuration and share one evaluation. Grid
//! axes with meaningful spacing (every realistic sweep) sit many orders of
//! magnitude above the step; only axes deliberately constructed with
//! sub-quantum spacing would observe the merge.

use std::collections::HashMap;
use std::sync::Mutex;

/// A cache key: quantized bit patterns of the inputs of one evaluation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey(Vec<u64>);

impl CacheKey {
    /// Builds a key from raw `f64` inputs, quantizing each one.
    pub fn from_inputs(inputs: &[f64]) -> Self {
        Self(inputs.iter().map(|&x| quantize(x)).collect())
    }
}

/// Maps an `f64` to its quantized bit pattern: NaN (used as an "absent" marker)
/// canonicalises to a fixed value, zero to zero, and any other finite value has
/// its 12 low mantissa bits cleared.
pub fn quantize(x: f64) -> u64 {
    if x.is_nan() {
        return u64::MAX;
    }
    if x == 0.0 {
        return 0;
    }
    x.to_bits() & !0xFFF
}

/// Hit/miss counters of a cache (or of a whole sweep).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CacheStats {
    /// Number of lookups answered from the cache.
    pub hits: u64,
    /// Number of lookups that had to compute.
    pub misses: u64,
    /// Number of entries evicted to respect the capacity bound.
    pub evictions: u64,
}

impl CacheStats {
    /// Fraction of lookups answered from the cache (0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry<V> {
    stamp: u64,
    value: V,
}

struct Inner<V> {
    map: HashMap<CacheKey, Entry<V>>,
    clock: u64,
    stats: CacheStats,
}

/// A bounded, thread-safe memoisation cache with least-recently-used eviction.
pub struct EvalCache<V> {
    inner: Mutex<Inner<V>>,
    capacity: usize,
}

impl<V: Clone> EvalCache<V> {
    /// Creates a cache holding at most `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                clock: 0,
                stats: CacheStats::default(),
            }),
            capacity: capacity.max(1),
        }
    }

    /// Returns the cached value for `key`, computing and inserting it on a miss.
    ///
    /// The lock is *not* held while `compute` runs, so concurrent misses on the
    /// same key may compute twice; both arrive at the same deterministic value,
    /// so this is a throughput trade-off, not a correctness one.
    pub fn get_or_insert_with(&self, key: CacheKey, compute: impl FnOnce() -> V) -> V {
        {
            let mut inner = self.inner.lock().expect("cache poisoned");
            inner.clock += 1;
            let clock = inner.clock;
            if let Some(entry) = inner.map.get_mut(&key) {
                entry.stamp = clock;
                let value = entry.value.clone();
                inner.stats.hits += 1;
                return value;
            }
            inner.stats.misses += 1;
        }
        let value = compute();
        let mut inner = self.inner.lock().expect("cache poisoned");
        if inner.map.len() >= self.capacity && !inner.map.contains_key(&key) {
            // Evict the least-recently-used entry. The linear scan is fine: it
            // only runs once the cache is full, and sweep caches are sized so
            // that eviction is the exception, not the steady state.
            if let Some(oldest) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k.clone())
            {
                inner.map.remove(&oldest);
                inner.stats.evictions += 1;
            }
        }
        inner.clock += 1;
        let clock = inner.clock;
        inner.map.insert(
            key,
            Entry {
                stamp: clock,
                value: value.clone(),
            },
        );
        value
    }

    /// Current hit/miss/eviction counters.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().expect("cache poisoned").stats
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache poisoned").map.len()
    }

    /// True when the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_after_first_computation() {
        let cache: EvalCache<u64> = EvalCache::new(8);
        let key = || CacheKey::from_inputs(&[1.0, 2.0]);
        assert_eq!(cache.get_or_insert_with(key(), || 7), 7);
        // The second lookup must not recompute.
        assert_eq!(cache.get_or_insert_with(key(), || panic!("recomputed")), 7);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn quantization_merges_ulp_noise_but_separates_axis_values() {
        // One-ulp perturbations collapse onto the same key...
        let x: f64 = 1.69e-8;
        let x_ulp = f64::from_bits(x.to_bits() + 1);
        assert_eq!(quantize(x), quantize(x_ulp));
        // ...but genuinely different axis values do not.
        assert_ne!(quantize(200.0), quantize(400.0));
        assert_ne!(quantize(1e-9), quantize(1.0001e-9));
        // NaN is a canonical "absent" marker and zero is exact.
        assert_eq!(quantize(f64::NAN), quantize(f64::NAN));
        assert_eq!(quantize(0.0), 0);
    }

    #[test]
    fn capacity_is_enforced_with_lru_eviction() {
        let cache: EvalCache<usize> = EvalCache::new(2);
        let key = |i: usize| CacheKey::from_inputs(&[i as f64]);
        cache.get_or_insert_with(key(1), || 1);
        cache.get_or_insert_with(key(2), || 2);
        // Touch 1 so that 2 is the LRU entry.
        cache.get_or_insert_with(key(1), || panic!("must hit"));
        cache.get_or_insert_with(key(3), || 3);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        // 1 survived, 2 was evicted.
        cache.get_or_insert_with(key(1), || panic!("must hit"));
        assert_eq!(cache.get_or_insert_with(key(2), || 22), 22);
    }

    #[test]
    fn concurrent_access_is_consistent() {
        let cache: EvalCache<u64> = EvalCache::new(64);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for i in 0..200u64 {
                        let got = cache
                            .get_or_insert_with(CacheKey::from_inputs(&[(i % 16) as f64]), || {
                                (i % 16) * 10
                            });
                        assert_eq!(got, (i % 16) * 10);
                    }
                });
            }
        });
        assert_eq!(cache.len(), 16);
    }
}
