//! Wire framing for shard result exchange between cluster nodes.
//!
//! A worker streams its shard's rows back to the coordinator in chunks; each
//! [`ShardChunk`] carries a contiguous run of CSV rows together with the
//! manifest snapshot taken *after* the run's last row was written, so the
//! receiver can validate the chunk against the sweep's fingerprints and its
//! own checkpoint before accepting a single byte. The format is plain text
//! (the offline build has no JSON codec for nested documents) and versioned
//! by a magic first line, like the sidecar manifest:
//!
//! ```text
//! ayd-shard-chunk v1
//! from_row = 16
//! rows = 8
//! ---
//! <manifest text (ayd-sweep-manifest v1 ...)>
//! ---
//! <8 newline-terminated CSV rows, no header>
//! ```
//!
//! Parsing is strict: the declared row count must match the payload, every
//! row must be newline-terminated with exactly the canonical header's field
//! count (a torn final row — the tail a `kill -9` can leave — is rejected,
//! never silently truncated on the receiving side), and the manifest's
//! `completed` must equal `from_row + rows` (the chunk *is* the checkpoint
//! advance it claims to be).

use crate::manifest::SweepManifest;
use crate::shard::ShardError;
use crate::sink::CSV_HEADER;

/// Format tag of a shard result chunk; bumped on incompatible changes.
pub const CHUNK_MAGIC: &str = "ayd-shard-chunk v1";

/// One contiguous run of shard rows in flight from a worker to the
/// coordinator, with the manifest snapshot that makes it verifiable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardChunk {
    /// Manifest snapshot taken after this chunk's last row was written;
    /// `manifest.completed == from_row + rows`.
    pub manifest: SweepManifest,
    /// Shard-local index of the chunk's first row (0-based).
    pub from_row: usize,
    /// The rows: newline-terminated canonical CSV lines, no header.
    pub rows: String,
}

/// Number of commas in one well-formed canonical CSV row.
fn header_commas() -> usize {
    CSV_HEADER.matches(',').count()
}

/// Splits `rows` into complete, well-formed CSV rows. Rejects a missing
/// final newline (a torn row) and any row whose field count differs from
/// the canonical header's.
pub fn validate_rows(rows: &str) -> Result<usize, ShardError> {
    if rows.is_empty() {
        return Ok(0);
    }
    if !rows.ends_with('\n') {
        return Err(ShardError::Mismatch(
            "chunk rows end with a torn (unterminated) row".to_string(),
        ));
    }
    let commas = header_commas();
    let mut count = 0;
    for row in rows.lines() {
        if row.matches(',').count() != commas {
            return Err(ShardError::Mismatch(format!(
                "chunk row {count} has {} fields, expected {}",
                row.matches(',').count() + 1,
                commas + 1
            )));
        }
        count += 1;
    }
    Ok(count)
}

impl ShardChunk {
    /// Builds a chunk, checking the internal consistency [`Self::parse`]
    /// would enforce on the receiving side.
    pub fn new(manifest: SweepManifest, from_row: usize, rows: String) -> Result<Self, ShardError> {
        let chunk = Self {
            manifest,
            from_row,
            rows,
        };
        chunk.check()?;
        Ok(chunk)
    }

    /// Number of rows in the chunk.
    pub fn row_count(&self) -> usize {
        self.rows.lines().count()
    }

    fn check(&self) -> Result<(), ShardError> {
        let rows = validate_rows(&self.rows)?;
        let claimed = self
            .from_row
            .checked_add(rows)
            .ok_or_else(|| ShardError::Mismatch("chunk row range overflows".to_string()))?;
        if self.manifest.completed != claimed {
            return Err(ShardError::Mismatch(format!(
                "manifest says {} rows completed but the chunk covers rows {}..{}",
                self.manifest.completed, self.from_row, claimed
            )));
        }
        Ok(())
    }

    /// Renders the chunk in its canonical wire form.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(128 + self.rows.len());
        out.push_str(CHUNK_MAGIC);
        out.push('\n');
        out.push_str(&format!("from_row = {}\n", self.from_row));
        out.push_str(&format!("rows = {}\n", self.row_count()));
        out.push_str("---\n");
        out.push_str(&self.manifest.render());
        out.push_str("---\n");
        out.push_str(&self.rows);
        out
    }

    /// Parses the canonical wire form back. Strict: magic line, declared row
    /// count equal to the payload's, well-formed newline-terminated rows, and
    /// a manifest whose `completed` equals `from_row + rows`.
    pub fn parse(text: &str) -> Result<Self, ShardError> {
        let bad = |message: String| ShardError::Manifest(message);
        let rest = text
            .strip_prefix(CHUNK_MAGIC)
            .and_then(|rest| rest.strip_prefix('\n'))
            .ok_or_else(|| bad(format!("missing magic line `{CHUNK_MAGIC}`")))?;
        let (from_line, rest) = rest
            .split_once('\n')
            .ok_or_else(|| bad("truncated chunk header".to_string()))?;
        let from_row = from_line
            .strip_prefix("from_row = ")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| bad(format!("malformed chunk line `{from_line}`")))?;
        let (rows_line, rest) = rest
            .split_once('\n')
            .ok_or_else(|| bad("truncated chunk header".to_string()))?;
        let declared: usize = rows_line
            .strip_prefix("rows = ")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| bad(format!("malformed chunk line `{rows_line}`")))?;
        let rest = rest
            .strip_prefix("---\n")
            .ok_or_else(|| bad("missing manifest separator".to_string()))?;
        let (manifest_text, rows) = rest
            .split_once("---\n")
            .ok_or_else(|| bad("missing rows separator".to_string()))?;
        let manifest = SweepManifest::parse(manifest_text)?;
        let chunk = Self {
            manifest,
            from_row,
            rows: rows.to_string(),
        };
        if chunk.row_count() != declared {
            return Err(bad(format!(
                "chunk declares {declared} rows but carries {}",
                chunk.row_count()
            )));
        }
        chunk.check()?;
        Ok(chunk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::SweepOptions;
    use crate::grid::{ProcessorAxis, ScenarioGrid};
    use crate::options::RunOptions;
    use crate::shard::ShardSpec;
    use ayd_platforms::ScenarioId;

    fn grid() -> ScenarioGrid {
        ScenarioGrid::builder()
            .scenarios(&[ScenarioId::S1, ScenarioId::S3])
            .processors(ProcessorAxis::Fixed(vec![256.0, 1024.0]))
            .build()
            .unwrap()
    }

    fn options() -> SweepOptions {
        SweepOptions::new(RunOptions {
            simulate: false,
            ..RunOptions::smoke()
        })
    }

    fn fake_row() -> String {
        let fields = CSV_HEADER.matches(',').count() + 1;
        let mut row = vec!["x"; fields].join(",");
        row.push('\n');
        row
    }

    #[test]
    fn chunks_round_trip_through_text() {
        let mut manifest = SweepManifest::new(&grid(), &options(), ShardSpec::WHOLE);
        manifest.completed = 3;
        let rows = fake_row().repeat(2);
        let chunk = ShardChunk::new(manifest, 1, rows).unwrap();
        assert_eq!(chunk.row_count(), 2);
        let parsed = ShardChunk::parse(&chunk.render()).unwrap();
        assert_eq!(parsed, chunk);
    }

    #[test]
    fn empty_chunks_round_trip() {
        // A worker that checkpoints without new rows (e.g. a resume probe)
        // sends an empty chunk; the manifest must agree with from_row.
        let mut manifest = SweepManifest::new(&grid(), &options(), ShardSpec::WHOLE);
        manifest.completed = 2;
        let chunk = ShardChunk::new(manifest, 2, String::new()).unwrap();
        assert_eq!(chunk.row_count(), 0);
        assert_eq!(ShardChunk::parse(&chunk.render()).unwrap(), chunk);
    }

    #[test]
    fn torn_and_malformed_rows_are_rejected() {
        let mut manifest = SweepManifest::new(&grid(), &options(), ShardSpec::WHOLE);
        manifest.completed = 2;
        // Torn final row: missing the trailing newline.
        let torn = format!("{}{}", fake_row(), fake_row().trim_end());
        let err = ShardChunk::new(manifest.clone(), 0, torn).unwrap_err();
        assert!(err.to_string().contains("torn"), "{err}");
        // Wrong field count.
        let short = "a,b,c\n".repeat(2);
        let err = ShardChunk::new(manifest.clone(), 0, short).unwrap_err();
        assert!(err.to_string().contains("fields"), "{err}");
        // Manifest checkpoint disagreeing with the row range.
        let err = ShardChunk::new(manifest, 1, fake_row().repeat(2)).unwrap_err();
        assert!(err.to_string().contains("completed"), "{err}");
    }

    #[test]
    fn parse_rejects_tampered_wire_text() {
        let mut manifest = SweepManifest::new(&grid(), &options(), ShardSpec::WHOLE);
        manifest.completed = 1;
        let wire = ShardChunk::new(manifest, 0, fake_row()).unwrap().render();
        assert!(ShardChunk::parse(&wire["ayd".len()..]).is_err());
        assert!(ShardChunk::parse(&wire.replace("rows = 1", "rows = 2")).is_err());
        assert!(ShardChunk::parse(&wire.replace("from_row = 0", "from_row = 9")).is_err());
        // Truncating the payload (the torn suffix a dead TCP stream leaves).
        assert!(ShardChunk::parse(&wire[..wire.len() - 2]).is_err());
        // Dropping the manifest separator.
        assert!(ShardChunk::parse(&wire.replacen("---\n", "", 1)).is_err());
    }
}
