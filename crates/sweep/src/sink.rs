//! Streaming sinks: consume sweep rows in cell order as they complete.
//!
//! The executor feeds sinks through a reorder buffer, so [`SweepSink::on_row`]
//! always observes rows in the grid's deterministic cell order even though the
//! cells complete out of order across worker threads. [`CsvSink`] streams the
//! canonical CSV; [`ReportSink`] accumulates a compact summary.

use std::io::Write;
use std::sync::{Arc, Mutex};

use crate::evaluate::SimSummary;
use crate::executor::{SweepResults, SweepRow};

/// Column header of the canonical sweep CSV, pinned by the golden test suite.
///
/// `profile` holds the profile family (`amdahl`, `perfect`, `powerlaw`,
/// `gustafson`) and `profile_param` its parameter (`α` or `σ`, empty for
/// `perfect`); `alpha` keeps the Amdahl-equivalent sequential fraction and is
/// empty for extension profiles. `failure_model` holds the failure-arrival
/// family (`exp`, `weibull`, `shifted`, `trace`) and `failure_param` its
/// parameter (shape `k` or shift `d`; empty for `exp` and `trace`).
pub const CSV_HEADER: &str = "platform,scenario,alpha,profile,profile_param,\
failure_model,failure_param,\
lambda_ind,lambda_multiplier,processors,\
pattern_length,fo_processors,fo_period,fo_overhead,fo_formula_overhead,fo_sim_mean,fo_sim_ci95,\
num_processors,num_period,num_overhead,num_sim_mean,num_sim_ci95,\
pattern_overhead,pattern_sim_mean,pattern_sim_ci95,stream_sim_mean,stream_sim_ci95";

fn push_value(out: &mut String, value: Option<f64>) {
    out.push(',');
    if let Some(v) = value {
        out.push_str(&format!("{v}"));
    }
}

fn push_sim(out: &mut String, sim: Option<SimSummary>) {
    push_value(out, sim.map(|s| s.mean));
    push_value(out, sim.map(|s| s.ci95));
}

/// Renders one row as its canonical CSV line (no trailing newline). Absent
/// values (no first-order optimum, no simulation, free axes, non-Amdahl
/// `alpha`) are empty cells. The profile parameter uses shortest-roundtrip
/// `f64` formatting, so parsing the two profile columns back reproduces the
/// profile bit-identically.
pub fn csv_line(row: &SweepRow) -> String {
    let profile = ayd_core::ProfileSpec::from(row.profile);
    let mut out = format!("{},{}", row.platform.name(), row.scenario);
    push_value(&mut out, row.alpha);
    out.push(',');
    out.push_str(profile.kind());
    push_value(&mut out, profile.param());
    out.push(',');
    out.push_str(row.failure_model.kind());
    push_value(&mut out, row.failure_model.param());
    out.push_str(&format!(",{},{}", row.lambda_ind, row.lambda_multiplier));
    push_value(&mut out, row.fixed_processors);
    push_value(&mut out, row.pattern_length);
    push_value(&mut out, row.first_order.map(|p| p.processors));
    push_value(&mut out, row.first_order.map(|p| p.period));
    push_value(&mut out, row.first_order.map(|p| p.predicted_overhead));
    push_value(&mut out, row.first_order.and_then(|p| p.formula_overhead));
    push_sim(&mut out, row.first_order.and_then(|p| p.simulated));
    push_value(&mut out, Some(row.numerical.processors));
    push_value(&mut out, Some(row.numerical.period));
    push_value(&mut out, Some(row.numerical.predicted_overhead));
    push_sim(&mut out, row.numerical.simulated);
    push_value(&mut out, row.prescribed.map(|p| p.predicted_overhead));
    push_sim(&mut out, row.prescribed.and_then(|p| p.simulated));
    push_sim(&mut out, row.stream_simulated);
    out
}

/// A sink observing the rows of a sweep in cell order.
///
/// Sinks must be `Send`: the executor calls them from whichever worker thread
/// completes the in-order frontier (under a mutex, so calls never overlap).
pub trait SweepSink: Send {
    /// Called once per row, in cell order.
    fn on_row(&mut self, row: &SweepRow);
    /// Called once after the sweep completes, with the assembled results.
    fn finish(&mut self, _results: &SweepResults) {}
}

/// Discards every row (the plain `run` path).
pub struct NullSink;

impl SweepSink for NullSink {
    fn on_row(&mut self, _row: &SweepRow) {}
}

/// Streams the canonical CSV (header first) into any writer.
pub struct CsvSink<W: Write + Send> {
    writer: W,
    wrote_header: bool,
}

impl<W: Write + Send> CsvSink<W> {
    /// Creates a CSV sink over `writer`. The header is written lazily with the
    /// first row (or by [`SweepSink::finish`] for empty sweeps).
    pub fn new(writer: W) -> Self {
        Self {
            writer,
            wrote_header: false,
        }
    }

    fn header(&mut self) {
        if !self.wrote_header {
            writeln!(self.writer, "{CSV_HEADER}").expect("CSV sink write failed");
            self.wrote_header = true;
        }
    }

    /// Consumes the sink, returning the writer.
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: Write + Send> SweepSink for CsvSink<W> {
    fn on_row(&mut self, row: &SweepRow) {
        self.header();
        writeln!(self.writer, "{}", csv_line(row)).expect("CSV sink write failed");
    }

    fn finish(&mut self, _results: &SweepResults) {
        self.header();
        self.writer.flush().expect("CSV sink flush failed");
    }
}

/// Accumulates a compact summary of a sweep: row count, overhead extrema and
/// the worst first-order-versus-numerical gap observed.
#[derive(Debug, Clone, Default)]
pub struct ReportSink {
    /// Number of rows observed.
    pub rows: usize,
    /// Smallest numerical overhead across the sweep.
    pub min_overhead: Option<(f64, usize)>,
    /// Largest numerical overhead across the sweep.
    pub max_overhead: Option<(f64, usize)>,
    /// Largest relative first-order-versus-numerical overhead gap.
    pub worst_gap: Option<(f64, usize)>,
}

impl SweepSink for ReportSink {
    fn on_row(&mut self, row: &SweepRow) {
        let index = self.rows;
        self.rows += 1;
        let h = row.numerical.predicted_overhead;
        if self.min_overhead.is_none_or(|(best, _)| h < best) {
            self.min_overhead = Some((h, index));
        }
        if self.max_overhead.is_none_or(|(best, _)| h > best) {
            self.max_overhead = Some((h, index));
        }
        if let Some(gap) = row.comparison().overhead_gap() {
            if self.worst_gap.is_none_or(|(worst, _)| gap.abs() > worst) {
                self.worst_gap = Some((gap.abs(), index));
            }
        }
    }
}

/// A sink shared behind `Arc<Mutex<…>>`, for collecting rows from a sweep while
/// retaining access to the inner sink afterwards.
pub struct SharedSink<S: SweepSink>(pub Arc<Mutex<S>>);

impl<S: SweepSink> SweepSink for SharedSink<S> {
    fn on_row(&mut self, row: &SweepRow) {
        // A panic in an unrelated holder must not cascade: the protected data
        // (an append-only sink) stays coherent, so recover the guard.
        self.0
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .on_row(row);
    }

    fn finish(&mut self, results: &SweepResults) {
        self.0
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .finish(results);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{SweepExecutor, SweepOptions};
    use crate::grid::{ProcessorAxis, ScenarioGrid};
    use crate::options::RunOptions;
    use ayd_platforms::ScenarioId;

    fn analytic() -> SweepOptions {
        SweepOptions::new(RunOptions {
            simulate: false,
            ..RunOptions::smoke()
        })
    }

    fn grid() -> ScenarioGrid {
        ScenarioGrid::builder()
            .scenarios(&[ScenarioId::S1, ScenarioId::S3])
            .processors(ProcessorAxis::Fixed(vec![256.0, 1024.0]))
            .build()
            .unwrap()
    }

    #[test]
    fn csv_sink_streams_the_same_bytes_as_to_csv() {
        let mut sink = CsvSink::new(Vec::<u8>::new());
        let results =
            SweepExecutor::new(analytic().with_threads(4)).run_with_sink(&grid(), &mut sink);
        let streamed = String::from_utf8(sink.into_inner()).unwrap();
        assert_eq!(streamed, results.to_csv());
        assert!(streamed.starts_with(CSV_HEADER));
        assert_eq!(streamed.lines().count(), 1 + results.rows.len());
    }

    #[test]
    fn csv_line_counts_match_the_header() {
        let results = SweepExecutor::new(analytic()).run(&grid());
        let columns = CSV_HEADER.split(',').count();
        for row in &results.rows {
            assert_eq!(csv_line(row).split(',').count(), columns);
        }
    }

    #[test]
    fn report_sink_tracks_extrema() {
        let mut sink = ReportSink::default();
        let results = SweepExecutor::new(analytic()).run_with_sink(&grid(), &mut sink);
        assert_eq!(sink.rows, results.rows.len());
        let (min_h, _) = sink.min_overhead.unwrap();
        let (max_h, _) = sink.max_overhead.unwrap();
        assert!(min_h <= max_h);
        assert!(sink.worst_gap.unwrap().0 >= 0.0);
    }

    #[test]
    fn empty_sweep_still_emits_the_header() {
        let empty = ScenarioGrid::builder()
            .scenarios(&[ScenarioId::S1])
            .build()
            .unwrap();
        // A one-cell grid exercises the lazy header; rows ≥ 1 ensures on_row ran.
        let mut sink = CsvSink::new(Vec::<u8>::new());
        SweepExecutor::new(analytic()).run_with_sink(&empty, &mut sink);
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert!(text.starts_with(CSV_HEADER));
    }
}
