//! Sidecar progress manifests for sharded sweep runs.
//!
//! A [`SweepManifest`] rides alongside a shard's CSV file (at
//! [`manifest_path`]: `<csv>.manifest`) and records everything needed to
//! resume an interrupted run and to merge shard outputs safely:
//!
//! * fingerprints of the grid and of the output-relevant sweep options, so a
//!   resume (or a merge) against a *different* grid or configuration is
//!   rejected instead of silently producing a frankenstein CSV;
//! * the shard coordinates and cell counts;
//! * the number of rows already materialised (always an in-order prefix of
//!   the shard's cell list — the executor emits rows through a reorder
//!   buffer);
//! * the grid's speedup-profile axis, human-readable, for post-mortems.
//!
//! Manifests are plain `key = value` text (the offline build's `serde_json`
//! is a no-op stand-in, so there is no JSON codec to lean on) and are written
//! **atomically**: the new content goes to `<path>.tmp` which is then renamed
//! over the manifest, so a kill at any instant leaves either the old or the
//! new manifest, never a torn one.

use std::fmt;
use std::path::{Path, PathBuf};

use crate::executor::SweepOptions;
use crate::grid::ScenarioGrid;
use crate::shard::{ShardError, ShardSpec};

/// Format tag of the manifest file; bumped on incompatible layout changes.
pub const MANIFEST_MAGIC: &str = "ayd-sweep-manifest v1";

/// The sidecar manifest path of a shard CSV: `<csv>.manifest`.
pub fn manifest_path(csv_path: &Path) -> PathBuf {
    let mut name = csv_path.file_name().unwrap_or_default().to_os_string();
    name.push(".manifest");
    csv_path.with_file_name(name)
}

/// Progress manifest of one shard of one sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepManifest {
    /// Fingerprint of the grid's cells (see [`ScenarioGrid::fingerprint`]).
    pub grid_fingerprint: u64,
    /// Fingerprint of the output-relevant sweep options (see
    /// [`SweepOptions::output_fingerprint`]).
    pub options_fingerprint: u64,
    /// Which shard of how many this file tracks.
    pub shard: ShardSpec,
    /// Total cells of the full (unsharded) grid.
    pub grid_cells: usize,
    /// Cells owned by this shard.
    pub shard_cells: usize,
    /// Rows materialised so far — always an in-order prefix of the shard's
    /// cell list.
    pub completed: usize,
    /// Canonical spec strings of the grid's speedup-profile axis.
    pub profiles: Vec<String>,
}

impl SweepManifest {
    /// A fresh manifest (no rows completed) for one shard of a sweep.
    pub fn new(grid: &ScenarioGrid, options: &SweepOptions, shard: ShardSpec) -> Self {
        Self {
            grid_fingerprint: grid.fingerprint(),
            options_fingerprint: options.output_fingerprint(),
            shard,
            grid_cells: grid.len(),
            shard_cells: shard.cell_count(grid.len()),
            completed: 0,
            profiles: grid
                .profile_axis()
                .iter()
                .map(|p| ayd_core::ProfileSpec::from(*p).to_string())
                .collect(),
        }
    }

    /// [`Self::new`] with every cell marked completed (used when building
    /// merge inputs in memory).
    pub fn complete(grid: &ScenarioGrid, options: &SweepOptions, shard: ShardSpec) -> Self {
        let mut manifest = Self::new(grid, options, shard);
        manifest.completed = manifest.shard_cells;
        manifest
    }

    /// True when every cell of the shard has been materialised.
    pub fn is_complete(&self) -> bool {
        self.completed >= self.shard_cells
    }

    /// True when `other` describes a shard of the *same* sweep (same grid,
    /// same output-relevant options, same shard count).
    pub fn same_sweep(&self, other: &Self) -> bool {
        self.grid_fingerprint == other.grid_fingerprint
            && self.options_fingerprint == other.options_fingerprint
            && self.shard.count == other.shard.count
            && self.grid_cells == other.grid_cells
    }

    /// Renders the manifest as its canonical text form.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str(MANIFEST_MAGIC);
        out.push('\n');
        let mut field = |key: &str, value: String| {
            out.push_str(key);
            out.push_str(" = ");
            out.push_str(&value);
            out.push('\n');
        };
        field("grid", format!("{:016x}", self.grid_fingerprint));
        field("options", format!("{:016x}", self.options_fingerprint));
        field("shard", self.shard.to_string());
        field("grid_cells", self.grid_cells.to_string());
        field("shard_cells", self.shard_cells.to_string());
        field("completed", self.completed.to_string());
        field("profiles", self.profiles.join(","));
        out
    }

    /// Parses the canonical text form back. Strict: the magic line, every
    /// field and no unknown keys.
    pub fn parse(text: &str) -> Result<Self, ShardError> {
        let bad = |message: String| ShardError::Manifest(message);
        let mut lines = text.lines();
        if lines.next() != Some(MANIFEST_MAGIC) {
            return Err(bad(format!("missing magic line `{MANIFEST_MAGIC}`")));
        }
        let mut grid_fingerprint = None;
        let mut options_fingerprint = None;
        let mut shard = None;
        let mut grid_cells = None;
        let mut shard_cells = None;
        let mut completed = None;
        let mut profiles = None;
        for line in lines {
            if line.trim().is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once(" = ")
                .ok_or_else(|| bad(format!("malformed manifest line `{line}`")))?;
            match key {
                "grid" => {
                    grid_fingerprint = Some(
                        u64::from_str_radix(value, 16)
                            .map_err(|_| bad(format!("bad grid fingerprint `{value}`")))?,
                    )
                }
                "options" => {
                    options_fingerprint = Some(
                        u64::from_str_radix(value, 16)
                            .map_err(|_| bad(format!("bad options fingerprint `{value}`")))?,
                    )
                }
                "shard" => shard = Some(ShardSpec::parse(value)?),
                "grid_cells" => {
                    grid_cells = Some(
                        value
                            .parse()
                            .map_err(|_| bad(format!("bad grid_cells `{value}`")))?,
                    )
                }
                "shard_cells" => {
                    shard_cells = Some(
                        value
                            .parse()
                            .map_err(|_| bad(format!("bad shard_cells `{value}`")))?,
                    )
                }
                "completed" => {
                    completed = Some(
                        value
                            .parse()
                            .map_err(|_| bad(format!("bad completed `{value}`")))?,
                    )
                }
                "profiles" => {
                    profiles = Some(
                        value
                            .split(',')
                            .filter(|s| !s.is_empty())
                            .map(str::to_string)
                            .collect(),
                    )
                }
                other => return Err(bad(format!("unknown manifest key `{other}`"))),
            }
        }
        let require = |name: &'static str| move || bad(format!("manifest is missing `{name}`"));
        let manifest = Self {
            grid_fingerprint: grid_fingerprint.ok_or_else(require("grid"))?,
            options_fingerprint: options_fingerprint.ok_or_else(require("options"))?,
            shard: shard.ok_or_else(require("shard"))?,
            grid_cells: grid_cells.ok_or_else(require("grid_cells"))?,
            shard_cells: shard_cells.ok_or_else(require("shard_cells"))?,
            completed: completed.ok_or_else(require("completed"))?,
            profiles: profiles.ok_or_else(require("profiles"))?,
        };
        if manifest.shard_cells != manifest.shard.cell_count(manifest.grid_cells) {
            return Err(bad(format!(
                "shard_cells {} does not match shard {} of {} grid cells",
                manifest.shard_cells, manifest.shard, manifest.grid_cells
            )));
        }
        if manifest.completed > manifest.shard_cells {
            return Err(bad(format!(
                "completed {} exceeds shard_cells {}",
                manifest.completed, manifest.shard_cells
            )));
        }
        Ok(manifest)
    }

    /// Reads and parses the manifest at `path`.
    pub fn read(path: &Path) -> Result<Self, ShardError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| ShardError::Io(format!("read {}: {e}", path.display())))?;
        Self::parse(&text)
    }

    /// Writes the manifest to `path` atomically (`<path>.tmp` + rename), so a
    /// kill at any point leaves either the previous or the new manifest.
    pub fn write_atomic(&self, path: &Path) -> Result<(), ShardError> {
        let mut tmp = path.as_os_str().to_os_string();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        std::fs::write(&tmp, self.render())
            .map_err(|e| ShardError::Io(format!("write {}: {e}", tmp.display())))?;
        std::fs::rename(&tmp, path).map_err(|e| {
            ShardError::Io(format!(
                "rename {} -> {}: {e}",
                tmp.display(),
                path.display()
            ))
        })
    }
}

impl fmt::Display for SweepManifest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shard {} of grid {:016x}: {}/{} rows",
            self.shard, self.grid_fingerprint, self.completed, self.shard_cells
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::ProcessorAxis;
    use crate::options::RunOptions;
    use ayd_platforms::ScenarioId;

    fn grid() -> ScenarioGrid {
        ScenarioGrid::builder()
            .scenarios(&[ScenarioId::S1, ScenarioId::S3])
            .processors(ProcessorAxis::Fixed(vec![256.0, 1024.0]))
            .build()
            .unwrap()
    }

    fn options() -> SweepOptions {
        SweepOptions::new(RunOptions {
            simulate: false,
            ..RunOptions::smoke()
        })
    }

    #[test]
    fn manifest_round_trips_through_text() {
        // Shard 0/3 of the 4-cell grid owns cells {0, 3}: two rows.
        let mut manifest = SweepManifest::new(&grid(), &options(), ShardSpec::new(0, 3).unwrap());
        assert_eq!(manifest.shard_cells, 2);
        manifest.completed = 1;
        let parsed = SweepManifest::parse(&manifest.render()).unwrap();
        assert_eq!(parsed, manifest);
        assert!(!parsed.is_complete());
        assert!(parsed.same_sweep(&manifest));
    }

    #[test]
    fn parse_rejects_torn_or_inconsistent_manifests() {
        let text = SweepManifest::complete(&grid(), &options(), ShardSpec::WHOLE).render();
        assert!(SweepManifest::parse(&text).is_ok());
        // Missing magic, truncated fields, unknown keys, inconsistent counts.
        assert!(SweepManifest::parse(&text["ayd".len()..]).is_err());
        let truncated: String = text.lines().take(3).collect::<Vec<_>>().join("\n");
        assert!(SweepManifest::parse(&truncated).is_err());
        assert!(SweepManifest::parse(&format!("{text}bogus = 1\n")).is_err());
        let inflated = text.replace("completed = 4", "completed = 99");
        assert!(SweepManifest::parse(&inflated).is_err());
    }

    #[test]
    fn fingerprints_separate_grids_options_and_shards() {
        let options = options();
        let base = SweepManifest::new(&grid(), &options, ShardSpec::WHOLE);
        let other_grid = ScenarioGrid::builder()
            .scenarios(&[ScenarioId::S1])
            .build()
            .unwrap();
        assert!(!base.same_sweep(&SweepManifest::new(&other_grid, &options, ShardSpec::WHOLE)));
        let reseeded = SweepOptions::new(RunOptions {
            seed: 7,
            simulate: false,
            ..RunOptions::smoke()
        });
        assert!(!base.same_sweep(&SweepManifest::new(&grid(), &reseeded, ShardSpec::WHOLE)));
        // Same sweep, different shard of the same count: still the same sweep.
        let sharded = SweepManifest::new(&grid(), &options, ShardSpec::new(1, 2).unwrap());
        let sibling = SweepManifest::new(&grid(), &options, ShardSpec::new(0, 2).unwrap());
        assert!(sharded.same_sweep(&sibling));
        assert!(!base.same_sweep(&sharded));
    }

    #[test]
    fn atomic_writes_land_and_sidecar_naming_is_stable() {
        let dir = std::env::temp_dir().join(format!("ayd-manifest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("shard-0.csv");
        let path = manifest_path(&csv);
        assert_eq!(path, dir.join("shard-0.csv.manifest"));
        let manifest = SweepManifest::new(&grid(), &options(), ShardSpec::WHOLE);
        manifest.write_atomic(&path).unwrap();
        assert_eq!(SweepManifest::read(&path).unwrap(), manifest);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
