//! [`ScenarioGrid`]: cartesian products of sweep axes.
//!
//! A grid is the declarative description of a sweep: which platforms, which
//! resilience scenarios, which applications (speedup profiles — Amdahl `α`
//! values or any extension profile), which error-rate axis, which processor
//! axis and (optionally) which fixed pattern lengths. [`ScenarioGrid::cells`]
//! flattens the product into an ordered list of [`SweepCell`]s; the cell order
//! is part of the determinism contract (it never depends on how the executor
//! schedules cells across threads).

use serde::{Deserialize, Serialize};

use ayd_core::{FailureModelSpec, SpeedupProfile};
use ayd_platforms::{ExperimentSetup, Platform, PlatformId, ScenarioId};

/// The processor axis of a grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ProcessorAxis {
    /// Jointly optimise the processor count per cell (first-order + numerical).
    Optimize,
    /// Evaluate every cell at each of these fixed processor counts.
    Fixed(Vec<f64>),
    /// Evaluate at `P = λ_ind^{-x}` for each order `x` (the ablation-A1 axis,
    /// probing the validity region of the first-order formulas).
    LambdaOrders(Vec<f64>),
}

/// The error-rate axis of a grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LambdaAxis {
    /// Keep each platform's measured individual error rate.
    Measured,
    /// Multiply each platform's measured rate by each of these factors.
    Multipliers(Vec<f64>),
    /// Override the rate with each of these absolute values (Figures 5–6).
    Absolute(Vec<f64>),
}

/// One cell of a sweep: a fully specified experiment setup plus the axis
/// coordinates it came from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepCell {
    /// Position of the cell in the grid's deterministic order.
    pub index: usize,
    /// The platform/scenario/α/λ configuration to evaluate.
    pub setup: ExperimentSetup,
    /// The failure inter-arrival law of the cell (default: exponential).
    pub failure_model: FailureModelSpec,
    /// Ratio of the cell's `λ_ind` to the platform's measured rate.
    pub lambda_multiplier: f64,
    /// Fixed processor count (`None` when the cell optimises `P`).
    pub fixed_processors: Option<f64>,
    /// Order `x` such that `fixed_processors = λ_ind^{-x}`, when the grid used
    /// [`ProcessorAxis::LambdaOrders`].
    pub processor_order: Option<f64>,
    /// Fixed pattern length `T` in seconds (`None` = use the first-order /
    /// numerically optimal period).
    pub pattern_length: Option<f64>,
}

impl SweepCell {
    /// The individual error rate of this cell (override or platform measurement).
    pub fn lambda_ind(&self) -> f64 {
        self.setup
            .lambda_ind_override
            .unwrap_or_else(|| Platform::get(self.setup.platform).lambda_ind)
    }

    /// The speedup profile of this cell.
    pub fn profile(&self) -> SpeedupProfile {
        self.setup.profile
    }
}

/// Error raised by [`GridBuilder::build`] on an ill-formed grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridError(String);

impl std::fmt::Display for GridError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid scenario grid: {}", self.0)
    }
}

impl std::error::Error for GridError {}

/// A cartesian sweep grid over platforms × scenarios × applications
/// (speedup profiles) × error rates × processor counts × pattern lengths.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioGrid {
    platforms: Vec<PlatformId>,
    scenarios: Vec<ScenarioId>,
    profiles: Vec<SpeedupProfile>,
    failure_models: Vec<FailureModelSpec>,
    lambdas: LambdaAxis,
    processors: ProcessorAxis,
    pattern_lengths: Vec<f64>,
    downtime: f64,
}

impl ScenarioGrid {
    /// Starts building a grid. Defaults: Hera, the representative scenarios
    /// (1, 3, 5), Amdahl `α = 0.1`, measured error rates, jointly optimised
    /// `P`, no fixed pattern length, `D = 3600 s`.
    pub fn builder() -> GridBuilder {
        GridBuilder::default()
    }

    /// Number of cells in the grid.
    pub fn len(&self) -> usize {
        self.platforms.len()
            * self.scenarios.len()
            * self.profiles.len()
            * self.failure_models.len()
            * self.lambda_axis_len()
            * self.processor_axis_len()
            * self.pattern_lengths.len().max(1)
    }

    /// True when the grid has no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lambda_axis_len(&self) -> usize {
        match &self.lambdas {
            LambdaAxis::Measured => 1,
            LambdaAxis::Multipliers(m) => m.len(),
            LambdaAxis::Absolute(v) => v.len(),
        }
    }

    fn processor_axis_len(&self) -> usize {
        match &self.processors {
            ProcessorAxis::Optimize => 1,
            ProcessorAxis::Fixed(p) => p.len(),
            ProcessorAxis::LambdaOrders(orders) => orders.len(),
        }
    }

    /// The speedup-profile axis of the grid, in declaration order (recorded
    /// by shard manifests for post-mortems).
    pub fn profile_axis(&self) -> &[SpeedupProfile] {
        &self.profiles
    }

    /// The failure-model axis of the grid, in declaration order.
    pub fn failure_axis(&self) -> &[FailureModelSpec] {
        &self.failure_models
    }

    /// A 64-bit fingerprint of the grid's cells: every semantic field of every
    /// cell, folded through SplitMix64. Two grids share a fingerprint exactly
    /// when they flatten to the same cell list, so shard manifests can refuse
    /// to resume (or merge) against a different grid. The hash covers the
    /// platform, scenario, profile, error rate, downtime and the
    /// processor/pattern coordinates of each cell — everything that feeds the
    /// per-cell evaluation and the CSV text.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xA4D5_EED5_0F5A_4DE5;
        for cell in self.cells() {
            let profile = ayd_core::ProfileSpec::from(cell.setup.profile);
            for byte in cell.setup.platform.name().bytes() {
                h = mix(h, byte as u64);
            }
            h = mix(h, cell.setup.scenario.number() as u64);
            h = mix(h, profile.kind_tag() as u64);
            h = mix(h, bits_or_marker(profile.param()));
            h = mix(h, cell.lambda_ind().to_bits());
            h = mix(h, cell.lambda_multiplier.to_bits());
            h = mix(h, cell.setup.downtime.to_bits());
            h = mix(h, bits_or_marker(cell.fixed_processors));
            h = mix(h, bits_or_marker(cell.processor_order));
            h = mix(h, bits_or_marker(cell.pattern_length));
            // The failure law is mixed only when non-default, so fingerprints
            // of pre-existing (exponential) grids — and any manifests recorded
            // against them — are unchanged.
            if cell.failure_model != FailureModelSpec::exponential() {
                h = mix(h, 0xFA11_0B5E_55ED_0002);
                h = mix(h, cell.failure_model.kind_tag() as u64);
                h = mix(h, bits_or_marker(cell.failure_model.param()));
                h = mix(h, bits_or_marker(cell.failure_model.lambda()));
                for byte in cell.failure_model.trace_path().unwrap_or("").bytes() {
                    h = mix(h, byte as u64);
                }
            }
        }
        h
    }

    /// The cells owned by `shard`, in global cell order (their `index` fields
    /// keep the *global* position, so per-cell seeding — and therefore every
    /// simulated value — is identical to the unsharded run).
    pub fn shard_cells(&self, shard: crate::shard::ShardSpec) -> Vec<SweepCell> {
        self.cells()
            .into_iter()
            .filter(|cell| shard.owns(cell.index))
            .collect()
    }

    /// Flattens the grid into its deterministic cell order: platform (outer) →
    /// scenario → profile → failure model → λ → processors → pattern length
    /// (inner). The profile axis occupies the position the `α` axis used to,
    /// so Amdahl-only grids built through [`GridBuilder::alphas`] keep their
    /// historical cell ordering; the failure axis defaults to the single
    /// exponential law, so grids that never set it keep their cell list too.
    pub fn cells(&self) -> Vec<SweepCell> {
        let mut cells = Vec::with_capacity(self.len());
        for &platform in &self.platforms {
            let measured_lambda = Platform::get(platform).lambda_ind;
            for &scenario in &self.scenarios {
                for &profile in &self.profiles {
                    let base = ExperimentSetup::paper_default(platform, scenario)
                        .with_profile(profile)
                        .with_downtime(self.downtime);
                    for failure_model in &self.failure_models {
                        let lambda_entries: Vec<(Option<f64>, f64)> = match &self.lambdas {
                            LambdaAxis::Measured => vec![(None, 1.0)],
                            LambdaAxis::Multipliers(ms) => {
                                ms.iter().map(|&m| (Some(measured_lambda * m), m)).collect()
                            }
                            LambdaAxis::Absolute(vs) => {
                                vs.iter().map(|&v| (Some(v), v / measured_lambda)).collect()
                            }
                        };
                        for (lambda_override, multiplier) in lambda_entries {
                            let setup = match lambda_override {
                                Some(lambda) => base.with_lambda_ind(lambda),
                                None => base,
                            };
                            let lambda = lambda_override.unwrap_or(measured_lambda);
                            let processor_entries: Vec<(Option<f64>, Option<f64>)> =
                                match &self.processors {
                                    ProcessorAxis::Optimize => vec![(None, None)],
                                    ProcessorAxis::Fixed(ps) => {
                                        ps.iter().map(|&p| (Some(p), None)).collect()
                                    }
                                    ProcessorAxis::LambdaOrders(orders) => orders
                                        .iter()
                                        .map(|&x| (Some((1.0 / lambda).powf(x)), Some(x)))
                                        .collect(),
                                };
                            for (fixed_processors, processor_order) in processor_entries {
                                let lengths: Vec<Option<f64>> = if self.pattern_lengths.is_empty() {
                                    vec![None]
                                } else {
                                    self.pattern_lengths.iter().map(|&t| Some(t)).collect()
                                };
                                for pattern_length in lengths {
                                    cells.push(SweepCell {
                                        index: cells.len(),
                                        setup,
                                        failure_model: failure_model.clone(),
                                        lambda_multiplier: multiplier,
                                        fixed_processors,
                                        processor_order,
                                        pattern_length,
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
        cells
    }
}

/// One SplitMix64 fingerprint-mixing step (shared with the options
/// fingerprint in [`crate::executor`]).
pub(crate) fn mix(h: u64, value: u64) -> u64 {
    ayd_sim::rng::splitmix64(
        h ^ ayd_sim::rng::splitmix64(value.wrapping_add(0x9E37_79B9_7F4A_7C15)),
    )
}

/// Fingerprint encoding of an optional f64: the raw bits, or a marker that no
/// finite value can collide with (a non-canonical NaN payload).
pub(crate) fn bits_or_marker(value: Option<f64>) -> u64 {
    value.map_or(0x7FF8_DEAD_BEEF_0001, f64::to_bits)
}

/// Builder of a [`ScenarioGrid`]; see [`ScenarioGrid::builder`].
#[derive(Debug, Clone)]
pub struct GridBuilder {
    platforms: Vec<PlatformId>,
    scenarios: Vec<ScenarioId>,
    profiles: Vec<SpeedupProfile>,
    failure_models: Vec<FailureModelSpec>,
    lambdas: LambdaAxis,
    processors: ProcessorAxis,
    pattern_lengths: Vec<f64>,
    downtime: f64,
}

impl Default for GridBuilder {
    fn default() -> Self {
        Self {
            platforms: vec![PlatformId::Hera],
            scenarios: ScenarioId::REPRESENTATIVE.to_vec(),
            profiles: vec![SpeedupProfile::Amdahl { alpha: 0.1 }],
            failure_models: vec![FailureModelSpec::exponential()],
            lambdas: LambdaAxis::Measured,
            processors: ProcessorAxis::Optimize,
            pattern_lengths: Vec::new(),
            downtime: 3600.0,
        }
    }
}

impl GridBuilder {
    /// Sets the platform axis.
    pub fn platforms(mut self, platforms: &[PlatformId]) -> Self {
        self.platforms = platforms.to_vec();
        self
    }

    /// Sets the scenario axis.
    pub fn scenarios(mut self, scenarios: &[ScenarioId]) -> Self {
        self.scenarios = scenarios.to_vec();
        self
    }

    /// Sets the application axis to a list of speedup profiles (Amdahl,
    /// perfectly parallel, power law, Gustafson). This generalises
    /// [`Self::alphas`]; the profile axis occupies the same position in the
    /// cell ordering.
    pub fn profiles(mut self, profiles: &[SpeedupProfile]) -> Self {
        self.profiles = profiles.to_vec();
        self
    }

    /// Sets the application axis to Amdahl profiles with these sequential
    /// fractions `α` — a thin convenience over [`Self::profiles`] kept for the
    /// (very common) Amdahl-only sweeps.
    pub fn alphas(self, alphas: &[f64]) -> Self {
        let profiles: Vec<SpeedupProfile> = alphas
            .iter()
            .map(|&alpha| SpeedupProfile::Amdahl { alpha })
            .collect();
        self.profiles(&profiles)
    }

    /// Sets the failure-model axis: one cell block per inter-arrival law
    /// (default: the single exponential law of the paper). Specs must not pin
    /// an explicit rate — the grid's lambda axis owns the rate.
    pub fn failure_models(mut self, models: &[FailureModelSpec]) -> Self {
        self.failure_models = models.to_vec();
        self
    }

    /// Sweeps multiples of each platform's measured error rate.
    pub fn lambda_multipliers(mut self, multipliers: &[f64]) -> Self {
        self.lambdas = LambdaAxis::Multipliers(multipliers.to_vec());
        self
    }

    /// Sweeps absolute individual error rates (Figures 5–6).
    pub fn lambda_values(mut self, values: &[f64]) -> Self {
        self.lambdas = LambdaAxis::Absolute(values.to_vec());
        self
    }

    /// Sets the processor axis.
    pub fn processors(mut self, axis: ProcessorAxis) -> Self {
        self.processors = axis;
        self
    }

    /// Sets fixed pattern lengths `T` (requires a fixed-processor axis).
    pub fn pattern_lengths(mut self, lengths: &[f64]) -> Self {
        self.pattern_lengths = lengths.to_vec();
        self
    }

    /// Sets the downtime `D` in seconds (paper default: 3600).
    pub fn downtime(mut self, downtime: f64) -> Self {
        self.downtime = downtime;
        self
    }

    /// Validates the axes and produces the grid.
    pub fn build(self) -> Result<ScenarioGrid, GridError> {
        let err = |message: &str| Err(GridError(message.to_string()));
        if self.platforms.is_empty() {
            return err("at least one platform is required");
        }
        if self.scenarios.is_empty() {
            return err("at least one scenario is required");
        }
        if self.profiles.is_empty() {
            return err("at least one speedup profile (or alpha) is required");
        }
        for profile in &self.profiles {
            if let Err(e) = profile.validate() {
                return err(&format!("invalid speedup profile: {e}"));
            }
        }
        if self.failure_models.is_empty() {
            return err("at least one failure model is required");
        }
        for model in &self.failure_models {
            // Re-parse the canonical rendering: constructed values go through
            // the same validation as parsed spec strings.
            if let Err(e) = FailureModelSpec::parse(&model.to_string()) {
                return err(&format!("invalid failure model: {e}"));
            }
            if model.lambda().is_some() {
                return err(&format!(
                    "failure model '{model}' pins an explicit rate; grid cells take their rate \
                     from the lambda axis"
                ));
            }
        }
        match &self.lambdas {
            LambdaAxis::Measured => {}
            LambdaAxis::Multipliers(ms) => {
                if ms.is_empty() || ms.iter().any(|&m| !(m.is_finite() && m > 0.0)) {
                    return err("lambda multipliers must be positive and non-empty");
                }
            }
            LambdaAxis::Absolute(vs) => {
                if vs.is_empty() || vs.iter().any(|&v| !(v.is_finite() && v > 0.0)) {
                    return err("lambda values must be positive and non-empty");
                }
            }
        }
        match &self.processors {
            ProcessorAxis::Optimize => {
                if !self.pattern_lengths.is_empty() {
                    return err("fixed pattern lengths require a fixed processor axis");
                }
            }
            ProcessorAxis::Fixed(ps) => {
                if ps.is_empty() || ps.iter().any(|&p| !(p.is_finite() && p >= 1.0)) {
                    return err("fixed processor counts must be >= 1 and non-empty");
                }
            }
            ProcessorAxis::LambdaOrders(orders) => {
                if orders.is_empty() || orders.iter().any(|&x| !(x.is_finite() && x > 0.0)) {
                    return err("lambda orders must be positive and non-empty");
                }
            }
        }
        if self
            .pattern_lengths
            .iter()
            .any(|&t| !(t.is_finite() && t > 0.0))
        {
            return err("pattern lengths must be positive");
        }
        if !(self.downtime.is_finite() && self.downtime >= 0.0) {
            return err("downtime must be non-negative");
        }
        Ok(ScenarioGrid {
            platforms: self.platforms,
            scenarios: self.scenarios,
            profiles: self.profiles,
            failure_models: self.failure_models,
            lambdas: self.lambdas,
            processors: self.processors,
            pattern_lengths: self.pattern_lengths,
            downtime: self.downtime,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_grid_covers_representative_scenarios() {
        let grid = ScenarioGrid::builder().build().unwrap();
        assert_eq!(grid.len(), 3);
        let cells = grid.cells();
        assert_eq!(cells.len(), 3);
        let numbers: Vec<usize> = cells.iter().map(|c| c.setup.scenario.number()).collect();
        assert_eq!(numbers, vec![1, 3, 5]);
        assert!(cells.iter().all(|c| c.fixed_processors.is_none()));
        assert!(cells.iter().all(|c| c.lambda_multiplier == 1.0));
    }

    #[test]
    fn cell_order_is_the_documented_nesting() {
        let grid = ScenarioGrid::builder()
            .platforms(&[PlatformId::Hera, PlatformId::Atlas])
            .scenarios(&[ScenarioId::S1, ScenarioId::S3])
            .lambda_multipliers(&[1.0, 10.0])
            .processors(ProcessorAxis::Fixed(vec![256.0, 512.0]))
            .build()
            .unwrap();
        assert_eq!(grid.len(), 2 * 2 * 2 * 2);
        let cells = grid.cells();
        assert_eq!(cells.len(), grid.len());
        // Innermost axis (processors) varies fastest.
        assert_eq!(cells[0].fixed_processors, Some(256.0));
        assert_eq!(cells[1].fixed_processors, Some(512.0));
        assert_eq!(cells[0].lambda_multiplier, cells[1].lambda_multiplier);
        // Platform is the outermost axis.
        assert!(cells[..8]
            .iter()
            .all(|c| c.setup.platform == PlatformId::Hera));
        assert!(cells[8..]
            .iter()
            .all(|c| c.setup.platform == PlatformId::Atlas));
        for (i, cell) in cells.iter().enumerate() {
            assert_eq!(cell.index, i);
        }
    }

    #[test]
    fn lambda_axes_compute_rates_and_multipliers() {
        let measured = Platform::get(PlatformId::Hera).lambda_ind;
        let multiplied = ScenarioGrid::builder()
            .scenarios(&[ScenarioId::S1])
            .lambda_multipliers(&[10.0])
            .build()
            .unwrap();
        let cell = multiplied.cells()[0].clone();
        assert_eq!(cell.lambda_ind(), measured * 10.0);
        assert_eq!(cell.lambda_multiplier, 10.0);

        let absolute = ScenarioGrid::builder()
            .scenarios(&[ScenarioId::S1])
            .lambda_values(&[1e-9])
            .build()
            .unwrap();
        let cell = absolute.cells()[0].clone();
        assert_eq!(cell.lambda_ind(), 1e-9);
        assert!((cell.lambda_multiplier - 1e-9 / measured).abs() < 1e-12);
    }

    #[test]
    fn lambda_orders_fix_processor_counts() {
        let grid = ScenarioGrid::builder()
            .scenarios(&[ScenarioId::S1])
            .processors(ProcessorAxis::LambdaOrders(vec![0.25]))
            .build()
            .unwrap();
        let cell = grid.cells()[0].clone();
        let expected = (1.0 / cell.lambda_ind()).powf(0.25);
        assert_eq!(cell.fixed_processors, Some(expected));
        assert_eq!(cell.processor_order, Some(0.25));
    }

    #[test]
    fn invalid_grids_are_rejected() {
        assert!(ScenarioGrid::builder().platforms(&[]).build().is_err());
        assert!(ScenarioGrid::builder().scenarios(&[]).build().is_err());
        assert!(ScenarioGrid::builder().alphas(&[1.5]).build().is_err());
        assert!(ScenarioGrid::builder()
            .lambda_multipliers(&[0.0])
            .build()
            .is_err());
        assert!(ScenarioGrid::builder()
            .lambda_values(&[-1e-9])
            .build()
            .is_err());
        assert!(ScenarioGrid::builder()
            .processors(ProcessorAxis::Fixed(vec![]))
            .build()
            .is_err());
        assert!(ScenarioGrid::builder()
            .pattern_lengths(&[3600.0])
            .build()
            .is_err());
        assert!(ScenarioGrid::builder().downtime(-1.0).build().is_err());
        let err = ScenarioGrid::builder().platforms(&[]).build().unwrap_err();
        assert!(err.to_string().contains("platform"));
    }

    #[test]
    fn profile_axis_generalises_alphas() {
        let profiles = [
            SpeedupProfile::amdahl(0.1).unwrap(),
            SpeedupProfile::power_law(0.8).unwrap(),
            SpeedupProfile::gustafson(0.05).unwrap(),
            SpeedupProfile::perfectly_parallel(),
        ];
        let grid = ScenarioGrid::builder()
            .scenarios(&[ScenarioId::S1])
            .profiles(&profiles)
            .processors(ProcessorAxis::Fixed(vec![256.0]))
            .build()
            .unwrap();
        assert_eq!(grid.len(), 4);
        let cells = grid.cells();
        // The profile axis preserves the declared order and every cell's setup
        // builds a model with exactly that profile.
        for (cell, &profile) in cells.iter().zip(&profiles) {
            assert_eq!(cell.profile(), profile);
            assert_eq!(cell.setup.model().unwrap().speedup, profile);
        }
    }

    #[test]
    fn legacy_alphas_builder_matches_explicit_amdahl_profiles() {
        // Back-compat: Amdahl-only grids built via the thin `alphas(...)`
        // convenience produce exactly the same cells (and therefore the same
        // ordering) as the generic profile axis.
        let build = |builder: GridBuilder| {
            builder
                .platforms(&[PlatformId::Hera, PlatformId::Atlas])
                .scenarios(&[ScenarioId::S1, ScenarioId::S3])
                .lambda_multipliers(&[1.0, 10.0])
                .processors(ProcessorAxis::Fixed(vec![256.0, 1024.0]))
                .build()
                .unwrap()
        };
        let legacy = build(ScenarioGrid::builder().alphas(&[0.05, 0.1]));
        let generic = build(ScenarioGrid::builder().profiles(&[
            SpeedupProfile::Amdahl { alpha: 0.05 },
            SpeedupProfile::Amdahl { alpha: 0.1 },
        ]));
        assert_eq!(legacy, generic);
        assert_eq!(legacy.cells(), generic.cells());
        // The α axis still varies exactly where it used to: just inside the
        // scenario axis, just outside the λ axis.
        let cells = legacy.cells();
        assert_eq!(cells[0].setup.alpha(), Some(0.05));
        assert_eq!(cells[4].setup.alpha(), Some(0.1));
        assert_eq!(cells[0].setup.scenario, cells[4].setup.scenario);
    }

    #[test]
    fn failure_axis_sits_between_profile_and_lambda() {
        let grid = ScenarioGrid::builder()
            .scenarios(&[ScenarioId::S1])
            .alphas(&[0.05, 0.1])
            .failure_models(&[
                FailureModelSpec::exponential(),
                FailureModelSpec::weibull(0.7).unwrap(),
            ])
            .lambda_multipliers(&[1.0, 10.0])
            .build()
            .unwrap();
        assert_eq!(grid.len(), 2 * 2 * 2);
        let cells = grid.cells();
        // λ varies fastest, then the failure model, then α.
        assert_eq!(cells[0].failure_model.kind(), "exp");
        assert_eq!(cells[1].failure_model.kind(), "exp");
        assert_eq!(cells[2].failure_model.kind(), "weibull");
        assert_eq!(cells[3].failure_model.kind(), "weibull");
        assert_eq!(cells[0].setup.alpha(), Some(0.05));
        assert_eq!(cells[4].setup.alpha(), Some(0.1));
        assert_eq!(cells[0].lambda_multiplier, 1.0);
        assert_eq!(cells[1].lambda_multiplier, 10.0);
    }

    #[test]
    fn default_failure_axis_leaves_grids_unchanged() {
        // Back-compat: a grid that never mentions failure models flattens to
        // exactly the same cells (and fingerprint) as one that sets the
        // default exponential axis explicitly.
        let implicit = ScenarioGrid::builder()
            .lambda_multipliers(&[1.0, 10.0])
            .build()
            .unwrap();
        let explicit = ScenarioGrid::builder()
            .failure_models(&[FailureModelSpec::exponential()])
            .lambda_multipliers(&[1.0, 10.0])
            .build()
            .unwrap();
        assert_eq!(implicit, explicit);
        assert_eq!(implicit.cells(), explicit.cells());
        assert_eq!(implicit.fingerprint(), explicit.fingerprint());
    }

    #[test]
    fn failure_axes_change_the_fingerprint() {
        let base = ScenarioGrid::builder().build().unwrap();
        let weibull = ScenarioGrid::builder()
            .failure_models(&[FailureModelSpec::weibull(0.7).unwrap()])
            .build()
            .unwrap();
        let degenerate = ScenarioGrid::builder()
            .failure_models(&[FailureModelSpec::weibull(1.0).unwrap()])
            .build()
            .unwrap();
        assert_ne!(base.fingerprint(), weibull.fingerprint());
        // weibull:1.0 evaluates like exp but is a *different grid*: its CSV
        // carries different spec columns, so its fingerprint must differ too.
        assert_ne!(base.fingerprint(), degenerate.fingerprint());
        assert_ne!(weibull.fingerprint(), degenerate.fingerprint());
    }

    #[test]
    fn invalid_failure_models_are_rejected() {
        assert!(ScenarioGrid::builder().failure_models(&[]).build().is_err());
        let pinned = FailureModelSpec::parse("weibull:0.7,1e-8").unwrap();
        let err = ScenarioGrid::builder()
            .failure_models(&[pinned])
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("lambda axis"), "{err}");
    }

    #[test]
    fn invalid_profiles_are_rejected() {
        assert!(ScenarioGrid::builder()
            .profiles(&[SpeedupProfile::PowerLaw { sigma: 0.0 }])
            .build()
            .is_err());
        assert!(ScenarioGrid::builder()
            .profiles(&[SpeedupProfile::Gustafson { alpha: 1.5 }])
            .build()
            .is_err());
        assert!(ScenarioGrid::builder().profiles(&[]).build().is_err());
    }

    #[test]
    fn every_cell_produces_a_valid_model() {
        let grid = ScenarioGrid::builder()
            .platforms(&PlatformId::ALL)
            .scenarios(&ScenarioId::ALL)
            .alphas(&[0.0, 0.1])
            .lambda_multipliers(&[0.1, 1.0, 10.0])
            .processors(ProcessorAxis::Fixed(vec![512.0]))
            .pattern_lengths(&[3600.0])
            .build()
            .unwrap();
        assert_eq!(grid.len(), 4 * 6 * 2 * 3);
        for cell in grid.cells() {
            assert!(cell.setup.model().is_ok(), "cell {cell:?}");
        }
    }
}
