//! # ayd-sweep — parallel scenario-sweep engine
//!
//! The paper's headline results are sweeps: over processor counts (Figure 3),
//! error rates (Figures 5–6), sequential fractions (Figure 4), platforms and
//! scenarios (Figure 2, Tables II–III). This crate turns that pattern into one
//! reusable subsystem:
//!
//! * [`ScenarioGrid`] — a builder of cartesian scenario grids (platforms ×
//!   scenarios × applications × error rates × processor counts × pattern
//!   lengths), flattened into a deterministic cell order.
//! * [`SweepExecutor`] — a parallel executor over `std::thread::scope` (a
//!   self-scheduling worker pool pulling from a shared atomic work queue)
//!   that evaluates the exact model, the first-order model and (optionally)
//!   either simulation engine per cell.
//! * [`EvalCache`] / [`ShardedEvalCache`] — LRU-style memoisation of the
//!   expensive optimiser evaluations, keyed on quantized model inputs; the
//!   sharded variant spreads concurrent lookups over independently locked
//!   shards (the executor and the `ayd-serve` query service both use it).
//! * [`sink`] — streaming CSV/report sinks fed in cell order through a reorder
//!   buffer.
//! * [`shard`] / [`manifest`] — sharded, resumable execution: a
//!   [`ShardSpec`] `i/N` partitions any grid by cell index, shard runs stream
//!   into a CSV plus an atomically-updated sidecar manifest, interrupted
//!   shards resume without recomputing finished cells, and [`merge_parts`]
//!   re-assembles the N shard CSVs into bytes identical to the unsharded
//!   sweep.
//! * [`Evaluator`] / [`RunOptions`] — the per-cell evaluation kernel and run
//!   options, shared with (and re-exported by) the `ayd-exp` harness.
//!
//! ## Determinism contract
//!
//! For a fixed grid and base seed, sweep output is **bit-identical regardless
//! of the worker-thread count and of whether the cache is enabled**: cells are
//! seeded from `(base seed, cell index)` with the `ayd-sim` SplitMix64 scheme
//! (`rng_for_replicate`), and rows are reassembled in cell order. The root
//! property suite asserts both halves of the contract on the CSV bytes.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod cache;
pub mod evaluate;
pub mod executor;
pub mod grid;
pub mod manifest;
pub mod misspec;
pub mod options;
pub mod shard;
pub mod sink;
pub mod wire;

pub use ayd_core::{FailureModelSpec, ProfileSpec, SpeedupProfile};
pub use ayd_optim::{FallbackReason, SearchReport};
pub use cache::{CacheKey, CacheStats, EvalCache, ShardedEvalCache};
pub use evaluate::{Evaluator, OperatingPoint, OptimumComparison, SimSummary};
pub use executor::{
    analytic_cache_key, cache_shards, cell_seed, evaluate_analytic, evaluate_analytic_observed,
    evaluate_many, AnalyticEval, ClosedForm, EvalObservation, SweepExecutor, SweepJobHandle,
    SweepJobResult, SweepJobStatus, SweepOptions, SweepResults, SweepRow,
};
pub use grid::{GridBuilder, GridError, LambdaAxis, ProcessorAxis, ScenarioGrid, SweepCell};
pub use manifest::{manifest_path, SweepManifest, MANIFEST_MAGIC};
pub use misspec::{
    misspecification_of, misspecification_report, MisspecificationReport, MisspecificationRow,
};
pub use options::{Fidelity, RunOptions, SearchStrategy};
pub use shard::{
    merge_parts, run_shard_to_files, ShardError, ShardPart, ShardRunReport, ShardSpec, MAX_SHARDS,
};
pub use sink::{csv_line, CsvSink, NullSink, ReportSink, SweepSink, CSV_HEADER};
pub use wire::{validate_rows, ShardChunk, CHUNK_MAGIC};
