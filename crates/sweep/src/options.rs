//! Run options shared by every experiment runner and sweep.
//!
//! These types used to live in `ayd-exp`; they moved down into `ayd-sweep` so
//! that the sweep engine and the experiment harness share one definition
//! (`ayd-exp` re-exports them under the old `ayd_exp::config` path).

use serde::{Deserialize, Serialize};

use ayd_sim::SimulationConfig;

/// How much replication/simulation effort to spend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Fidelity {
    /// Tiny replication, for unit tests and CI smoke runs.
    Smoke,
    /// Moderate replication; the default for `cargo bench` and the CLI.
    Standard,
    /// The paper's replication scale (500 runs × 500 patterns per point).
    Paper,
}

/// Options of an experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunOptions {
    /// Simulation effort.
    pub fidelity: Fidelity,
    /// Base seed for all simulations.
    pub seed: u64,
    /// Whether to run the simulations at all (the analytical/numerical series are
    /// always produced; simulation can be skipped for speed).
    pub simulate: bool,
    /// Worker-thread count for sweep-backed runners (`None` = all available
    /// cores). Results never depend on this (determinism contract).
    pub threads: Option<usize>,
    /// Whether sweep-backed runners memoise optimiser evaluations. Results
    /// never depend on this either.
    pub cache: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            fidelity: Fidelity::Standard,
            seed: 2016,
            simulate: true,
            threads: None,
            cache: true,
        }
    }
}

impl RunOptions {
    /// Options used by unit tests: smoke-level simulation.
    pub fn smoke() -> Self {
        Self {
            fidelity: Fidelity::Smoke,
            ..Self::default()
        }
    }

    /// Options matching the paper's replication scale.
    pub fn paper() -> Self {
        Self {
            fidelity: Fidelity::Paper,
            ..Self::default()
        }
    }

    /// Options that skip simulation entirely (analytical + numerical only).
    pub fn analytical_only() -> Self {
        Self {
            simulate: false,
            ..Self::default()
        }
    }

    /// The simulation batch configuration corresponding to the chosen fidelity.
    pub fn simulation_config(&self) -> SimulationConfig {
        let base = match self.fidelity {
            Fidelity::Smoke => SimulationConfig {
                runs: 12,
                patterns_per_run: 40,
                ..Default::default()
            },
            Fidelity::Standard => SimulationConfig {
                runs: 80,
                patterns_per_run: 150,
                ..Default::default()
            },
            Fidelity::Paper => SimulationConfig::paper_scale(),
        };
        base.with_seed(self.seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fidelity_scales_replication() {
        let smoke = RunOptions::smoke().simulation_config();
        let standard = RunOptions::default().simulation_config();
        let paper = RunOptions::paper().simulation_config();
        assert!(smoke.runs < standard.runs);
        assert!(standard.runs < paper.runs);
        assert_eq!(paper.runs, 500);
        assert_eq!(paper.patterns_per_run, 500);
    }

    #[test]
    fn seed_propagates_to_simulation_config() {
        let opts = RunOptions {
            seed: 999,
            ..RunOptions::smoke()
        };
        assert_eq!(opts.simulation_config().seed, 999);
    }

    #[test]
    fn analytical_only_disables_simulation() {
        assert!(!RunOptions::analytical_only().simulate);
        assert!(RunOptions::default().simulate);
    }

    #[test]
    fn sweep_execution_knobs_default_to_all_cores_and_caching() {
        let options = RunOptions::default();
        assert_eq!(options.threads, None);
        assert!(options.cache);
    }
}
