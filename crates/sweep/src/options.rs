//! Run options shared by every experiment runner and sweep.
//!
//! These types used to live in `ayd-exp`; they moved down into `ayd-sweep` so
//! that the sweep engine and the experiment harness share one definition
//! (`ayd-exp` re-exports them under the old `ayd_exp::config` path).

use serde::{Deserialize, Serialize};

use ayd_sim::SimulationConfig;

/// How much replication/simulation effort to spend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Fidelity {
    /// Tiny replication, for unit tests and CI smoke runs.
    Smoke,
    /// Moderate replication; the default for `cargo bench` and the CLI.
    Standard,
    /// The paper's replication scale (500 runs × 500 patterns per point).
    Paper,
}

/// Numerical-search strategy of the optimiser evaluations.
///
/// All three strategies return **bit-identical** results: the fast paths
/// either prove they located the reference search's operating point (see
/// `ayd_optim::seeded`) or self-demote to the reference search for that call.
/// The strategy therefore only changes how much work a cache-cold evaluation
/// costs — never the bytes of any output.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum SearchStrategy {
    /// The original grid-scan + Brent search, evaluated in full.
    Reference,
    /// Warm-started search seeded from the first-order closed forms
    /// (Theorems 1–3); assumes the overhead is unimodal at grid resolution.
    Fast,
    /// [`SearchStrategy::Fast`] plus sentinel probes that demote any scalar
    /// search whose located basin is not provably the global one. The
    /// default.
    #[default]
    FastStrict,
}

impl SearchStrategy {
    /// Every strategy, in spec order.
    pub const ALL: [SearchStrategy; 3] = [
        SearchStrategy::Reference,
        SearchStrategy::Fast,
        SearchStrategy::FastStrict,
    ];

    /// The canonical spec string (`reference` / `fast` / `fast-strict`), as
    /// accepted by [`SearchStrategy::parse`] and the CLI's `--search` flag.
    pub fn as_str(self) -> &'static str {
        match self {
            SearchStrategy::Reference => "reference",
            SearchStrategy::Fast => "fast",
            SearchStrategy::FastStrict => "fast-strict",
        }
    }

    /// Parses a spec string (see [`SearchStrategy::as_str`]).
    pub fn parse(spec: &str) -> Result<Self, String> {
        match spec {
            "reference" => Ok(SearchStrategy::Reference),
            "fast" => Ok(SearchStrategy::Fast),
            "fast-strict" => Ok(SearchStrategy::FastStrict),
            other => Err(format!(
                "unknown search strategy '{other}' (expected reference, fast or fast-strict)"
            )),
        }
    }

    /// True for the strategies that use the warm-started fast path.
    pub fn is_fast(self) -> bool {
        !matches!(self, SearchStrategy::Reference)
    }

    /// True when the fast path must run sentinel verification probes.
    pub fn is_strict(self) -> bool {
        matches!(self, SearchStrategy::FastStrict)
    }

    /// Numeric tag mixed into cache keys (distinct per strategy).
    pub fn cache_tag(self) -> f64 {
        match self {
            SearchStrategy::Reference => 0.0,
            SearchStrategy::Fast => 1.0,
            SearchStrategy::FastStrict => 2.0,
        }
    }
}

impl std::fmt::Display for SearchStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Options of an experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunOptions {
    /// Simulation effort.
    pub fidelity: Fidelity,
    /// Base seed for all simulations.
    pub seed: u64,
    /// Whether to run the simulations at all (the analytical/numerical series are
    /// always produced; simulation can be skipped for speed).
    pub simulate: bool,
    /// Worker-thread count for sweep-backed runners (`None` = all available
    /// cores). Results never depend on this (determinism contract).
    pub threads: Option<usize>,
    /// Whether sweep-backed runners memoise optimiser evaluations. Results
    /// never depend on this either.
    pub cache: bool,
    /// Numerical-search strategy. Results never depend on this either (all
    /// strategies are bit-identical); it only changes cold-evaluation cost.
    pub search: SearchStrategy,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            fidelity: Fidelity::Standard,
            seed: 2016,
            simulate: true,
            threads: None,
            cache: true,
            search: SearchStrategy::default(),
        }
    }
}

impl RunOptions {
    /// Options used by unit tests: smoke-level simulation.
    pub fn smoke() -> Self {
        Self {
            fidelity: Fidelity::Smoke,
            ..Self::default()
        }
    }

    /// Options matching the paper's replication scale.
    pub fn paper() -> Self {
        Self {
            fidelity: Fidelity::Paper,
            ..Self::default()
        }
    }

    /// Options that skip simulation entirely (analytical + numerical only).
    pub fn analytical_only() -> Self {
        Self {
            simulate: false,
            ..Self::default()
        }
    }

    /// The simulation batch configuration corresponding to the chosen fidelity.
    pub fn simulation_config(&self) -> SimulationConfig {
        let base = match self.fidelity {
            Fidelity::Smoke => SimulationConfig {
                runs: 12,
                patterns_per_run: 40,
                ..Default::default()
            },
            Fidelity::Standard => SimulationConfig {
                runs: 80,
                patterns_per_run: 150,
                ..Default::default()
            },
            Fidelity::Paper => SimulationConfig::paper_scale(),
        };
        base.with_seed(self.seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fidelity_scales_replication() {
        let smoke = RunOptions::smoke().simulation_config();
        let standard = RunOptions::default().simulation_config();
        let paper = RunOptions::paper().simulation_config();
        assert!(smoke.runs < standard.runs);
        assert!(standard.runs < paper.runs);
        assert_eq!(paper.runs, 500);
        assert_eq!(paper.patterns_per_run, 500);
    }

    #[test]
    fn seed_propagates_to_simulation_config() {
        let opts = RunOptions {
            seed: 999,
            ..RunOptions::smoke()
        };
        assert_eq!(opts.simulation_config().seed, 999);
    }

    #[test]
    fn analytical_only_disables_simulation() {
        assert!(!RunOptions::analytical_only().simulate);
        assert!(RunOptions::default().simulate);
    }

    #[test]
    fn sweep_execution_knobs_default_to_all_cores_and_caching() {
        let options = RunOptions::default();
        assert_eq!(options.threads, None);
        assert!(options.cache);
        assert_eq!(options.search, SearchStrategy::FastStrict);
    }

    #[test]
    fn search_strategy_specs_round_trip() {
        for strategy in SearchStrategy::ALL {
            assert_eq!(SearchStrategy::parse(strategy.as_str()), Ok(strategy));
            assert_eq!(strategy.to_string(), strategy.as_str());
        }
        assert!(SearchStrategy::parse("newton").is_err());
        assert_eq!(SearchStrategy::default(), SearchStrategy::FastStrict);
        assert!(!SearchStrategy::Reference.is_fast());
        assert!(SearchStrategy::Fast.is_fast());
        assert!(!SearchStrategy::Fast.is_strict());
        assert!(SearchStrategy::FastStrict.is_strict());
        // Cache tags must stay distinct: the memoisation key mixes them so
        // strategies never share entries.
        assert_ne!(
            SearchStrategy::Reference.cache_tag(),
            SearchStrategy::Fast.cache_tag()
        );
        assert_ne!(
            SearchStrategy::Fast.cache_tag(),
            SearchStrategy::FastStrict.cache_tag()
        );
    }
}
