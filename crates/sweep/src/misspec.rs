//! Misspecification report: how far the paper's exponential-failure analytics
//! drift when the platform's true arrival law is not exponential.
//!
//! The analytic series of a sweep (`first_order`, `closed_form`, `numerical`)
//! always assume the paper's exponential failure model; a cell with a
//! non-exponential [`FailureModelSpec`] simulates under the *true* law (the
//! executor's simulation-first policy guarantees the primary operating point
//! carries such a simulation whenever simulation is on). The gap between the
//! two is the model's misspecification error, and this module turns it into a
//! small per-row report.
//!
//! The 3-sigma harness of the validation suite is deliberately **inverted**
//! here: the validation tests assert `|model − simulation| ≤ 3·SE` to prove
//! the model right under its own assumptions, while this report flags rows
//! where `|model − simulation| > 3·SE` — statistically significant evidence
//! that the exponential model mispredicts the overhead under the cell's law.

use serde::{Deserialize, Serialize};

use ayd_core::FailureModelSpec;
use ayd_platforms::PlatformId;

use crate::executor::{SweepResults, SweepRow};

/// One non-exponential row's model-vs-simulation comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MisspecificationRow {
    /// Platform of the row.
    pub platform: PlatformId,
    /// Scenario number (1–6).
    pub scenario: usize,
    /// The row's (non-exponential) failure model.
    pub failure_model: FailureModelSpec,
    /// Individual error rate `λ_ind` of the row.
    pub lambda_ind: f64,
    /// Overhead the exponential model predicts at the primary point.
    pub predicted_overhead: f64,
    /// Mean overhead simulated under the true law at the same point.
    pub simulated_overhead: f64,
    /// Half-width of the simulation's 95% confidence interval.
    pub simulated_ci95: f64,
    /// Signed relative error of the prediction:
    /// `(simulated − predicted) / predicted`.
    pub relative_error: f64,
    /// True when `|predicted − simulated| > 3·SE` (with `SE = ci95 / 1.96`):
    /// the misprediction is statistically significant at the 3-sigma level,
    /// not simulation noise.
    pub significant: bool,
}

/// Per-sweep misspecification report (see [`misspecification_report`]).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MisspecificationReport {
    /// One entry per non-exponential row that carries a primary-point
    /// simulation, in row order.
    pub rows: Vec<MisspecificationRow>,
}

impl MisspecificationReport {
    /// True when no row produced a comparison (all-exponential sweep, or
    /// simulation was off).
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Number of rows whose misprediction is significant at 3 sigma.
    pub fn significant_count(&self) -> usize {
        self.rows.iter().filter(|r| r.significant).count()
    }

    /// Renders the report as an aligned text table (empty string when the
    /// report is empty).
    pub fn render(&self) -> String {
        if self.rows.is_empty() {
            return String::new();
        }
        let mut out = String::from(
            "platform    scenario  failure_model     lambda_ind    predicted    simulated    rel_error  3-sigma\n",
        );
        for row in &self.rows {
            out.push_str(&format!(
                "{:<10}  {:<8}  {:<16}  {:<11.4e}  {:<11.6}  {:<11.6}  {:>+8.2}%  {}\n",
                format!("{:?}", row.platform),
                row.scenario,
                row.failure_model.to_string(),
                row.lambda_ind,
                row.predicted_overhead,
                row.simulated_overhead,
                100.0 * row.relative_error,
                if row.significant { "yes" } else { "no" },
            ));
        }
        out
    }
}

/// Extracts one comparison from a row, when the row is non-exponential and
/// its primary point was simulated.
pub fn misspecification_of(row: &SweepRow) -> Option<MisspecificationRow> {
    if row.failure_model.is_exponential() {
        return None;
    }
    let point = row.primary_point();
    let simulated = point.simulated?;
    let predicted = point.predicted_overhead;
    let standard_error = simulated.ci95 / 1.96;
    Some(MisspecificationRow {
        platform: row.platform,
        scenario: row.scenario,
        failure_model: row.failure_model.clone(),
        lambda_ind: row.lambda_ind,
        predicted_overhead: predicted,
        simulated_overhead: simulated.mean,
        simulated_ci95: simulated.ci95,
        relative_error: (simulated.mean - predicted) / predicted,
        significant: (predicted - simulated.mean).abs() > 3.0 * standard_error,
    })
}

/// Builds the misspecification report of a sweep: one entry per
/// non-exponential row whose primary point carries a simulation.
pub fn misspecification_report(results: &SweepResults) -> MisspecificationReport {
    MisspecificationReport {
        rows: results
            .rows
            .iter()
            .filter_map(misspecification_of)
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{SweepExecutor, SweepOptions};
    use crate::grid::{ProcessorAxis, ScenarioGrid};
    use crate::options::RunOptions;
    use ayd_platforms::ScenarioId;

    fn mixed_grid() -> ScenarioGrid {
        ScenarioGrid::builder()
            .scenarios(&[ScenarioId::S1])
            .failure_models(&[
                FailureModelSpec::exponential(),
                FailureModelSpec::weibull(0.7).unwrap(),
                FailureModelSpec::weibull(1.0).unwrap(),
            ])
            .lambda_multipliers(&[10.0])
            .processors(ProcessorAxis::Fixed(vec![512.0]))
            .build()
            .unwrap()
    }

    #[test]
    fn report_covers_exactly_the_non_exponential_rows() {
        let results = SweepExecutor::new(SweepOptions::new(RunOptions::smoke())).run(&mixed_grid());
        let report = misspecification_report(&results);
        // The exponential row is excluded; so is weibull:1.0, which
        // canonicalises to exponential. Only weibull:0.7 remains.
        assert_eq!(report.rows.len(), 1);
        let row = &report.rows[0];
        assert_eq!(row.failure_model.kind(), "weibull");
        assert_eq!(row.failure_model.param(), Some(0.7));
        assert!(row.predicted_overhead > 0.0);
        assert!(row.simulated_overhead > 0.0);
        assert!(row.relative_error.is_finite());
        let rendered = report.render();
        assert!(rendered.contains("weibull:0.7"), "{rendered}");
        assert!(rendered.contains("3-sigma"), "{rendered}");
    }

    #[test]
    fn analytic_sweeps_produce_an_empty_report() {
        let options = SweepOptions::new(RunOptions {
            simulate: false,
            ..RunOptions::smoke()
        });
        let results = SweepExecutor::new(options).run(&mixed_grid());
        let report = misspecification_report(&results);
        assert!(report.is_empty());
        assert_eq!(report.significant_count(), 0);
        assert_eq!(report.render(), "");
    }

    #[test]
    fn a_strongly_non_exponential_law_is_flagged_at_three_sigma() {
        // A heavy-tailed weibull (k = 0.5) at a high error rate mispredicts
        // far beyond simulation noise; standard fidelity makes the confidence
        // interval tight enough to resolve the gap.
        let grid = ScenarioGrid::builder()
            .scenarios(&[ScenarioId::S1])
            .failure_models(&[FailureModelSpec::weibull(0.5).unwrap()])
            .lambda_multipliers(&[10.0])
            .processors(ProcessorAxis::Fixed(vec![512.0]))
            .build()
            .unwrap();
        let run = RunOptions {
            fidelity: crate::options::Fidelity::Standard,
            ..RunOptions::smoke()
        };
        let results = SweepExecutor::new(SweepOptions::new(run)).run(&grid);
        let report = misspecification_report(&results);
        assert_eq!(report.rows.len(), 1);
        assert!(
            report.rows[0].significant,
            "expected a 3-sigma misprediction, got {:?}",
            report.rows[0]
        );
        assert_eq!(report.significant_count(), 1);
    }
}
