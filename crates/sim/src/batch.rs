//! Parallel batch replication of simulation runs.
//!
//! The paper averages 500 independent runs of at least 500 patterns each for
//! every data point. [`Simulator`] performs that replication, spreading runs over
//! worker threads (std scoped threads) while keeping results bit-for-bit
//! reproducible: each run derives its RNG from `(base seed, run index)` only, so
//! the outcome does not depend on how runs are scheduled across threads.

use std::sync::Mutex;

use serde::{Deserialize, Serialize};

use ayd_core::ExactModel;

use crate::engine::{PatternOutcome, WindowSamplingEngine};
use crate::law::ArrivalLaw;
use crate::params::PatternParams;
use crate::rng::rng_for_replicate;
use crate::run::simulate_run;
use crate::stats::RunningStats;
use crate::stream::EventStreamEngine;
use crate::EngineKind;

/// Configuration of a batch of simulation runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimulationConfig {
    /// Number of independent runs (the paper uses 500).
    pub runs: u64,
    /// Number of committed patterns per run (the paper uses at least 500).
    pub patterns_per_run: u64,
    /// Base seed; each run derives its own deterministic stream from it.
    pub seed: u64,
    /// Which engine to use.
    pub engine: EngineKind,
    /// Number of worker threads (`None` = all available cores).
    pub threads: Option<usize>,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        Self {
            runs: 100,
            patterns_per_run: 200,
            seed: 0x5EED_A1D0_2016,
            engine: EngineKind::WindowSampling,
            threads: None,
        }
    }
}

impl SimulationConfig {
    /// The replication scale used in the paper: 500 runs × 500 patterns.
    pub fn paper_scale() -> Self {
        Self {
            runs: 500,
            patterns_per_run: 500,
            ..Self::default()
        }
    }

    /// A light profile for quick smoke tests and benches.
    pub fn quick() -> Self {
        Self {
            runs: 30,
            patterns_per_run: 60,
            ..Self::default()
        }
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy using the given engine.
    pub fn with_engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// Returns a copy with an explicit worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }
}

/// Aggregated overhead statistics of a batch of runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverheadStats {
    /// Mean execution overhead across runs (the simulated `H(PATTERN)`).
    pub mean: f64,
    /// Standard deviation of the per-run overheads.
    pub std_dev: f64,
    /// Half-width of the 95% confidence interval of the mean.
    pub ci95: f64,
    /// Smallest per-run overhead observed.
    pub min: f64,
    /// Largest per-run overhead observed.
    pub max: f64,
    /// Number of runs.
    pub runs: u64,
    /// Total number of fail-stop errors injected across all runs.
    pub fail_stop_errors: u64,
    /// Total number of silent errors detected across all runs.
    pub silent_errors_detected: u64,
    /// Total number of silent errors masked by fail-stop errors.
    pub silent_errors_masked: u64,
}

/// Parallel batch simulator bound to an exact analytical model.
#[derive(Debug, Clone, Copy)]
pub struct Simulator {
    /// The model whose operating points are simulated.
    pub model: ExactModel,
}

impl Simulator {
    /// Creates a simulator for the given model.
    pub fn new(model: ExactModel) -> Self {
        Self { model }
    }

    /// Simulates the execution overhead of the pattern `(t, p)` under the given
    /// batch configuration.
    pub fn simulate_overhead(&self, t: f64, p: f64, config: &SimulationConfig) -> OverheadStats {
        let params = PatternParams::from_model(&self.model, t, p);
        simulate_params(&params, config)
    }

    /// Like [`Self::simulate_overhead`], but with failure inter-arrivals drawn
    /// from `law` instead of the exponential. The memoryless exponential law
    /// takes exactly the same code path as [`Self::simulate_overhead`] (so the
    /// results are bit-identical); any other law is routed to the event-stream
    /// engine regardless of `config.engine`, because the window engine's
    /// per-attempt redraw is exact only under memorylessness.
    pub fn simulate_overhead_with_law(
        &self,
        t: f64,
        p: f64,
        config: &SimulationConfig,
        law: &ArrivalLaw,
    ) -> OverheadStats {
        let params = PatternParams::from_model(&self.model, t, p);
        simulate_params_with_law(&params, config, law)
    }

    /// Convenience: simulated overhead using the first-order optimal period for
    /// the given processor count (Theorem 1).
    pub fn simulate_at_first_order_period(
        &self,
        p: f64,
        config: &SimulationConfig,
    ) -> OverheadStats {
        let period = ayd_core::FirstOrder::new(&self.model)
            .optimal_period_for(p)
            .period;
        self.simulate_overhead(period, p, config)
    }
}

/// Simulates a batch directly from flattened pattern parameters.
pub fn simulate_params(params: &PatternParams, config: &SimulationConfig) -> OverheadStats {
    simulate_params_with_law(params, config, &ArrivalLaw::Exponential)
}

/// Simulates a batch under an arbitrary failure inter-arrival law.
///
/// Non-memoryless laws always run on the event-stream engine (whose persistent
/// countdowns implement a correct renewal process); `config.engine` is honoured
/// only for the exponential law, where both engines are exact.
pub fn simulate_params_with_law(
    params: &PatternParams,
    config: &SimulationConfig,
    law: &ArrivalLaw,
) -> OverheadStats {
    assert!(config.runs > 0, "at least one run is required");
    let workers = config
        .threads
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .clamp(1, config.runs as usize);

    // Per-run results are collected with their run index and aggregated in run
    // order afterwards, so the statistics are bit-for-bit identical regardless of
    // how runs were scheduled across worker threads.
    let next_run = std::sync::atomic::AtomicU64::new(0);
    let collected: Mutex<Vec<(u64, f64, PatternOutcome)>> =
        Mutex::new(Vec::with_capacity(config.runs as usize));

    // Panics in workers propagate when the scope joins them at the end.
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut local: Vec<(u64, f64, PatternOutcome)> = Vec::new();
                loop {
                    let run = next_run.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if run >= config.runs {
                        break;
                    }
                    let mut rng = rng_for_replicate(config.seed, run);
                    let result = if law.is_memoryless() {
                        match config.engine {
                            EngineKind::WindowSampling => {
                                let mut engine = WindowSamplingEngine::new();
                                simulate_run(&mut engine, params, config.patterns_per_run, &mut rng)
                            }
                            EngineKind::EventStream => {
                                let mut engine = EventStreamEngine::new();
                                simulate_run(&mut engine, params, config.patterns_per_run, &mut rng)
                            }
                        }
                    } else {
                        let mut engine = EventStreamEngine::with_law(law.clone());
                        simulate_run(&mut engine, params, config.patterns_per_run, &mut rng)
                    };
                    local.push((run, result.overhead, result.events));
                }
                collected.lock().expect("collector poisoned").extend(local);
            });
        }
    });

    let mut per_run = collected.into_inner().expect("collector poisoned");
    per_run.sort_unstable_by_key(|(run, _, _)| *run);
    let mut stats = RunningStats::new();
    let mut events = PatternOutcome::default();
    for (_, overhead, run_events) in &per_run {
        stats.push(*overhead);
        events.accumulate(run_events);
    }
    OverheadStats {
        mean: stats.mean(),
        std_dev: stats.std_dev(),
        ci95: stats.ci95_half_width(),
        min: stats.min(),
        max: stats.max(),
        runs: stats.count(),
        fail_stop_errors: events.fail_stop_errors,
        silent_errors_detected: events.silent_errors_detected,
        silent_errors_masked: events.silent_errors_masked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ayd_core::{
        CheckpointCost, FailureModel, FirstOrder, ResilienceCosts, SpeedupProfile, VerificationCost,
    };

    fn hera_scenario1() -> ExactModel {
        ExactModel::new(
            SpeedupProfile::amdahl(0.1).unwrap(),
            ResilienceCosts::new(
                CheckpointCost::linear(300.0 / 512.0),
                VerificationCost::constant(15.4),
                3600.0,
            )
            .unwrap(),
            FailureModel::new(1.69e-8, 0.2188).unwrap(),
        )
    }

    #[test]
    fn simulated_overhead_matches_analytical_prediction() {
        let model = hera_scenario1();
        let sim = Simulator::new(model);
        let (t, p) = (6_000.0, 400.0);
        let config = SimulationConfig {
            runs: 60,
            patterns_per_run: 150,
            ..Default::default()
        };
        let stats = sim.simulate_overhead(t, p, &config);
        let predicted = model.expected_overhead(t, p);
        let rel = (stats.mean - predicted).abs() / predicted;
        assert!(
            rel < 0.03,
            "simulated {} vs predicted {} (rel {rel})",
            stats.mean,
            predicted
        );
        assert_eq!(stats.runs, 60);
        assert!(stats.min <= stats.mean && stats.mean <= stats.max);
    }

    #[test]
    fn results_are_reproducible_and_thread_count_independent() {
        let model = hera_scenario1();
        let sim = Simulator::new(model);
        let base = SimulationConfig {
            runs: 24,
            patterns_per_run: 80,
            ..Default::default()
        };
        let one_thread = sim.simulate_overhead(5_000.0, 512.0, &base.with_threads(1));
        let many_threads = sim.simulate_overhead(5_000.0, 512.0, &base.with_threads(8));
        assert_eq!(one_thread.mean, many_threads.mean);
        assert_eq!(one_thread.std_dev, many_threads.std_dev);
        assert_eq!(one_thread.fail_stop_errors, many_threads.fail_stop_errors);
    }

    #[test]
    fn different_seeds_give_different_but_close_results() {
        let model = hera_scenario1();
        let sim = Simulator::new(model);
        let config = SimulationConfig {
            runs: 40,
            patterns_per_run: 100,
            ..Default::default()
        };
        let a = sim.simulate_overhead(6_000.0, 400.0, &config.with_seed(1));
        let b = sim.simulate_overhead(6_000.0, 400.0, &config.with_seed(2));
        assert_ne!(a.mean, b.mean);
        assert!((a.mean - b.mean).abs() / a.mean < 0.05);
    }

    #[test]
    fn both_engines_agree_within_confidence_intervals() {
        let model = hera_scenario1();
        let sim = Simulator::new(model);
        let config = SimulationConfig {
            runs: 50,
            patterns_per_run: 120,
            ..Default::default()
        };
        let window = sim.simulate_overhead(6_000.0, 400.0, &config);
        let stream =
            sim.simulate_overhead(6_000.0, 400.0, &config.with_engine(EngineKind::EventStream));
        let gap = (window.mean - stream.mean).abs();
        assert!(
            gap < 3.0 * (window.ci95 + stream.ci95),
            "window={} stream={} gap={gap}",
            window.mean,
            stream.mean
        );
    }

    #[test]
    fn first_order_period_helper_matches_explicit_call() {
        let model = hera_scenario1();
        let sim = Simulator::new(model);
        let config = SimulationConfig {
            runs: 10,
            patterns_per_run: 50,
            ..Default::default()
        };
        let p = 400.0;
        let period = FirstOrder::new(&model).optimal_period_for(p).period;
        let a = sim.simulate_at_first_order_period(p, &config);
        let b = sim.simulate_overhead(period, p, &config);
        assert_eq!(a.mean, b.mean);
    }

    #[test]
    fn error_counts_scale_with_error_rate() {
        let model = hera_scenario1();
        let sim_low = Simulator::new(model);
        let sim_high =
            Simulator::new(model.with_failures(FailureModel::new(1.69e-7, 0.2188).unwrap()));
        let config = SimulationConfig {
            runs: 20,
            patterns_per_run: 60,
            ..Default::default()
        };
        let low = sim_low.simulate_overhead(6_000.0, 512.0, &config);
        let high = sim_high.simulate_overhead(6_000.0, 512.0, &config);
        assert!(
            high.fail_stop_errors + high.silent_errors_detected
                > low.fail_stop_errors + low.silent_errors_detected
        );
        assert!(high.mean > low.mean);
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn zero_runs_rejected() {
        let model = hera_scenario1();
        let sim = Simulator::new(model);
        let config = SimulationConfig {
            runs: 0,
            ..Default::default()
        };
        let _ = sim.simulate_overhead(1_000.0, 10.0, &config);
    }
}
