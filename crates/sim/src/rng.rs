//! Random-number utilities: exponential sampling and deterministic seed derivation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Exp};

/// Samples the time to the next arrival of a Poisson process of rate `rate`
/// (an exponential random variable). A zero rate yields `+∞` (the event never
/// happens), which the engines rely on to model error-free sources.
pub fn sample_exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    debug_assert!(rate >= 0.0 && rate.is_finite());
    if rate == 0.0 {
        return f64::INFINITY;
    }
    // `rand_distr`'s ziggurat-based sampler; rate is validated above.
    Exp::new(rate).expect("positive finite rate").sample(rng)
}

/// Inverse-CDF exponential sampler, kept as an independent implementation for
/// cross-checking the distribution of [`sample_exponential`] in tests.
pub fn sample_exponential_inverse_cdf<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    debug_assert!(rate >= 0.0 && rate.is_finite());
    if rate == 0.0 {
        return f64::INFINITY;
    }
    // u ∈ (0, 1]; -ln(u)/rate is Exp(rate) distributed.
    let u: f64 = 1.0 - rng.gen::<f64>();
    -u.ln() / rate
}

/// Derives a per-replicate RNG from a base seed and a replicate index, using a
/// SplitMix64 mixing step so that consecutive indices produce decorrelated
/// streams. Deterministic: the same `(base_seed, index)` always yields the same
/// stream, regardless of how replicates are scheduled across threads.
pub fn rng_for_replicate(base_seed: u64, index: u64) -> StdRng {
    StdRng::seed_from_u64(splitmix64(base_seed ^ splitmix64(index)))
}

/// One round of the SplitMix64 mixing function.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_never_fires() {
        let mut rng = rng_for_replicate(1, 0);
        assert_eq!(sample_exponential(&mut rng, 0.0), f64::INFINITY);
        assert_eq!(sample_exponential_inverse_cdf(&mut rng, 0.0), f64::INFINITY);
    }

    #[test]
    fn exponential_mean_matches_inverse_rate() {
        let mut rng = rng_for_replicate(42, 7);
        let rate = 1.0 / 500.0;
        let n = 200_000;
        let mean: f64 = (0..n)
            .map(|_| sample_exponential(&mut rng, rate))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 500.0).abs() < 5.0, "mean={mean}");
    }

    #[test]
    fn both_samplers_agree_in_distribution() {
        let rate = 2.5e-3;
        let n = 200_000;
        let mut rng1 = rng_for_replicate(7, 1);
        let mut rng2 = rng_for_replicate(7, 2);
        let mean1: f64 = (0..n)
            .map(|_| sample_exponential(&mut rng1, rate))
            .sum::<f64>()
            / n as f64;
        let mean2: f64 = (0..n)
            .map(|_| sample_exponential_inverse_cdf(&mut rng2, rate))
            .sum::<f64>()
            / n as f64;
        let expected = 1.0 / rate;
        assert!((mean1 - expected).abs() / expected < 0.02);
        assert!((mean2 - expected).abs() / expected < 0.02);
    }

    #[test]
    fn replicate_streams_are_deterministic_and_distinct() {
        let mut a1 = rng_for_replicate(123, 5);
        let mut a2 = rng_for_replicate(123, 5);
        let mut b = rng_for_replicate(123, 6);
        let xs1: Vec<f64> = (0..10).map(|_| a1.gen::<f64>()).collect();
        let xs2: Vec<f64> = (0..10).map(|_| a2.gen::<f64>()).collect();
        let ys: Vec<f64> = (0..10).map(|_| b.gen::<f64>()).collect();
        assert_eq!(xs1, xs2, "same seed/index must reproduce the stream");
        assert_ne!(xs1, ys, "different indices must decorrelate");
    }

    #[test]
    fn splitmix_is_a_bijection_probe() {
        // Distinct inputs map to distinct outputs on a small probe set.
        let outs: std::collections::HashSet<u64> = (0..1_000u64).map(splitmix64).collect();
        assert_eq!(outs.len(), 1_000);
    }
}
