//! Window-sampling simulation engine.
//!
//! For each attempt of each phase the engine draws the time to the next fail-stop
//! error (exponential with the platform rate) and, for computation phases, whether
//! a silent error strikes within the chunk. Because exponential inter-arrival
//! times are memoryless, re-drawing at every attempt is statistically identical to
//! maintaining a persistent arrival process (which is what
//! [`crate::stream::EventStreamEngine`] does); the two engines cross-validate each
//! other.

use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use crate::params::PatternParams;
use crate::rng::sample_exponential;

/// Outcome of executing one pattern until its checkpoint commits.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PatternOutcome {
    /// Wall-clock time elapsed until the checkpoint committed (seconds).
    pub time: f64,
    /// Number of fail-stop errors that struck (in any phase).
    pub fail_stop_errors: u64,
    /// Number of silent errors that were detected by the verification.
    pub silent_errors_detected: u64,
    /// Number of silent errors that struck but were masked by a later fail-stop
    /// error within the same attempt (the rollback discarded the corruption).
    pub silent_errors_masked: u64,
    /// Number of recovery attempts (including those interrupted by further
    /// fail-stop errors).
    pub recovery_attempts: u64,
}

impl PatternOutcome {
    /// Merges another outcome into this one (summing counters and times).
    pub fn accumulate(&mut self, other: &PatternOutcome) {
        self.time += other.time;
        self.fail_stop_errors += other.fail_stop_errors;
        self.silent_errors_detected += other.silent_errors_detected;
        self.silent_errors_masked += other.silent_errors_masked;
        self.recovery_attempts += other.recovery_attempts;
    }
}

/// A simulation engine able to execute one pattern and report its outcome.
pub trait PatternEngine {
    /// Executes one pattern (until its checkpoint commits) and returns the
    /// elapsed time and event counts.
    fn execute_pattern(&mut self, params: &PatternParams, rng: &mut StdRng) -> PatternOutcome;

    /// Resets any internal state (arrival countdowns, ...) so the engine can be
    /// reused for an independent run.
    fn reset(&mut self) {}
}

/// The default engine: independent exponential draws per attempt window.
#[derive(Debug, Clone, Copy, Default)]
pub struct WindowSamplingEngine;

impl WindowSamplingEngine {
    /// Creates the engine.
    pub fn new() -> Self {
        Self
    }

    /// Executes a successful-or-retried recovery sequence: keeps attempting the
    /// recovery of length `R`, paying a downtime after each fail-stop error that
    /// interrupts it, until one attempt completes.
    fn run_recovery(params: &PatternParams, rng: &mut StdRng, outcome: &mut PatternOutcome) -> f64 {
        let mut elapsed = 0.0;
        loop {
            outcome.recovery_attempts += 1;
            let next_failure = sample_exponential(rng, params.lambda_fail_stop);
            if next_failure < params.recovery {
                outcome.fail_stop_errors += 1;
                elapsed += next_failure + params.downtime;
            } else {
                elapsed += params.recovery;
                return elapsed;
            }
        }
    }
}

impl PatternEngine for WindowSamplingEngine {
    fn execute_pattern(&mut self, params: &PatternParams, rng: &mut StdRng) -> PatternOutcome {
        let mut outcome = PatternOutcome::default();
        let work_and_verification = params.work + params.verification;
        // Outer loop: re-entered when a fail-stop error interrupts the checkpoint.
        'pattern: loop {
            // Inner loop: execute T + V until both complete without a fail-stop
            // error and without a detected silent error.
            'work: loop {
                let next_failure = sample_exponential(rng, params.lambda_fail_stop);
                // Time of the first silent error within this attempt's computation
                // (silent errors strike only during the `T` part, never during the
                // verification).
                let next_silent = sample_exponential(rng, params.lambda_silent);
                if next_failure < work_and_verification {
                    // Fail-stop error: immediate interruption, downtime, recovery.
                    outcome.fail_stop_errors += 1;
                    if next_silent < next_failure.min(params.work) {
                        // A silent error had already corrupted the data, but the
                        // rollback caused by the fail-stop error discards it.
                        outcome.silent_errors_masked += 1;
                    }
                    outcome.time += next_failure + params.downtime;
                    outcome.time += Self::run_recovery(params, rng, &mut outcome);
                    continue 'work;
                }
                // No fail-stop error: the whole T + V executed.
                outcome.time += work_and_verification;
                if next_silent < params.work {
                    // Detected by the verification: recovery (no downtime), retry.
                    outcome.silent_errors_detected += 1;
                    outcome.time += Self::run_recovery(params, rng, &mut outcome);
                    continue 'work;
                }
                break 'work;
            }
            // Checkpoint attempt.
            let next_failure = sample_exponential(rng, params.lambda_fail_stop);
            if next_failure < params.checkpoint {
                outcome.fail_stop_errors += 1;
                outcome.time += next_failure + params.downtime;
                outcome.time += Self::run_recovery(params, rng, &mut outcome);
                // The whole pattern (T + V, then C) must be re-executed.
                continue 'pattern;
            }
            outcome.time += params.checkpoint;
            return outcome;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_for_replicate;

    fn params(lambda_f: f64, lambda_s: f64) -> PatternParams {
        PatternParams {
            work: 6_000.0,
            verification: 15.4,
            checkpoint: 300.0,
            recovery: 300.0,
            downtime: 3600.0,
            lambda_fail_stop: lambda_f,
            lambda_silent: lambda_s,
            work_per_pattern: 6_000.0 * 9.83,
        }
    }

    #[test]
    fn error_free_pattern_takes_exactly_the_raw_time() {
        let mut engine = WindowSamplingEngine::new();
        let mut rng = rng_for_replicate(1, 1);
        let p = params(0.0, 0.0);
        let out = engine.execute_pattern(&p, &mut rng);
        assert_eq!(out.time, p.error_free_duration());
        assert_eq!(out.fail_stop_errors, 0);
        assert_eq!(out.silent_errors_detected, 0);
        assert_eq!(out.recovery_attempts, 0);
    }

    #[test]
    fn time_is_never_below_error_free_duration() {
        let mut engine = WindowSamplingEngine::new();
        let mut rng = rng_for_replicate(2, 0);
        let p = params(1e-5, 3e-5);
        for _ in 0..2_000 {
            let out = engine.execute_pattern(&p, &mut rng);
            assert!(out.time >= p.error_free_duration() - 1e-9);
        }
    }

    #[test]
    fn every_fail_stop_error_costs_a_downtime() {
        // With a large downtime, total time must be at least
        // error-free + fail_stop_errors * downtime.
        let mut engine = WindowSamplingEngine::new();
        let mut rng = rng_for_replicate(3, 0);
        let p = params(5e-5, 0.0);
        for _ in 0..500 {
            let out = engine.execute_pattern(&p, &mut rng);
            assert!(
                out.time + 1e-6
                    >= p.error_free_duration() + out.fail_stop_errors as f64 * p.downtime
            );
        }
    }

    #[test]
    fn silent_only_configuration_detects_or_commits() {
        let mut engine = WindowSamplingEngine::new();
        let mut rng = rng_for_replicate(4, 0);
        let p = params(0.0, 1e-4);
        let mut detected = 0;
        for _ in 0..500 {
            let out = engine.execute_pattern(&p, &mut rng);
            assert_eq!(out.fail_stop_errors, 0);
            assert_eq!(out.silent_errors_masked, 0);
            detected += out.silent_errors_detected;
            // Every detected silent error triggers exactly one recovery sequence,
            // and with λ_f = 0 each sequence is a single attempt.
            assert_eq!(out.recovery_attempts, out.silent_errors_detected);
        }
        assert!(
            detected > 0,
            "with this rate some silent errors must strike"
        );
    }

    #[test]
    fn masked_silent_errors_only_appear_alongside_fail_stop_errors() {
        let mut engine = WindowSamplingEngine::new();
        let mut rng = rng_for_replicate(5, 0);
        let p = params(1e-4, 1e-4);
        for _ in 0..500 {
            let out = engine.execute_pattern(&p, &mut rng);
            if out.silent_errors_masked > 0 {
                assert!(out.fail_stop_errors > 0);
            }
        }
    }

    #[test]
    fn mean_time_matches_analytical_expectation() {
        // Cross-check the engine against Proposition 1 on a Hera-like setting.
        use ayd_core::{
            CheckpointCost, ExactModel, FailureModel, ResilienceCosts, SpeedupProfile,
            VerificationCost,
        };
        let model = ExactModel::new(
            SpeedupProfile::amdahl(0.1).unwrap(),
            ResilienceCosts::new(
                CheckpointCost::linear(300.0 / 512.0),
                VerificationCost::constant(15.4),
                3600.0,
            )
            .unwrap(),
            FailureModel::new(1.69e-8, 0.2188).unwrap(),
        );
        let (t, p) = (6_000.0, 512.0);
        let params = crate::params::PatternParams::from_model(&model, t, p);
        let expected = model.expected_pattern_time(t, p);
        let mut engine = WindowSamplingEngine::new();
        let mut rng = rng_for_replicate(99, 3);
        let n = 40_000;
        let mean: f64 = (0..n)
            .map(|_| engine.execute_pattern(&params, &mut rng).time)
            .sum::<f64>()
            / n as f64;
        let rel = (mean - expected).abs() / expected;
        assert!(
            rel < 0.01,
            "simulated mean {mean} vs analytical {expected} (rel {rel})"
        );
    }

    #[test]
    fn accumulate_sums_fields() {
        let a = PatternOutcome {
            time: 10.0,
            fail_stop_errors: 1,
            silent_errors_detected: 2,
            silent_errors_masked: 3,
            recovery_attempts: 4,
        };
        let mut b = a;
        b.accumulate(&a);
        assert_eq!(b.time, 20.0);
        assert_eq!(b.fail_stop_errors, 2);
        assert_eq!(b.silent_errors_detected, 4);
        assert_eq!(b.silent_errors_masked, 6);
        assert_eq!(b.recovery_attempts, 8);
    }
}
