//! Failure inter-arrival laws beyond the exponential.
//!
//! The paper's analysis — and the [`crate::engine::WindowSamplingEngine`] — rely
//! on memorylessness: re-drawing the time to the next error for every attempt
//! window is exact *only* for exponential inter-arrivals. [`ArrivalLaw`]
//! generalises the inter-arrival distribution (Weibull, shifted exponential,
//! trace replay) for the [`crate::stream::EventStreamEngine`], whose persistent
//! countdowns implement a genuine renewal process and therefore stay correct
//! under any iid inter-arrival law.
//!
//! Every law is **mean-matched** to the ambient Poisson rate: a process of rate
//! `λ` has mean inter-arrival time `1/λ` under every law, so the analytical
//! (exponential-model) prediction and the simulation see the same expected
//! number of errors per unit time, and any divergence in overhead measures the
//! *shape* misspecification alone.
//!
//! The [`ArrivalLaw::Exponential`] arm delegates to
//! [`crate::rng::sample_exponential`] verbatim, which keeps simulations under
//! that law bit-identical to the pre-existing exponential code path.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::Rng;

use ayd_core::{FailureLaw, FailureModelSpec};

use crate::rng::sample_exponential;

/// An iid failure inter-arrival law, mean-matched to the ambient rate.
#[derive(Debug, Clone, Default, PartialEq)]
pub enum ArrivalLaw {
    /// Memoryless exponential inter-arrivals — the paper's model.
    #[default]
    Exponential,
    /// Weibull inter-arrivals with shape `k`, scale chosen so the mean is
    /// `1/rate` (`scale = 1 / (rate · Γ(1 + 1/k))`).
    Weibull {
        /// The shape parameter `k`.
        shape: f64,
        /// Precomputed `1 / Γ(1 + 1/k)`, so sampling never re-evaluates Γ.
        scale_factor: f64,
    },
    /// A deterministic failure-free window followed by an exponential tail:
    /// inter-arrival = `shift + Exp(rate)` seconds.
    Shifted {
        /// The shift `d` in seconds.
        shift: f64,
    },
    /// Cyclic replay of recorded inter-arrival samples, normalised to unit
    /// mean at load time and scaled by `1/rate` when sampled. Each run starts
    /// at an RNG-derived position of the log, so replicates decorrelate while
    /// staying deterministic per `(seed, run)`.
    Trace {
        /// Unit-mean inter-arrival samples.
        samples: Arc<[f64]>,
    },
}

impl ArrivalLaw {
    /// A Weibull law with shape `k > 0` (finite), mean-matched to the rate.
    pub fn weibull(shape: f64) -> Self {
        assert!(
            shape.is_finite() && shape > 0.0,
            "weibull shape must be finite and positive, got {shape}"
        );
        Self::Weibull {
            shape,
            scale_factor: 1.0 / gamma(1.0 + 1.0 / shape),
        }
    }

    /// A shifted-exponential law with a fixed failure-free window.
    ///
    /// Note: the *tail* keeps the ambient rate, so the mean inter-arrival time
    /// is `shift + 1/rate` — the shift models a guaranteed grace period (e.g.
    /// post-repair burn-in) on top of the ambient process.
    pub fn shifted(shift: f64) -> Self {
        assert!(
            shift.is_finite() && shift >= 0.0,
            "shift must be finite and non-negative, got {shift}"
        );
        Self::Shifted { shift }
    }

    /// A trace-replay law from raw inter-arrival samples (seconds). The
    /// samples are normalised to unit mean.
    pub fn trace(samples: Vec<f64>) -> Result<Self, String> {
        if samples.is_empty() {
            return Err("failure trace contains no samples".to_string());
        }
        if let Some(bad) = samples.iter().find(|s| !(s.is_finite() && **s >= 0.0)) {
            return Err(format!(
                "failure trace contains an invalid inter-arrival sample: {bad}"
            ));
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        if !(mean.is_finite() && mean > 0.0) {
            return Err(format!(
                "failure trace mean inter-arrival must be positive, got {mean}"
            ));
        }
        let normalised: Vec<f64> = samples.iter().map(|s| s / mean).collect();
        Ok(Self::Trace {
            samples: normalised.into(),
        })
    }

    /// Loads a trace-replay law from a text file of inter-arrival samples
    /// (one number per line; blank lines and `#` comments are skipped).
    pub fn trace_from_file(path: &str) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read failure trace '{path}': {e}"))?;
        let mut samples = Vec::new();
        for (number, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let value: f64 = line.parse().map_err(|_| {
                format!(
                    "failure trace '{path}' line {}: '{line}' is not a number",
                    number + 1
                )
            })?;
            samples.push(value);
        }
        Self::trace(samples).map_err(|e| format!("failure trace '{path}': {e}"))
    }

    /// Builds the law a spec describes, reading the trace file for trace
    /// specs. Degenerate parameterisations (`weibull:1.0`, `shifted:0`)
    /// canonicalise to [`ArrivalLaw::Exponential`], which is what routes them
    /// onto the bit-exact exponential sampling path.
    pub fn from_spec(spec: &FailureModelSpec) -> Result<Self, String> {
        if spec.is_exponential() {
            return Ok(Self::Exponential);
        }
        match spec.law() {
            FailureLaw::Exponential => Ok(Self::Exponential),
            FailureLaw::Weibull { shape } => Ok(Self::weibull(*shape)),
            FailureLaw::Shifted { shift } => Ok(Self::shifted(*shift)),
            FailureLaw::Trace { path } => Self::trace_from_file(path),
        }
    }

    /// Whether the law is the memoryless exponential, for which per-window
    /// redraw sampling is exact.
    pub fn is_memoryless(&self) -> bool {
        matches!(self, Self::Exponential)
    }
}

/// Samples one inter-arrival time under `law` for a process of rate `rate`.
///
/// `cursor` is the replay position of a trace law (ignored by the analytic
/// laws); `None` means the replay has not started and a starting offset is
/// drawn from the RNG first. A zero rate yields `+∞` under every law, matching
/// [`sample_exponential`].
pub(crate) fn sample_arrival(
    law: &ArrivalLaw,
    rng: &mut StdRng,
    rate: f64,
    cursor: &mut Option<usize>,
) -> f64 {
    match law {
        ArrivalLaw::Exponential => sample_exponential(rng, rate),
        ArrivalLaw::Weibull {
            shape,
            scale_factor,
        } => {
            debug_assert!(rate >= 0.0 && rate.is_finite());
            if rate == 0.0 {
                return f64::INFINITY;
            }
            // Inverse-CDF: scale · (-ln u)^{1/k} with u ∈ (0, 1].
            let u: f64 = 1.0 - rng.gen::<f64>();
            (scale_factor / rate) * (-u.ln()).powf(1.0 / shape)
        }
        ArrivalLaw::Shifted { shift } => shift + sample_exponential(rng, rate),
        ArrivalLaw::Trace { samples } => {
            debug_assert!(rate >= 0.0 && rate.is_finite());
            if rate == 0.0 {
                return f64::INFINITY;
            }
            let position = match *cursor {
                Some(position) => position,
                None => (rng.gen::<u64>() % samples.len() as u64) as usize,
            };
            *cursor = Some((position + 1) % samples.len());
            samples[position] / rate
        }
    }
}

/// The gamma function Γ(x) via the Lanczos approximation (g = 7, n = 9),
/// accurate to ~15 significant digits over the range the laws use
/// (`x = 1 + 1/k` for any positive Weibull shape `k`).
fn gamma(x: f64) -> f64 {
    // The published coefficients carry more digits than f64 resolves; keep
    // them verbatim so the source matches the reference tables.
    #[allow(clippy::excessive_precision)]
    const COEFFICIENTS: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_59,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_571_6e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula; the laws never hit this branch but keep Γ total.
        std::f64::consts::PI / ((std::f64::consts::PI * x).sin() * gamma(1.0 - x))
    } else {
        let x = x - 1.0;
        let mut acc = COEFFICIENTS[0];
        for (i, &c) in COEFFICIENTS.iter().enumerate().skip(1) {
            acc += c / (x + i as f64);
        }
        let t = x + 7.5;
        (2.0 * std::f64::consts::PI).sqrt() * t.powf(x + 0.5) * (-t).exp() * acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_for_replicate;

    #[test]
    fn gamma_matches_known_values() {
        // Γ(n) = (n-1)! and Γ(1/2) = √π.
        assert!((gamma(1.0) - 1.0).abs() < 1e-12);
        assert!((gamma(2.0) - 1.0).abs() < 1e-12);
        assert!((gamma(5.0) - 24.0).abs() < 1e-9);
        assert!((gamma(0.5) - std::f64::consts::PI.sqrt()).abs() < 1e-12);
        // Γ(1 + 1/0.7) ≈ 1.26582, the Weibull k = 0.7 mean factor.
        assert!((gamma(1.0 + 1.0 / 0.7) - 1.265_823_506_057_283_3).abs() < 1e-9);
    }

    #[test]
    fn every_law_is_mean_matched_to_the_rate() {
        let rate = 1.0 / 500.0;
        let n = 200_000;
        for (label, law) in [
            ("exp", ArrivalLaw::Exponential),
            ("weibull 0.7", ArrivalLaw::weibull(0.7)),
            ("weibull 1.5", ArrivalLaw::weibull(1.5)),
            (
                "trace",
                ArrivalLaw::trace(vec![100.0, 300.0, 900.0, 50.0, 650.0]).unwrap(),
            ),
        ] {
            let mut rng = rng_for_replicate(99, 3);
            let mut cursor = None;
            let mean: f64 = (0..n)
                .map(|_| sample_arrival(&law, &mut rng, rate, &mut cursor))
                .sum::<f64>()
                / n as f64;
            let expected = 1.0 / rate;
            assert!(
                (mean - expected).abs() / expected < 0.02,
                "{label}: mean={mean} expected={expected}"
            );
        }
        // The shifted law adds its grace period on top of the ambient mean.
        let mut rng = rng_for_replicate(99, 4);
        let mut cursor = None;
        let law = ArrivalLaw::shifted(120.0);
        let mean: f64 = (0..n)
            .map(|_| sample_arrival(&law, &mut rng, rate, &mut cursor))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 620.0).abs() / 620.0 < 0.02, "shifted: mean={mean}");
    }

    #[test]
    fn zero_rate_never_fires_under_any_law() {
        let mut rng = rng_for_replicate(1, 0);
        let mut cursor = None;
        for law in [
            ArrivalLaw::Exponential,
            ArrivalLaw::weibull(0.7),
            ArrivalLaw::shifted(60.0),
            ArrivalLaw::trace(vec![1.0, 2.0]).unwrap(),
        ] {
            assert_eq!(
                sample_arrival(&law, &mut rng, 0.0, &mut cursor),
                f64::INFINITY
            );
        }
    }

    #[test]
    fn exponential_arm_is_bit_identical_to_sample_exponential() {
        let rate = 1.9e-6;
        let mut rng1 = rng_for_replicate(7, 7);
        let mut rng2 = rng_for_replicate(7, 7);
        let mut cursor = None;
        for _ in 0..1_000 {
            let via_law = sample_arrival(&ArrivalLaw::Exponential, &mut rng1, rate, &mut cursor);
            let direct = sample_exponential(&mut rng2, rate);
            assert_eq!(via_law.to_bits(), direct.to_bits());
        }
    }

    #[test]
    fn trace_replay_is_cyclic_and_rate_scaled() {
        let law = ArrivalLaw::trace(vec![1.0, 2.0, 3.0]).unwrap();
        let mut rng = rng_for_replicate(5, 5);
        let rate = 0.5; // mean 2 s
        let mut cursor = Some(0); // pin the start for determinism of the check
        let normalised_mean = 2.0; // samples have mean 2, normalised to 1
        let expected = [1.0, 2.0, 3.0].map(|s| s / normalised_mean / rate);
        for i in 0..9 {
            let sample = sample_arrival(&law, &mut rng, rate, &mut cursor);
            assert_eq!(sample.to_bits(), expected[i % 3].to_bits());
        }
    }

    #[test]
    fn degenerate_specs_canonicalise_to_the_exponential() {
        use ayd_core::FailureModelSpec;
        for spec in ["exp", "weibull:1.0", "shifted:0"] {
            let law = ArrivalLaw::from_spec(&FailureModelSpec::parse(spec).unwrap()).unwrap();
            assert_eq!(law, ArrivalLaw::Exponential, "{spec}");
        }
        let law = ArrivalLaw::from_spec(&FailureModelSpec::parse("weibull:0.7").unwrap()).unwrap();
        assert!(!law.is_memoryless());
    }

    #[test]
    fn invalid_traces_are_rejected() {
        assert!(ArrivalLaw::trace(vec![]).is_err());
        assert!(ArrivalLaw::trace(vec![1.0, f64::NAN]).is_err());
        assert!(ArrivalLaw::trace(vec![1.0, -2.0]).is_err());
        assert!(ArrivalLaw::trace(vec![0.0, 0.0]).is_err());
        assert!(ArrivalLaw::trace_from_file("/nonexistent/trace.txt").is_err());
    }

    #[test]
    fn trace_files_parse_numbers_and_skip_comments() {
        let dir = std::env::temp_dir().join("ayd-law-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.txt");
        std::fs::write(&path, "# recorded inter-arrivals\n100\n\n300.5\n 200 \n").unwrap();
        let law = ArrivalLaw::trace_from_file(path.to_str().unwrap()).unwrap();
        match &law {
            ArrivalLaw::Trace { samples } => assert_eq!(samples.len(), 3),
            other => panic!("expected trace, got {other:?}"),
        }
        let bad = dir.join("bad.txt");
        std::fs::write(&bad, "1.0\nnot-a-number\n").unwrap();
        assert!(ArrivalLaw::trace_from_file(bad.to_str().unwrap()).is_err());
    }
}
