//! Concrete per-pattern simulation parameters.
//!
//! The analytical model works with cost *models* (functions of `P`); the simulator
//! works with the concrete values those models take at a given operating point
//! `(T, P)`. [`PatternParams`] is that flattened view, derived from an
//! [`ayd_core::ExactModel`] via [`PatternParams::from_model`].

use serde::{Deserialize, Serialize};

use ayd_core::ExactModel;

/// The concrete parameters of one periodic checkpointing pattern at a fixed
/// operating point `(T, P)`. All times are in seconds, all rates in errors per
/// second (already scaled to the full platform of `P` processors).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PatternParams {
    /// Length `T` of the computation chunk.
    pub work: f64,
    /// Verification cost `V_P`.
    pub verification: f64,
    /// Checkpoint cost `C_P`.
    pub checkpoint: f64,
    /// Recovery cost `R_P`.
    pub recovery: f64,
    /// Downtime `D` after a fail-stop error.
    pub downtime: f64,
    /// Platform fail-stop error rate `λ_f(P)`.
    pub lambda_fail_stop: f64,
    /// Platform silent error rate `λ_s(P)`.
    pub lambda_silent: f64,
    /// Amount of useful work accomplished by one committed pattern, in seconds of
    /// sequential computation: `T · S(P)`.
    pub work_per_pattern: f64,
}

impl PatternParams {
    /// Derives the concrete parameters of the pattern `(t, p)` from an exact
    /// analytical model.
    ///
    /// # Panics
    /// Panics if `t` or `p` is not strictly positive.
    pub fn from_model(model: &ExactModel, t: f64, p: f64) -> Self {
        assert!(t > 0.0, "pattern length must be positive");
        assert!(p > 0.0, "processor count must be positive");
        Self {
            work: t,
            verification: model.costs.verification_at(p),
            checkpoint: model.costs.checkpoint_at(p),
            recovery: model.costs.recovery_at(p),
            downtime: model.costs.downtime,
            lambda_fail_stop: model.failures.fail_stop_rate(p),
            lambda_silent: model.failures.silent_rate(p),
            work_per_pattern: t * model.speedup.speedup(p),
        }
    }

    /// Error-free duration of one pattern: `T + V_P + C_P`.
    pub fn error_free_duration(&self) -> f64 {
        self.work + self.verification + self.checkpoint
    }

    /// Error-free execution overhead of the pattern per unit of sequential work,
    /// `(T + V_P + C_P) / (T · S(P))` — the floor any simulation result must stay
    /// above.
    pub fn error_free_overhead(&self) -> f64 {
        self.error_free_duration() / self.work_per_pattern
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ayd_core::{
        CheckpointCost, FailureModel, ResilienceCosts, SpeedupProfile, VerificationCost,
    };

    fn model() -> ExactModel {
        ExactModel::new(
            SpeedupProfile::amdahl(0.1).unwrap(),
            ResilienceCosts::new(
                CheckpointCost::linear(300.0 / 512.0),
                VerificationCost::constant(15.4),
                3600.0,
            )
            .unwrap(),
            FailureModel::new(1.69e-8, 0.2188).unwrap(),
        )
    }

    #[test]
    fn params_match_model_at_operating_point() {
        let m = model();
        let (t, p) = (6_000.0, 512.0);
        let params = PatternParams::from_model(&m, t, p);
        assert_eq!(params.work, t);
        assert!((params.checkpoint - 300.0).abs() < 1e-9);
        assert!((params.verification - 15.4).abs() < 1e-12);
        assert_eq!(params.recovery, params.checkpoint);
        assert_eq!(params.downtime, 3600.0);
        assert!((params.lambda_fail_stop - 0.2188 * 1.69e-8 * 512.0).abs() < 1e-18);
        assert!((params.lambda_silent - 0.7812 * 1.69e-8 * 512.0).abs() < 1e-18);
        assert!((params.work_per_pattern - t * m.speedup.speedup(p)).abs() < 1e-9);
    }

    #[test]
    fn error_free_overhead_is_above_amdahl_floor() {
        let m = model();
        let params = PatternParams::from_model(&m, 6_000.0, 512.0);
        // Must exceed H(P) = α + (1-α)/P but stay close to it for a long pattern.
        let floor = 0.1 + 0.9 / 512.0;
        let h = params.error_free_overhead();
        assert!(h > floor);
        assert!(h < floor * 1.2);
    }

    #[test]
    #[should_panic(expected = "pattern length")]
    fn rejects_zero_length_pattern() {
        let _ = PatternParams::from_model(&model(), 0.0, 512.0);
    }

    #[test]
    #[should_panic(expected = "processor count")]
    fn rejects_zero_processors() {
        let _ = PatternParams::from_model(&model(), 100.0, 0.0);
    }
}
