//! # ayd-sim — discrete-event simulation of the VC protocol
//!
//! This crate is the experimental substrate of the reproduction: it injects
//! fail-stop and silent errors as independent Poisson processes and replays the
//! verified-checkpoint (VC) protocol of the paper, pattern by pattern, measuring
//! the achieved execution overhead. The paper's Section IV uses exactly this kind
//! of simulation (500 runs of at least 500 patterns each) to validate the
//! analytical model; every figure's "simulation" series comes from here.
//!
//! ## Protocol semantics (Figure 1 of the paper)
//!
//! * A pattern is `T` seconds of computation, a verification `V_P`, then a
//!   checkpoint `C_P`.
//! * **Fail-stop errors** can strike during computation, verification, checkpoint
//!   and recovery — but not during downtime. When one strikes, the platform pays
//!   the downtime `D`, performs a recovery `R_P` (itself subject to fail-stop
//!   errors) and re-executes the pattern from the last checkpoint.
//! * **Silent errors** strike only during computation. They do not interrupt the
//!   execution; they are detected by the verification at the end of the pattern,
//!   which then triggers a recovery and a re-execution (no downtime). A silent
//!   error that is followed by a fail-stop error in the same attempt is *masked*:
//!   the rollback caused by the fail-stop error discards the corrupted state.
//!
//! ## Engines
//!
//! Two independently written engines implement those semantics:
//!
//! * [`engine::WindowSamplingEngine`] draws, for every attempt window, the time to
//!   the next fail-stop error and the occurrence of silent errors within the
//!   window (exact thanks to the memorylessness of the exponential distribution).
//! * [`stream::EventStreamEngine`] maintains genuine arrival processes whose
//!   countdowns persist across phases and patterns.
//!
//! Both engines produce statistically identical results (see the cross-validation
//! tests and the `ablation_engines` bench); the window engine is the default.
//!
//! ## Batch replication
//!
//! [`batch::Simulator`] replicates runs in parallel (std scoped threads),
//! with deterministic per-run seeding so results are reproducible independently of
//! the number of worker threads.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod batch;
pub mod engine;
pub mod law;
pub mod params;
pub mod rng;
pub mod run;
pub mod stats;
pub mod stream;

pub use batch::{OverheadStats, SimulationConfig, Simulator};
pub use engine::{PatternEngine, PatternOutcome, WindowSamplingEngine};
pub use law::ArrivalLaw;
pub use params::PatternParams;
pub use run::{simulate_run, RunResult};
pub use stats::RunningStats;
pub use stream::EventStreamEngine;

/// Probability that a Poisson process of rate `rate` produces at least one
/// arrival in a window of length `t` — thin re-export of the numerically careful
/// implementation in `ayd-core`, used by the engines when deciding whether a
/// silent error struck within a computation chunk.
pub fn probability_of_at_least_one(rate: f64, t: f64) -> f64 {
    ayd_core::failure::probability_of_error(rate, t)
}

/// Which simulation engine a batch should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum EngineKind {
    /// Per-window exponential sampling (default).
    #[default]
    WindowSampling,
    /// Persistent arrival-process countdowns.
    EventStream,
}
