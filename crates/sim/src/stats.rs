//! Streaming statistics (Welford's algorithm) for simulation outputs.

use serde::{Deserialize, Serialize};

/// Running mean/variance accumulator using Welford's numerically stable update,
/// with support for merging accumulators computed in parallel (Chan et al.).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count as f64 - 1.0)
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Half-width of the normal-approximation 95% confidence interval of the mean.
    pub fn ci95_half_width(&self) -> f64 {
        1.96 * self.std_error()
    }

    /// Smallest observation (`+∞` for an empty accumulator).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-∞` for an empty accumulator).
    pub fn max(&self) -> f64 {
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_of_known_sample() {
        let mut s = RunningStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample (unbiased) variance of this classic data set is 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_and_single_observation_edge_cases() {
        let s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.std_error(), 0.0);
        let mut s = RunningStats::new();
        s.push(3.5);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn merge_equals_sequential_accumulation() {
        let data: Vec<f64> = (0..1000)
            .map(|i| ((i * 37 + 11) % 97) as f64 * 0.37)
            .collect();
        let mut all = RunningStats::new();
        for &x in &data {
            all.push(x);
        }
        let mut left = RunningStats::new();
        let mut right = RunningStats::new();
        for &x in &data[..420] {
            left.push(x);
        }
        for &x in &data[420..] {
            right.push(x);
        }
        let mut merged = left;
        merged.merge(&right);
        assert_eq!(merged.count(), all.count());
        assert!((merged.mean() - all.mean()).abs() < 1e-10);
        assert!((merged.variance() - all.variance()).abs() < 1e-8);
        assert_eq!(merged.min(), all.min());
        assert_eq!(merged.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningStats::new();
        a.push(1.0);
        a.push(2.0);
        let before = a;
        a.merge(&RunningStats::new());
        assert_eq!(a, before);
        let mut empty = RunningStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn ci_shrinks_with_sample_size() {
        let mut small = RunningStats::new();
        let mut large = RunningStats::new();
        for i in 0..100 {
            small.push((i % 10) as f64);
        }
        for i in 0..10_000 {
            large.push((i % 10) as f64);
        }
        assert!(large.ci95_half_width() < small.ci95_half_width());
    }
}
