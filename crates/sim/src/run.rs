//! Simulation of one application run: a sequence of committed patterns.
//!
//! The paper's experiments execute each configuration for "at least 500 patterns"
//! per run and average over 500 runs. [`simulate_run`] executes one run: it
//! commits a fixed number of patterns, accumulates the elapsed wall-clock time
//! and the error counts, and reports the achieved execution overhead — the ratio
//! of the elapsed time to the amount of sequential work accomplished (which is
//! the simulated counterpart of `H(PATTERN)`).

use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use crate::engine::{PatternEngine, PatternOutcome};
use crate::params::PatternParams;

/// Aggregate result of one application run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// Number of patterns committed.
    pub patterns: u64,
    /// Total wall-clock time elapsed (seconds), including all rollbacks,
    /// recoveries and downtimes.
    pub total_time: f64,
    /// Total useful work accomplished, in seconds of sequential computation
    /// (`patterns · T · S(P)`).
    pub work_done: f64,
    /// Achieved execution overhead: `total_time / work_done`. This is the
    /// simulated estimate of `H(PATTERN)` that the paper's figures report.
    pub overhead: f64,
    /// Accumulated event counters over the whole run.
    pub events: PatternOutcome,
}

/// Executes one run of `patterns` committed patterns with the given engine and
/// RNG, and returns the aggregate result.
///
/// # Panics
/// Panics if `patterns` is zero.
pub fn simulate_run<E: PatternEngine>(
    engine: &mut E,
    params: &PatternParams,
    patterns: u64,
    rng: &mut StdRng,
) -> RunResult {
    assert!(patterns > 0, "a run must commit at least one pattern");
    engine.reset();
    let mut events = PatternOutcome::default();
    for _ in 0..patterns {
        let outcome = engine.execute_pattern(params, rng);
        events.accumulate(&outcome);
    }
    let work_done = params.work_per_pattern * patterns as f64;
    RunResult {
        patterns,
        total_time: events.time,
        work_done,
        overhead: events.time / work_done,
        events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::WindowSamplingEngine;
    use crate::rng::rng_for_replicate;
    use crate::stream::EventStreamEngine;

    fn params(lambda_f: f64, lambda_s: f64) -> PatternParams {
        PatternParams {
            work: 6_000.0,
            verification: 15.4,
            checkpoint: 300.0,
            recovery: 300.0,
            downtime: 3600.0,
            lambda_fail_stop: lambda_f,
            lambda_silent: lambda_s,
            work_per_pattern: 6_000.0 * (1.0 / (0.1 + 0.9 / 512.0)),
        }
    }

    #[test]
    fn error_free_run_has_exactly_the_error_free_overhead() {
        let p = params(0.0, 0.0);
        let mut engine = WindowSamplingEngine::new();
        let mut rng = rng_for_replicate(1, 0);
        let result = simulate_run(&mut engine, &p, 100, &mut rng);
        assert_eq!(result.patterns, 100);
        assert!((result.total_time - 100.0 * p.error_free_duration()).abs() < 1e-6);
        assert!((result.overhead - p.error_free_overhead()).abs() < 1e-12);
        assert_eq!(result.events.fail_stop_errors, 0);
    }

    #[test]
    fn overhead_definition_is_time_per_unit_work() {
        let p = params(2e-6, 7e-6);
        let mut engine = WindowSamplingEngine::new();
        let mut rng = rng_for_replicate(2, 0);
        let result = simulate_run(&mut engine, &p, 200, &mut rng);
        assert!((result.overhead - result.total_time / result.work_done).abs() < 1e-15);
        assert!(result.overhead > p.error_free_overhead());
    }

    #[test]
    fn longer_runs_accumulate_more_events() {
        let p = params(5e-6, 1e-5);
        let mut engine = EventStreamEngine::new();
        let mut rng = rng_for_replicate(3, 0);
        let short = simulate_run(&mut engine, &p, 50, &mut rng);
        let mut rng = rng_for_replicate(3, 0);
        let long = simulate_run(&mut engine, &p, 500, &mut rng);
        assert!(long.total_time > short.total_time);
        assert!(
            long.events.fail_stop_errors + long.events.silent_errors_detected
                >= short.events.fail_stop_errors + short.events.silent_errors_detected
        );
    }

    #[test]
    fn same_seed_reproduces_the_run_exactly() {
        let p = params(3e-6, 9e-6);
        let mut engine = WindowSamplingEngine::new();
        let mut rng_a = rng_for_replicate(55, 4);
        let mut rng_b = rng_for_replicate(55, 4);
        let a = simulate_run(&mut engine, &p, 300, &mut rng_a);
        let b = simulate_run(&mut engine, &p, 300, &mut rng_b);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one pattern")]
    fn rejects_zero_pattern_runs() {
        let p = params(0.0, 0.0);
        let mut engine = WindowSamplingEngine::new();
        let mut rng = rng_for_replicate(1, 0);
        let _ = simulate_run(&mut engine, &p, 0, &mut rng);
    }
}
