//! Event-stream simulation engine.
//!
//! Unlike [`crate::engine::WindowSamplingEngine`], which re-draws the time to the
//! next error for every attempt window, this engine maintains genuine arrival
//! processes:
//!
//! * a fail-stop countdown, decremented by every second of *busy* time
//!   (computation, verification, checkpoint, recovery — everything except
//!   downtime), re-armed after each arrival;
//! * a silent-error countdown, decremented only by *computation* time, re-armed
//!   after each arrival.
//!
//! Both engines implement the same protocol semantics and, by the memorylessness
//! of the exponential distribution, the same stochastic process; they differ only
//! in implementation strategy, which makes them useful cross-checks of one
//! another (ablation A2 in DESIGN.md).
//!
//! Because its countdowns persist across phases, attempts and patterns, this
//! engine implements a genuine renewal process — residual lifetimes carry over
//! checkpoint windows instead of being re-drawn — so it stays correct under
//! **any** iid inter-arrival law, not just the exponential. Construct it with
//! [`EventStreamEngine::with_law`] to simulate a non-memoryless
//! [`ArrivalLaw`]; the default law is the exponential, for which the sampling
//! path is bit-identical to the original engine.

use rand::rngs::StdRng;

use crate::engine::{PatternEngine, PatternOutcome};
use crate::law::{sample_arrival, ArrivalLaw};
use crate::params::PatternParams;

/// Simulation engine with persistent arrival-process state.
#[derive(Debug, Clone, Default)]
pub struct EventStreamEngine {
    /// The inter-arrival law of both error processes.
    law: ArrivalLaw,
    /// Busy time remaining until the next fail-stop error (`None` = not yet armed).
    fail_stop_countdown: Option<f64>,
    /// Computation time remaining until the next silent error.
    silent_countdown: Option<f64>,
    /// Trace-replay position of the fail-stop process (trace law only).
    fail_stop_cursor: Option<usize>,
    /// Trace-replay position of the silent process (trace law only).
    silent_cursor: Option<usize>,
}

/// What happened while trying to execute one phase.
enum PhaseResult {
    /// The phase ran to completion; the elapsed time equals the phase length.
    Completed,
    /// A fail-stop error struck after the given busy time.
    FailStopAt(f64),
}

impl EventStreamEngine {
    /// Creates the engine with unarmed countdowns and the exponential law.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates the engine with unarmed countdowns and the given inter-arrival
    /// law for both error processes.
    pub fn with_law(law: ArrivalLaw) -> Self {
        Self {
            law,
            ..Self::default()
        }
    }

    fn arm_fail_stop(&mut self, params: &PatternParams, rng: &mut StdRng) -> f64 {
        match self.fail_stop_countdown {
            Some(v) => v,
            None => {
                let v = sample_arrival(
                    &self.law,
                    rng,
                    params.lambda_fail_stop,
                    &mut self.fail_stop_cursor,
                );
                self.fail_stop_countdown = Some(v);
                v
            }
        }
    }

    fn arm_silent(&mut self, params: &PatternParams, rng: &mut StdRng) -> f64 {
        match self.silent_countdown {
            Some(v) => v,
            None => {
                let v = sample_arrival(
                    &self.law,
                    rng,
                    params.lambda_silent,
                    &mut self.silent_cursor,
                );
                self.silent_countdown = Some(v);
                v
            }
        }
    }

    /// Advances the fail-stop process by `busy` seconds of busy time; returns the
    /// phase result for a phase of that length.
    fn advance_busy(
        &mut self,
        length: f64,
        params: &PatternParams,
        rng: &mut StdRng,
    ) -> PhaseResult {
        let countdown = self.arm_fail_stop(params, rng);
        if countdown < length {
            // The error fires inside this phase; the countdown is consumed and the
            // process re-arms lazily on the next phase.
            self.fail_stop_countdown = None;
            PhaseResult::FailStopAt(countdown)
        } else {
            self.fail_stop_countdown = Some(countdown - length);
            PhaseResult::Completed
        }
    }

    /// Advances the silent-error process by `computation` seconds of computation
    /// time; returns whether at least one silent error struck within it.
    fn advance_computation(
        &mut self,
        computation: f64,
        params: &PatternParams,
        rng: &mut StdRng,
    ) -> bool {
        if computation <= 0.0 {
            return false;
        }
        let countdown = self.arm_silent(params, rng);
        if countdown < computation {
            self.silent_countdown = None;
            // Further silent arrivals within the same chunk are irrelevant: the
            // data is already corrupted. The next countdown re-arms lazily.
            true
        } else {
            self.silent_countdown = Some(countdown - computation);
            false
        }
    }

    /// Executes the recovery loop (recovery attempts interrupted by fail-stop
    /// errors followed by downtimes) and returns the elapsed wall-clock time.
    fn run_recovery(
        &mut self,
        params: &PatternParams,
        rng: &mut StdRng,
        outcome: &mut PatternOutcome,
    ) -> f64 {
        let mut elapsed = 0.0;
        loop {
            outcome.recovery_attempts += 1;
            match self.advance_busy(params.recovery, params, rng) {
                PhaseResult::Completed => {
                    elapsed += params.recovery;
                    return elapsed;
                }
                PhaseResult::FailStopAt(t) => {
                    outcome.fail_stop_errors += 1;
                    elapsed += t + params.downtime;
                }
            }
        }
    }
}

impl PatternEngine for EventStreamEngine {
    fn execute_pattern(&mut self, params: &PatternParams, rng: &mut StdRng) -> PatternOutcome {
        let mut outcome = PatternOutcome::default();
        'pattern: loop {
            // Execute T then V, tracking whether the silent process fired in T.
            'work: loop {
                // Computation chunk.
                let silent_struck;
                match self.advance_busy(params.work, params, rng) {
                    PhaseResult::FailStopAt(t) => {
                        // Did a silent error strike before the crash point?
                        let masked = self.advance_computation(t, params, rng);
                        if masked {
                            outcome.silent_errors_masked += 1;
                            // The corrupted state is discarded by the rollback; the
                            // silent process re-arms for the re-execution.
                        }
                        outcome.fail_stop_errors += 1;
                        outcome.time += t + params.downtime;
                        outcome.time += self.run_recovery(params, rng, &mut outcome);
                        continue 'work;
                    }
                    PhaseResult::Completed => {
                        silent_struck = self.advance_computation(params.work, params, rng);
                        outcome.time += params.work;
                    }
                }
                // Verification (no silent errors can strike here).
                match self.advance_busy(params.verification, params, rng) {
                    PhaseResult::FailStopAt(t) => {
                        if silent_struck {
                            outcome.silent_errors_masked += 1;
                        }
                        outcome.fail_stop_errors += 1;
                        outcome.time += t + params.downtime;
                        outcome.time += self.run_recovery(params, rng, &mut outcome);
                        continue 'work;
                    }
                    PhaseResult::Completed => {
                        outcome.time += params.verification;
                    }
                }
                if silent_struck {
                    outcome.silent_errors_detected += 1;
                    outcome.time += self.run_recovery(params, rng, &mut outcome);
                    continue 'work;
                }
                break 'work;
            }
            // Checkpoint.
            match self.advance_busy(params.checkpoint, params, rng) {
                PhaseResult::FailStopAt(t) => {
                    outcome.fail_stop_errors += 1;
                    outcome.time += t + params.downtime;
                    outcome.time += self.run_recovery(params, rng, &mut outcome);
                    continue 'pattern;
                }
                PhaseResult::Completed => {
                    outcome.time += params.checkpoint;
                    return outcome;
                }
            }
        }
    }

    fn reset(&mut self) {
        self.fail_stop_countdown = None;
        self.silent_countdown = None;
        self.fail_stop_cursor = None;
        self.silent_cursor = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::WindowSamplingEngine;
    use crate::rng::rng_for_replicate;

    fn params(lambda_f: f64, lambda_s: f64) -> PatternParams {
        PatternParams {
            work: 6_000.0,
            verification: 15.4,
            checkpoint: 300.0,
            recovery: 300.0,
            downtime: 3600.0,
            lambda_fail_stop: lambda_f,
            lambda_silent: lambda_s,
            work_per_pattern: 6_000.0 * 9.83,
        }
    }

    #[test]
    fn error_free_pattern_takes_exactly_the_raw_time() {
        let mut engine = EventStreamEngine::new();
        let mut rng = rng_for_replicate(11, 0);
        let p = params(0.0, 0.0);
        let out = engine.execute_pattern(&p, &mut rng);
        assert_eq!(out.time, p.error_free_duration());
        assert_eq!(out.fail_stop_errors + out.silent_errors_detected, 0);
    }

    #[test]
    fn reset_clears_countdowns() {
        let mut engine = EventStreamEngine::new();
        let mut rng = rng_for_replicate(12, 0);
        let p = params(1e-5, 1e-5);
        let _ = engine.execute_pattern(&p, &mut rng);
        engine.reset();
        assert!(engine.fail_stop_countdown.is_none());
        assert!(engine.silent_countdown.is_none());
    }

    #[test]
    fn time_is_never_below_error_free_duration() {
        let mut engine = EventStreamEngine::new();
        let mut rng = rng_for_replicate(13, 0);
        let p = params(2e-5, 4e-5);
        for _ in 0..2_000 {
            let out = engine.execute_pattern(&p, &mut rng);
            assert!(out.time >= p.error_free_duration() - 1e-9);
        }
    }

    #[test]
    fn agrees_with_window_sampling_engine_in_expectation() {
        // Both engines simulate the same stochastic process; their mean pattern
        // times must agree within Monte-Carlo error.
        let p = params(1.9e-6, 6.8e-6); // Hera-ish platform rates at P = 512
        let n = 30_000;
        let mut stream = EventStreamEngine::new();
        let mut window = WindowSamplingEngine::new();
        let mut rng1 = rng_for_replicate(77, 1);
        let mut rng2 = rng_for_replicate(77, 2);
        let mean_stream: f64 = (0..n)
            .map(|_| stream.execute_pattern(&p, &mut rng1).time)
            .sum::<f64>()
            / n as f64;
        let mean_window: f64 = (0..n)
            .map(|_| window.execute_pattern(&p, &mut rng2).time)
            .sum::<f64>()
            / n as f64;
        let rel = (mean_stream - mean_window).abs() / mean_window;
        assert!(
            rel < 0.02,
            "stream={mean_stream} window={mean_window} rel={rel}"
        );
    }

    #[test]
    fn default_law_is_bit_identical_to_the_exponential_engine() {
        let p = params(1.9e-6, 6.8e-6);
        let mut plain = EventStreamEngine::new();
        let mut lawful = EventStreamEngine::with_law(ArrivalLaw::Exponential);
        let mut rng1 = rng_for_replicate(21, 3);
        let mut rng2 = rng_for_replicate(21, 3);
        for _ in 0..500 {
            let a = plain.execute_pattern(&p, &mut rng1);
            let b = lawful.execute_pattern(&p, &mut rng2);
            assert_eq!(a.time.to_bits(), b.time.to_bits());
            assert_eq!(a.fail_stop_errors, b.fail_stop_errors);
        }
    }

    #[test]
    fn non_memoryless_laws_shift_the_mean_pattern_time() {
        // Same mean error rate, different inter-arrival shape: a clustering
        // law (Weibull k < 1) and a grace-period law (shifted) both move the
        // mean pattern time away from the exponential baseline.
        let p = params(5e-5, 0.0);
        let n = 30_000;
        let mean_for = |law: ArrivalLaw, stream: u64| {
            let mut engine = EventStreamEngine::with_law(law);
            let mut rng = rng_for_replicate(31, stream);
            (0..n)
                .map(|_| engine.execute_pattern(&p, &mut rng).time)
                .sum::<f64>()
                / n as f64
        };
        let exp = mean_for(ArrivalLaw::Exponential, 1);
        let weibull = mean_for(ArrivalLaw::weibull(0.5), 2);
        let shifted = mean_for(ArrivalLaw::shifted(30_000.0), 3);
        assert!(
            (weibull - exp).abs() / exp > 0.02,
            "weibull {weibull} vs exp {exp}"
        );
        assert!(
            (shifted - exp).abs() / exp > 0.02,
            "shifted {shifted} vs exp {exp}"
        );
    }

    #[test]
    fn mean_time_matches_analytical_expectation() {
        use ayd_core::{
            CheckpointCost, ExactModel, FailureModel, ResilienceCosts, SpeedupProfile,
            VerificationCost,
        };
        let model = ExactModel::new(
            SpeedupProfile::amdahl(0.1).unwrap(),
            ResilienceCosts::new(
                CheckpointCost::constant(439.0),
                VerificationCost::constant(9.1),
                3600.0,
            )
            .unwrap(),
            FailureModel::new(1.62e-8, 0.0625).unwrap(),
        );
        let (t, p) = (10_000.0, 1024.0);
        let params = crate::params::PatternParams::from_model(&model, t, p);
        let expected = model.expected_pattern_time(t, p);
        let mut engine = EventStreamEngine::new();
        let mut rng = rng_for_replicate(123, 9);
        let n = 40_000;
        let mean: f64 = (0..n)
            .map(|_| engine.execute_pattern(&params, &mut rng).time)
            .sum::<f64>()
            / n as f64;
        let rel = (mean - expected).abs() / expected;
        assert!(
            rel < 0.01,
            "simulated mean {mean} vs analytical {expected} (rel {rel})"
        );
    }
}
