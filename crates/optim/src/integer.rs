//! Integer minimisation for processor counts.
//!
//! Optimal processor allocations are, physically, integers. The analysis treats
//! `P` as continuous; this module provides the small utilities used to convert a
//! continuous optimum into the best integer neighbour, and to search an integer
//! range exhaustively when it is small enough.

/// Exhaustively minimises `f` over the inclusive integer range `[lo, hi]`.
/// Returns `(argmin, min)`. Non-finite values are skipped.
///
/// # Panics
/// Panics if `lo > hi` or if `f` is non-finite over the whole range.
pub fn minimize_integer<F>(lo: u64, hi: u64, f: F) -> (u64, f64)
where
    F: Fn(u64) -> f64,
{
    assert!(lo <= hi, "invalid integer range: {lo} > {hi}");
    let mut best: Option<(u64, f64)> = None;
    for p in lo..=hi {
        let v = f(p);
        if v.is_finite() && best.is_none_or(|(_, bv)| v < bv) {
            best = Some((p, v));
        }
    }
    best.expect("objective was non-finite over the entire integer range")
}

/// Rounds a continuous optimiser `x` to the best of its integer neighbours
/// (clamped to be at least `min`), according to the objective `f`.
/// Returns `(argmin, min)`.
pub fn round_to_best_integer<F>(x: f64, min: u64, f: F) -> (u64, f64)
where
    F: Fn(u64) -> f64,
{
    let floor = (x.floor().max(min as f64)) as u64;
    let candidates = [
        floor.saturating_sub(1).max(min),
        floor.max(min),
        (floor + 1).max(min),
    ];
    let mut best: Option<(u64, f64)> = None;
    for &p in &candidates {
        let v = f(p);
        if v.is_finite() && best.is_none_or(|(_, bv)| v < bv) {
            best = Some((p, v));
        }
    }
    best.expect("objective was non-finite at every candidate integer")
}

/// Local descent over the integers starting from `start`: repeatedly moves to the
/// better neighbouring integer (`±1`) until neither improves, clamped to
/// `[lo, hi]`. Suitable once a coarse search has located the convex basin.
/// Returns `(argmin, min)`.
pub fn integer_local_descent<F>(start: u64, lo: u64, hi: u64, max_steps: usize, f: F) -> (u64, f64)
where
    F: Fn(u64) -> f64,
{
    assert!(lo <= hi && (lo..=hi).contains(&start));
    let mut current = start;
    let mut value = f(current);
    for _ in 0..max_steps {
        let mut improved = false;
        for candidate in [current.saturating_sub(1).max(lo), (current + 1).min(hi)] {
            if candidate == current {
                continue;
            }
            let v = f(candidate);
            if v.is_finite() && v < value {
                current = candidate;
                value = v;
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }
    (current, value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhaustive_finds_integer_minimum() {
        let (p, v) = minimize_integer(1, 1000, |p| (p as f64 - 321.4).powi(2));
        assert_eq!(p, 321);
        assert!((v - 0.16).abs() < 1e-9);
    }

    #[test]
    fn exhaustive_skips_infinite_values() {
        let (p, _) = minimize_integer(1, 100, |p| if p < 10 { f64::INFINITY } else { p as f64 });
        assert_eq!(p, 10);
    }

    #[test]
    fn rounding_picks_best_neighbour() {
        let f = |p: u64| (p as f64 - 7.6).powi(2);
        assert_eq!(round_to_best_integer(7.6, 1, f).0, 8);
        let f = |p: u64| (p as f64 - 7.4).powi(2);
        assert_eq!(round_to_best_integer(7.4, 1, f).0, 7);
    }

    #[test]
    fn rounding_respects_minimum() {
        let f = |p: u64| p as f64;
        assert_eq!(round_to_best_integer(0.2, 1, f).0, 1);
    }

    #[test]
    fn local_descent_converges_from_off_center_start() {
        let f = |p: u64| (p as f64 - 512.0).abs();
        let (p, v) = integer_local_descent(500, 1, 10_000, 1_000, f);
        assert_eq!(p, 512);
        assert_eq!(v, 0.0);
    }

    #[test]
    fn local_descent_stops_at_bounds() {
        let f = |p: u64| -(p as f64);
        let (p, _) = integer_local_descent(95, 1, 100, 1_000, f);
        assert_eq!(p, 100);
    }

    #[test]
    #[should_panic]
    fn rejects_reversed_range() {
        let _ = minimize_integer(10, 5, |p| p as f64);
    }
}
