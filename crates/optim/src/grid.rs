//! Logarithmic grid scans.
//!
//! The overheads minimised in this project vary over many orders of magnitude in
//! both `T` (seconds to weeks) and `P` (tens to 10^12 processors in the α = 0
//! regime of Figure 6), so every search starts with a coarse scan over a
//! logarithmically spaced grid to locate the basin containing the global minimum
//! before a local method refines it.

/// Generates `n` logarithmically spaced points covering `[lo, hi]` inclusive.
///
/// # Panics
/// Panics if `lo` or `hi` is not strictly positive, if `lo > hi`, or if `n < 2`
/// while `lo != hi`.
pub fn log_space(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(lo > 0.0 && hi > 0.0, "log spacing requires positive bounds");
    assert!(lo <= hi, "invalid range: lo={lo} > hi={hi}");
    if lo == hi {
        return vec![lo];
    }
    assert!(
        n >= 2,
        "need at least two points to span a non-degenerate range"
    );
    (0..n).map(|i| log_space_point(lo, hi, n, i)).collect()
}

/// The `i`-th point of the grid [`log_space`] would generate for `(lo, hi, n)`,
/// computed with the identical floating-point expression — callers that probe
/// individual grid indices (the seeded search of [`crate::seeded`]) therefore
/// observe bit-identical values to a full scan.
///
/// # Panics
/// Panics if `i >= n` (or `i > 0` on a degenerate `lo == hi` range).
pub fn log_space_point(lo: f64, hi: f64, n: usize, i: usize) -> f64 {
    if lo == hi {
        assert!(i == 0, "index {i} out of range for a degenerate grid");
        return lo;
    }
    assert!(i < n, "index {i} out of range for a {n}-point grid");
    if i == n - 1 {
        hi // avoid drift on the last point
    } else {
        let (llo, lhi) = (lo.ln(), hi.ln());
        let step = (lhi - llo) / (n as f64 - 1.0);
        (llo + step * i as f64).exp()
    }
}

/// Scans `f` over a logarithmic grid of `n` points on `[lo, hi]` and returns the
/// index of the best point together with the full grid and values
/// (`(best_index, grid, values)`); non-finite objective values are skipped.
///
/// If the objective is non-finite on the whole grid the first index is returned
/// (its non-finite value signals the caller that no usable minimum exists — the
/// nested `(P, T)` search relies on this to discard processor counts whose
/// overhead overflows for every period).
pub fn log_grid_scan<F>(lo: f64, hi: f64, n: usize, f: F) -> (usize, Vec<f64>, Vec<f64>)
where
    F: Fn(f64) -> f64,
{
    let grid = log_space(lo, hi, n);
    let values: Vec<f64> = grid.iter().map(|&x| f(x)).collect();
    let mut best: Option<usize> = None;
    for (i, &v) in values.iter().enumerate() {
        if v.is_finite() && best.is_none_or(|b| v < values[b]) {
            best = Some(i);
        }
    }
    (best.unwrap_or(0), grid, values)
}

/// Returns the best point of a logarithmic grid scan together with a bracket
/// `[lower, upper]` formed by its grid neighbours, suitable for handing to a
/// local refinement method: `(x_best, f_best, lower, upper)`.
pub fn log_grid_minimum<F>(lo: f64, hi: f64, n: usize, f: F) -> (f64, f64, f64, f64)
where
    F: Fn(f64) -> f64,
{
    let (best, grid, values) = log_grid_scan(lo, hi, n, f);
    let lower = if best == 0 { grid[0] } else { grid[best - 1] };
    let upper = if best + 1 == grid.len() {
        grid[grid.len() - 1]
    } else {
        grid[best + 1]
    };
    (grid[best], values[best], lower, upper)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_space_endpoints_and_monotonicity() {
        let g = log_space(1.0, 1e6, 7);
        assert_eq!(g.len(), 7);
        assert!((g[0] - 1.0).abs() < 1e-12);
        assert!((g[6] - 1e6).abs() < 1e-6);
        for w in g.windows(2) {
            assert!(w[1] > w[0]);
        }
        // Ratios are constant for a log grid.
        let r = g[1] / g[0];
        for w in g.windows(2) {
            assert!((w[1] / w[0] - r).abs() < 1e-9);
        }
    }

    #[test]
    fn log_space_degenerate_range() {
        assert_eq!(log_space(5.0, 5.0, 1), vec![5.0]);
    }

    #[test]
    fn grid_scan_finds_basin() {
        let f = |x: f64| (x.ln() - 100.0f64.ln()).powi(2);
        let (x, _, lower, upper) = log_grid_minimum(1.0, 1e6, 61, f);
        assert!(x > 50.0 && x < 200.0, "x={x}");
        assert!(
            lower <= 100.0 && upper >= 100.0,
            "bracket [{lower}, {upper}] misses the optimum"
        );
    }

    #[test]
    fn grid_scan_skips_non_finite_values() {
        let f = |x: f64| {
            if x < 10.0 {
                f64::INFINITY
            } else {
                (x - 50.0).powi(2)
            }
        };
        let (x, _, _, _) = log_grid_minimum(1.0, 1e3, 200, f);
        assert!(x >= 10.0);
        assert!((x - 50.0).abs() < 10.0);
    }

    #[test]
    fn bracket_is_clamped_at_range_edges() {
        // Minimum at the left edge.
        let (x, _, lower, _) = log_grid_minimum(2.0, 1e3, 30, |x| x);
        assert_eq!(x, 2.0);
        assert_eq!(lower, 2.0);
        // Minimum at the right edge.
        let (x, _, _, upper) = log_grid_minimum(2.0, 1e3, 30, |x| -x);
        assert!((x - 1e3).abs() < 1e-9);
        assert!((upper - 1e3).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive bounds")]
    fn rejects_non_positive_bounds() {
        let _ = log_space(0.0, 10.0, 5);
    }

    #[test]
    fn log_space_point_is_bit_identical_to_the_full_scan() {
        for &(lo, hi, n) in &[(1.0, 1e7, 64), (1.0, 1e9, 40), (2.5, 3.25e4, 7)] {
            let grid = log_space(lo, hi, n);
            for (i, &x) in grid.iter().enumerate() {
                assert_eq!(
                    x.to_bits(),
                    log_space_point(lo, hi, n, i).to_bits(),
                    "point {i} of ({lo}, {hi}, {n})"
                );
            }
        }
        assert_eq!(log_space_point(5.0, 5.0, 1, 0), 5.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn log_space_point_rejects_out_of_range_indices() {
        let _ = log_space_point(1.0, 10.0, 5, 5);
    }

    #[test]
    fn fully_infinite_objective_reports_a_non_finite_minimum() {
        let (x, value, _, _) = log_grid_minimum(1.0, 10.0, 5, |_| f64::INFINITY);
        assert_eq!(x, 1.0);
        assert!(!value.is_finite());
    }
}
