//! # ayd-optim — numerical optimisation substrate
//!
//! The paper compares its closed-form first-order optima against the "Optimal"
//! solution obtained by numerical methods (Section IV, citing the iterative
//! procedure of Jin et al.). This crate provides that numerical machinery as a
//! small, dependency-free library of one-dimensional and nested two-dimensional
//! minimisers:
//!
//! * [`golden::golden_section`] — derivative-free unimodal minimisation.
//! * [`brent::brent_minimize`] — Brent's method (golden section + parabolic
//!   interpolation), faster on smooth objectives.
//! * [`grid::log_grid_minimum`] — coarse logarithmic scan used to locate the
//!   basin of attraction when unimodality over the full range is not guaranteed.
//! * [`scalar::minimize_scalar`] — the robust composition used everywhere: coarse
//!   log-grid scan followed by golden-section refinement of the best bracket.
//! * [`integer::minimize_integer`] — exhaustive/local search over integer
//!   arguments (processor counts).
//! * [`joint::JointSearch`] — nested 2-D minimisation over `(P, T)`: for every
//!   candidate `P` the inner dimension `T` is minimised, and the outer envelope
//!   `P ↦ min_T f(P, T)` is minimised in turn.
//! * [`seeded::minimize_scalar_seeded`] — warm-started variant of the scalar
//!   search: a seed (e.g. a first-order closed form) predicts the basin, a
//!   short hill descent replaces the coarse scan, and the result is proven
//!   bit-identical to the reference (or the call self-demotes to it).
//!
//! The crate is deliberately generic: objectives are arbitrary `Fn(f64) -> f64`
//! closures, so it has no dependency on `ayd-core`. The experiment harness wires
//! it to the exact pattern model.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod brent;
pub mod golden;
pub mod grid;
pub mod integer;
pub mod joint;
pub mod scalar;
pub mod seeded;

pub use brent::{brent_minimize, brent_minimize_counted};
pub use golden::golden_section;
pub use grid::{log_grid_minimum, log_space_point};
pub use integer::minimize_integer;
pub use joint::{JointResult, JointSearch};
pub use scalar::{minimize_scalar, OptimizeOptions, ScalarMinimum};
pub use seeded::{minimize_scalar_seeded, FallbackReason, SearchReport};
