//! Robust scalar minimisation: coarse log-grid scan followed by local refinement.

use crate::brent::brent_minimize;
use crate::grid::log_grid_minimum;

/// Options controlling the scalar and joint searches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptimizeOptions {
    /// Number of points of the coarse logarithmic scan.
    pub grid_points: usize,
    /// Relative tolerance of the local refinement.
    pub tolerance: f64,
    /// Maximum number of refinement iterations.
    pub max_iterations: usize,
}

impl Default for OptimizeOptions {
    fn default() -> Self {
        Self {
            grid_points: 64,
            tolerance: 1e-10,
            max_iterations: 200,
        }
    }
}

impl OptimizeOptions {
    /// A cheaper profile used inside nested searches (the inner dimension of the
    /// joint `(P, T)` search), where the outer loop evaluates the inner one many
    /// times.
    pub fn nested() -> Self {
        Self {
            grid_points: 40,
            tolerance: 1e-9,
            max_iterations: 120,
        }
    }
}

/// Result of a scalar minimisation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalarMinimum {
    /// Argument of the minimum.
    pub argument: f64,
    /// Objective value at the minimum.
    pub value: f64,
}

/// Minimises `f` over the positive interval `[lo, hi]`: a logarithmic grid scan
/// locates the basin of the global minimum and Brent's method refines the
/// surrounding bracket. This is robust to objectives that are unimodal only
/// locally (e.g. exact pattern overheads over very wide ranges).
///
/// # Panics
/// Panics if the range is invalid (see [`crate::grid::log_space`]) or if the
/// objective is non-finite over the entire grid.
pub fn minimize_scalar<F>(lo: f64, hi: f64, options: OptimizeOptions, f: F) -> ScalarMinimum
where
    F: Fn(f64) -> f64,
{
    if lo == hi {
        return ScalarMinimum {
            argument: lo,
            value: f(lo),
        };
    }
    let (x0, f0, lower, upper) = log_grid_minimum(lo, hi, options.grid_points, &f);
    // Refine inside the bracket in log-space so that the relative tolerance is
    // uniform across magnitudes.
    let (lx, fx) = brent_minimize(
        lower.ln(),
        upper.ln(),
        options.tolerance,
        options.max_iterations,
        |lx| f(lx.exp()),
    );
    if fx <= f0 {
        ScalarMinimum {
            argument: lx.exp(),
            value: fx,
        }
    } else {
        ScalarMinimum {
            argument: x0,
            value: f0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refines_beyond_grid_resolution() {
        let target: f64 = 12_345.678;
        let f = |x: f64| (x.ln() - target.ln()).powi(2);
        let m = minimize_scalar(1.0, 1e9, OptimizeOptions::default(), f);
        assert!(
            (m.argument - target).abs() / target < 1e-6,
            "got {}",
            m.argument
        );
    }

    #[test]
    fn young_daly_shape_minimum() {
        let (c, lambda) = (439.0, 1.62e-8 * 1024.0);
        let f = |t: f64| c / t + lambda * t / 2.0;
        let m = minimize_scalar(1.0, 1e9, OptimizeOptions::default(), f);
        let expected = (2.0 * c / lambda).sqrt();
        assert!((m.argument - expected).abs() / expected < 1e-5);
    }

    #[test]
    fn boundary_minimum_is_respected() {
        let m = minimize_scalar(10.0, 1e4, OptimizeOptions::default(), |x| x);
        assert!((m.argument - 10.0).abs() / 10.0 < 1e-3);
    }

    #[test]
    fn degenerate_range() {
        let m = minimize_scalar(7.0, 7.0, OptimizeOptions::default(), |x| x * 2.0);
        assert_eq!(m.argument, 7.0);
        assert_eq!(m.value, 14.0);
    }

    #[test]
    fn multimodal_objective_keeps_global_basin() {
        // Two log-space wells, the deeper one near 1e5; the grid scan must not get
        // trapped in the shallow well near 1e1.
        let f = |x: f64| {
            let a = (x.ln() - 10.0f64.ln()).powi(2) + 0.5;
            let b = (x.ln() - 1e5f64.ln()).powi(2);
            a.min(b)
        };
        let m = minimize_scalar(1.0, 1e8, OptimizeOptions::default(), f);
        assert!((m.argument - 1e5).abs() / 1e5 < 1e-3, "got {}", m.argument);
    }

    #[test]
    fn nested_options_are_cheaper() {
        let nested = OptimizeOptions::nested();
        let default = OptimizeOptions::default();
        assert!(nested.grid_points < default.grid_points);
        assert!(nested.max_iterations < default.max_iterations);
    }
}
