//! Warm-started scalar and joint minimisation, bit-identical to the reference.
//!
//! [`minimize_scalar_seeded`] reproduces [`crate::scalar::minimize_scalar`]
//! exactly — same grid points, same tie rules, same Brent refinement on the
//! same bracket — while skipping most of the coarse grid scan: a seed (e.g. a
//! first-order closed form such as Theorem 1's `T*_P`) predicts the grid index
//! of the minimum, a hill descent over grid indices locates the exact index the
//! reference scan would select, and only then does the identical Brent
//! refinement run on the identical neighbour bracket. Because every probed
//! grid point is computed with [`crate::grid::log_space_point`] (the same
//! floating-point expression as the full scan) and the refinement call is
//! unchanged, a successful fast path returns the reference result bit for bit.
//!
//! The fast path is only valid when the objective is unimodal over the grid
//! indices (the hill descent then provably lands on the scan's argmin,
//! including its first-smallest tie rule). Whenever that cannot be
//! established — no seed, a non-finite value near the basin, a descent that
//! walks too far, or (in strict mode) a sentinel probe that beats the located
//! basin — the call self-demotes and runs the reference search instead, so the
//! result is bit-identical in every case. Each call reports which path it took
//! through a [`SearchReport`], making fallback rates assertable and
//! observable.

use crate::brent::brent_minimize_counted;
use crate::grid::log_space_point;
use crate::integer::round_to_best_integer;
use crate::joint::{JointResult, JointSearch};
use crate::scalar::{minimize_scalar, OptimizeOptions, ScalarMinimum};

/// Maximum number of hill-descent steps before the seed is declared bad and
/// the call falls back to the reference scan. The closed-form seeds land
/// within a few grid cells of the optimum; a longer walk signals either a poor
/// seed or a non-unimodal objective, and the full scan is both safer and not
/// much slower at that point.
const DESCENT_BUDGET: usize = 12;

/// Grid-index stride of the strict-mode sentinel probes: every
/// `SENTINEL_STRIDE`-th grid point is evaluated and compared against the
/// located basin, so a secondary basin wider than one stride cannot go
/// unnoticed.
const SENTINEL_STRIDE: usize = 8;

/// Why a seeded search fell back to the reference scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallbackReason {
    /// No seed was supplied (e.g. the profile family has no closed form), or
    /// the seed was non-finite or non-positive.
    MissingSeed,
    /// The objective was non-finite at a probed grid point, so the descent
    /// cannot prove it matched the scan's non-finite-skipping tie rule.
    NonFiniteValue,
    /// The hill descent exhausted its step budget without settling.
    BudgetExhausted,
    /// A strict-mode sentinel probe found a grid point at least as good as the
    /// located basin (the objective is not unimodal at grid resolution).
    SentinelDisagreement,
}

impl FallbackReason {
    /// Every reason, in [`FallbackReason::index`] order.
    pub const ALL: [FallbackReason; 4] = [
        FallbackReason::MissingSeed,
        FallbackReason::NonFiniteValue,
        FallbackReason::BudgetExhausted,
        FallbackReason::SentinelDisagreement,
    ];

    /// Stable index of this reason into [`SearchReport::fallback_reasons`].
    pub fn index(self) -> usize {
        match self {
            FallbackReason::MissingSeed => 0,
            FallbackReason::NonFiniteValue => 1,
            FallbackReason::BudgetExhausted => 2,
            FallbackReason::SentinelDisagreement => 3,
        }
    }

    /// Kebab-case label, used as a metric/span field name.
    pub fn as_str(self) -> &'static str {
        match self {
            FallbackReason::MissingSeed => "missing-seed",
            FallbackReason::NonFiniteValue => "non-finite-value",
            FallbackReason::BudgetExhausted => "budget-exhausted",
            FallbackReason::SentinelDisagreement => "sentinel-disagreement",
        }
    }
}

/// Fast/fallback call counters of one or more seeded searches, plus the
/// diagnostics instrumentation attaches to spans: per-[`FallbackReason`]
/// tallies and the Brent iteration count of the fast-path refinements.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchReport {
    /// Scalar sub-searches answered by the warm-started fast path.
    pub fast: u64,
    /// Scalar sub-searches that self-demoted to the reference scan.
    pub fallback: u64,
    /// Brent refinement iterations spent by the fast-path searches (the
    /// reference scan's own refinements are not separable and not counted).
    pub brent_iterations: u64,
    /// Fallback tallies by reason, indexed by [`FallbackReason::index`].
    pub fallback_reasons: [u64; 4],
}

impl SearchReport {
    /// Total number of scalar sub-searches.
    pub fn total(&self) -> u64 {
        self.fast + self.fallback
    }

    /// Fraction of sub-searches that fell back (`0.0` when none ran).
    pub fn fallback_rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.fallback as f64 / self.total() as f64
        }
    }

    /// How many sub-searches fell back for `reason`.
    pub fn fallback_count(&self, reason: FallbackReason) -> u64 {
        self.fallback_reasons[reason.index()]
    }

    /// Adds another report's counters into this one.
    pub fn merge(&mut self, other: &SearchReport) {
        self.fast += other.fast;
        self.fallback += other.fallback;
        self.brent_iterations += other.brent_iterations;
        for (mine, theirs) in self
            .fallback_reasons
            .iter_mut()
            .zip(other.fallback_reasons.iter())
        {
            *mine += theirs;
        }
    }
}

/// Memoised lazy view of the reference log grid: probed points are computed
/// with [`log_space_point`] (bit-identical to the full scan) and each index is
/// evaluated at most once.
struct GridMemo<'a, F> {
    lo: f64,
    hi: f64,
    n: usize,
    f: &'a F,
    values: Vec<Option<f64>>,
}

impl<'a, F: Fn(f64) -> f64> GridMemo<'a, F> {
    fn new(lo: f64, hi: f64, n: usize, f: &'a F) -> Self {
        Self {
            lo,
            hi,
            n,
            f,
            values: vec![None; n],
        }
    }

    fn point(&self, i: usize) -> f64 {
        log_space_point(self.lo, self.hi, self.n, i)
    }

    fn value(&mut self, i: usize) -> f64 {
        match self.values[i] {
            Some(v) => v,
            None => {
                let v = (self.f)(self.point(i));
                self.values[i] = Some(v);
                v
            }
        }
    }
}

/// The warm-started fast path of [`minimize_scalar_seeded`]: `Ok` carries the
/// minimum plus the Brent iteration count of the refinement; `Err` carries
/// the reason the caller must fall back to the reference search.
fn try_fast<F>(
    lo: f64,
    hi: f64,
    options: OptimizeOptions,
    seed: Option<f64>,
    strict: bool,
    f: &F,
) -> Result<(ScalarMinimum, usize), FallbackReason>
where
    F: Fn(f64) -> f64,
{
    let seed = seed.ok_or(FallbackReason::MissingSeed)?;
    if !seed.is_finite() || seed <= 0.0 {
        return Err(FallbackReason::MissingSeed);
    }
    let n = options.grid_points;
    // Predict the grid index nearest the seed (clamped into range; the grid
    // itself is only materialised lazily around the descent path).
    let (llo, lhi) = (lo.ln(), hi.ln());
    let step = (lhi - llo) / (n as f64 - 1.0);
    let guess = ((seed.ln() - llo) / step).round();
    if !guess.is_finite() {
        return Err(FallbackReason::MissingSeed);
    }
    let mut best = (guess.max(0.0) as usize).min(n - 1);

    // Hill descent with the reference scan's exact tie rules: the scan keeps
    // the *first* index whose finite value is strictly smallest, so descend
    // left on `<=` (crossing plateaus to their left edge) and right only on
    // strict improvement. On a unimodal index sequence this provably lands on
    // the scan's argmin. Any non-finite probe voids that proof — the scan
    // skips non-finite values entirely — so it demotes to the reference.
    let mut memo = GridMemo::new(lo, hi, n, f);
    if !memo.value(best).is_finite() {
        return Err(FallbackReason::NonFiniteValue);
    }
    let mut steps = 0usize;
    loop {
        let current = memo.value(best);
        if best > 0 {
            let left = memo.value(best - 1);
            if !left.is_finite() {
                return Err(FallbackReason::NonFiniteValue);
            }
            if left <= current {
                best -= 1;
                steps += 1;
                if steps > DESCENT_BUDGET {
                    return Err(FallbackReason::BudgetExhausted);
                }
                continue;
            }
        }
        if best + 1 < n {
            let right = memo.value(best + 1);
            if !right.is_finite() {
                return Err(FallbackReason::NonFiniteValue);
            }
            if right < current {
                best += 1;
                steps += 1;
                if steps > DESCENT_BUDGET {
                    return Err(FallbackReason::BudgetExhausted);
                }
                continue;
            }
        }
        break;
    }

    let (x0, f0) = (memo.point(best), memo.value(best));
    if strict {
        // Sentinel probes: a coarse sub-scan that must not beat the located
        // basin. A strictly better sentinel — or an equal one at a smaller
        // index, which the scan's first-smallest rule would prefer — demotes
        // the call. Non-finite sentinels are skipped exactly like the scan
        // skips them.
        let mut i = 0;
        while i < n {
            let v = memo.value(i);
            if v.is_finite() && (v < f0 || (v == f0 && i < best)) {
                return Err(FallbackReason::SentinelDisagreement);
            }
            i += SENTINEL_STRIDE;
        }
        let last = memo.value(n - 1);
        if last.is_finite() && last < f0 {
            return Err(FallbackReason::SentinelDisagreement);
        }
    }

    // Identical refinement on the identical neighbour bracket, identical
    // acceptance rule — from here on the fast path *is* the reference.
    let lower = memo.point(if best == 0 { 0 } else { best - 1 });
    let upper = memo.point(if best + 1 == n { n - 1 } else { best + 1 });
    let (lx, fx, iterations) = brent_minimize_counted(
        lower.ln(),
        upper.ln(),
        options.tolerance,
        options.max_iterations,
        |lx| f(lx.exp()),
    );
    if fx <= f0 {
        Ok((
            ScalarMinimum {
                argument: lx.exp(),
                value: fx,
            },
            iterations,
        ))
    } else {
        Ok((
            ScalarMinimum {
                argument: x0,
                value: f0,
            },
            iterations,
        ))
    }
}

/// [`minimize_scalar`] with a warm start: `seed` predicts the location of the
/// minimum (e.g. a first-order closed form), letting the coarse grid scan be
/// replaced by a short hill descent. The result is bit-identical to the
/// reference search: either the fast path proves it located the scan's argmin
/// and runs the identical refinement, or the call falls back to
/// [`minimize_scalar`] itself. `strict` enables sentinel probes that demote
/// the call when the objective is not unimodal at grid resolution.
///
/// Each call increments exactly one counter of `report`: `fast` when the warm
/// start was used, `fallback` when the reference search ran.
///
/// # Panics
/// Panics in the same cases as [`minimize_scalar`] (invalid range, NaN
/// objective inside the refinement bracket).
pub fn minimize_scalar_seeded<F>(
    lo: f64,
    hi: f64,
    options: OptimizeOptions,
    seed: Option<f64>,
    strict: bool,
    report: &mut SearchReport,
    f: F,
) -> ScalarMinimum
where
    F: Fn(f64) -> f64,
{
    if lo == hi {
        // Degenerate ranges take the reference's trivial path directly; no
        // search happens, so neither counter moves.
        return minimize_scalar(lo, hi, options, f);
    }
    match try_fast(lo, hi, options, seed, strict, &f) {
        Ok((minimum, brent_iterations)) => {
            report.fast += 1;
            report.brent_iterations += brent_iterations as u64;
            minimum
        }
        Err(reason) => {
            report.fallback += 1;
            report.fallback_reasons[reason.index()] += 1;
            minimize_scalar(lo, hi, options, f)
        }
    }
}

impl JointSearch {
    /// [`JointSearch::optimize_period`] with a warm start (see
    /// [`minimize_scalar_seeded`]).
    pub fn optimize_period_seeded<F>(
        &self,
        p: f64,
        seed: Option<f64>,
        strict: bool,
        report: &mut SearchReport,
        f: F,
    ) -> ScalarMinimum
    where
        F: Fn(f64, f64) -> f64,
    {
        minimize_scalar_seeded(
            self.period_range.0,
            self.period_range.1,
            self.inner,
            seed,
            strict,
            report,
            |t| f(p, t),
        )
    }

    /// [`JointSearch::optimize`] with warm starts on both dimensions:
    /// `processor_seed` seeds the outer envelope search (the closed-form `P*`
    /// of Theorem 2/3, when it exists) and `period_seed(p)` seeds every inner
    /// period search (Theorem 1's `T*_P`). Every scalar sub-search is bit
    /// -identical to its reference counterpart (fast-path proof or fallback),
    /// so the returned [`JointResult`] matches [`JointSearch::optimize`] bit
    /// for bit; `report` accumulates the per-sub-search fast/fallback tallies.
    pub fn optimize_seeded<F, S>(
        &self,
        processor_seed: Option<f64>,
        period_seed: S,
        strict: bool,
        report: &mut SearchReport,
        f: F,
    ) -> JointResult
    where
        F: Fn(f64, f64) -> f64,
        S: Fn(f64) -> Option<f64>,
    {
        // The envelope closure runs inside the outer search, which already
        // holds `report` mutably — tally the inner sub-searches in a cell and
        // merge at the end.
        let inner_tally = std::cell::RefCell::new(SearchReport::default());
        let inner = |p: f64| -> ScalarMinimum {
            let seed = period_seed(p);
            let mut tally = inner_tally.borrow_mut();
            self.optimize_period_seeded(p, seed, strict, &mut tally, &f)
        };
        let envelope = |p: f64| inner(p).value;
        let mut outer_report = SearchReport::default();
        let outer_min = minimize_scalar_seeded(
            self.processor_range.0,
            self.processor_range.1,
            self.outer,
            processor_seed,
            strict,
            &mut outer_report,
            envelope,
        );
        let processors = outer_min.argument;
        let period = inner(processors).argument;
        let value = f(processors, period);
        let (processors_integer, value_integer) =
            round_to_best_integer(processors, 1, |p| inner(p as f64).value);
        report.merge(&inner_tally.into_inner());
        report.merge(&outer_report);
        JointResult {
            processors,
            processors_integer,
            period,
            value,
            value_integer,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(m: &ScalarMinimum) -> (u64, u64) {
        (m.argument.to_bits(), m.value.to_bits())
    }

    #[test]
    fn seeded_search_is_bit_identical_on_unimodal_objectives() {
        let options = OptimizeOptions::default();
        type Objective = Box<dyn Fn(f64) -> f64>;
        let cases: Vec<(Objective, f64)> = vec![
            // Young/Daly shape: c/t + λ t / 2.
            (
                Box::new(|t: f64| 439.0 / t + 1.62e-8 * 1024.0 * t / 2.0),
                (2.0f64 * 439.0 / (1.62e-8 * 1024.0)).sqrt(),
            ),
            // Log-quadratic well.
            (
                Box::new(|x: f64| (x.ln() - 12_345.678f64.ln()).powi(2)),
                12_345.678,
            ),
            // Boundary minimum at the left edge.
            (Box::new(|x: f64| x), 1.0),
            // Boundary minimum at the right edge.
            (Box::new(|x: f64| -x.ln()), 1e9),
        ];
        for (f, seed) in &cases {
            let reference = minimize_scalar(1.0, 1e9, options, f);
            for strict in [false, true] {
                let mut report = SearchReport::default();
                let fast =
                    minimize_scalar_seeded(1.0, 1e9, options, Some(*seed), strict, &mut report, f);
                assert_eq!(bits(&fast), bits(&reference), "seed {seed} strict {strict}");
                assert_eq!(report.fast, 1, "seed {seed} strict {strict}");
                assert_eq!(report.fallback, 0, "seed {seed} strict {strict}");
            }
        }
    }

    #[test]
    fn even_poor_seeds_within_budget_stay_bit_identical() {
        let options = OptimizeOptions::default();
        let target = 50_000.0f64;
        let f = |x: f64| (x.ln() - target.ln()).powi(2);
        let reference = minimize_scalar(1.0, 1e9, options, f);
        // A seed several grid cells away still descends to the right basin.
        for factor in [0.2, 0.5, 2.0, 5.0] {
            let mut report = SearchReport::default();
            let fast = minimize_scalar_seeded(
                1.0,
                1e9,
                options,
                Some(target * factor),
                true,
                &mut report,
                f,
            );
            assert_eq!(bits(&fast), bits(&reference), "factor {factor}");
            assert_eq!(report.total(), 1);
        }
    }

    #[test]
    fn missing_or_invalid_seeds_fall_back_to_the_reference() {
        let options = OptimizeOptions::default();
        let f = |x: f64| (x.ln() - 3.0).powi(2);
        let reference = minimize_scalar(1.0, 1e6, options, f);
        for seed in [
            None,
            Some(f64::NAN),
            Some(f64::INFINITY),
            Some(0.0),
            Some(-4.0),
        ] {
            let mut report = SearchReport::default();
            let fast = minimize_scalar_seeded(1.0, 1e6, options, seed, true, &mut report, f);
            assert_eq!(bits(&fast), bits(&reference), "seed {seed:?}");
            assert_eq!(report.fallback, 1, "seed {seed:?}");
            assert_eq!(report.fast, 0, "seed {seed:?}");
        }
    }

    #[test]
    fn wildly_wrong_seed_exhausts_the_descent_budget_and_falls_back() {
        let options = OptimizeOptions::default();
        // Minimum near the right edge, seed at the left edge: the descent
        // would need ~60 steps, far beyond the budget.
        let f = |x: f64| (x.ln() - 1e8f64.ln()).powi(2);
        let reference = minimize_scalar(1.0, 1e9, options, f);
        let mut report = SearchReport::default();
        let fast = minimize_scalar_seeded(1.0, 1e9, options, Some(1.5), false, &mut report, f);
        assert_eq!(bits(&fast), bits(&reference));
        assert_eq!(report.fallback, 1);
        assert_eq!(
            try_fast(1.0, 1e9, options, Some(1.5), false, &f).unwrap_err(),
            FallbackReason::BudgetExhausted
        );
    }

    #[test]
    fn non_finite_values_near_the_seed_fall_back_without_panicking() {
        let options = OptimizeOptions::default();
        // Non-finite plateau immediately next to the basin: the scan skips
        // it; the fast path must refuse to reason about it and demote.
        let f = |x: f64| {
            if x < 140.0 {
                f64::INFINITY
            } else {
                (x.ln() - 150.0f64.ln()).powi(2)
            }
        };
        let reference = minimize_scalar(1.0, 1e6, options, f);
        let mut report = SearchReport::default();
        let fast = minimize_scalar_seeded(1.0, 1e6, options, Some(150.0), true, &mut report, f);
        assert_eq!(bits(&fast), bits(&reference));
        assert_eq!(report.fallback, 1);
        assert_eq!(
            try_fast(1.0, 1e6, options, Some(150.0), true, &f).unwrap_err(),
            FallbackReason::NonFiniteValue
        );
        // A seed landing *on* the non-finite plateau also demotes cleanly.
        assert_eq!(
            try_fast(1.0, 1e6, options, Some(2.0), true, &f).unwrap_err(),
            FallbackReason::NonFiniteValue
        );
    }

    #[test]
    fn strict_sentinels_catch_a_deeper_remote_basin() {
        let options = OptimizeOptions::default();
        // Two wells; the seed points at the shallow one. Plain descent settles
        // there, but strict sentinels spot the deeper well and demote, so the
        // strict result still matches the reference bit for bit.
        let f = |x: f64| {
            let shallow = (x.ln() - 10.0f64.ln()).powi(2) + 0.5;
            let deep = (x.ln() - 1e5f64.ln()).powi(2);
            shallow.min(deep)
        };
        let reference = minimize_scalar(1.0, 1e8, options, f);
        assert_eq!(
            try_fast(1.0, 1e8, options, Some(10.0), true, &f).unwrap_err(),
            FallbackReason::SentinelDisagreement
        );
        let mut report = SearchReport::default();
        let strict = minimize_scalar_seeded(1.0, 1e8, options, Some(10.0), true, &mut report, f);
        assert_eq!(bits(&strict), bits(&reference));
        assert_eq!(report.fallback, 1);
    }

    #[test]
    fn degenerate_range_is_trivial_and_uncounted() {
        let mut report = SearchReport::default();
        let m = minimize_scalar_seeded(
            7.0,
            7.0,
            OptimizeOptions::default(),
            Some(7.0),
            true,
            &mut report,
            |x| x * 2.0,
        );
        assert_eq!(m.argument, 7.0);
        assert_eq!(m.value, 14.0);
        assert_eq!(report, SearchReport::default());
    }

    #[test]
    fn joint_seeded_search_matches_the_reference_bit_for_bit() {
        // The first-order-shaped objective of the joint tests, with the
        // Theorem-2 closed forms as seeds (the production wiring).
        let alpha = 0.1;
        let c = 300.0 / 512.0;
        let v = 15.4;
        let lam = (0.2188 / 2.0 + 0.7812) * 1.69e-8;
        let h =
            |p: f64, t: f64| (alpha + (1.0 - alpha) / p) * (1.0 + (c * p + v) / t + lam * p * t);
        let search = JointSearch::new((1.0, 1e6), (10.0, 1e8));
        let reference = search.optimize(h);
        let p_star = (1.0 / (c * lam)).powf(0.25) * ((1.0 - alpha) / (2.0 * alpha)).sqrt();
        for strict in [false, true] {
            let mut report = SearchReport::default();
            let fast = search.optimize_seeded(
                Some(p_star),
                |p| Some(((c * p + v) / (lam * p)).sqrt()),
                strict,
                &mut report,
                h,
            );
            assert_eq!(fast.processors.to_bits(), reference.processors.to_bits());
            assert_eq!(fast.period.to_bits(), reference.period.to_bits());
            assert_eq!(fast.value.to_bits(), reference.value.to_bits());
            assert_eq!(fast.processors_integer, reference.processors_integer);
            assert_eq!(
                fast.value_integer.to_bits(),
                reference.value_integer.to_bits()
            );
            assert!(report.total() > 0);
            assert_eq!(report.fallback, 0, "strict {strict}: {report:?}");
        }
    }

    #[test]
    fn joint_seeded_search_without_seeds_still_matches_via_fallback() {
        let search = JointSearch::new((1.0, 1e4), (1.0, 1e6));
        let f = |p: f64, t: f64| (p - 97.3).powi(2) / 1e4 + (t.ln() - 9.0).powi(2);
        let reference = search.optimize(f);
        let mut report = SearchReport::default();
        let fast = search.optimize_seeded(None, |_| None, true, &mut report, f);
        assert_eq!(fast.processors.to_bits(), reference.processors.to_bits());
        assert_eq!(fast.period.to_bits(), reference.period.to_bits());
        assert_eq!(fast.value.to_bits(), reference.value.to_bits());
        assert_eq!(report.fast, 0);
        assert!(report.fallback > 0);
    }

    #[test]
    fn reports_merge_and_rate() {
        let mut a = SearchReport {
            fast: 3,
            fallback: 1,
            brent_iterations: 40,
            fallback_reasons: [1, 0, 0, 0],
        };
        let b = SearchReport {
            fast: 1,
            fallback: 3,
            brent_iterations: 12,
            fallback_reasons: [0, 1, 1, 1],
        };
        a.merge(&b);
        assert_eq!(
            a,
            SearchReport {
                fast: 4,
                fallback: 4,
                brent_iterations: 52,
                fallback_reasons: [1, 1, 1, 1],
            }
        );
        assert_eq!(a.total(), 8);
        assert!((a.fallback_rate() - 0.5).abs() < 1e-12);
        assert_eq!(SearchReport::default().fallback_rate(), 0.0);
        for reason in FallbackReason::ALL {
            assert_eq!(a.fallback_count(reason), 1);
            assert_eq!(FallbackReason::ALL[reason.index()], reason);
            assert!(!reason.as_str().is_empty());
        }
    }

    #[test]
    fn reports_tally_reasons_and_brent_iterations() {
        let options = OptimizeOptions::default();
        let f = |x: f64| (x.ln() - 5.0).powi(2);
        let mut report = SearchReport::default();
        // A fast-path search racks up Brent iterations…
        minimize_scalar_seeded(1.0, 1e6, options, Some(5.0f64.exp()), true, &mut report, f);
        assert_eq!(report.fast, 1);
        assert!(report.brent_iterations > 0, "{report:?}");
        // …and a missing seed lands in the matching reason bucket.
        minimize_scalar_seeded(1.0, 1e6, options, None, true, &mut report, f);
        assert_eq!(report.fallback, 1);
        assert_eq!(report.fallback_count(FallbackReason::MissingSeed), 1);
        assert_eq!(report.fallback_reasons.iter().sum::<u64>(), 1);
    }
}
