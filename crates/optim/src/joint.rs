//! Nested two-dimensional search over `(P, T)`.
//!
//! The paper's "Optimal" curves are obtained numerically: for every candidate
//! processor count `P` the checkpointing period `T` is optimised, and the
//! resulting envelope `P ↦ min_T H(T, P)` is optimised over `P` in turn (the same
//! structure as the iterative procedure of Jin et al. cited in Section IV.A).
//!
//! [`JointSearch`] implements that nested scheme generically for any objective
//! `f(P, T)`. Both dimensions are searched in log-space (coarse grid scan, then
//! Brent refinement), because the optima range over many orders of magnitude
//! across the paper's parameter sweeps.

use crate::integer::round_to_best_integer;
use crate::scalar::{minimize_scalar, OptimizeOptions, ScalarMinimum};

/// Result of a joint `(P, T)` minimisation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JointResult {
    /// Optimal (continuous) processor count.
    pub processors: f64,
    /// Optimal processor count rounded to the best integer neighbour
    /// (according to the objective).
    pub processors_integer: u64,
    /// Optimal period at the (continuous) optimal processor count.
    pub period: f64,
    /// Objective value at the continuous optimum.
    pub value: f64,
    /// Objective value at the integer-rounded optimum.
    pub value_integer: f64,
}

/// Nested two-dimensional minimiser over processors (outer) and period (inner).
#[derive(Debug, Clone, Copy)]
pub struct JointSearch {
    /// Search range for the processor count.
    pub processor_range: (f64, f64),
    /// Search range for the checkpointing period (seconds).
    pub period_range: (f64, f64),
    /// Options of the outer (processor) search.
    pub outer: OptimizeOptions,
    /// Options of the inner (period) search.
    pub inner: OptimizeOptions,
}

impl Default for JointSearch {
    fn default() -> Self {
        Self {
            processor_range: (1.0, 1e7),
            period_range: (1.0, 1e9),
            outer: OptimizeOptions::default(),
            inner: OptimizeOptions::nested(),
        }
    }
}

impl JointSearch {
    /// Creates a search with explicit ranges and default options.
    pub fn new(processor_range: (f64, f64), period_range: (f64, f64)) -> Self {
        assert!(
            processor_range.0 > 0.0 && processor_range.0 <= processor_range.1,
            "invalid processor range"
        );
        assert!(
            period_range.0 > 0.0 && period_range.0 <= period_range.1,
            "invalid period range"
        );
        Self {
            processor_range,
            period_range,
            ..Self::default()
        }
    }

    /// Replaces the outer/inner search options.
    pub fn with_options(mut self, outer: OptimizeOptions, inner: OptimizeOptions) -> Self {
        self.outer = outer;
        self.inner = inner;
        self
    }

    /// Minimises the period alone for a fixed processor count.
    pub fn optimize_period<F>(&self, p: f64, f: F) -> ScalarMinimum
    where
        F: Fn(f64, f64) -> f64,
    {
        minimize_scalar(self.period_range.0, self.period_range.1, self.inner, |t| {
            f(p, t)
        })
    }

    /// Minimises `f(P, T)` over both dimensions.
    pub fn optimize<F>(&self, f: F) -> JointResult
    where
        F: Fn(f64, f64) -> f64,
    {
        let envelope = |p: f64| self.optimize_period(p, &f).value;
        let outer_min = minimize_scalar(
            self.processor_range.0,
            self.processor_range.1,
            self.outer,
            envelope,
        );
        let processors = outer_min.argument;
        let period = self.optimize_period(processors, &f).argument;
        let value = f(processors, period);
        let (processors_integer, value_integer) =
            round_to_best_integer(processors, 1, |p| self.optimize_period(p as f64, &f).value);
        JointResult {
            processors,
            processors_integer,
            period,
            value,
            value_integer,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A separable analytic objective whose minimum is known exactly:
    /// f(P, T) = (ln P - ln P0)^2 + (ln T - ln T0)^2 + 1.
    #[test]
    fn separable_objective_recovers_both_optima() {
        let (p0, t0): (f64, f64) = (350.0, 6_000.0);
        let search = JointSearch::new((1.0, 1e6), (1.0, 1e8));
        let result =
            search.optimize(|p, t| (p.ln() - p0.ln()).powi(2) + (t.ln() - t0.ln()).powi(2) + 1.0);
        assert!(
            (result.processors - p0).abs() / p0 < 1e-3,
            "P={}",
            result.processors
        );
        assert!(
            (result.period - t0).abs() / t0 < 1e-3,
            "T={}",
            result.period
        );
        assert!((result.value - 1.0).abs() < 1e-6);
        assert!(result.processors_integer == 350);
    }

    /// A first-order-overhead-shaped objective with an interior optimum:
    /// H(P, T) = (α + (1-α)/P)(1 + (C(P)+V)/T + Λ P T), C(P) = cP.
    /// Theorem 2 gives the continuous optimum analytically; the numerical search
    /// must land on (essentially) the same point.
    #[test]
    fn first_order_shaped_objective_matches_theorem2() {
        let alpha = 0.1;
        let c = 300.0 / 512.0;
        let v = 15.4;
        let lam = (0.2188 / 2.0 + 0.7812) * 1.69e-8;
        let h =
            |p: f64, t: f64| (alpha + (1.0 - alpha) / p) * (1.0 + (c * p + v) / t + lam * p * t);
        let search = JointSearch::new((1.0, 1e6), (10.0, 1e8));
        let result = search.optimize(h);
        // The numerical optimum of the *full* first-order expression differs from
        // the Theorem-2 closed form only through lower-order terms; they agree to
        // a few percent at Hera-like parameters.
        let p_star = (1.0 / (c * lam)).powf(0.25) * ((1.0 - alpha) / (2.0 * alpha)).sqrt();
        let t_star = (c / lam).sqrt();
        assert!(
            (result.processors - p_star).abs() / p_star < 0.10,
            "P={} vs {}",
            result.processors,
            p_star
        );
        assert!(
            (result.period - t_star).abs() / t_star < 0.15,
            "T={} vs {}",
            result.period,
            t_star
        );
    }

    #[test]
    fn integer_rounding_is_never_worse_than_neighbours() {
        let search = JointSearch::new((1.0, 1e4), (1.0, 1e6));
        let f = |p: f64, t: f64| (p - 97.3).powi(2) / 1e4 + (t.ln() - 9.0).powi(2);
        let result = search.optimize(f);
        let value_at = |p: u64| search.optimize_period(p as f64, f).value;
        assert!(result.value_integer <= value_at(result.processors_integer + 1) + 1e-12);
        if result.processors_integer > 1 {
            assert!(result.value_integer <= value_at(result.processors_integer - 1) + 1e-12);
        }
    }

    #[test]
    fn period_only_optimisation_matches_scalar_search() {
        let search = JointSearch::new((1.0, 1e4), (1.0, 1e8));
        let f = |_p: f64, t: f64| 450.0 / t + 3.0e-6 * t;
        let m = search.optimize_period(128.0, f);
        let expected = (450.0f64 / 3.0e-6).sqrt();
        assert!((m.argument - expected).abs() / expected < 1e-4);
    }

    #[test]
    #[should_panic(expected = "invalid processor range")]
    fn rejects_bad_processor_range() {
        let _ = JointSearch::new((0.0, 10.0), (1.0, 10.0));
    }

    #[test]
    #[should_panic(expected = "invalid period range")]
    fn rejects_bad_period_range() {
        let _ = JointSearch::new((1.0, 10.0), (100.0, 10.0));
    }
}
