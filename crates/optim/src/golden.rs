//! Golden-section search for one-dimensional unimodal minimisation.

/// The inverse golden ratio, `(sqrt(5) - 1) / 2 ≈ 0.618`.
const INV_PHI: f64 = 0.618_033_988_749_894_9;

/// Minimises `f` on the closed interval `[a, b]` by golden-section search,
/// assuming `f` is unimodal there. Returns `(x_min, f(x_min))`.
///
/// The search stops when the bracket width falls below `tol * (|a| + |b| + 1)`
/// (a mixed absolute/relative criterion) or after `max_iter` shrink steps.
///
/// # Panics
/// Panics if `a > b`, if `tol` is not strictly positive, or if the objective
/// returns NaN.
pub fn golden_section<F>(mut a: f64, mut b: f64, tol: f64, max_iter: usize, f: F) -> (f64, f64)
where
    F: Fn(f64) -> f64,
{
    assert!(a <= b, "invalid bracket: a={a} > b={b}");
    assert!(tol > 0.0, "tolerance must be positive");
    let eval = |x: f64| {
        let y = f(x);
        assert!(!y.is_nan(), "objective returned NaN at x={x}");
        y
    };
    if a == b {
        return (a, eval(a));
    }
    let mut c = b - INV_PHI * (b - a);
    let mut d = a + INV_PHI * (b - a);
    let mut fc = eval(c);
    let mut fd = eval(d);
    let threshold = tol * (a.abs() + b.abs() + 1.0);
    for _ in 0..max_iter {
        if (b - a) <= threshold {
            break;
        }
        if fc < fd {
            b = d;
            d = c;
            fd = fc;
            c = b - INV_PHI * (b - a);
            fc = eval(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + INV_PHI * (b - a);
            fd = eval(d);
        }
    }
    let mid = 0.5 * (a + b);
    let fmid = eval(mid);
    // Return the best of the three candidates we still hold.
    let mut best = (mid, fmid);
    if fc < best.1 {
        best = (c, fc);
    }
    if fd < best.1 {
        best = (d, fd);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_quadratic_minimum() {
        let (x, y) = golden_section(-10.0, 10.0, 1e-10, 200, |x| (x - 3.0).powi(2) + 1.0);
        assert!((x - 3.0).abs() < 1e-6);
        assert!((y - 1.0).abs() < 1e-10);
    }

    #[test]
    fn finds_minimum_at_boundary() {
        // Monotonically increasing function: the minimum is the left endpoint.
        let (x, _) = golden_section(2.0, 9.0, 1e-10, 200, |x| x * x);
        assert!((x - 2.0).abs() < 1e-4);
    }

    #[test]
    fn handles_degenerate_interval() {
        let (x, y) = golden_section(4.0, 4.0, 1e-8, 100, |x| x + 1.0);
        assert_eq!(x, 4.0);
        assert_eq!(y, 5.0);
    }

    #[test]
    fn finds_young_daly_like_minimum() {
        // f(T) = C/T + λ T/2 has its minimum at sqrt(2C/λ).
        let (c, lambda) = (300.0, 1e-5);
        let (t, _) = golden_section(1.0, 1e7, 1e-12, 400, |t| c / t + lambda * t / 2.0);
        let expected = (2.0 * c / lambda).sqrt();
        assert!(
            (t - expected).abs() / expected < 1e-5,
            "t={t} expected={expected}"
        );
    }

    #[test]
    #[should_panic(expected = "invalid bracket")]
    fn rejects_reversed_bracket() {
        let _ = golden_section(1.0, 0.0, 1e-8, 10, |x| x);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn rejects_nan_objective() {
        let _ = golden_section(0.0, 1.0, 1e-8, 10, |_| f64::NAN);
    }
}
