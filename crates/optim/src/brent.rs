//! Brent's method for one-dimensional minimisation.
//!
//! Combines golden-section steps (guaranteed linear convergence on unimodal
//! objectives) with successive parabolic interpolation (super-linear convergence
//! on smooth objectives near the minimum). This is the classic algorithm from
//! Brent, *Algorithms for Minimization without Derivatives* (1973), as used by
//! `scipy.optimize.minimize_scalar(method="bounded")`.

const INV_PHI_COMP: f64 = 0.381_966_011_250_105; // 2 - phi = (3 - sqrt(5)) / 2

/// Minimises `f` on `[a, b]` with Brent's method. Returns `(x_min, f(x_min))`.
///
/// `tol` is a relative tolerance on the argument; `max_iter` bounds the number
/// of iterations.
///
/// # Panics
/// Panics if `a > b`, if `tol` is not positive, or if the objective returns NaN.
pub fn brent_minimize<F>(a: f64, b: f64, tol: f64, max_iter: usize, f: F) -> (f64, f64)
where
    F: Fn(f64) -> f64,
{
    let (x, fx, _) = brent_minimize_counted(a, b, tol, max_iter, f);
    (x, fx)
}

/// [`brent_minimize`] that also reports how many iterations ran before
/// convergence (or the `max_iter` cap). The returned minimum is computed by
/// the identical sequence of floating-point operations — callers that ignore
/// the count get bit-identical results to [`brent_minimize`] — while the
/// count feeds instrumentation (span fields, fallback diagnostics).
///
/// # Panics
/// Panics in the same cases as [`brent_minimize`].
pub fn brent_minimize_counted<F>(
    a: f64,
    b: f64,
    tol: f64,
    max_iter: usize,
    f: F,
) -> (f64, f64, usize)
where
    F: Fn(f64) -> f64,
{
    assert!(a <= b, "invalid bracket: a={a} > b={b}");
    assert!(tol > 0.0, "tolerance must be positive");
    let eval = |x: f64| {
        let y = f(x);
        assert!(!y.is_nan(), "objective returned NaN at x={x}");
        y
    };
    let (mut lo, mut hi) = (a, b);
    let mut x = lo + INV_PHI_COMP * (hi - lo);
    let mut w = x;
    let mut v = x;
    let mut fx = eval(x);
    let mut fw = fx;
    let mut fv = fx;
    let mut d: f64 = 0.0;
    let mut e: f64 = 0.0;
    let sqrt_eps = f64::EPSILON.sqrt();
    let mut iterations = 0usize;

    for _ in 0..max_iter {
        let m = 0.5 * (lo + hi);
        let tol1 = tol * x.abs() + sqrt_eps;
        let tol2 = 2.0 * tol1;
        if (x - m).abs() <= tol2 - 0.5 * (hi - lo) {
            break;
        }
        iterations += 1;
        let mut use_golden = true;
        if e.abs() > tol1 {
            // Try a parabolic interpolation step through (v, w, x).
            let r = (x - w) * (fx - fv);
            let q0 = (x - v) * (fx - fw);
            let mut p = (x - v) * q0 - (x - w) * r;
            let mut q = 2.0 * (q0 - r);
            if q > 0.0 {
                p = -p;
            }
            q = q.abs();
            let e_prev = e;
            e = d;
            if p.abs() < (0.5 * q * e_prev).abs() && p > q * (lo - x) && p < q * (hi - x) {
                // Accept the parabolic step.
                d = p / q;
                let u = x + d;
                if (u - lo) < tol2 || (hi - u) < tol2 {
                    d = if m > x { tol1 } else { -tol1 };
                }
                use_golden = false;
            }
        }
        if use_golden {
            e = if x < m { hi - x } else { lo - x };
            d = INV_PHI_COMP * e;
        }
        let u = if d.abs() >= tol1 {
            x + d
        } else {
            x + if d > 0.0 { tol1 } else { -tol1 }
        };
        let fu = eval(u);
        if fu <= fx {
            if u < x {
                hi = x;
            } else {
                lo = x;
            }
            v = w;
            fv = fw;
            w = x;
            fw = fx;
            x = u;
            fx = fu;
        } else {
            if u < x {
                lo = u;
            } else {
                hi = u;
            }
            if fu <= fw || w == x {
                v = w;
                fv = fw;
                w = u;
                fw = fu;
            } else if fu <= fv || v == x || v == w {
                v = u;
                fv = fu;
            }
        }
    }
    (x, fx, iterations)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadratic_minimum() {
        let (x, y) = brent_minimize(-5.0, 10.0, 1e-12, 200, |x| 2.0 * (x - 1.5).powi(2) - 4.0);
        assert!((x - 1.5).abs() < 1e-7);
        assert!((y + 4.0).abs() < 1e-12);
    }

    #[test]
    fn non_symmetric_objective() {
        // f(t) = c/t + k t is minimised at sqrt(c/k).
        let (c, k) = (450.0, 3.2e-6);
        let (t, _) = brent_minimize(1.0, 1e8, 1e-12, 300, |t| c / t + k * t);
        let expected = (c / k).sqrt();
        assert!((t - expected).abs() / expected < 1e-6);
    }

    #[test]
    fn agrees_with_golden_section() {
        let f = |x: f64| (x.ln() - 2.0).powi(2) + 0.3 * x.sqrt();
        let (xb, yb) = brent_minimize(0.1, 100.0, 1e-12, 300, f);
        let (xg, yg) = crate::golden::golden_section(0.1, 100.0, 1e-12, 500, f);
        assert!((xb - xg).abs() / xg < 1e-4, "brent={xb} golden={xg}");
        assert!((yb - yg).abs() <= 1e-9_f64.max(yg.abs() * 1e-9));
    }

    #[test]
    fn boundary_minimum() {
        let (x, _) = brent_minimize(3.0, 20.0, 1e-10, 200, |x| x.powi(2));
        assert!((x - 3.0).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "invalid bracket")]
    fn rejects_reversed_bracket() {
        let _ = brent_minimize(5.0, 1.0, 1e-8, 10, |x| x);
    }

    #[test]
    fn counted_variant_is_bit_identical_and_counts_iterations() {
        let f = |x: f64| (x.ln() - 2.0).powi(2) + 0.3 * x.sqrt();
        let (x, y) = brent_minimize(0.1, 100.0, 1e-12, 300, f);
        let (xc, yc, iters) = brent_minimize_counted(0.1, 100.0, 1e-12, 300, f);
        assert_eq!(x.to_bits(), xc.to_bits());
        assert_eq!(y.to_bits(), yc.to_bits());
        assert!(iters > 0 && iters <= 300, "iters={iters}");
        // The cap bounds the count.
        let (_, _, capped) = brent_minimize_counted(0.1, 100.0, 1e-12, 3, f);
        assert!(capped <= 3);
    }
}
