//! Application-level makespan projection.
//!
//! An application is characterised by its total amount of sequential work
//! `W_total` (seconds of single-processor computation) and a speedup profile.
//! Under the VC protocol the application is divided into periodic patterns of
//! length `T` on `P` processors; each pattern performs `W_pattern = T · S(P)`
//! units of work, so a long-lasting application comprises
//! `W_total / (T · S(P))` patterns and its expected makespan is
//!
//! ```text
//! E(W_final) ≈ E(PATTERN) · W_total / (T · S(P)) = H(PATTERN) · W_total .
//! ```

use serde::{Deserialize, Serialize};

use crate::error::{ensure_positive, ModelError};
use crate::pattern::ExactModel;

/// An HPC application: total sequential work plus the model used to execute it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Application {
    /// Total amount of work `W_total`, expressed in seconds of sequential
    /// computation.
    pub total_work: f64,
}

/// Projection of an application onto a concrete pattern `(T, P)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MakespanProjection {
    /// Number of patterns needed to complete the application (fractional; the
    /// paper's long-application approximation).
    pub patterns: f64,
    /// Error-free makespan `H(P) · W_total` (seconds), without any resilience
    /// cost.
    pub error_free_makespan: f64,
    /// Expected makespan `H(PATTERN) · W_total` (seconds) under the VC protocol
    /// with both error sources.
    pub expected_makespan: f64,
    /// Expected execution overhead of the pattern, `H(PATTERN)` (the figure-of-
    /// merit of the paper: expected seconds per second of sequential work).
    pub expected_overhead: f64,
}

impl Application {
    /// Creates an application from its total sequential work (seconds).
    pub fn new(total_work: f64) -> Result<Self, ModelError> {
        ensure_positive("total_work", total_work)?;
        Ok(Self { total_work })
    }

    /// Convenience constructor: an application whose *error-free parallel*
    /// execution on `p` processors would last `wall_clock` seconds under the
    /// model's speedup profile.
    pub fn from_wall_clock(
        model: &ExactModel,
        wall_clock: f64,
        p: f64,
    ) -> Result<Self, ModelError> {
        ensure_positive("wall_clock", wall_clock)?;
        ensure_positive("processors", p)?;
        Self::new(wall_clock * model.speedup.speedup(p))
    }

    /// Projects the expected makespan of the application when executed with the
    /// pattern `(t, p)` under `model`.
    pub fn project(&self, model: &ExactModel, t: f64, p: f64) -> MakespanProjection {
        let speedup = model.speedup.speedup(p);
        let patterns = self.total_work / (t * speedup);
        let expected_overhead = model.expected_overhead(t, p);
        MakespanProjection {
            patterns,
            error_free_makespan: model.speedup.overhead(p) * self.total_work,
            expected_makespan: expected_overhead * self.total_work,
            expected_overhead,
        }
    }

    /// The number of patterns the application spans for a pattern `(t, p)`.
    pub fn pattern_count(&self, model: &ExactModel, t: f64, p: f64) -> f64 {
        self.total_work / (t * model.speedup.speedup(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{CheckpointCost, ResilienceCosts, VerificationCost};
    use crate::failure::FailureModel;
    use crate::speedup::SpeedupProfile;

    fn model() -> ExactModel {
        ExactModel::new(
            SpeedupProfile::amdahl(0.1).unwrap(),
            ResilienceCosts::new(
                CheckpointCost::linear(300.0 / 512.0),
                VerificationCost::constant(15.4),
                3600.0,
            )
            .unwrap(),
            FailureModel::new(1.69e-8, 0.2188).unwrap(),
        )
    }

    #[test]
    fn projection_is_consistent_with_overhead() {
        let m = model();
        // One week of sequential work.
        let app = Application::new(7.0 * 86_400.0).unwrap();
        let proj = app.project(&m, 6_000.0, 400.0);
        assert!((proj.expected_makespan - proj.expected_overhead * app.total_work).abs() < 1e-6);
        assert!(proj.expected_makespan > proj.error_free_makespan);
        assert!(proj.patterns > 1.0);
    }

    #[test]
    fn from_wall_clock_round_trips() {
        let m = model();
        let p = 512.0;
        let app = Application::from_wall_clock(&m, 86_400.0, p).unwrap();
        // Error-free makespan on the same processor count equals the wall clock.
        let proj = app.project(&m, 6_000.0, p);
        assert!((proj.error_free_makespan - 86_400.0).abs() < 1e-6);
    }

    #[test]
    fn pattern_count_matches_definition() {
        let m = model();
        let app = Application::new(1e6).unwrap();
        let (t, p) = (5_000.0, 400.0);
        let n = app.pattern_count(&m, t, p);
        assert!((n - 1e6 / (t * m.speedup.speedup(p))).abs() < 1e-9);
    }

    #[test]
    fn rejects_non_positive_work() {
        assert!(Application::new(0.0).is_err());
        assert!(Application::new(-1.0).is_err());
        assert!(Application::from_wall_clock(&model(), 0.0, 10.0).is_err());
    }
}
