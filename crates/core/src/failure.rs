//! Failure model: fail-stop and silent error rates.
//!
//! Each individual processor suffers errors (of both kinds combined) at rate
//! `λ_ind = 1/µ_ind`, where `µ_ind` is its MTBF. A fraction `f` of those errors are
//! fail-stop (hardware crashes, detected immediately) and the remaining `s = 1 - f`
//! are silent data corruptions (detected only by a verification). Both arrival
//! processes are exponential and independent, so on `P` processors
//! (see [Hérault & Robert 2015, Prop. 1.2]):
//!
//! ```text
//! λ_f(P) = f · λ_ind · P       (fail-stop errors)
//! λ_s(P) = s · λ_ind · P       (silent errors)
//! ```
//!
//! The probability of at least one fail-stop error during a window of length `t`
//! is `q_f(t) = 1 - exp(-λ_f t)`, and similarly for silent errors.

use serde::{Deserialize, Serialize};

use crate::error::{ensure_fraction, ensure_positive, ModelError};

/// Failure model of an individual processor and its projection onto a platform
/// of `P` processors.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailureModel {
    /// Individual-processor error rate `λ_ind` (errors per second), all sources
    /// combined.
    pub lambda_ind: f64,
    /// Fraction `f ∈ [0, 1]` of errors that are fail-stop; the remaining `1 - f`
    /// are silent.
    pub fail_stop_fraction: f64,
}

impl FailureModel {
    /// Builds a failure model from the individual error rate and the fail-stop
    /// fraction.
    pub fn new(lambda_ind: f64, fail_stop_fraction: f64) -> Result<Self, ModelError> {
        ensure_positive("lambda_ind", lambda_ind)?;
        ensure_fraction("fail_stop_fraction", fail_stop_fraction)?;
        Ok(Self {
            lambda_ind,
            fail_stop_fraction,
        })
    }

    /// Builds a failure model from the individual MTBF `µ_ind` (seconds) instead
    /// of the rate.
    pub fn from_mtbf(mtbf_ind: f64, fail_stop_fraction: f64) -> Result<Self, ModelError> {
        ensure_positive("mtbf_ind", mtbf_ind)?;
        Self::new(1.0 / mtbf_ind, fail_stop_fraction)
    }

    /// Returns a copy with a different individual error rate (used by the
    /// `λ_ind` sweeps of Figures 5 and 6).
    pub fn with_lambda_ind(mut self, lambda_ind: f64) -> Result<Self, ModelError> {
        ensure_positive("lambda_ind", lambda_ind)?;
        self.lambda_ind = lambda_ind;
        Ok(self)
    }

    /// The silent-error fraction `s = 1 - f`.
    pub fn silent_fraction(&self) -> f64 {
        1.0 - self.fail_stop_fraction
    }

    /// Individual-processor MTBF `µ_ind = 1/λ_ind` (seconds).
    pub fn mtbf_ind(&self) -> f64 {
        1.0 / self.lambda_ind
    }

    /// Fail-stop error rate on `p` processors: `λ_f(P) = f · λ_ind · P`.
    pub fn fail_stop_rate(&self, p: f64) -> f64 {
        debug_assert!(p > 0.0);
        self.fail_stop_fraction * self.lambda_ind * p
    }

    /// Silent error rate on `p` processors: `λ_s(P) = (1 - f) · λ_ind · P`.
    pub fn silent_rate(&self, p: f64) -> f64 {
        debug_assert!(p > 0.0);
        self.silent_fraction() * self.lambda_ind * p
    }

    /// Total error rate on `p` processors, both sources combined: `λ_ind · P`.
    pub fn total_rate(&self, p: f64) -> f64 {
        self.lambda_ind * p
    }

    /// Platform MTBF on `p` processors: `µ_ind / P`.
    pub fn platform_mtbf(&self, p: f64) -> f64 {
        self.mtbf_ind() / p
    }

    /// Probability of at least one fail-stop error during a window of length
    /// `t` seconds on `p` processors: `1 - exp(-λ_f(P) t)`.
    pub fn fail_stop_probability(&self, p: f64, t: f64) -> f64 {
        probability_of_error(self.fail_stop_rate(p), t)
    }

    /// Probability of at least one silent error during a computation of length
    /// `t` seconds on `p` processors: `1 - exp(-λ_s(P) t)`.
    pub fn silent_probability(&self, p: f64, t: f64) -> f64 {
        probability_of_error(self.silent_rate(p), t)
    }

    /// Expected time lost when a fail-stop error interrupts a window of length
    /// `w`, conditioned on the error striking within the window:
    ///
    /// ```text
    /// E_lost(w) = 1/λ_f - w / (exp(λ_f w) - 1)
    /// ```
    ///
    /// (Section III.A of the paper). For `λ_f w → 0` this tends to `w/2`, the
    /// uniform-interruption intuition.
    pub fn expected_time_lost(&self, p: f64, w: f64) -> f64 {
        expected_time_lost(self.fail_stop_rate(p), w)
    }

    /// The effective rate `λ_f(P)/2 + λ_s(P) = (f/2 + s) λ_ind P` that appears in
    /// the denominator of the generalised Young/Daly period (Theorem 1).
    pub fn effective_rate(&self, p: f64) -> f64 {
        self.fail_stop_rate(p) / 2.0 + self.silent_rate(p)
    }

    /// The per-processor effective rate factor `(f/2 + s) λ_ind`, the quantity the
    /// closed forms of Theorems 2 and 3 depend on.
    pub fn effective_rate_factor(&self) -> f64 {
        (self.fail_stop_fraction / 2.0 + self.silent_fraction()) * self.lambda_ind
    }
}

/// Probability of at least one arrival of a Poisson process of rate `rate` in a
/// window of length `t`.
pub fn probability_of_error(rate: f64, t: f64) -> f64 {
    debug_assert!(rate >= 0.0 && t >= 0.0);
    // `exp_m1` keeps precision when `rate * t` is tiny (the common HPC regime).
    -(-rate * t).exp_m1()
}

/// Expected time lost before an interruption within a window of length `w`, for a
/// Poisson process of rate `rate`, conditioned on at least one arrival in the
/// window: `1/rate - w/(exp(rate*w) - 1)`.
pub fn expected_time_lost(rate: f64, w: f64) -> f64 {
    debug_assert!(rate >= 0.0 && w >= 0.0);
    if w == 0.0 {
        return 0.0;
    }
    let x = rate * w;
    if x < 1e-4 {
        // Series expansion E_lost ≈ w/2 - x·w/12 + x³·w/720 ; avoids the
        // catastrophic cancellation between 1/rate and w/(e^x - 1) when x is
        // tiny (both terms are then ~1/rate and their difference ~w/2).
        return w / 2.0 - x * w / 12.0 + x * x * x * w / 720.0;
    }
    1.0 / rate - w / x.exp_m1()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hera() -> FailureModel {
        FailureModel::new(1.69e-8, 0.2188).unwrap()
    }

    #[test]
    fn rates_scale_linearly_with_p() {
        let m = hera();
        let p = 512.0;
        assert!((m.fail_stop_rate(p) - 0.2188 * 1.69e-8 * 512.0).abs() < 1e-18);
        assert!((m.silent_rate(p) - 0.7812 * 1.69e-8 * 512.0).abs() < 1e-18);
        assert!((m.total_rate(p) - (m.fail_stop_rate(p) + m.silent_rate(p))).abs() < 1e-18);
    }

    #[test]
    fn platform_mtbf_divides_by_p() {
        let m = hera();
        assert!((m.platform_mtbf(100.0) - m.mtbf_ind() / 100.0).abs() < 1e-6);
    }

    #[test]
    fn from_mtbf_round_trips() {
        let m = FailureModel::from_mtbf(1.0e8, 0.3).unwrap();
        assert!((m.lambda_ind - 1.0e-8).abs() < 1e-20);
        assert!((m.mtbf_ind() - 1.0e8).abs() < 1e-3);
    }

    #[test]
    fn fractions_sum_to_one() {
        let m = hera();
        assert!((m.fail_stop_fraction + m.silent_fraction() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(FailureModel::new(0.0, 0.5).is_err());
        assert!(FailureModel::new(-1e-8, 0.5).is_err());
        assert!(FailureModel::new(1e-8, 1.5).is_err());
        assert!(FailureModel::from_mtbf(0.0, 0.5).is_err());
    }

    #[test]
    fn probability_is_a_probability() {
        let m = hera();
        for t in [0.0, 1.0, 1e3, 1e9, 1e15] {
            let q = m.fail_stop_probability(1000.0, t);
            assert!((0.0..=1.0).contains(&q), "q={q} for t={t}");
        }
        assert_eq!(m.fail_stop_probability(1000.0, 0.0), 0.0);
    }

    #[test]
    fn probability_matches_direct_formula_for_moderate_arguments() {
        let q = probability_of_error(1e-3, 500.0);
        let direct = 1.0 - (-0.5f64).exp();
        assert!((q - direct).abs() < 1e-12);
    }

    #[test]
    fn expected_time_lost_tends_to_half_window() {
        // For rates much smaller than 1/w the conditional loss is ~ w/2.
        let lost = expected_time_lost(1e-12, 1000.0);
        assert!((lost - 500.0).abs() < 1e-3, "lost={lost}");
    }

    #[test]
    fn expected_time_lost_is_below_window_and_positive() {
        for rate in [1e-9, 1e-6, 1e-3, 1.0] {
            for w in [1.0, 100.0, 1e5] {
                let lost = expected_time_lost(rate, w);
                assert!(lost > 0.0, "rate={rate} w={w}");
                assert!(lost < w, "rate={rate} w={w} lost={lost}");
            }
        }
    }

    #[test]
    fn expected_time_lost_series_matches_exact_at_crossover() {
        // The series branch (x < 1e-8) and the exact branch must agree around the
        // crossover point.
        let w = 1.0e4;
        let rate_below = 0.99e-8; // x ≈ 0.99e-4 → series branch
        let rate_above = 1.01e-8; // x ≈ 1.01e-4 → exact branch
        let a = expected_time_lost(rate_below, w);
        let b = expected_time_lost(rate_above, w);
        // Both branches approximate w/2 minus a small correction; they must agree
        // far better than the size of that correction (x·w/12 ≈ 0.08 s here).
        assert!((a - b).abs() < 1e-2, "a={a} b={b}");
    }

    #[test]
    fn effective_rate_combines_both_sources() {
        let m = hera();
        let p = 512.0;
        let expected = m.fail_stop_rate(p) / 2.0 + m.silent_rate(p);
        assert!((m.effective_rate(p) - expected).abs() < 1e-20);
        assert!((m.effective_rate(p) - m.effective_rate_factor() * p).abs() < 1e-18);
    }

    #[test]
    fn with_lambda_ind_changes_only_rate() {
        let m = hera().with_lambda_ind(1e-10).unwrap();
        assert_eq!(m.lambda_ind, 1e-10);
        assert_eq!(m.fail_stop_fraction, 0.2188);
        assert!(hera().with_lambda_ind(0.0).is_err());
    }
}
