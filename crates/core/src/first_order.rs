//! First-order approximations: optimal period (Theorem 1) and joint optimal
//! processor allocation / period (Theorems 2 and 3, cases 3 and 4).
//!
//! The first-order analysis expands the exact expectation of
//! [`crate::pattern::ExactModel`] in Taylor series around small `λ · x` products,
//! which is legitimate as long as the processor count and the period stay within
//! the validity region of Section III.B (see [`crate::regimes::ValidityBounds`]).
//! The resulting closed forms are:
//!
//! * **Theorem 1** (fixed `P`): `T*_P = sqrt((V_P + C_P) / (λ_f/2 + λ_s))` and
//!   `H(T*_P, P) = H(P)(1 + 2 sqrt((λ_f/2 + λ_s)(V_P + C_P)))`.
//! * **Theorem 2** (`C_P = cP`, Amdahl `α > 0`):
//!   `P* = (1/(cΛ))^{1/4} ((1-α)/(2α))^{1/2}`, `T* = (c/Λ)^{1/2}`,
//!   `H* = α + 2 (4 α² (1-α)² c Λ)^{1/4}`, with `Λ = (f/2 + s) λ_ind`.
//! * **Theorem 3** (`C_P + V_P = d`, Amdahl `α > 0`):
//!   `P* = (1/(dΛ))^{1/3} ((1-α)/α)^{2/3}`, `T* = (d²/Λ)^{1/3} (α/(1-α))^{1/3}`,
//!   `H* = α + 3 (α² (1-α) d Λ)^{1/3}`.
//! * **Case 3** (`C_P + V_P = h/P`): the first-order overhead decreases
//!   monotonically with `P`; no closed-form optimum exists (the experiments use the
//!   numerical optimiser of `ayd-optim` instead).
//! * **Case 4** (perfectly parallel, `α = 0`): the overhead again decreases with
//!   `P`; only asymptotic expressions are available.

use serde::{Deserialize, Serialize};

use crate::error::ModelError;
use crate::pattern::ExactModel;
use crate::speedup::SpeedupProfile;

/// Structural classification of the combined checkpoint + verification cost,
/// which selects the applicable theorem (Section III.D).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CostCase {
    /// `C_P = cP + o(P)` with `c ≠ 0` — Theorem 2 applies (`P* = Θ(λ^{-1/4})`).
    LinearGrowth,
    /// `C_P + V_P = d + o(1)` with `c = 0, d ≠ 0` — Theorem 3 applies
    /// (`P* = Θ(λ^{-1/3})`).
    Constant,
    /// `C_P + V_P = h/P` with `c = d = 0, h ≠ 0` — no first-order optimum; the
    /// overhead decreases with `P` throughout the validity region.
    Decreasing,
    /// All resilience costs are zero — resilience is free, the model degenerates.
    Free,
}

/// Result of the fixed-`P` optimisation (Theorem 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PeriodOptimum {
    /// Optimal checkpointing period `T*_P` (seconds).
    pub period: f64,
    /// Predicted expected execution overhead `H(T*_P, P)` at that period.
    pub overhead: f64,
}

/// Result of the joint optimisation over `(P, T)` (Theorems 2 and 3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JointOptimum {
    /// Optimal (continuous) processor allocation `P*`.
    pub processors: f64,
    /// Optimal checkpointing period `T*` (seconds).
    pub period: f64,
    /// Predicted expected execution overhead `H(T*, P*)`.
    pub overhead: f64,
    /// Which cost case (and therefore which theorem) produced the result.
    pub case: CostCase,
}

/// First-order approximation engine attached to an [`ExactModel`].
#[derive(Debug, Clone, Copy)]
pub struct FirstOrder<'a> {
    model: &'a ExactModel,
}

impl<'a> FirstOrder<'a> {
    /// Wraps an exact model.
    pub fn new(model: &'a ExactModel) -> Self {
        Self { model }
    }

    /// The underlying exact model.
    pub fn model(&self) -> &ExactModel {
        self.model
    }

    /// Structural classification of the cost model (which theorem applies).
    pub fn cost_case(&self) -> CostCase {
        let costs = &self.model.costs;
        if costs.c() > 0.0 {
            CostCase::LinearGrowth
        } else if costs.d() > 0.0 {
            CostCase::Constant
        } else if costs.h() > 0.0 {
            CostCase::Decreasing
        } else {
            CostCase::Free
        }
    }

    /// First-order (second-order Taylor) approximation of the expected pattern
    /// time, keeping the same terms as the expansion displayed in the proof of
    /// Theorem 1:
    ///
    /// ```text
    /// E ≈ T + V + C + (λ_f/2 + λ_s) T²
    ///   + λ_f T (V + C + R + D) + λ_s T (V + R)
    ///   + λ_f C (C/2 + R + V + D) + λ_f V (V + R + D)
    /// ```
    pub fn approx_pattern_time(&self, t: f64, p: f64) -> f64 {
        let costs = &self.model.costs;
        let failures = &self.model.failures;
        let c = costs.checkpoint_at(p);
        let r = costs.recovery_at(p);
        let v = costs.verification_at(p);
        let d = costs.downtime;
        let lf = failures.fail_stop_rate(p);
        let ls = failures.silent_rate(p);
        t + v
            + c
            + (lf / 2.0 + ls) * t * t
            + lf * t * (v + c + r + d)
            + ls * t * (v + r)
            + lf * c * (c / 2.0 + r + v + d)
            + lf * v * (v + r + d)
    }

    /// Dominant-term first-order expected overhead
    /// `H(T, P) ≈ H(P) (1 + (V_P + C_P)/T + (λ_f/2 + λ_s) T)`, the expression the
    /// theorems minimise.
    pub fn approx_overhead(&self, t: f64, p: f64) -> f64 {
        let costs = &self.model.costs;
        let vc = costs.checkpoint_plus_verification_at(p);
        let lam = self.model.failures.effective_rate(p);
        self.model.speedup.overhead(p) * (1.0 + vc / t + lam * t)
    }

    /// Theorem 1: the optimal checkpointing period for a fixed processor count,
    /// `T*_P = sqrt((V_P + C_P)/(λ_f/2 + λ_s))`, together with the predicted
    /// overhead `H(T*_P, P) = H(P)(1 + 2 sqrt((λ_f/2 + λ_s)(V_P + C_P)))`.
    ///
    /// This generalises the Young/Daly formula: with `s = 0` (fail-stop only) and
    /// `V_P = 0` it reduces to `sqrt(2 C_P / λ_f)`.
    pub fn optimal_period_for(&self, p: f64) -> PeriodOptimum {
        let vc = self.model.costs.checkpoint_plus_verification_at(p);
        let lam = self.model.failures.effective_rate(p);
        let period = (vc / lam).sqrt();
        let overhead = self.model.speedup.overhead(p) * (1.0 + 2.0 * (lam * vc).sqrt());
        PeriodOptimum { period, overhead }
    }

    /// Theorem 2: joint optimum when the checkpoint cost grows linearly with the
    /// processor count (`C_P = cP + o(P)`, Amdahl profile with `α > 0`).
    pub fn theorem2_optimum(&self) -> Result<JointOptimum, ModelError> {
        let alpha = self.require_positive_alpha()?;
        let c = self.model.costs.c();
        if c <= 0.0 {
            return Err(ModelError::NoClosedFormOptimum {
                reason: "Theorem 2 requires a checkpoint cost growing linearly with P (c > 0)",
            });
        }
        let big_lambda = self.model.failures.effective_rate_factor();
        let processors =
            (1.0 / (c * big_lambda)).powf(0.25) * ((1.0 - alpha) / (2.0 * alpha)).sqrt();
        let period = (c / big_lambda).sqrt();
        let overhead = alpha
            + 2.0
                * (4.0 * alpha * alpha * (1.0 - alpha) * (1.0 - alpha) * c * big_lambda).powf(0.25);
        Ok(JointOptimum {
            processors,
            period,
            overhead,
            case: CostCase::LinearGrowth,
        })
    }

    /// Theorem 3: joint optimum when the combined checkpoint + verification cost
    /// is a constant (`C_P + V_P = d + o(1)`, Amdahl profile with `α > 0`).
    pub fn theorem3_optimum(&self) -> Result<JointOptimum, ModelError> {
        let alpha = self.require_positive_alpha()?;
        let d = self.model.costs.d();
        if self.model.costs.c() > 0.0 {
            return Err(ModelError::NoClosedFormOptimum {
                reason: "Theorem 3 requires the checkpoint cost not to grow with P (c = 0)",
            });
        }
        if d <= 0.0 {
            return Err(ModelError::NoClosedFormOptimum {
                reason: "Theorem 3 requires a constant checkpoint + verification cost (d > 0)",
            });
        }
        let big_lambda = self.model.failures.effective_rate_factor();
        let processors =
            (1.0 / (d * big_lambda)).powf(1.0 / 3.0) * ((1.0 - alpha) / alpha).powf(2.0 / 3.0);
        let period = (d * d / big_lambda).powf(1.0 / 3.0) * (alpha / (1.0 - alpha)).powf(1.0 / 3.0);
        let overhead =
            alpha + 3.0 * (alpha * alpha * (1.0 - alpha) * d * big_lambda).powf(1.0 / 3.0);
        Ok(JointOptimum {
            processors,
            period,
            overhead,
            case: CostCase::Constant,
        })
    }

    /// Joint optimum `(P*, T*, H*)`, dispatching to Theorem 2 or Theorem 3
    /// according to the cost case. Returns an error for the decreasing-cost case
    /// (no first-order optimum), for free resilience, for non-Amdahl profiles and
    /// for perfectly parallel applications (`α = 0`).
    pub fn joint_optimum(&self) -> Result<JointOptimum, ModelError> {
        match self.cost_case() {
            CostCase::LinearGrowth => self.theorem2_optimum(),
            CostCase::Constant => self.theorem3_optimum(),
            CostCase::Decreasing => Err(ModelError::NoClosedFormOptimum {
                reason: "C_P + V_P = h/P: the first-order overhead decreases monotonically \
                         with P; use the numerical optimiser",
            }),
            CostCase::Free => Err(ModelError::NoClosedFormOptimum {
                reason: "all resilience costs are zero; the model degenerates",
            }),
        }
    }

    /// Case 3 (`C_P + V_P = h/P`): the first-order overhead at the Theorem-1
    /// period for a given `P`,
    /// `H(T*_P, P) = (α + (1-α)/P)(1 + 2 sqrt(h (f/2 + s) λ_ind))`, which decreases
    /// monotonically with `P` within the validity region.
    pub fn decreasing_cost_overhead_at(&self, p: f64) -> Result<f64, ModelError> {
        let alpha = self.require_alpha()?;
        if self.cost_case() != CostCase::Decreasing {
            return Err(ModelError::NoClosedFormOptimum {
                reason: "decreasing_cost_overhead_at only applies when C_P + V_P = h/P",
            });
        }
        let h = self.model.costs.h();
        let big_lambda = self.model.failures.effective_rate_factor();
        Ok((alpha + (1.0 - alpha) / p) * (1.0 + 2.0 * (h * big_lambda).sqrt()))
    }

    /// Case 4 (perfectly parallel application, `H(P) = 1/P`): the first-order
    /// overhead at the Theorem-1 period for a given `P`, in the three sub-cases of
    /// Section III.D.4. This never admits a finite first-order optimum; the paper
    /// resorts to numerical optimisation (Figure 6).
    pub fn perfectly_parallel_overhead_at(&self, p: f64) -> f64 {
        let costs = &self.model.costs;
        let big_lambda = self.model.failures.effective_rate_factor();
        let c = costs.c();
        let d = costs.d();
        let h = costs.h();
        if c > 0.0 {
            1.0 / p + 2.0 * (c * big_lambda).sqrt()
        } else if d > 0.0 {
            1.0 / p + 2.0 * (d * big_lambda / p).sqrt()
        } else {
            (1.0 + 2.0 * (h * big_lambda).sqrt()) / p
        }
    }

    fn require_alpha(&self) -> Result<f64, ModelError> {
        self.model
            .speedup
            .sequential_fraction()
            .ok_or(ModelError::FirstOrderInapplicable {
                reason:
                    "the closed-form theorems require an Amdahl (or perfectly parallel) profile",
            })
    }

    fn require_positive_alpha(&self) -> Result<f64, ModelError> {
        let alpha = self.require_alpha()?;
        if alpha > 0.0 {
            Ok(alpha)
        } else {
            Err(ModelError::FirstOrderInapplicable {
                reason: "Theorems 2 and 3 require a strictly positive sequential fraction α; \
                         for α = 0 use the numerical optimiser (Figure 6 regime)",
            })
        }
    }
}

/// Convenience: classification of a speedup profile + cost pair into the paper's
/// four analysis cases (Sections III.D.1–III.D.4).
pub fn analysis_case(speedup: &SpeedupProfile, case: CostCase) -> &'static str {
    match (speedup.has_sequential_part(), case) {
        (true, CostCase::LinearGrowth) => "case 1 (Theorem 2): alpha > 0, C_P = cP",
        (true, CostCase::Constant) => "case 2 (Theorem 3): alpha > 0, C_P + V_P = d",
        (true, CostCase::Decreasing) => "case 3: alpha > 0, C_P + V_P = h/P",
        (true, CostCase::Free) => "degenerate: free resilience",
        (false, _) => "case 4: perfectly parallel (alpha = 0) or non-Amdahl profile",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{CheckpointCost, ResilienceCosts, VerificationCost};
    use crate::failure::FailureModel;

    fn hera_failures() -> FailureModel {
        FailureModel::new(1.69e-8, 0.2188).unwrap()
    }

    fn scenario1_costs() -> ResilienceCosts {
        ResilienceCosts::new(
            CheckpointCost::linear(300.0 / 512.0),
            VerificationCost::constant(15.4),
            3600.0,
        )
        .unwrap()
    }

    fn scenario3_costs() -> ResilienceCosts {
        ResilienceCosts::new(
            CheckpointCost::constant(300.0),
            VerificationCost::constant(15.4),
            3600.0,
        )
        .unwrap()
    }

    fn scenario5_costs() -> ResilienceCosts {
        ResilienceCosts::new(
            CheckpointCost::per_processor(300.0 * 512.0),
            VerificationCost::constant(15.4),
            3600.0,
        )
        .unwrap()
    }

    fn model(costs: ResilienceCosts, alpha: f64) -> ExactModel {
        ExactModel::new(
            SpeedupProfile::amdahl(alpha).unwrap(),
            costs,
            hera_failures(),
        )
    }

    #[test]
    fn cost_case_classification() {
        assert_eq!(
            FirstOrder::new(&model(scenario1_costs(), 0.1)).cost_case(),
            CostCase::LinearGrowth
        );
        assert_eq!(
            FirstOrder::new(&model(scenario3_costs(), 0.1)).cost_case(),
            CostCase::Constant
        );
        let m5 = ExactModel::new(
            SpeedupProfile::amdahl(0.1).unwrap(),
            ResilienceCosts::new(
                CheckpointCost::per_processor(1000.0),
                VerificationCost::per_processor(10.0),
                0.0,
            )
            .unwrap(),
            hera_failures(),
        );
        assert_eq!(FirstOrder::new(&m5).cost_case(), CostCase::Decreasing);
        let free = ExactModel::new(
            SpeedupProfile::amdahl(0.1).unwrap(),
            ResilienceCosts::new(CheckpointCost::constant(0.0), VerificationCost::zero(), 0.0)
                .unwrap(),
            hera_failures(),
        );
        assert_eq!(FirstOrder::new(&free).cost_case(), CostCase::Free);
    }

    #[test]
    fn theorem1_period_matches_formula() {
        let m = model(scenario1_costs(), 0.1);
        let fo = FirstOrder::new(&m);
        let p = 512.0;
        let opt = fo.optimal_period_for(p);
        let vc = m.costs.checkpoint_plus_verification_at(p);
        let lam = m.failures.effective_rate(p);
        assert!((opt.period - (vc / lam).sqrt()).abs() < 1e-9);
        // The first-order period is a stationary point of the dominant-term
        // overhead: perturbing it in either direction increases the overhead.
        let h0 = fo.approx_overhead(opt.period, p);
        assert!(fo.approx_overhead(opt.period * 1.1, p) > h0);
        assert!(fo.approx_overhead(opt.period * 0.9, p) > h0);
        assert!((h0 - opt.overhead).abs() / h0 < 1e-12);
    }

    #[test]
    fn theorem1_reduces_to_young_daly_without_silent_errors() {
        let failures = FailureModel::new(1e-8, 1.0).unwrap(); // fail-stop only
        let costs = ResilienceCosts::new(
            CheckpointCost::constant(300.0),
            VerificationCost::zero(),
            0.0,
        )
        .unwrap();
        let m = ExactModel::new(SpeedupProfile::amdahl(0.1).unwrap(), costs, failures);
        let p = 1000.0;
        let period = FirstOrder::new(&m).optimal_period_for(p).period;
        let young_daly = (2.0 * 300.0 / failures.fail_stop_rate(p)).sqrt();
        assert!((period - young_daly).abs() / young_daly < 1e-12);
    }

    #[test]
    fn theorem2_matches_closed_form_and_is_a_minimum() {
        let m = model(scenario1_costs(), 0.1);
        let fo = FirstOrder::new(&m);
        let opt = fo.theorem2_optimum().unwrap();
        assert_eq!(opt.case, CostCase::LinearGrowth);
        // Direct formula check.
        let c = m.costs.c();
        let lam = m.failures.effective_rate_factor();
        let alpha: f64 = 0.1;
        let p_expected = (1.0 / (c * lam)).powf(0.25) * ((1.0 - alpha) / (2.0 * alpha)).sqrt();
        assert!((opt.processors - p_expected).abs() / p_expected < 1e-12);
        assert!((opt.period - (c / lam).sqrt()).abs() / opt.period < 1e-12);
        // P* is a minimiser of the Theorem-1 overhead over P.
        let h = |p: f64| fo.optimal_period_for(p).overhead;
        assert!(h(opt.processors * 1.2) > h(opt.processors) - 1e-12);
        assert!(h(opt.processors * 0.8) > h(opt.processors) - 1e-12);
        // Paper, Figure 2 (Hera): P* in the few-hundred range, overhead ≈ 0.11.
        assert!(
            opt.processors > 150.0 && opt.processors < 600.0,
            "P*={}",
            opt.processors
        );
        assert!(
            opt.overhead > 0.10 && opt.overhead < 0.13,
            "H*={}",
            opt.overhead
        );
    }

    #[test]
    fn theorem3_matches_closed_form_and_is_a_minimum() {
        let m = model(scenario3_costs(), 0.1);
        let fo = FirstOrder::new(&m);
        let opt = fo.theorem3_optimum().unwrap();
        assert_eq!(opt.case, CostCase::Constant);
        let d = m.costs.d();
        let lam = m.failures.effective_rate_factor();
        let alpha: f64 = 0.1;
        let p_expected =
            (1.0 / (d * lam)).powf(1.0 / 3.0) * ((1.0 - alpha) / alpha).powf(2.0 / 3.0);
        assert!((opt.processors - p_expected).abs() / p_expected < 1e-12);
        let t_expected = (d * d / lam).powf(1.0 / 3.0) * (alpha / (1.0 - alpha)).powf(1.0 / 3.0);
        assert!((opt.period - t_expected).abs() / t_expected < 1e-12);
        let h_expected = alpha + 3.0 * (alpha * alpha * (1.0 - alpha) * d * lam).powf(1.0 / 3.0);
        assert!((opt.overhead - h_expected).abs() < 1e-15);
        let h = |p: f64| fo.optimal_period_for(p).overhead;
        assert!(h(opt.processors * 1.2) > h(opt.processors) - 1e-12);
        assert!(h(opt.processors * 0.8) > h(opt.processors) - 1e-12);
    }

    #[test]
    fn joint_optimum_dispatches_on_cost_case() {
        let m1 = model(scenario1_costs(), 0.1);
        assert_eq!(
            FirstOrder::new(&m1).joint_optimum().unwrap().case,
            CostCase::LinearGrowth
        );
        let m3 = model(scenario3_costs(), 0.1);
        assert_eq!(
            FirstOrder::new(&m3).joint_optimum().unwrap().case,
            CostCase::Constant
        );
        let m6 = ExactModel::new(
            SpeedupProfile::amdahl(0.1).unwrap(),
            ResilienceCosts::new(
                CheckpointCost::per_processor(1000.0),
                VerificationCost::per_processor(100.0),
                0.0,
            )
            .unwrap(),
            hera_failures(),
        );
        assert!(FirstOrder::new(&m6).joint_optimum().is_err());
    }

    #[test]
    fn joint_optimum_requires_positive_alpha() {
        let m = model(scenario1_costs(), 0.0);
        assert!(FirstOrder::new(&m).joint_optimum().is_err());
        let perfectly = ExactModel::new(
            SpeedupProfile::perfectly_parallel(),
            scenario1_costs(),
            hera_failures(),
        );
        assert!(FirstOrder::new(&perfectly).joint_optimum().is_err());
    }

    #[test]
    fn theorem2_scaling_with_lambda_is_minus_one_quarter() {
        // P*(λ/16) / P*(λ) = 16^{1/4} = 2 ; T* scales as λ^{-1/2}.
        let base = model(scenario1_costs(), 0.1);
        let opt1 = FirstOrder::new(&base).theorem2_optimum().unwrap();
        let weaker = base.with_failures(hera_failures().with_lambda_ind(1.69e-8 / 16.0).unwrap());
        let opt2 = FirstOrder::new(&weaker).theorem2_optimum().unwrap();
        assert!((opt2.processors / opt1.processors - 2.0).abs() < 1e-9);
        assert!((opt2.period / opt1.period - 4.0).abs() < 1e-9);
    }

    #[test]
    fn theorem3_scaling_with_lambda_is_minus_one_third() {
        let base = model(scenario3_costs(), 0.1);
        let opt1 = FirstOrder::new(&base).theorem3_optimum().unwrap();
        let weaker = base.with_failures(hera_failures().with_lambda_ind(1.69e-8 / 8.0).unwrap());
        let opt2 = FirstOrder::new(&weaker).theorem3_optimum().unwrap();
        assert!((opt2.processors / opt1.processors - 2.0).abs() < 1e-9);
        assert!((opt2.period / opt1.period - 2.0).abs() < 1e-9);
    }

    #[test]
    fn smaller_alpha_enrolls_more_processors() {
        for costs in [scenario1_costs(), scenario3_costs()] {
            let few = FirstOrder::new(&model(costs, 0.1)).joint_optimum().unwrap();
            let many = FirstOrder::new(&model(costs, 0.001))
                .joint_optimum()
                .unwrap();
            assert!(many.processors > few.processors);
            assert!(many.overhead < few.overhead);
        }
    }

    #[test]
    fn decreasing_cost_overhead_decreases_with_p() {
        let m = ExactModel::new(
            SpeedupProfile::amdahl(0.1).unwrap(),
            ResilienceCosts::new(
                CheckpointCost::per_processor(300.0 * 512.0),
                VerificationCost::per_processor(15.4 * 512.0),
                3600.0,
            )
            .unwrap(),
            hera_failures(),
        );
        let fo = FirstOrder::new(&m);
        let h1 = fo.decreasing_cost_overhead_at(100.0).unwrap();
        let h2 = fo.decreasing_cost_overhead_at(1000.0).unwrap();
        assert!(h2 < h1);
        // Scenario 5 (constant verification) is NOT the decreasing case.
        let m5 = model(scenario5_costs(), 0.1);
        assert!(FirstOrder::new(&m5)
            .decreasing_cost_overhead_at(100.0)
            .is_err());
    }

    #[test]
    fn perfectly_parallel_overheads_decrease_with_p() {
        for costs in [scenario1_costs(), scenario3_costs(), scenario5_costs()] {
            let m = ExactModel::new(SpeedupProfile::perfectly_parallel(), costs, hera_failures());
            let fo = FirstOrder::new(&m);
            assert!(
                fo.perfectly_parallel_overhead_at(10_000.0)
                    < fo.perfectly_parallel_overhead_at(100.0)
            );
        }
    }

    #[test]
    fn approx_pattern_time_close_to_exact_in_validity_region() {
        let m = model(scenario1_costs(), 0.1);
        let fo = FirstOrder::new(&m);
        let p = 400.0;
        let t = fo.optimal_period_for(p).period;
        let exact = m.expected_pattern_time(t, p);
        let approx = fo.approx_pattern_time(t, p);
        assert!(
            (exact - approx).abs() / exact < 1e-3,
            "exact={exact} approx={approx}"
        );
    }

    #[test]
    fn analysis_case_strings() {
        let amdahl = SpeedupProfile::amdahl(0.1).unwrap();
        assert!(analysis_case(&amdahl, CostCase::LinearGrowth).contains("Theorem 2"));
        assert!(analysis_case(&amdahl, CostCase::Constant).contains("Theorem 3"));
        assert!(analysis_case(&amdahl, CostCase::Decreasing).contains("case 3"));
        let pp = SpeedupProfile::perfectly_parallel();
        assert!(analysis_case(&pp, CostCase::LinearGrowth).contains("case 4"));
    }
}

/// Cross-checks of the closed-form optima (Theorems 1–3) against the generic
/// numerical minimisers of `ayd-optim` applied to the exact pattern model.
#[cfg(test)]
mod cross_check_tests {
    use super::*;
    use crate::cost::{CheckpointCost, ResilienceCosts, VerificationCost};
    use crate::failure::FailureModel;
    use ayd_optim::{golden_section, minimize_scalar, JointSearch, OptimizeOptions};

    fn hera_model(checkpoint: CheckpointCost) -> ExactModel {
        ExactModel::new(
            SpeedupProfile::amdahl(0.1).unwrap(),
            ResilienceCosts::new(checkpoint, VerificationCost::constant(15.4), 3600.0).unwrap(),
            FailureModel::new(1.69e-8, 0.2188).unwrap(),
        )
    }

    #[test]
    fn theorem1_period_agrees_with_brent_on_the_exact_model() {
        // For fixed P, Theorem 1's period vs Brent on the exact expected
        // overhead: periods within ~10%, overheads within a fraction of a
        // percent (the optimum is flat).
        let model = hera_model(CheckpointCost::linear(300.0 / 512.0));
        let fo = FirstOrder::new(&model);
        for p in [128.0, 512.0, 1_024.0] {
            let closed_form = fo.optimal_period_for(p).period;
            let minimum = minimize_scalar(10.0, 1e8, OptimizeOptions::default(), |t| {
                model.expected_overhead(t, p)
            });
            let (numerical, h_num) = (minimum.argument, minimum.value);
            assert!(
                (closed_form - numerical).abs() / numerical < 0.10,
                "P={p}: {closed_form} vs {numerical}"
            );
            let h_fo = model.expected_overhead(closed_form, p);
            assert!((h_fo - h_num) / h_num < 5e-3, "P={p}");
        }
    }

    #[test]
    fn theorem2_optimum_agrees_with_joint_search_on_the_exact_model() {
        // Scenario-1 costs (C_P = cP): Theorem 2 vs the nested numerical
        // (P, T) search on the exact model. The paper's Figure 2 claim: the
        // achieved overheads are within 1%; allocations within tens of percent.
        let model = hera_model(CheckpointCost::linear(300.0 / 512.0));
        let optimum = FirstOrder::new(&model).theorem2_optimum().unwrap();
        let search = JointSearch::new((1.0, 1e6), (10.0, 1e8));
        let numerical = search.optimize(|p, t| model.expected_overhead(t, p));
        assert!(
            (optimum.processors - numerical.processors).abs() / numerical.processors < 0.35,
            "P*: theorem {} vs numerical {}",
            optimum.processors,
            numerical.processors
        );
        assert!(
            (optimum.period - numerical.period).abs() / numerical.period < 0.35,
            "T*: theorem {} vs numerical {}",
            optimum.period,
            numerical.period
        );
        // Achieved overhead at Theorem 2's own operating point (with Theorem 1's
        // period at P*, as a practitioner would use it).
        let period = FirstOrder::new(&model)
            .optimal_period_for(optimum.processors)
            .period;
        let achieved = model.expected_overhead(period, optimum.processors);
        assert!(achieved >= numerical.value - 1e-12);
        assert!((achieved - numerical.value) / numerical.value < 0.01);
    }

    #[test]
    fn theorem3_optimum_agrees_with_joint_search_on_the_exact_model() {
        // Scenario-3 costs (C_P = a): Theorem 3 vs the nested numerical search.
        let model = hera_model(CheckpointCost::constant(300.0));
        let optimum = FirstOrder::new(&model).theorem3_optimum().unwrap();
        let search = JointSearch::new((1.0, 1e6), (10.0, 1e8));
        let numerical = search.optimize(|p, t| model.expected_overhead(t, p));
        assert!(
            (optimum.processors - numerical.processors).abs() / numerical.processors < 0.35,
            "P*: theorem {} vs numerical {}",
            optimum.processors,
            numerical.processors
        );
        let period = FirstOrder::new(&model)
            .optimal_period_for(optimum.processors)
            .period;
        let achieved = model.expected_overhead(period, optimum.processors);
        assert!(achieved >= numerical.value - 1e-12);
        assert!((achieved - numerical.value) / numerical.value < 0.01);
    }

    #[test]
    fn theorem2_closed_forms_match_golden_section_on_the_first_order_surface() {
        // On the dominant-term first-order surface the theorems minimise, the
        // agreement with a numerical scan is tight: minimise the Theorem-1
        // overhead envelope over P with golden section and compare against the
        // closed-form P* (the verification cost v is the only dropped term).
        let model = hera_model(CheckpointCost::linear(300.0 / 512.0));
        let fo = FirstOrder::new(&model);
        let optimum = fo.theorem2_optimum().unwrap();
        let (p_num, _) =
            golden_section(1.0, 1e6, 1e-13, 600, |p| fo.optimal_period_for(p).overhead);
        assert!(
            (optimum.processors - p_num).abs() / p_num < 0.05,
            "closed form {} vs golden section {}",
            optimum.processors,
            p_num
        );
    }
}
