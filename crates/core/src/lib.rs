//! # ayd-core — analytical models from *When Amdahl Meets Young/Daly*
//!
//! This crate implements the analytical machinery of the CLUSTER 2016 paper
//! *"When Amdahl Meets Young/Daly"* (Cavelan, Li, Robert, Sun):
//!
//! * **Speedup profiles** obeying Amdahl's law (and, as an extension, perfectly
//!   parallel, power-law and Gustafson-style profiles) — [`speedup`].
//! * **Resilience cost models** `C_P = a + b/P + cP` for checkpoints/recoveries and
//!   `V_P = v + u/P` for verifications — [`cost`].
//! * **Failure model** splitting an individual-processor error rate `λ_ind` into
//!   fail-stop and silent fractions, and scaling it to `P` processors — [`failure`].
//! * **Exact expected execution time of a periodic checkpointing pattern**
//!   `PATTERN(T, P)` under both error sources (Proposition 1 / Eq. (2)) — [`pattern`].
//! * **First-order approximations** of the optimal checkpointing period `T*_P`
//!   (Theorem 1) and of the jointly optimal `(P*, T*)` (Theorems 2 and 3, plus the
//!   degenerate cases 3 and 4) — [`first_order`].
//! * **Validity-region bookkeeping and asymptotic-order estimation** used to check
//!   the `Θ(λ_ind^{-1/4})` / `Θ(λ_ind^{-1/3})` laws — [`regimes`].
//! * **Classical Young/Daly baselines** (fail-stop errors only) — [`young_daly`].
//! * **Application-level makespan projection** — [`application`].
//!
//! The crate is purely analytical: it contains no randomness and no I/O. The
//! companion crates `ayd-sim` (discrete-event simulation), `ayd-optim` (numerical
//! optimisation of the exact model) and `ayd-exp` (experiment harness) build on it.
//!
//! ## Quick start
//!
//! ```
//! use ayd_core::prelude::*;
//!
//! // A platform of processors with a 1.69e-8 /s individual error rate, of which
//! // 21.88% are fail-stop and the rest silent (the "Hera" platform of the paper).
//! let failures = FailureModel::new(1.69e-8, 0.2188).unwrap();
//! // Checkpoint cost grows linearly with P (coordinated checkpointing):
//! // C_P = 0.586 * P seconds; verification is a 15.4 s constant.
//! let costs = ResilienceCosts::new(
//!     CheckpointCost::linear(300.0 / 512.0),
//!     VerificationCost::constant(15.4),
//!     3600.0,
//! ).unwrap();
//! let speedup = SpeedupProfile::amdahl(0.1).unwrap();
//! let model = ExactModel::new(speedup, costs, failures);
//!
//! // First-order optimum (Theorem 2): ~ λ_ind^{-1/4} processors.
//! let opt = FirstOrder::new(&model).joint_optimum().unwrap();
//! assert!(opt.processors > 100.0 && opt.processors < 1000.0);
//! // The exact expected overhead at that operating point is close to the
//! // first-order prediction.
//! let exact = model.expected_overhead(opt.period, opt.processors);
//! assert!((exact - opt.overhead).abs() / opt.overhead < 0.05);
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod application;
pub mod cost;
pub mod error;
pub mod failure;
pub mod failure_spec;
pub mod first_order;
pub mod pattern;
pub mod profile;
pub mod regimes;
pub mod speedup;
pub mod young_daly;

pub use application::Application;
pub use cost::{CheckpointCost, ResilienceCosts, VerificationCost};
pub use error::ModelError;
pub use failure::FailureModel;
pub use failure_spec::{FailureLaw, FailureModelSpec};
pub use first_order::{CostCase, FirstOrder, JointOptimum, PeriodOptimum};
pub use pattern::ExactModel;
pub use profile::ProfileSpec;
pub use regimes::{fit_power_law, ValidityBounds};
pub use speedup::SpeedupProfile;
pub use young_daly::{daly_period, young_daly_period};

/// Convenience re-exports of the most commonly used types.
pub mod prelude {
    pub use crate::application::Application;
    pub use crate::cost::{CheckpointCost, ResilienceCosts, VerificationCost};
    pub use crate::error::ModelError;
    pub use crate::failure::FailureModel;
    pub use crate::failure_spec::{FailureLaw, FailureModelSpec};
    pub use crate::first_order::{CostCase, FirstOrder, JointOptimum, PeriodOptimum};
    pub use crate::pattern::ExactModel;
    pub use crate::profile::ProfileSpec;
    pub use crate::regimes::{fit_power_law, ValidityBounds};
    pub use crate::speedup::SpeedupProfile;
    pub use crate::young_daly::{daly_period, young_daly_period};
}
