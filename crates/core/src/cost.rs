//! Resilience cost models: checkpoint, recovery and verification costs.
//!
//! The paper uses the general forms (Section II, Table I):
//!
//! ```text
//! C_P = a + b/P + cP        (checkpoint; recovery R_P = C_P)
//! V_P = v + u/P             (verification)
//! ```
//!
//! * `a + b/P` is the I/O time to write the memory footprint: `a` is a start-up
//!   latency (or the full `β + M/τ_io` term when the storage bandwidth is the
//!   bottleneck), `b/P` the per-processor share of an in-memory / network-bound
//!   transfer.
//! * `cP` is the message-passing / coordination overhead that grows linearly with
//!   the processor count (coordinated checkpointing).
//! * `v + u/P` mirrors the same structure for an in-memory verification.
//!
//! The aggregate `d = a + v` and `h = b + u` quantities drive the case analysis of
//! Section III.D (Theorem 2 when `c ≠ 0`, Theorem 3 when `c = 0, d ≠ 0`, the
//! degenerate case when `c = d = 0, h ≠ 0`).

use serde::{Deserialize, Serialize};

use crate::error::{ensure_non_negative, ModelError};

/// Checkpoint (and recovery) cost model `C_P = a + b/P + cP`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CheckpointCost {
    /// Constant term `a` (seconds): start-up latency and/or storage-bound I/O time.
    pub a: f64,
    /// Per-processor-share term `b` (seconds × processors): `b/P` is each
    /// processor's share of the transfer when the footprint is distributed.
    pub b: f64,
    /// Linear term `c` (seconds / processor): coordination overhead growing with `P`.
    pub c: f64,
}

impl CheckpointCost {
    /// Builds a general cost model, validating that every coefficient is finite
    /// and non-negative.
    pub fn new(a: f64, b: f64, c: f64) -> Result<Self, ModelError> {
        ensure_non_negative("checkpoint.a", a)?;
        ensure_non_negative("checkpoint.b", b)?;
        ensure_non_negative("checkpoint.c", c)?;
        Ok(Self { a, b, c })
    }

    /// A cost that grows linearly with the processor count: `C_P = cP`
    /// (coordinated checkpointing to stable storage, scenarios 1–2 of Table III).
    pub fn linear(c: f64) -> Self {
        Self { a: 0.0, b: 0.0, c }
    }

    /// A constant cost: `C_P = a` (storage-bandwidth-bound checkpointing,
    /// scenarios 3–4 of Table III).
    pub fn constant(a: f64) -> Self {
        Self { a, b: 0.0, c: 0.0 }
    }

    /// A cost that decreases with the processor count: `C_P = b/P`
    /// (in-memory / network-bound checkpointing, scenarios 5–6 of Table III).
    pub fn per_processor(b: f64) -> Self {
        Self { a: 0.0, b, c: 0.0 }
    }

    /// Evaluates `C_P` for `p` processors.
    pub fn at(&self, p: f64) -> f64 {
        debug_assert!(p > 0.0);
        self.a + self.b / p + self.c * p
    }

    /// True when the cost is identically zero for every `P`.
    pub fn is_zero(&self) -> bool {
        self.a == 0.0 && self.b == 0.0 && self.c == 0.0
    }
}

/// Verification cost model `V_P = v + u/P`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VerificationCost {
    /// Constant term `v` (seconds): start-up latency of the detector.
    pub v: f64,
    /// Per-processor-share term `u` (seconds × processors): `u/P` is the time to
    /// verify the application data distributed across `P` processors.
    pub u: f64,
}

impl VerificationCost {
    /// Builds a general verification cost, validating non-negativity.
    pub fn new(v: f64, u: f64) -> Result<Self, ModelError> {
        ensure_non_negative("verification.v", v)?;
        ensure_non_negative("verification.u", u)?;
        Ok(Self { v, u })
    }

    /// A constant verification cost `V_P = v` (scenarios 1, 3, 5).
    pub fn constant(v: f64) -> Self {
        Self { v, u: 0.0 }
    }

    /// A verification cost that decreases with `P`: `V_P = u/P` (scenarios 2, 4, 6).
    pub fn per_processor(u: f64) -> Self {
        Self { v: 0.0, u }
    }

    /// A verification that is free (used to model protocols that only face
    /// fail-stop errors, e.g. the classical Young/Daly setting).
    pub fn zero() -> Self {
        Self { v: 0.0, u: 0.0 }
    }

    /// Evaluates `V_P` for `p` processors.
    pub fn at(&self, p: f64) -> f64 {
        debug_assert!(p > 0.0);
        self.v + self.u / p
    }

    /// True when the verification is free for every `P`.
    pub fn is_zero(&self) -> bool {
        self.v == 0.0 && self.u == 0.0
    }
}

/// The complete set of resilience costs of the VC (verified-checkpoint) protocol:
/// checkpoint `C_P`, recovery `R_P = C_P`, verification `V_P` and the downtime `D`
/// paid after each fail-stop error.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResilienceCosts {
    /// Checkpoint cost model (also used for recoveries, `R_P = C_P`).
    pub checkpoint: CheckpointCost,
    /// Verification cost model.
    pub verification: VerificationCost,
    /// Downtime `D` (seconds) after a fail-stop error, while the failed processor
    /// is repaired or replaced. No error of any kind strikes during downtime.
    pub downtime: f64,
}

impl ResilienceCosts {
    /// Builds the resilience cost set, validating the downtime.
    pub fn new(
        checkpoint: CheckpointCost,
        verification: VerificationCost,
        downtime: f64,
    ) -> Result<Self, ModelError> {
        ensure_non_negative("downtime", downtime)?;
        Ok(Self {
            checkpoint,
            verification,
            downtime,
        })
    }

    /// Checkpoint cost `C_P` on `p` processors.
    pub fn checkpoint_at(&self, p: f64) -> f64 {
        self.checkpoint.at(p)
    }

    /// Recovery cost `R_P` on `p` processors. The paper assumes `R_P = C_P`
    /// because a recovery performs the same I/O as a checkpoint.
    pub fn recovery_at(&self, p: f64) -> f64 {
        self.checkpoint.at(p)
    }

    /// Verification cost `V_P` on `p` processors.
    pub fn verification_at(&self, p: f64) -> f64 {
        self.verification.at(p)
    }

    /// Combined `C_P + V_P`, the quantity that enters Theorem 1.
    pub fn checkpoint_plus_verification_at(&self, p: f64) -> f64 {
        self.checkpoint_at(p) + self.verification_at(p)
    }

    /// The constant part `d = a + v` of `C_P + V_P` (Theorem 3's coefficient).
    pub fn d(&self) -> f64 {
        self.checkpoint.a + self.verification.v
    }

    /// The decreasing part `h = b + u` of `C_P + V_P` (case-3 coefficient).
    pub fn h(&self) -> f64 {
        self.checkpoint.b + self.verification.u
    }

    /// The linear coefficient `c` of `C_P` (Theorem 2's coefficient).
    pub fn c(&self) -> f64 {
        self.checkpoint.c
    }

    /// Returns a copy with a different downtime, leaving the cost coefficients
    /// untouched (used by the downtime sweep of Figure 7).
    pub fn with_downtime(mut self, downtime: f64) -> Result<Self, ModelError> {
        ensure_non_negative("downtime", downtime)?;
        self.downtime = downtime;
        Ok(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn general_cost_evaluates_all_terms() {
        let c = CheckpointCost::new(10.0, 200.0, 0.5).unwrap();
        // 10 + 200/100 + 0.5*100 = 10 + 2 + 50
        assert!((c.at(100.0) - 62.0).abs() < 1e-12);
    }

    #[test]
    fn linear_cost_scales_with_p() {
        let c = CheckpointCost::linear(300.0 / 512.0);
        assert!((c.at(512.0) - 300.0).abs() < 1e-9);
        assert!((c.at(1024.0) - 600.0).abs() < 1e-9);
    }

    #[test]
    fn constant_cost_is_flat() {
        let c = CheckpointCost::constant(439.0);
        assert_eq!(c.at(1.0), 439.0);
        assert_eq!(c.at(1e6), 439.0);
    }

    #[test]
    fn per_processor_cost_decreases() {
        let c = CheckpointCost::per_processor(2500.0 * 2048.0);
        assert!((c.at(2048.0) - 2500.0).abs() < 1e-9);
        assert!(c.at(4096.0) < c.at(2048.0));
    }

    #[test]
    fn negative_coefficients_rejected() {
        assert!(CheckpointCost::new(-1.0, 0.0, 0.0).is_err());
        assert!(CheckpointCost::new(0.0, -1.0, 0.0).is_err());
        assert!(CheckpointCost::new(0.0, 0.0, -1.0).is_err());
        assert!(VerificationCost::new(-1.0, 0.0).is_err());
        assert!(VerificationCost::new(0.0, f64::NAN).is_err());
    }

    #[test]
    fn verification_forms() {
        let v = VerificationCost::constant(15.4);
        assert_eq!(v.at(512.0), 15.4);
        let v = VerificationCost::per_processor(15.4 * 512.0);
        assert!((v.at(512.0) - 15.4).abs() < 1e-9);
        assert!(VerificationCost::zero().is_zero());
    }

    #[test]
    fn recovery_equals_checkpoint() {
        let costs = ResilienceCosts::new(
            CheckpointCost::new(5.0, 100.0, 0.25).unwrap(),
            VerificationCost::constant(2.0),
            3600.0,
        )
        .unwrap();
        for p in [1.0, 32.0, 1000.0] {
            assert_eq!(costs.checkpoint_at(p), costs.recovery_at(p));
        }
    }

    #[test]
    fn aggregate_coefficients() {
        let costs = ResilienceCosts::new(
            CheckpointCost::new(5.0, 100.0, 0.25).unwrap(),
            VerificationCost::new(2.0, 30.0).unwrap(),
            0.0,
        )
        .unwrap();
        assert_eq!(costs.d(), 7.0);
        assert_eq!(costs.h(), 130.0);
        assert_eq!(costs.c(), 0.25);
        let p = 10.0;
        let sum = costs.checkpoint_plus_verification_at(p);
        assert!((sum - (5.0 + 10.0 + 2.5 + 2.0 + 3.0)).abs() < 1e-12);
    }

    #[test]
    fn with_downtime_replaces_only_downtime() {
        let costs = ResilienceCosts::new(
            CheckpointCost::constant(10.0),
            VerificationCost::constant(1.0),
            3600.0,
        )
        .unwrap();
        let other = costs.with_downtime(60.0).unwrap();
        assert_eq!(other.downtime, 60.0);
        assert_eq!(other.checkpoint, costs.checkpoint);
        assert!(costs.with_downtime(-1.0).is_err());
    }
}
