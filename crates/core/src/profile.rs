//! [`ProfileSpec`]: a serializable, parseable description of a speedup profile.
//!
//! Grids, caches, CSV files, HTTP requests and CLI flags all need to carry
//! "which speedup profile, with which parameter" as a first-class value rather
//! than a bare Amdahl `α`. `ProfileSpec` wraps a [`SpeedupProfile`] and gives
//! it a canonical short string form:
//!
//! | Profile | Spec string |
//! |---------|-------------|
//! | Amdahl, `α = 0.1` | `amdahl:0.1` |
//! | Perfectly parallel | `perfect` |
//! | Power law, `σ = 0.8` | `powerlaw:0.8` |
//! | Gustafson, `α = 0.05` | `gustafson:0.05` |
//!
//! Rendering uses Rust's shortest-roundtrip `f64` formatting, so
//! `ProfileSpec::parse(&spec.to_string())` reproduces the parameter
//! bit-identically — the property the sweep CSV columns and the `ayd-serve`
//! JSON round-trips rely on.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::error::ModelError;
use crate::speedup::SpeedupProfile;

/// A [`SpeedupProfile`] together with its canonical spec-string behaviour.
///
/// The wrapper is transparent: construct it from any profile with
/// [`From<SpeedupProfile>`], get the profile back with [`ProfileSpec::profile`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProfileSpec(SpeedupProfile);

impl ProfileSpec {
    /// Wraps a profile.
    pub fn new(profile: SpeedupProfile) -> Self {
        Self(profile)
    }

    /// The wrapped profile.
    pub fn profile(&self) -> SpeedupProfile {
        self.0
    }

    /// The profile family name: `amdahl`, `perfect`, `powerlaw` or `gustafson`.
    pub fn kind(&self) -> &'static str {
        match self.0 {
            SpeedupProfile::Amdahl { .. } => "amdahl",
            SpeedupProfile::PerfectlyParallel => "perfect",
            SpeedupProfile::PowerLaw { .. } => "powerlaw",
            SpeedupProfile::Gustafson { .. } => "gustafson",
        }
    }

    /// The profile's parameter (`α` or `σ`), `None` for the parameterless
    /// perfectly parallel profile.
    pub fn param(&self) -> Option<f64> {
        match self.0 {
            SpeedupProfile::Amdahl { alpha } => Some(alpha),
            SpeedupProfile::PerfectlyParallel => None,
            SpeedupProfile::PowerLaw { sigma } => Some(sigma),
            SpeedupProfile::Gustafson { alpha } => Some(alpha),
        }
    }

    /// The name of the profile's parameter (`alpha` or `sigma`), `None` for
    /// the perfectly parallel profile. Used by structured request/response
    /// schemas.
    pub fn param_name(&self) -> Option<&'static str> {
        match self.0 {
            SpeedupProfile::Amdahl { .. } | SpeedupProfile::Gustafson { .. } => Some("alpha"),
            SpeedupProfile::PerfectlyParallel => None,
            SpeedupProfile::PowerLaw { .. } => Some("sigma"),
        }
    }

    /// [`Self::param_name`] looked up by family name before a profile exists —
    /// the single source of the kind → parameter-key mapping for request
    /// validators. `None` for the parameterless `perfect` family *and* for
    /// unknown names (let [`Self::from_kind_param`] report those).
    pub fn param_name_for_kind(kind: &str) -> Option<&'static str> {
        match kind {
            "amdahl" | "gustafson" => Some("alpha"),
            "powerlaw" => Some("sigma"),
            _ => None,
        }
    }

    /// A small integer discriminating the profile family (0 = Amdahl,
    /// 1 = perfect, 2 = power law, 3 = Gustafson). Stable across releases:
    /// cache keys quantize over it.
    pub fn kind_tag(&self) -> u8 {
        match self.0 {
            SpeedupProfile::Amdahl { .. } => 0,
            SpeedupProfile::PerfectlyParallel => 1,
            SpeedupProfile::PowerLaw { .. } => 2,
            SpeedupProfile::Gustafson { .. } => 3,
        }
    }

    /// Builds a validated profile from a family name and an optional
    /// parameter (the shape of the `profile` JSON object in `ayd-serve`).
    pub fn from_kind_param(kind: &str, param: Option<f64>) -> Result<Self, ModelError> {
        let invalid = |message: String| ModelError::InvalidProfileSpec { message };
        let require = |name: &str| {
            param.ok_or_else(|| invalid(format!("profile kind '{kind}' requires a '{name}' value")))
        };
        let profile = match kind {
            "amdahl" => SpeedupProfile::amdahl(require("alpha")?)?,
            "perfect" => {
                if param.is_some() {
                    return Err(invalid("profile kind 'perfect' takes no parameter".into()));
                }
                SpeedupProfile::perfectly_parallel()
            }
            "powerlaw" => SpeedupProfile::power_law(require("sigma")?)?,
            "gustafson" => SpeedupProfile::gustafson(require("alpha")?)?,
            other => {
                return Err(invalid(format!(
                "unknown profile kind '{other}' (expected amdahl, perfect, powerlaw or gustafson)"
            )))
            }
        };
        Ok(Self(profile))
    }

    /// Parses a canonical spec string (`amdahl:0.1`, `perfect`,
    /// `powerlaw:0.8`, `gustafson:0.05`), validating the parameter.
    pub fn parse(spec: &str) -> Result<Self, ModelError> {
        let spec = spec.trim();
        let (kind, param) = match spec.split_once(':') {
            Some((kind, value)) => {
                let value = value
                    .parse::<f64>()
                    .map_err(|_| ModelError::InvalidProfileSpec {
                        message: format!("profile spec '{spec}': '{value}' is not a number"),
                    })?;
                (kind, Some(value))
            }
            None => (spec, None),
        };
        Self::from_kind_param(kind, param)
    }
}

impl fmt::Display for ProfileSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.param() {
            Some(param) => write!(f, "{}:{}", self.kind(), param),
            None => write!(f, "{}", self.kind()),
        }
    }
}

impl FromStr for ProfileSpec {
    type Err = ModelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Self::parse(s)
    }
}

impl From<SpeedupProfile> for ProfileSpec {
    fn from(profile: SpeedupProfile) -> Self {
        Self(profile)
    }
}

impl From<ProfileSpec> for SpeedupProfile {
    fn from(spec: ProfileSpec) -> Self {
        spec.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_strings_round_trip() {
        for spec in ["amdahl:0.1", "perfect", "powerlaw:0.8", "gustafson:0.05"] {
            let parsed = ProfileSpec::parse(spec).unwrap();
            assert_eq!(parsed.to_string(), spec);
            assert_eq!(ProfileSpec::parse(&parsed.to_string()).unwrap(), parsed);
        }
    }

    #[test]
    fn parameters_round_trip_bit_identically() {
        // Shortest-roundtrip f64 formatting: rendering then parsing reproduces
        // the exact bits even for awkward values.
        for value in [0.1, 0.30000000000000004, 1.0 / 3.0, 5e-324, 0.9999999999] {
            let spec = ProfileSpec::new(SpeedupProfile::Amdahl { alpha: value });
            let back = ProfileSpec::parse(&spec.to_string()).unwrap();
            assert_eq!(back.param().unwrap().to_bits(), value.to_bits());
        }
    }

    #[test]
    fn kinds_params_and_tags() {
        let amdahl = ProfileSpec::parse("amdahl:0.1").unwrap();
        assert_eq!(
            (amdahl.kind(), amdahl.param(), amdahl.kind_tag()),
            ("amdahl", Some(0.1), 0)
        );
        assert_eq!(amdahl.param_name(), Some("alpha"));
        let perfect = ProfileSpec::parse("perfect").unwrap();
        assert_eq!(
            (perfect.kind(), perfect.param(), perfect.kind_tag()),
            ("perfect", None, 1)
        );
        assert_eq!(perfect.param_name(), None);
        let power = ProfileSpec::parse("powerlaw:0.8").unwrap();
        assert_eq!(
            (power.kind(), power.param(), power.kind_tag()),
            ("powerlaw", Some(0.8), 2)
        );
        assert_eq!(power.param_name(), Some("sigma"));
        let gustafson = ProfileSpec::parse("gustafson:0.05").unwrap();
        assert_eq!(
            (gustafson.kind(), gustafson.param(), gustafson.kind_tag()),
            ("gustafson", Some(0.05), 3)
        );
    }

    #[test]
    fn param_name_for_kind_agrees_with_param_name() {
        for spec in ["amdahl:0.1", "perfect", "powerlaw:0.8", "gustafson:0.05"] {
            let parsed = ProfileSpec::parse(spec).unwrap();
            assert_eq!(
                ProfileSpec::param_name_for_kind(parsed.kind()),
                parsed.param_name(),
                "{spec}"
            );
        }
        assert_eq!(ProfileSpec::param_name_for_kind("bogus"), None);
    }

    #[test]
    fn profile_conversions_are_transparent() {
        let profile = SpeedupProfile::power_law(0.7).unwrap();
        let spec = ProfileSpec::from(profile);
        assert_eq!(spec.profile(), profile);
        assert_eq!(SpeedupProfile::from(spec), profile);
    }

    #[test]
    fn invalid_specs_are_rejected_with_context() {
        for bad in [
            "amdahl",         // missing parameter
            "amdahl:x",       // non-numeric parameter
            "amdahl:1.5",     // out of range
            "powerlaw:0",     // sigma must be positive
            "powerlaw:1.2",   // sigma must be ≤ 1
            "gustafson:-0.1", // alpha must be a fraction
            "perfect:1",      // parameterless profile with a parameter
            "bogus:0.5",      // unknown family
            "",               // empty
        ] {
            assert!(ProfileSpec::parse(bad).is_err(), "accepted: {bad:?}");
        }
        let err = ProfileSpec::parse("bogus:0.5").unwrap_err();
        assert!(err.to_string().contains("bogus"));
        let err = ProfileSpec::parse("amdahl").unwrap_err();
        assert!(err.to_string().contains("alpha"));
    }

    #[test]
    fn from_kind_param_mirrors_the_json_object_shape() {
        let spec = ProfileSpec::from_kind_param("powerlaw", Some(0.8)).unwrap();
        assert_eq!(spec.profile(), SpeedupProfile::power_law(0.8).unwrap());
        assert!(ProfileSpec::from_kind_param("powerlaw", None).is_err());
        assert!(ProfileSpec::from_kind_param("perfect", Some(1.0)).is_err());
        assert!(ProfileSpec::from_kind_param("perfect", None).is_ok());
    }
}
