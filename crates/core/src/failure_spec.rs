//! [`FailureModelSpec`]: a serializable, parseable description of a failure
//! inter-arrival law.
//!
//! The paper's closed forms assume Poisson failures — iid *exponential*
//! inter-arrival times, the one law under which memorylessness makes the
//! Proposition-1 analysis exact. Everything downstream (grids, caches, CSV
//! files, HTTP requests, CLI flags) needs "which failure law, with which
//! parameter" as a first-class value, exactly as [`crate::profile::ProfileSpec`]
//! does for speedup profiles:
//!
//! | Law | Spec string |
//! |-----|-------------|
//! | Exponential (Poisson failures) | `exp` |
//! | Weibull, shape `k = 0.7` | `weibull:0.7` |
//! | Shifted exponential, shift `d = 120` s | `shifted:120` |
//! | Trace replay of a recorded failure log | `trace:logs/failures.txt` |
//!
//! Each numeric law also accepts an **explicit rate** suffix (`exp:1.69e-8`,
//! `weibull:0.7,1.69e-8`, `shifted:120,1.69e-8`) that overrides the ambient
//! per-processor error rate `λ_ind`. Grid axes reject explicit rates (the
//! grid's lambda axis owns the rate there); single-query surfaces such as
//! `ayd-serve` accept them.
//!
//! Rendering uses Rust's shortest-roundtrip `f64` formatting, so
//! `FailureModelSpec::parse(&spec.to_string())` reproduces every parameter
//! bit-identically — the property the sweep CSV columns and the `ayd-serve`
//! JSON round-trips rely on.
//!
//! Two non-exponential parameterisations degenerate to the exponential law:
//! a Weibull with shape `k = 1` and a shifted exponential with shift `d = 0`.
//! [`FailureModelSpec::is_exponential`] reports this so that consumers can
//! dispatch those specs onto the *exact* exponential code paths, which is what
//! makes `weibull:1.0` sweeps bit-identical to `exp` sweeps.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::error::ModelError;

/// A failure inter-arrival law.
///
/// The law describes the *shape* of the inter-arrival distribution; the rate
/// (mean inter-arrival time) comes from the ambient failure model unless the
/// wrapping [`FailureModelSpec`] pins one explicitly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FailureLaw {
    /// Memoryless exponential inter-arrivals (Poisson failures) — the paper's
    /// model, and the only law under which the closed forms are exact.
    Exponential,
    /// Weibull inter-arrivals with shape `k`, mean-matched to the ambient
    /// rate. `k < 1` models infant mortality (decreasing hazard), `k > 1`
    /// wear-out (increasing hazard); `k = 1` degenerates to the exponential.
    Weibull {
        /// The Weibull shape parameter `k` (finite, strictly positive).
        shape: f64,
    },
    /// A fixed failure-free window of `shift` seconds followed by an
    /// exponential tail at the ambient rate; `shift = 0` degenerates to the
    /// exponential.
    Shifted {
        /// The shift `d` in seconds (finite, non-negative).
        shift: f64,
    },
    /// Replay of a recorded failure log: a text file of inter-arrival samples
    /// (one per line), normalised to unit mean at load time and scaled to the
    /// ambient rate by the simulator.
    Trace {
        /// Path of the trace file.
        path: String,
    },
}

/// A [`FailureLaw`] plus an optional explicit rate, with canonical
/// spec-string behaviour mirroring [`crate::profile::ProfileSpec`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureModelSpec {
    law: FailureLaw,
    lambda: Option<f64>,
}

impl FailureModelSpec {
    /// The default exponential law at the ambient rate — the paper's model.
    pub fn exponential() -> Self {
        Self {
            law: FailureLaw::Exponential,
            lambda: None,
        }
    }

    /// A validated Weibull law with shape `k` at the ambient rate.
    pub fn weibull(shape: f64) -> Result<Self, ModelError> {
        if !(shape.is_finite() && shape > 0.0) {
            return Err(invalid(format!(
                "weibull shape must be finite and strictly positive, got {shape}"
            )));
        }
        Ok(Self {
            law: FailureLaw::Weibull { shape },
            lambda: None,
        })
    }

    /// A validated shifted-exponential law with shift `d` seconds at the
    /// ambient rate.
    pub fn shifted(shift: f64) -> Result<Self, ModelError> {
        if !(shift.is_finite() && shift >= 0.0) {
            return Err(invalid(format!(
                "shifted-exponential shift must be finite and non-negative, got {shift}"
            )));
        }
        Ok(Self {
            law: FailureLaw::Shifted { shift },
            lambda: None,
        })
    }

    /// A trace-replay law reading inter-arrival samples from `path`.
    pub fn trace(path: &str) -> Result<Self, ModelError> {
        if path.is_empty() {
            return Err(invalid("trace spec requires a non-empty path".into()));
        }
        Ok(Self {
            law: FailureLaw::Trace {
                path: path.to_string(),
            },
            lambda: None,
        })
    }

    /// The same law with an explicit per-processor rate `λ_ind` overriding the
    /// ambient one. Trace specs carry no explicit rate (the replay is scaled
    /// to whatever rate the ambient model provides).
    pub fn with_lambda(self, lambda: f64) -> Result<Self, ModelError> {
        if matches!(self.law, FailureLaw::Trace { .. }) {
            return Err(invalid("trace specs take no explicit rate".into()));
        }
        if !(lambda.is_finite() && lambda > 0.0) {
            return Err(invalid(format!(
                "rate must be finite and strictly positive, got {lambda}"
            )));
        }
        Ok(Self {
            lambda: Some(lambda),
            ..self
        })
    }

    /// The same law with any explicit rate dropped: the ambient model's rate
    /// applies again. Used by consumers (grid axes, the serve layer) that
    /// take the rate from their own `λ` axis after honouring the spec's.
    pub fn without_lambda(self) -> Self {
        Self {
            lambda: None,
            ..self
        }
    }

    /// The wrapped law.
    pub fn law(&self) -> &FailureLaw {
        &self.law
    }

    /// The law family name: `exp`, `weibull`, `shifted` or `trace`.
    pub fn kind(&self) -> &'static str {
        match self.law {
            FailureLaw::Exponential => "exp",
            FailureLaw::Weibull { .. } => "weibull",
            FailureLaw::Shifted { .. } => "shifted",
            FailureLaw::Trace { .. } => "trace",
        }
    }

    /// The law's shape parameter (Weibull `k` or shift `d`), `None` for the
    /// parameterless exponential and trace laws.
    pub fn param(&self) -> Option<f64> {
        match self.law {
            FailureLaw::Exponential | FailureLaw::Trace { .. } => None,
            FailureLaw::Weibull { shape } => Some(shape),
            FailureLaw::Shifted { shift } => Some(shift),
        }
    }

    /// The name of the law's parameter (`shape` or `shift`), `None` for the
    /// exponential and trace laws. Used by structured request/response schemas.
    pub fn param_name(&self) -> Option<&'static str> {
        match self.law {
            FailureLaw::Exponential | FailureLaw::Trace { .. } => None,
            FailureLaw::Weibull { .. } => Some("shape"),
            FailureLaw::Shifted { .. } => Some("shift"),
        }
    }

    /// [`Self::param_name`] looked up by family name before a spec exists —
    /// the single source of the kind → parameter-key mapping for request
    /// validators. `None` for the parameterless families *and* for unknown
    /// names (let [`Self::from_kind_param`] report those).
    pub fn param_name_for_kind(kind: &str) -> Option<&'static str> {
        match kind {
            "weibull" => Some("shape"),
            "shifted" => Some("shift"),
            _ => None,
        }
    }

    /// A small integer discriminating the law family (0 = exponential,
    /// 1 = Weibull, 2 = shifted, 3 = trace). Stable across releases: cache
    /// keys quantize over it, which is what keeps `weibull:1.0` and `exp`
    /// cache entries separate even though their analytic values coincide.
    pub fn kind_tag(&self) -> u8 {
        match self.law {
            FailureLaw::Exponential => 0,
            FailureLaw::Weibull { .. } => 1,
            FailureLaw::Shifted { .. } => 2,
            FailureLaw::Trace { .. } => 3,
        }
    }

    /// The explicit rate override, if the spec pins one (`exp:LAMBDA`,
    /// `weibull:K,LAMBDA`, `shifted:D,LAMBDA`).
    pub fn lambda(&self) -> Option<f64> {
        self.lambda
    }

    /// The trace file path, for trace-replay specs.
    pub fn trace_path(&self) -> Option<&str> {
        match &self.law {
            FailureLaw::Trace { path } => Some(path),
            _ => None,
        }
    }

    /// Whether the law *is* the exponential law — including the degenerate
    /// parameterisations `weibull:1.0` (shape exactly 1) and `shifted:0`
    /// (shift exactly 0). Consumers dispatch such specs onto the exact
    /// exponential code paths, making their output bit-identical to `exp`.
    pub fn is_exponential(&self) -> bool {
        match self.law {
            FailureLaw::Exponential => true,
            FailureLaw::Weibull { shape } => shape == 1.0,
            FailureLaw::Shifted { shift } => shift == 0.0,
            FailureLaw::Trace { .. } => false,
        }
    }

    /// Builds a validated spec from a family name and an optional parameter
    /// (the shape of the `failure_model` JSON object in `ayd-serve`). The
    /// trace family needs a path, not a number — use [`Self::trace`] for it.
    pub fn from_kind_param(kind: &str, param: Option<f64>) -> Result<Self, ModelError> {
        let require = |name: &str| {
            param.ok_or_else(|| {
                invalid(format!(
                    "failure-model kind '{kind}' requires a '{name}' value"
                ))
            })
        };
        match kind {
            "exp" => {
                if param.is_some() {
                    return Err(invalid(
                        "failure-model kind 'exp' takes no shape parameter".into(),
                    ));
                }
                Ok(Self::exponential())
            }
            "weibull" => Self::weibull(require("shape")?),
            "shifted" => Self::shifted(require("shift")?),
            "trace" => Err(invalid(
                "failure-model kind 'trace' requires a 'path', not a numeric parameter".into(),
            )),
            other => Err(invalid(format!(
                "unknown failure-model kind '{other}' (expected exp, weibull, shifted or trace)"
            ))),
        }
    }

    /// Parses a canonical spec string: `exp`, `exp:LAMBDA`, `weibull:K`,
    /// `weibull:K,LAMBDA`, `shifted:D`, `shifted:D,LAMBDA` or `trace:PATH`,
    /// validating every parameter.
    pub fn parse(spec: &str) -> Result<Self, ModelError> {
        let spec = spec.trim();
        let (kind, rest) = match spec.split_once(':') {
            Some((kind, rest)) => (kind, Some(rest)),
            None => (spec, None),
        };
        if kind == "trace" {
            let path = rest.unwrap_or("");
            return Self::trace(path)
                .map_err(|_| invalid(format!("trace spec '{spec}' requires a non-empty path")));
        }
        let number = |value: &str| {
            value.parse::<f64>().map_err(|_| {
                invalid(format!(
                    "failure-model spec '{spec}': '{value}' is not a number"
                ))
            })
        };
        let base = match (kind, rest) {
            ("exp", _) => Self::exponential(),
            ("weibull", Some(rest)) => {
                let shape = rest.split_once(',').map_or(rest, |(first, _)| first);
                Self::weibull(number(shape)?)?
            }
            ("shifted", Some(rest)) => {
                let shift = rest.split_once(',').map_or(rest, |(first, _)| first);
                Self::shifted(number(shift)?)?
            }
            ("weibull" | "shifted", None) => {
                let name = Self::param_name_for_kind(kind).unwrap_or("parameter");
                return Err(invalid(format!(
                    "failure-model kind '{kind}' requires a '{name}' value"
                )));
            }
            (other, _) => {
                return Err(invalid(format!(
                    "unknown failure-model kind '{other}' (expected exp, weibull, shifted or trace)"
                )))
            }
        };
        // `exp:LAMBDA` puts the rate right after the colon; the two-parameter
        // families put it after a comma.
        let lambda = match (kind, rest) {
            ("exp", Some(rest)) => Some(number(rest)?),
            (_, Some(rest)) => match rest.split_once(',') {
                Some((_, lambda)) => Some(number(lambda)?),
                None => None,
            },
            (_, None) => None,
        };
        match lambda {
            Some(lambda) => base.with_lambda(lambda),
            None => Ok(base),
        }
    }
}

impl Default for FailureModelSpec {
    fn default() -> Self {
        Self::exponential()
    }
}

impl fmt::Display for FailureModelSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.law, self.lambda) {
            (FailureLaw::Exponential, None) => write!(f, "exp"),
            (FailureLaw::Exponential, Some(lambda)) => write!(f, "exp:{lambda}"),
            (FailureLaw::Trace { path }, _) => write!(f, "trace:{path}"),
            (_, None) => write!(f, "{}:{}", self.kind(), self.param().unwrap()),
            (_, Some(lambda)) => {
                write!(f, "{}:{},{lambda}", self.kind(), self.param().unwrap())
            }
        }
    }
}

impl FromStr for FailureModelSpec {
    type Err = ModelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Self::parse(s)
    }
}

fn invalid(message: String) -> ModelError {
    ModelError::InvalidFailureSpec { message }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_strings_round_trip() {
        for spec in [
            "exp",
            "exp:0.0000000169",
            "weibull:0.7",
            "weibull:0.7,0.0000000169",
            "shifted:120",
            "shifted:120,0.0000000169",
            "trace:logs/failures.txt",
        ] {
            let parsed = FailureModelSpec::parse(spec).unwrap();
            assert_eq!(parsed.to_string(), spec);
            assert_eq!(
                FailureModelSpec::parse(&parsed.to_string()).unwrap(),
                parsed
            );
        }
    }

    #[test]
    fn parameters_round_trip_bit_identically() {
        // Shortest-roundtrip f64 formatting: rendering then parsing reproduces
        // the exact bits even for awkward values.
        for value in [0.1, 0.30000000000000004, 1.0 / 3.0, 5e-324, 0.9999999999] {
            let spec = FailureModelSpec::weibull(value).unwrap();
            let back = FailureModelSpec::parse(&spec.to_string()).unwrap();
            assert_eq!(back.param().unwrap().to_bits(), value.to_bits());
            let spec = FailureModelSpec::shifted(value)
                .unwrap()
                .with_lambda(value)
                .unwrap();
            let back = FailureModelSpec::parse(&spec.to_string()).unwrap();
            assert_eq!(back.param().unwrap().to_bits(), value.to_bits());
            assert_eq!(back.lambda().unwrap().to_bits(), value.to_bits());
        }
    }

    #[test]
    fn kinds_params_and_tags() {
        let exp = FailureModelSpec::parse("exp").unwrap();
        assert_eq!((exp.kind(), exp.param(), exp.kind_tag()), ("exp", None, 0));
        assert_eq!(exp.param_name(), None);
        let weibull = FailureModelSpec::parse("weibull:0.7").unwrap();
        assert_eq!(
            (weibull.kind(), weibull.param(), weibull.kind_tag()),
            ("weibull", Some(0.7), 1)
        );
        assert_eq!(weibull.param_name(), Some("shape"));
        let shifted = FailureModelSpec::parse("shifted:120").unwrap();
        assert_eq!(
            (shifted.kind(), shifted.param(), shifted.kind_tag()),
            ("shifted", Some(120.0), 2)
        );
        assert_eq!(shifted.param_name(), Some("shift"));
        let trace = FailureModelSpec::parse("trace:a.txt").unwrap();
        assert_eq!(
            (trace.kind(), trace.param(), trace.kind_tag()),
            ("trace", None, 3)
        );
        assert_eq!(trace.trace_path(), Some("a.txt"));
    }

    #[test]
    fn param_name_for_kind_agrees_with_param_name() {
        for spec in ["exp", "weibull:0.7", "shifted:120", "trace:a.txt"] {
            let parsed = FailureModelSpec::parse(spec).unwrap();
            assert_eq!(
                FailureModelSpec::param_name_for_kind(parsed.kind()),
                parsed.param_name(),
                "{spec}"
            );
        }
        assert_eq!(FailureModelSpec::param_name_for_kind("bogus"), None);
    }

    #[test]
    fn degenerate_parameterisations_are_exponential() {
        assert!(FailureModelSpec::parse("exp").unwrap().is_exponential());
        assert!(FailureModelSpec::parse("weibull:1.0")
            .unwrap()
            .is_exponential());
        assert!(FailureModelSpec::parse("shifted:0")
            .unwrap()
            .is_exponential());
        assert!(!FailureModelSpec::parse("weibull:0.7")
            .unwrap()
            .is_exponential());
        assert!(!FailureModelSpec::parse("shifted:120")
            .unwrap()
            .is_exponential());
        assert!(!FailureModelSpec::parse("trace:a.txt")
            .unwrap()
            .is_exponential());
    }

    #[test]
    fn invalid_specs_are_rejected_with_context() {
        for bad in [
            "weibull",       // missing parameter
            "weibull:x",     // non-numeric parameter
            "weibull:0",     // shape must be positive
            "weibull:-1",    // shape must be positive
            "weibull:inf",   // shape must be finite
            "weibull:0.7,x", // non-numeric rate
            "weibull:0.7,0", // rate must be positive
            "shifted",       // missing parameter
            "shifted:-5",    // shift must be non-negative
            "exp:0",         // rate must be positive
            "exp:x",         // non-numeric rate
            "trace",         // missing path
            "trace:",        // empty path
            "bogus:0.5",     // unknown family
            "",              // empty
        ] {
            assert!(FailureModelSpec::parse(bad).is_err(), "accepted: {bad:?}");
        }
        let err = FailureModelSpec::parse("bogus:0.5").unwrap_err();
        assert!(err.to_string().contains("bogus"));
        let err = FailureModelSpec::parse("weibull").unwrap_err();
        assert!(err.to_string().contains("shape"));
    }

    #[test]
    fn from_kind_param_mirrors_the_json_object_shape() {
        let spec = FailureModelSpec::from_kind_param("weibull", Some(0.7)).unwrap();
        assert_eq!(spec, FailureModelSpec::weibull(0.7).unwrap());
        assert!(FailureModelSpec::from_kind_param("weibull", None).is_err());
        assert!(FailureModelSpec::from_kind_param("exp", Some(1.0)).is_err());
        assert!(FailureModelSpec::from_kind_param("exp", None).is_ok());
        assert!(FailureModelSpec::from_kind_param("trace", Some(1.0)).is_err());
        assert!(FailureModelSpec::from_kind_param("bogus", None).is_err());
    }

    #[test]
    fn explicit_rates_are_validated() {
        let spec = FailureModelSpec::parse("exp:0.0000000169").unwrap();
        assert_eq!(spec.lambda(), Some(1.69e-8));
        assert!(spec.is_exponential());
        assert!(FailureModelSpec::exponential()
            .with_lambda(f64::NAN)
            .is_err());
        assert!(FailureModelSpec::trace("a.txt")
            .unwrap()
            .with_lambda(1e-8)
            .is_err());
    }
}
