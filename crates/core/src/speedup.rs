//! Speedup profiles: Amdahl's law and extension profiles.
//!
//! The paper's headline analysis assumes Amdahl's law (Eq. (1)):
//!
//! ```text
//! S(P) = 1 / (α + (1 - α) / P)
//! ```
//!
//! where `α` is the inherently sequential fraction of the application. The
//! *execution overhead* without failures is `H(P) = 1 / S(P) = α + (1 - α)/P`,
//! i.e. the time per unit of sequential work when running on `P` processors.
//!
//! Case 4 of Section III.D considers the perfectly parallel profile `H(P) = 1/P`
//! (`α = 0`). As an extension (the paper's future-work direction on "jobs with
//! different speedup profiles"), this module also provides a power-law profile
//! `S(P) = P^σ` and a Gustafson-style weak-scaling profile; those are only
//! optimised numerically (see `ayd-optim`), never through the first-order formulas.

use serde::{Deserialize, Serialize};

use crate::error::{ensure_fraction, ensure_positive, ModelError};

/// A speedup profile `S(P)` mapping a processor count to the factor by which the
/// sequential execution time is divided in an error-free execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SpeedupProfile {
    /// Amdahl's law with sequential fraction `alpha`:
    /// `S(P) = 1 / (alpha + (1 - alpha)/P)`.
    Amdahl {
        /// Sequential fraction `α ∈ [0, 1]`.
        alpha: f64,
    },
    /// Perfectly parallel application: `S(P) = P` (`H(P) = 1/P`).
    PerfectlyParallel,
    /// Power-law (sub-linear) profile: `S(P) = P^sigma` with `0 < sigma ≤ 1`.
    ///
    /// Extension profile — not covered by the paper's closed-form theorems.
    PowerLaw {
        /// Scaling exponent `σ ∈ (0, 1]`.
        sigma: f64,
    },
    /// Gustafson-style weak-scaling profile: `S(P) = alpha + (1 - alpha) * P`.
    ///
    /// Extension profile — not covered by the paper's closed-form theorems.
    Gustafson {
        /// Sequential fraction `α ∈ [0, 1]` of the *scaled* workload.
        alpha: f64,
    },
}

impl SpeedupProfile {
    /// Builds an Amdahl profile, validating that `alpha ∈ [0, 1]`.
    ///
    /// `alpha = 0` degenerates into [`SpeedupProfile::PerfectlyParallel`] behaviour
    /// but is kept as an `Amdahl` variant so that sweeps over `α` (Figure 4) stay
    /// uniform.
    pub fn amdahl(alpha: f64) -> Result<Self, ModelError> {
        ensure_fraction("alpha", alpha)?;
        Ok(SpeedupProfile::Amdahl { alpha })
    }

    /// Builds a perfectly parallel profile (`S(P) = P`).
    pub fn perfectly_parallel() -> Self {
        SpeedupProfile::PerfectlyParallel
    }

    /// Builds a power-law profile `S(P) = P^sigma`, validating `0 < sigma ≤ 1`.
    pub fn power_law(sigma: f64) -> Result<Self, ModelError> {
        ensure_positive("sigma", sigma)?;
        ensure_fraction("sigma", sigma)?;
        Ok(SpeedupProfile::PowerLaw { sigma })
    }

    /// Builds a Gustafson weak-scaling profile, validating `alpha ∈ [0, 1]`.
    pub fn gustafson(alpha: f64) -> Result<Self, ModelError> {
        ensure_fraction("alpha", alpha)?;
        Ok(SpeedupProfile::Gustafson { alpha })
    }

    /// Re-validates the parameters of a profile built directly from its
    /// variant fields (e.g. deserialized, or carried unchecked through a
    /// builder), returning the same profile on success.
    pub fn validate(&self) -> Result<Self, ModelError> {
        match *self {
            SpeedupProfile::Amdahl { alpha } => Self::amdahl(alpha),
            SpeedupProfile::PerfectlyParallel => Ok(Self::perfectly_parallel()),
            SpeedupProfile::PowerLaw { sigma } => Self::power_law(sigma),
            SpeedupProfile::Gustafson { alpha } => Self::gustafson(alpha),
        }
    }

    /// The speedup `S(P)` for `p` processors. `p` is treated as a continuous
    /// quantity (the optimisation theorems do the same); callers that need an
    /// integral processor count round the optimum afterwards.
    pub fn speedup(&self, p: f64) -> f64 {
        debug_assert!(p > 0.0, "processor count must be positive");
        match *self {
            SpeedupProfile::Amdahl { alpha } => 1.0 / (alpha + (1.0 - alpha) / p),
            SpeedupProfile::PerfectlyParallel => p,
            SpeedupProfile::PowerLaw { sigma } => p.powf(sigma),
            SpeedupProfile::Gustafson { alpha } => alpha + (1.0 - alpha) * p,
        }
    }

    /// The error-free execution overhead `H(P) = 1 / S(P)`, i.e. the time needed
    /// per unit of sequential work when running on `p` processors.
    pub fn overhead(&self, p: f64) -> f64 {
        match *self {
            // Written out explicitly to avoid the (tiny) round-trip error of 1/S.
            SpeedupProfile::Amdahl { alpha } => alpha + (1.0 - alpha) / p,
            _ => 1.0 / self.speedup(p),
        }
    }

    /// The sequential fraction `α` if this is an Amdahl profile (or zero for a
    /// perfectly parallel profile), `None` otherwise.
    pub fn sequential_fraction(&self) -> Option<f64> {
        match *self {
            SpeedupProfile::Amdahl { alpha } => Some(alpha),
            SpeedupProfile::PerfectlyParallel => Some(0.0),
            _ => None,
        }
    }

    /// Upper bound of the speedup (`1/α` for Amdahl, unbounded otherwise).
    pub fn asymptotic_speedup(&self) -> f64 {
        match *self {
            SpeedupProfile::Amdahl { alpha } if alpha > 0.0 => 1.0 / alpha,
            _ => f64::INFINITY,
        }
    }

    /// True when the profile is Amdahl with a strictly positive sequential
    /// fraction — the prerequisite of Theorems 2 and 3.
    pub fn has_sequential_part(&self) -> bool {
        matches!(*self, SpeedupProfile::Amdahl { alpha } if alpha > 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amdahl_single_processor_has_unit_speedup() {
        let s = SpeedupProfile::amdahl(0.3).unwrap();
        assert!((s.speedup(1.0) - 1.0).abs() < 1e-12);
        assert!((s.overhead(1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn amdahl_speedup_is_bounded_by_inverse_alpha() {
        let s = SpeedupProfile::amdahl(0.1).unwrap();
        assert!(s.speedup(1e12) < 10.0);
        assert!((s.asymptotic_speedup() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn amdahl_speedup_is_increasing_in_p() {
        let s = SpeedupProfile::amdahl(0.05).unwrap();
        let mut prev = 0.0;
        for p in [1.0, 2.0, 8.0, 64.0, 1024.0, 1e6] {
            let cur = s.speedup(p);
            assert!(cur > prev, "speedup must increase with P");
            prev = cur;
        }
    }

    #[test]
    fn amdahl_zero_alpha_matches_perfectly_parallel() {
        let a = SpeedupProfile::amdahl(0.0).unwrap();
        let p = SpeedupProfile::perfectly_parallel();
        for procs in [1.0, 10.0, 1e4] {
            assert!((a.speedup(procs) - p.speedup(procs)).abs() < 1e-9);
        }
    }

    #[test]
    fn amdahl_one_alpha_never_speeds_up() {
        let s = SpeedupProfile::amdahl(1.0).unwrap();
        assert!((s.speedup(1e6) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn overhead_is_reciprocal_of_speedup() {
        for profile in [
            SpeedupProfile::amdahl(0.2).unwrap(),
            SpeedupProfile::perfectly_parallel(),
            SpeedupProfile::power_law(0.8).unwrap(),
            SpeedupProfile::gustafson(0.2).unwrap(),
        ] {
            for p in [1.0, 7.0, 512.0] {
                let prod = profile.speedup(p) * profile.overhead(p);
                assert!((prod - 1.0).abs() < 1e-12, "{profile:?} at P={p}");
            }
        }
    }

    #[test]
    fn paper_example_hera_alpha() {
        // With α = 0.1 (paper's default) and P = 512: H(P) = 0.1 + 0.9/512.
        let s = SpeedupProfile::amdahl(0.1).unwrap();
        let expected = 0.1 + 0.9 / 512.0;
        assert!((s.overhead(512.0) - expected).abs() < 1e-15);
    }

    #[test]
    fn invalid_alpha_rejected() {
        assert!(SpeedupProfile::amdahl(-0.1).is_err());
        assert!(SpeedupProfile::amdahl(1.1).is_err());
        assert!(SpeedupProfile::amdahl(f64::NAN).is_err());
    }

    #[test]
    fn power_law_validation() {
        assert!(SpeedupProfile::power_law(0.0).is_err());
        assert!(SpeedupProfile::power_law(1.2).is_err());
        let s = SpeedupProfile::power_law(1.0).unwrap();
        assert!((s.speedup(64.0) - 64.0).abs() < 1e-9);
    }

    #[test]
    fn gustafson_scales_linearly() {
        let s = SpeedupProfile::gustafson(0.25).unwrap();
        assert!((s.speedup(100.0) - (0.25 + 0.75 * 100.0)).abs() < 1e-12);
    }

    #[test]
    fn sequential_fraction_accessor() {
        assert_eq!(
            SpeedupProfile::amdahl(0.1).unwrap().sequential_fraction(),
            Some(0.1)
        );
        assert_eq!(
            SpeedupProfile::perfectly_parallel().sequential_fraction(),
            Some(0.0)
        );
        assert_eq!(
            SpeedupProfile::power_law(0.5)
                .unwrap()
                .sequential_fraction(),
            None
        );
    }

    #[test]
    fn has_sequential_part_only_for_positive_alpha() {
        assert!(SpeedupProfile::amdahl(0.1).unwrap().has_sequential_part());
        assert!(!SpeedupProfile::amdahl(0.0).unwrap().has_sequential_part());
        assert!(!SpeedupProfile::perfectly_parallel().has_sequential_part());
    }
}
