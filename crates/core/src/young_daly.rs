//! Classical Young/Daly baselines (fail-stop errors only, no verification).
//!
//! The paper extends the Young/Daly first-order formula to two error sources and a
//! verification cost. This module provides the classical baselines so the
//! experiments (and downstream users) can compare the generalised period of
//! Theorem 1 against them:
//!
//! * **Young (1974)** / first-order: `T* = sqrt(2 C / λ)` where `λ` is the
//!   platform fail-stop rate and `C` the checkpoint cost.
//! * **Daly (2006)** / higher-order: `T* = sqrt(2 C (µ + D + R)) - C`, clamped to
//!   the platform MTBF when the checkpoint cost is large; we implement the
//!   commonly used variant `sqrt(2 C µ) · [1 + sqrt(C/(2µ))/3 + C/(18µ)] - C` as
//!   well as the simple form.

/// Young's first-order optimal checkpointing period `sqrt(2 C / λ)` for a
/// platform fail-stop error rate `lambda` (errors/second) and checkpoint cost
/// `checkpoint_cost` (seconds).
///
/// # Panics
/// Panics if `lambda` or `checkpoint_cost` is not strictly positive.
pub fn young_daly_period(checkpoint_cost: f64, lambda: f64) -> f64 {
    assert!(checkpoint_cost > 0.0, "checkpoint cost must be positive");
    assert!(lambda > 0.0, "failure rate must be positive");
    (2.0 * checkpoint_cost / lambda).sqrt()
}

/// Daly's higher-order optimal checkpointing period. Uses the series refinement
/// `sqrt(2 C µ) [1 + (1/3) sqrt(C/(2µ)) + (1/18)(C/(2µ))] - C` when `C < 2µ`, and
/// falls back to the platform MTBF `µ` otherwise (Daly 2006, Eq. (20)).
///
/// # Panics
/// Panics if `checkpoint_cost` or `platform_mtbf` is not strictly positive.
pub fn daly_period(checkpoint_cost: f64, platform_mtbf: f64) -> f64 {
    assert!(checkpoint_cost > 0.0, "checkpoint cost must be positive");
    assert!(platform_mtbf > 0.0, "platform MTBF must be positive");
    let c = checkpoint_cost;
    let mu = platform_mtbf;
    if c < 2.0 * mu {
        let ratio = c / (2.0 * mu);
        (2.0 * c * mu).sqrt() * (1.0 + ratio.sqrt() / 3.0 + ratio / 18.0) - c
    } else {
        mu
    }
}

/// First-order expected waste (fraction of time not spent on useful work) of a
/// periodic checkpointing protocol with period `t`, checkpoint cost `c` and
/// platform fail-stop rate `lambda`: `c/t + λ t / 2` (lower-order terms dropped).
pub fn first_order_waste(t: f64, checkpoint_cost: f64, lambda: f64) -> f64 {
    assert!(t > 0.0);
    checkpoint_cost / t + lambda * t / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn young_daly_textbook_value() {
        // C = 300 s, platform MTBF = 1 day → λ = 1/86400.
        let t = young_daly_period(300.0, 1.0 / 86_400.0);
        assert!((t - (2.0 * 300.0 * 86_400.0f64).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn young_daly_minimises_first_order_waste() {
        let (c, lambda) = (300.0, 1e-5);
        let t = young_daly_period(c, lambda);
        let w = first_order_waste(t, c, lambda);
        assert!(first_order_waste(t * 1.1, c, lambda) > w);
        assert!(first_order_waste(t * 0.9, c, lambda) > w);
    }

    #[test]
    fn daly_refines_young_for_small_checkpoint_cost() {
        let c = 60.0;
        let mu = 86_400.0;
        let young = young_daly_period(c, 1.0 / mu);
        let daly = daly_period(c, mu);
        // Daly's refinement is close to Young's value but not identical.
        assert!((daly - young).abs() / young < 0.05);
        assert!(daly != young);
    }

    #[test]
    fn daly_clamps_to_mtbf_for_huge_checkpoint_cost() {
        assert_eq!(daly_period(1e6, 100.0), 100.0);
    }

    #[test]
    fn period_scales_as_inverse_sqrt_lambda() {
        let t1 = young_daly_period(300.0, 1e-6);
        let t2 = young_daly_period(300.0, 1e-6 / 4.0);
        assert!((t2 / t1 - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn rejects_non_positive_cost() {
        let _ = young_daly_period(0.0, 1e-6);
    }

    #[test]
    #[should_panic]
    fn rejects_non_positive_rate() {
        let _ = young_daly_period(100.0, 0.0);
    }
}

/// Cross-checks of the closed forms against the generic numerical minimisers of
/// `ayd-optim`, applied to the *exact* pattern model (Proposition 1) in the
/// classical fail-stop-only regime the Young/Daly formulas target.
#[cfg(test)]
mod cross_check_tests {
    use super::*;
    use crate::cost::{CheckpointCost, ResilienceCosts, VerificationCost};
    use crate::failure::FailureModel;
    use crate::pattern::ExactModel;
    use crate::speedup::SpeedupProfile;
    use ayd_optim::{golden_section, minimize_scalar, OptimizeOptions};

    /// Fail-stop-only model (`f = 1`, free verification) with checkpoint cost
    /// `c` seconds, individual rate `lambda_ind` and no downtime.
    fn fail_stop_model(c: f64, lambda_ind: f64) -> ExactModel {
        ExactModel::new(
            SpeedupProfile::amdahl(0.1).unwrap(),
            ResilienceCosts::new(CheckpointCost::constant(c), VerificationCost::zero(), 0.0)
                .unwrap(),
            FailureModel::new(lambda_ind, 1.0).unwrap(),
        )
    }

    #[test]
    fn young_daly_period_agrees_with_brent_on_the_exact_model() {
        // Young's first-order period vs the true minimiser of the exact expected
        // overhead: they agree to a few percent as long as lambda * C is small.
        let (c, lambda_ind, p) = (300.0, 1e-8, 1_000.0);
        let model = fail_stop_model(c, lambda_ind);
        let lambda = model.failures.fail_stop_rate(p);
        let closed_form = young_daly_period(c, lambda);
        let numerical = minimize_scalar(10.0, 1e8, OptimizeOptions::default(), |t| {
            model.expected_overhead(t, p)
        })
        .argument;
        let rel = (closed_form - numerical).abs() / numerical;
        assert!(
            rel < 0.05,
            "closed form {closed_form} vs brent {numerical} (rel {rel})"
        );
        // The overhead penalty of using the first-order period is far smaller
        // than the period discrepancy itself (the optimum is flat).
        let penalty =
            model.expected_overhead(closed_form, p) / model.expected_overhead(numerical, p);
        assert!(penalty < 1.001, "penalty {penalty}");
    }

    #[test]
    fn young_daly_period_agrees_with_golden_section_on_the_first_order_waste() {
        // On the first-order waste c/t + lambda t / 2 the agreement is exact up
        // to the optimiser tolerance, for any (c, lambda).
        for (c, lambda) in [(60.0, 1e-6), (300.0, 1e-5), (2_500.0, 3e-7)] {
            let closed_form = young_daly_period(c, lambda);
            let (numerical, _) =
                golden_section(1.0, 1e9, 1e-13, 600, |t| first_order_waste(t, c, lambda));
            let rel = (closed_form - numerical).abs() / numerical;
            assert!(
                rel < 1e-4,
                "c={c} lambda={lambda}: {closed_form} vs {numerical}"
            );
        }
    }

    #[test]
    fn daly_refinement_is_closer_to_the_exact_optimum_than_young() {
        // In a regime where lambda * C is no longer negligible, Daly's
        // higher-order period lands closer to the exact-model optimum than
        // Young's first-order one.
        let (c, lambda_ind, p) = (1_000.0, 1e-7, 1_000.0);
        let model = fail_stop_model(c, lambda_ind);
        let lambda = model.failures.fail_stop_rate(p);
        let young = young_daly_period(c, lambda);
        let daly = daly_period(c, 1.0 / lambda);
        let numerical = minimize_scalar(10.0, 1e8, OptimizeOptions::default(), |t| {
            model.expected_overhead(t, p)
        })
        .argument;
        assert!(
            (daly - numerical).abs() < (young - numerical).abs(),
            "daly {daly} young {young} exact {numerical}"
        );
    }
}
