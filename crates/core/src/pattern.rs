//! Exact expected execution time of a periodic checkpointing pattern.
//!
//! A pattern `PATTERN(T, P)` is a chunk of `T` seconds of useful computation on
//! `P` processors, followed by a verification `V_P` and a checkpoint `C_P`
//! (the *VC protocol*). Fail-stop errors can strike at any time except during the
//! downtime `D`; silent errors strike only the computation and are detected by the
//! verification at the end of the pattern. After a fail-stop error the platform
//! pays a downtime `D` and a recovery `R_P`; after a detected silent error it pays
//! only a recovery.
//!
//! [`ExactModel`] implements Proposition 1 of the paper in two independent ways:
//!
//! 1. **Component recurrences** — solving the expectations `E(R_P)`, `E(T + V_P)`
//!    and `E(C_P)` exactly as in the proof (this is the primary, numerically robust
//!    path, written with `exp_m1` so it remains accurate when `λ · x` is tiny).
//! 2. **Closed form** — Eq. (2) of the paper, transcribed verbatim.
//!
//! The two paths agree to machine precision (see the module tests and the
//! property tests in `tests/`), which guards against transcription errors.
//!
//! Note: the intermediate expression for `E(T + V_P)` printed in the paper's proof
//! contains a spurious `e^{λ_s(T+V)}(T+V)` term; re-deriving the recurrence shows
//! that the term cancels and the final Eq. (2) is unaffected. See DESIGN.md.

use serde::{Deserialize, Serialize};

use crate::cost::ResilienceCosts;
use crate::failure::FailureModel;
use crate::speedup::SpeedupProfile;

/// The exact analytical model of the VC protocol for a given application speedup
/// profile, resilience cost set and failure model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExactModel {
    /// Application speedup profile `S(P)`.
    pub speedup: SpeedupProfile,
    /// Resilience costs (`C_P`, `R_P`, `V_P`, `D`).
    pub costs: ResilienceCosts,
    /// Failure model (`λ_ind`, fail-stop fraction `f`).
    pub failures: FailureModel,
}

/// Breakdown of the expected execution time of a pattern into its three
/// components, as in the proof of Proposition 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PatternBreakdown {
    /// Expected time to successfully execute the work chunk and the verification,
    /// `E(T + V_P)`.
    pub work_and_verification: f64,
    /// Expected time to successfully store the checkpoint, `E(C_P)`.
    pub checkpoint: f64,
    /// Expected time of a single successful recovery, `E(R_P)` (not part of the
    /// pattern total; recoveries are already accounted for inside the other two
    /// components, but the value is useful for diagnostics).
    pub recovery: f64,
}

impl PatternBreakdown {
    /// Total expected pattern time `E(PATTERN) = E(T + V_P) + E(C_P)`.
    pub fn total(&self) -> f64 {
        self.work_and_verification + self.checkpoint
    }
}

impl ExactModel {
    /// Builds the exact model from its three ingredients.
    pub fn new(speedup: SpeedupProfile, costs: ResilienceCosts, failures: FailureModel) -> Self {
        Self {
            speedup,
            costs,
            failures,
        }
    }

    /// `(1/λ_f + D) · (exp(λ_f · x) - 1)`, computed so that the `λ_f → 0` limit
    /// (`= x`) is exact and small arguments do not lose precision.
    fn a_expm1(&self, lambda_f: f64, x: f64) -> f64 {
        if lambda_f == 0.0 {
            x
        } else {
            (1.0 / lambda_f + self.costs.downtime) * (lambda_f * x).exp_m1()
        }
    }

    /// Expected time to perform one successful recovery, `E(R_P)`, accounting for
    /// fail-stop errors striking during the recovery itself:
    /// `E(R_P) = (1/λ_f + D)(exp(λ_f R_P) - 1)`.
    pub fn expected_recovery_time(&self, p: f64) -> f64 {
        let lambda_f = self.failures.fail_stop_rate(p);
        let r = self.costs.recovery_at(p);
        self.a_expm1(lambda_f, r)
    }

    /// Expected time to successfully execute the work chunk and the verification,
    /// `E(T + V_P)`, accounting for fail-stop errors (anywhere in `T + V_P`) and
    /// silent errors (in `T` only, detected by the verification):
    ///
    /// ```text
    /// E(T+V) = e^{λ_s T} (e^{λ_f (T+V)} - 1)(1/λ_f + D)
    ///        + (e^{λ_f (T+V) + λ_s T} - 1) E(R)
    /// ```
    pub fn expected_work_and_verification_time(&self, t: f64, p: f64) -> f64 {
        let lambda_f = self.failures.fail_stop_rate(p);
        let lambda_s = self.failures.silent_rate(p);
        let v = self.costs.verification_at(p);
        let w = t + v;
        let e_r = self.expected_recovery_time(p);
        let silent_factor = (lambda_s * t).exp();
        silent_factor * self.a_expm1(lambda_f, w) + (lambda_f * w + lambda_s * t).exp_m1() * e_r
    }

    /// Expected time to successfully store the checkpoint, `E(C_P)`. If a
    /// fail-stop error strikes during the checkpoint the pattern rolls back and
    /// must re-execute the recovery, the work chunk, the verification and the
    /// checkpoint:
    /// `E(C_P) = (e^{λ_f C_P} - 1)(1/λ_f + D + E(R_P) + E(T + V_P))`.
    pub fn expected_checkpoint_time(&self, t: f64, p: f64) -> f64 {
        let lambda_f = self.failures.fail_stop_rate(p);
        let c = self.costs.checkpoint_at(p);
        if lambda_f == 0.0 {
            return c;
        }
        let e_r = self.expected_recovery_time(p);
        let e_wv = self.expected_work_and_verification_time(t, p);
        (lambda_f * c).exp_m1() * (1.0 / lambda_f + self.costs.downtime + e_r + e_wv)
    }

    /// Expected execution time of the pattern, `E(PATTERN) = E(T+V_P) + E(C_P)`,
    /// computed through the component recurrences (the numerically robust path).
    pub fn expected_pattern_time(&self, t: f64, p: f64) -> f64 {
        debug_assert!(t > 0.0 && p > 0.0);
        self.expected_work_and_verification_time(t, p) + self.expected_checkpoint_time(t, p)
    }

    /// Full component breakdown of the expected pattern time.
    pub fn pattern_breakdown(&self, t: f64, p: f64) -> PatternBreakdown {
        PatternBreakdown {
            work_and_verification: self.expected_work_and_verification_time(t, p),
            checkpoint: self.expected_checkpoint_time(t, p),
            recovery: self.expected_recovery_time(p),
        }
    }

    /// Expected execution time of the pattern computed with the closed form of
    /// Eq. (2) in the paper:
    ///
    /// ```text
    /// E = (1/λ_f + D) ( e^{λ_f C}(1 - e^{λ_s T})
    ///                 + e^{λ_f R}(e^{λ_f (C+T+V) + λ_s T} - 1) )
    /// ```
    ///
    /// This form requires a strictly positive fail-stop rate (`f > 0`); it exists
    /// for cross-validation against [`ExactModel::expected_pattern_time`] and is
    /// not used by the optimisers.
    pub fn expected_pattern_time_closed_form(&self, t: f64, p: f64) -> f64 {
        let lambda_f = self.failures.fail_stop_rate(p);
        assert!(
            lambda_f > 0.0,
            "the closed form of Eq. (2) requires a positive fail-stop rate; \
             use expected_pattern_time() which handles the f = 0 limit"
        );
        let lambda_s = self.failures.silent_rate(p);
        let c = self.costs.checkpoint_at(p);
        let r = self.costs.recovery_at(p);
        let v = self.costs.verification_at(p);
        let a = 1.0 / lambda_f + self.costs.downtime;
        let term1 = (lambda_f * c).exp() * (1.0 - (lambda_s * t).exp());
        let term2 = (lambda_f * r).exp() * ((lambda_f * (c + t + v) + lambda_s * t).exp() - 1.0);
        a * (term1 + term2)
    }

    /// Expected speedup of the pattern,
    /// `S(PATTERN) = T · S(P) / E(PATTERN)`: useful work per unit of expected
    /// wall-clock time, in units of sequential work.
    pub fn expected_speedup(&self, t: f64, p: f64) -> f64 {
        t * self.speedup.speedup(p) / self.expected_pattern_time(t, p)
    }

    /// Expected execution overhead of the pattern,
    /// `H(PATTERN) = 1 / S(PATTERN) = E(PATTERN) · H(P) / T`: expected wall-clock
    /// seconds per second of sequential work. This is the quantity the paper
    /// minimises and plots in every figure.
    pub fn expected_overhead(&self, t: f64, p: f64) -> f64 {
        self.expected_pattern_time(t, p) * self.speedup.overhead(p) / t
    }

    /// Error-free overhead of the pattern (the same work, verification and
    /// checkpoint but no errors): `(T + V_P + C_P) · H(P) / T`. Useful as a lower
    /// bound sanity check.
    pub fn error_free_overhead(&self, t: f64, p: f64) -> f64 {
        (t + self.costs.verification_at(p) + self.costs.checkpoint_at(p)) * self.speedup.overhead(p)
            / t
    }

    /// Returns a copy of the model with a different failure model (used by the
    /// `λ_ind` sweeps).
    pub fn with_failures(mut self, failures: FailureModel) -> Self {
        self.failures = failures;
        self
    }

    /// Returns a copy of the model with a different speedup profile (used by the
    /// `α` sweeps).
    pub fn with_speedup(mut self, speedup: SpeedupProfile) -> Self {
        self.speedup = speedup;
        self
    }

    /// Returns a copy of the model with different resilience costs (used by the
    /// downtime sweep).
    pub fn with_costs(mut self, costs: ResilienceCosts) -> Self {
        self.costs = costs;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{CheckpointCost, VerificationCost};

    /// Hera-like model under scenario 1 (C_P = cP, V_P = v).
    fn hera_scenario1() -> ExactModel {
        let failures = FailureModel::new(1.69e-8, 0.2188).unwrap();
        let costs = ResilienceCosts::new(
            CheckpointCost::linear(300.0 / 512.0),
            VerificationCost::constant(15.4),
            3600.0,
        )
        .unwrap();
        ExactModel::new(SpeedupProfile::amdahl(0.1).unwrap(), costs, failures)
    }

    #[test]
    fn components_and_closed_form_agree() {
        let m = hera_scenario1();
        for t in [100.0, 1_000.0, 10_000.0, 100_000.0] {
            for p in [1.0, 64.0, 512.0, 4096.0] {
                let a = m.expected_pattern_time(t, p);
                let b = m.expected_pattern_time_closed_form(t, p);
                let rel = (a - b).abs() / b.abs();
                assert!(rel < 1e-9, "t={t} p={p}: components={a} closed={b}");
            }
        }
    }

    #[test]
    fn error_free_limit_recovers_raw_costs() {
        // With a vanishing error rate the expected time tends to T + V + C.
        let m = hera_scenario1();
        let m = m.with_failures(FailureModel::new(1e-30, 0.2188).unwrap());
        let (t, p) = (5_000.0, 512.0);
        let expect = t + m.costs.verification_at(p) + m.costs.checkpoint_at(p);
        let got = m.expected_pattern_time(t, p);
        assert!(
            (got - expect).abs() / expect < 1e-9,
            "got={got} expect={expect}"
        );
    }

    #[test]
    fn expected_time_exceeds_error_free_time() {
        let m = hera_scenario1();
        for t in [500.0, 5_000.0, 50_000.0] {
            for p in [16.0, 512.0, 8192.0] {
                let floor = t + m.costs.verification_at(p) + m.costs.checkpoint_at(p);
                assert!(m.expected_pattern_time(t, p) > floor);
            }
        }
    }

    #[test]
    fn expected_time_increases_with_error_rate() {
        let base = hera_scenario1();
        let worse = base.with_failures(FailureModel::new(1.69e-7, 0.2188).unwrap());
        let (t, p) = (5_000.0, 512.0);
        assert!(worse.expected_pattern_time(t, p) > base.expected_pattern_time(t, p));
    }

    #[test]
    fn expected_time_increases_with_downtime() {
        let base = hera_scenario1();
        let longer = base.with_costs(base.costs.with_downtime(7200.0).unwrap());
        let (t, p) = (5_000.0, 512.0);
        assert!(longer.expected_pattern_time(t, p) > base.expected_pattern_time(t, p));
    }

    #[test]
    fn pure_silent_errors_handled_without_closed_form() {
        // f = 0 → no fail-stop errors; E = e^{λs T}(T + V) + (e^{λs T} - 1) R + C.
        let failures = FailureModel::new(1e-6, 0.0).unwrap();
        let costs = ResilienceCosts::new(
            CheckpointCost::constant(100.0),
            VerificationCost::constant(10.0),
            3600.0,
        )
        .unwrap();
        let m = ExactModel::new(SpeedupProfile::amdahl(0.1).unwrap(), costs, failures);
        let (t, p) = (10_000.0, 100.0);
        let lambda_s = failures.silent_rate(p);
        let expected =
            (lambda_s * t).exp() * (t + 10.0) + ((lambda_s * t).exp() - 1.0) * 100.0 + 100.0;
        let got = m.expected_pattern_time(t, p);
        assert!(
            (got - expected).abs() / expected < 1e-12,
            "got={got} expected={expected}"
        );
    }

    #[test]
    fn pure_fail_stop_errors_match_textbook_recurrence() {
        // s = 0 → classical checkpoint/restart; verify against a direct evaluation
        // of the known formula E = (1/λ + D)(e^{λ R} - 1)(e^{λ(T+V+C)})
        //                         + (1/λ + D)(e^{λ(T+V+C)} - 1)   [derived]
        // Easier: compare component path against closed form, which is already a
        // different derivation.
        let failures = FailureModel::new(1e-7, 1.0).unwrap();
        let costs = ResilienceCosts::new(
            CheckpointCost::constant(300.0),
            VerificationCost::zero(),
            1800.0,
        )
        .unwrap();
        let m = ExactModel::new(SpeedupProfile::amdahl(0.05).unwrap(), costs, failures);
        let (t, p) = (20_000.0, 256.0);
        let a = m.expected_pattern_time(t, p);
        let b = m.expected_pattern_time_closed_form(t, p);
        assert!((a - b).abs() / b < 1e-10);
    }

    #[test]
    fn breakdown_sums_to_total() {
        let m = hera_scenario1();
        let (t, p) = (3_000.0, 512.0);
        let bd = m.pattern_breakdown(t, p);
        assert!((bd.total() - m.expected_pattern_time(t, p)).abs() < 1e-9);
        assert!(bd.work_and_verification > t);
        assert!(bd.checkpoint > 0.0);
        assert!(bd.recovery > m.costs.recovery_at(p));
    }

    #[test]
    fn overhead_matches_definition() {
        let m = hera_scenario1();
        let (t, p) = (4_000.0, 512.0);
        let e = m.expected_pattern_time(t, p);
        let h = m.expected_overhead(t, p);
        let s = m.expected_speedup(t, p);
        assert!((h - e * m.speedup.overhead(p) / t).abs() < 1e-12);
        assert!(
            (h * s - 1.0).abs() < 1e-12,
            "overhead is the reciprocal of speedup"
        );
    }

    #[test]
    fn overhead_near_alpha_for_reasonable_operating_point() {
        // At a sensible (T, P) for Hera/scenario-1 the overhead should be a little
        // above α = 0.1 (the paper reports ≈ 0.11 at the optimum).
        let m = hera_scenario1();
        let h = m.expected_overhead(6_000.0, 350.0);
        assert!(h > 0.1 && h < 0.2, "h={h}");
    }

    #[test]
    fn error_free_overhead_is_a_lower_bound() {
        let m = hera_scenario1();
        for t in [1_000.0, 10_000.0] {
            for p in [64.0, 512.0] {
                assert!(m.expected_overhead(t, p) > m.error_free_overhead(t, p));
            }
        }
    }

    #[test]
    #[should_panic(expected = "closed form")]
    fn closed_form_panics_without_fail_stop_errors() {
        let failures = FailureModel::new(1e-6, 0.0).unwrap();
        let costs = ResilienceCosts::new(
            CheckpointCost::constant(100.0),
            VerificationCost::constant(10.0),
            0.0,
        )
        .unwrap();
        let m = ExactModel::new(SpeedupProfile::amdahl(0.1).unwrap(), costs, failures);
        let _ = m.expected_pattern_time_closed_form(1000.0, 10.0);
    }
}
