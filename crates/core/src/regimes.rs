//! Validity region of the first-order approximation and asymptotic-order fitting.
//!
//! Section III.B of the paper bounds the orders of `P` and `T` (as powers of
//! `λ_ind`) for which the Taylor expansions behind the first-order results are
//! legitimate. Writing `P = Θ(λ_ind^{-x})` and `T = Θ(λ_ind^{-y})`:
//!
//! ```text
//! x < δ,   with δ = 1/2 if c ≠ 0 and δ = 1 otherwise        (Ineq. (5))
//! y < 1 - x                                                 (Ineq. (6))
//! ```
//!
//! (plus `x < 1/2` in the fully decreasing-cost case `c = d = 0` so that `y > 0`).
//!
//! This module also provides a small least-squares power-law fitter used by the
//! experiments to verify the asymptotic slopes of Figures 5 and 6
//! (`P* = Θ(λ^{-1/4})`, `Θ(λ^{-1/3})`, `T* = Θ(λ^{-1/2})`, ...).

use serde::{Deserialize, Serialize};

use crate::cost::ResilienceCosts;

/// Validity bounds of the first-order approximation for a given cost model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ValidityBounds {
    /// Maximum admissible order `δ` of the processor count (`P = Θ(λ^{-x})`
    /// requires `x < δ`).
    pub max_processor_order: f64,
    /// Whether the cost model is fully decreasing (`c = d = 0`), which adds the
    /// extra requirement `x < 1/2` so that the optimal period keeps a positive
    /// order.
    pub fully_decreasing: bool,
}

impl ValidityBounds {
    /// Derives the bounds from a resilience cost model (Inequality (5)).
    pub fn for_costs(costs: &ResilienceCosts) -> Self {
        let fully_decreasing = costs.c() == 0.0 && costs.d() == 0.0;
        let max_processor_order = if costs.c() > 0.0 { 0.5 } else { 1.0 };
        Self {
            max_processor_order,
            fully_decreasing,
        }
    }

    /// The effective upper bound on `x` (the processor order), accounting for the
    /// extra `x < 1/2` constraint of the fully decreasing case.
    pub fn effective_processor_order_bound(&self) -> f64 {
        if self.fully_decreasing {
            self.max_processor_order.min(0.5)
        } else {
            self.max_processor_order
        }
    }

    /// The order `x` of a concrete processor count with respect to `λ_ind`,
    /// i.e. the exponent such that `P = λ_ind^{-x}`.
    pub fn processor_order(p: f64, lambda_ind: f64) -> f64 {
        assert!(p >= 1.0 && lambda_ind > 0.0 && lambda_ind < 1.0);
        p.ln() / (1.0 / lambda_ind).ln()
    }

    /// The order `y` of a concrete period with respect to `λ_ind`
    /// (`T = λ_ind^{-y}`).
    pub fn period_order(t: f64, lambda_ind: f64) -> f64 {
        assert!(t > 0.0 && lambda_ind > 0.0 && lambda_ind < 1.0);
        t.ln() / (1.0 / lambda_ind).ln()
    }

    /// Checks whether a concrete operating point `(T, P)` lies inside the validity
    /// region (Inequalities (5) and (6)) for an individual error rate `λ_ind`.
    pub fn contains(&self, t: f64, p: f64, lambda_ind: f64) -> bool {
        let x = Self::processor_order(p, lambda_ind);
        let y = Self::period_order(t, lambda_ind);
        x < self.effective_processor_order_bound() && y < 1.0 - x
    }
}

/// Result of a least-squares power-law fit `y ≈ k · x^e` (performed in log-log
/// space).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerLawFit {
    /// Fitted exponent `e`.
    pub exponent: f64,
    /// Fitted multiplicative constant `k`.
    pub constant: f64,
    /// Coefficient of determination of the fit in log-log space.
    pub r_squared: f64,
}

/// Fits `y ≈ k · x^e` by ordinary least squares on `(ln x, ln y)`.
///
/// Used by the experiments to verify asymptotic slopes, e.g. that the numerical
/// `P*(λ_ind)` follows `λ_ind^{-1/4}` under scenario 1 (Figure 5a).
///
/// # Panics
/// Panics if fewer than two points are supplied or if any coordinate is not
/// strictly positive.
pub fn fit_power_law(points: &[(f64, f64)]) -> PowerLawFit {
    assert!(
        points.len() >= 2,
        "need at least two points to fit a power law"
    );
    let logs: Vec<(f64, f64)> = points
        .iter()
        .map(|&(x, y)| {
            assert!(
                x > 0.0 && y > 0.0,
                "power-law fit requires positive coordinates"
            );
            (x.ln(), y.ln())
        })
        .collect();
    let n = logs.len() as f64;
    let mean_x = logs.iter().map(|p| p.0).sum::<f64>() / n;
    let mean_y = logs.iter().map(|p| p.1).sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for &(x, y) in &logs {
        sxx += (x - mean_x) * (x - mean_x);
        sxy += (x - mean_x) * (y - mean_y);
        syy += (y - mean_y) * (y - mean_y);
    }
    assert!(
        sxx > 0.0,
        "all x coordinates are identical; exponent is undefined"
    );
    let exponent = sxy / sxx;
    let intercept = mean_y - exponent * mean_x;
    let r_squared = if syy == 0.0 {
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    PowerLawFit {
        exponent,
        constant: intercept.exp(),
        r_squared,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{CheckpointCost, VerificationCost};

    fn costs(c: CheckpointCost, v: VerificationCost) -> ResilienceCosts {
        ResilienceCosts::new(c, v, 3600.0).unwrap()
    }

    #[test]
    fn delta_is_half_for_linear_costs_and_one_otherwise() {
        let linear = costs(
            CheckpointCost::linear(0.5),
            VerificationCost::constant(10.0),
        );
        assert_eq!(ValidityBounds::for_costs(&linear).max_processor_order, 0.5);
        let constant = costs(
            CheckpointCost::constant(300.0),
            VerificationCost::constant(10.0),
        );
        assert_eq!(
            ValidityBounds::for_costs(&constant).max_processor_order,
            1.0
        );
        let decreasing = costs(
            CheckpointCost::per_processor(1000.0),
            VerificationCost::per_processor(10.0),
        );
        let b = ValidityBounds::for_costs(&decreasing);
        assert!(b.fully_decreasing);
        assert_eq!(b.effective_processor_order_bound(), 0.5);
    }

    #[test]
    fn orders_are_logarithmic_exponents() {
        let lambda = 1e-8;
        // P = λ^{-1/4} = 1e2 → x = 0.25.
        let x = ValidityBounds::processor_order(100.0, lambda);
        assert!((x - 0.25).abs() < 1e-12);
        let y = ValidityBounds::period_order(1e4, lambda);
        assert!((y - 0.5).abs() < 1e-12);
    }

    #[test]
    fn contains_respects_both_inequalities() {
        let linear = costs(
            CheckpointCost::linear(0.5),
            VerificationCost::constant(10.0),
        );
        let b = ValidityBounds::for_costs(&linear);
        let lambda = 1e-8;
        // x = 0.25, y = 0.5: valid (0.25 < 0.5 and 0.5 < 0.75).
        assert!(b.contains(1e4, 1e2, lambda));
        // x = 0.75 > δ: invalid even though y is small.
        assert!(!b.contains(10.0, 1e6, lambda));
        // y too large: x = 0.25, y = 0.9 > 0.75.
        assert!(!b.contains(10f64.powf(7.2), 1e2, lambda));
    }

    #[test]
    fn fit_recovers_exact_power_law() {
        let pts: Vec<(f64, f64)> = (1..=20)
            .map(|i| (i as f64, 3.5 * (i as f64).powf(-0.25)))
            .collect();
        let fit = fit_power_law(&pts);
        assert!((fit.exponent + 0.25).abs() < 1e-10);
        assert!((fit.constant - 3.5).abs() < 1e-9);
        assert!(fit.r_squared > 0.999999);
    }

    #[test]
    fn fit_handles_noiseless_two_points() {
        let fit = fit_power_law(&[(1.0, 2.0), (4.0, 8.0)]);
        assert!((fit.exponent - 1.0).abs() < 1e-12);
        assert!((fit.constant - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn fit_rejects_single_point() {
        let _ = fit_power_law(&[(1.0, 1.0)]);
    }

    #[test]
    #[should_panic]
    fn fit_rejects_non_positive_coordinates() {
        let _ = fit_power_law(&[(1.0, 1.0), (2.0, -3.0)]);
    }
}
