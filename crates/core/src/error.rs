//! Error types for model construction and evaluation.

use std::fmt;

/// Errors produced when constructing or evaluating an analytical model with
/// invalid parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A parameter that must be strictly positive was not.
    NonPositive {
        /// Human-readable name of the offending parameter.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A parameter that must be non-negative was negative (or NaN).
    Negative {
        /// Human-readable name of the offending parameter.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A fraction (e.g. the sequential fraction `α` or the fail-stop fraction `f`)
    /// was outside the closed interval `[0, 1]`.
    NotAFraction {
        /// Human-readable name of the offending parameter.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The requested closed-form optimum does not exist for the given cost model
    /// (e.g. Theorem 2 requires a linearly growing checkpoint cost, Theorem 3 a
    /// constant one, and neither applies when `C_P + V_P = h/P`).
    NoClosedFormOptimum {
        /// Explanation of which structural assumption is violated.
        reason: &'static str,
    },
    /// The first-order approximation is not applicable for the requested regime
    /// (e.g. a perfectly parallel application with `α = 0`).
    FirstOrderInapplicable {
        /// Explanation of why the approximation breaks down.
        reason: &'static str,
    },
    /// A speedup-profile spec (string or kind/parameter pair) could not be
    /// turned into a valid [`crate::speedup::SpeedupProfile`].
    InvalidProfileSpec {
        /// What was wrong with the spec.
        message: String,
    },
    /// A failure-model spec (string or kind/parameter pair) could not be
    /// turned into a valid [`crate::failure_spec::FailureModelSpec`].
    InvalidFailureSpec {
        /// What was wrong with the spec.
        message: String,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::NonPositive { name, value } => {
                write!(
                    f,
                    "parameter `{name}` must be strictly positive, got {value}"
                )
            }
            ModelError::Negative { name, value } => {
                write!(
                    f,
                    "parameter `{name}` must be non-negative and finite, got {value}"
                )
            }
            ModelError::NotAFraction { name, value } => {
                write!(f, "parameter `{name}` must lie in [0, 1], got {value}")
            }
            ModelError::NoClosedFormOptimum { reason } => {
                write!(f, "no closed-form optimum exists: {reason}")
            }
            ModelError::FirstOrderInapplicable { reason } => {
                write!(f, "first-order approximation not applicable: {reason}")
            }
            ModelError::InvalidProfileSpec { message } => {
                write!(f, "invalid speedup profile spec: {message}")
            }
            ModelError::InvalidFailureSpec { message } => {
                write!(f, "invalid failure model spec: {message}")
            }
        }
    }
}

impl std::error::Error for ModelError {}

/// Validates that `value` is finite and strictly positive.
pub(crate) fn ensure_positive(name: &'static str, value: f64) -> Result<f64, ModelError> {
    if value.is_finite() && value > 0.0 {
        Ok(value)
    } else {
        Err(ModelError::NonPositive { name, value })
    }
}

/// Validates that `value` is finite and non-negative.
pub(crate) fn ensure_non_negative(name: &'static str, value: f64) -> Result<f64, ModelError> {
    if value.is_finite() && value >= 0.0 {
        Ok(value)
    } else {
        Err(ModelError::Negative { name, value })
    }
}

/// Validates that `value` is a fraction in `[0, 1]`.
pub(crate) fn ensure_fraction(name: &'static str, value: f64) -> Result<f64, ModelError> {
    if value.is_finite() && (0.0..=1.0).contains(&value) {
        Ok(value)
    } else {
        Err(ModelError::NotAFraction { name, value })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positive_accepts_positive() {
        assert_eq!(ensure_positive("x", 1.5).unwrap(), 1.5);
    }

    #[test]
    fn positive_rejects_zero_negative_nan_inf() {
        assert!(ensure_positive("x", 0.0).is_err());
        assert!(ensure_positive("x", -1.0).is_err());
        assert!(ensure_positive("x", f64::NAN).is_err());
        assert!(ensure_positive("x", f64::INFINITY).is_err());
    }

    #[test]
    fn non_negative_accepts_zero() {
        assert_eq!(ensure_non_negative("x", 0.0).unwrap(), 0.0);
    }

    #[test]
    fn non_negative_rejects_negative_and_nan() {
        assert!(ensure_non_negative("x", -0.1).is_err());
        assert!(ensure_non_negative("x", f64::NAN).is_err());
    }

    #[test]
    fn fraction_bounds() {
        assert!(ensure_fraction("f", 0.0).is_ok());
        assert!(ensure_fraction("f", 1.0).is_ok());
        assert!(ensure_fraction("f", 0.5).is_ok());
        assert!(ensure_fraction("f", 1.0001).is_err());
        assert!(ensure_fraction("f", -0.0001).is_err());
        assert!(ensure_fraction("f", f64::NAN).is_err());
    }

    #[test]
    fn display_messages_mention_parameter_name() {
        let err = ModelError::NonPositive {
            name: "lambda_ind",
            value: 0.0,
        };
        assert!(err.to_string().contains("lambda_ind"));
        let err = ModelError::NotAFraction {
            name: "alpha",
            value: 2.0,
        };
        assert!(err.to_string().contains("alpha"));
        let err = ModelError::NoClosedFormOptimum { reason: "h/P cost" };
        assert!(err.to_string().contains("h/P cost"));
    }
}
