//! Subprocess tests of the sharded/resumable sweep CLI.
//!
//! These drive the real `reproduce` binary end to end: shard runs plus
//! `sweep-merge` must reproduce the unsharded CSV byte for byte, interrupted
//! shards must resume without recomputing finished cells, and malformed
//! invocations (unknown flags, unknown experiments, inconsistent shard
//! arguments) must fail with a usage message before anything runs.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn reproduce(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_reproduce"))
        .args(args)
        .output()
        .expect("reproduce binary runs")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ayd-cli-shard-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn path_str(path: &Path) -> &str {
    path.to_str().expect("temp paths are UTF-8")
}

/// The small simulating demo grid keeps these subprocess runs quick while
/// still exercising per-cell seeding (simulated columns must survive the
/// shard/merge round trip bit-for-bit too).
const BASE: &[&str] = &["sweep", "--smoke", "--threads", "2"];

#[test]
fn three_shards_merge_byte_identical_to_the_unsharded_run() {
    let dir = temp_dir("merge");
    let full = dir.join("full.csv");
    let out = reproduce(&[BASE, &["--out", path_str(&full)]].concat());
    assert!(out.status.success(), "{out:?}");

    let mut inputs = Vec::new();
    for index in 0..3 {
        let shard_csv = dir.join(format!("shard-{index}.csv"));
        let spec = format!("{index}/3");
        let out = reproduce(&[BASE, &["--shard", &spec, "--out", path_str(&shard_csv)]].concat());
        assert!(out.status.success(), "shard {index}: {out:?}");
        inputs.push(shard_csv);
    }
    let merged = dir.join("merged.csv");
    let input_list = inputs
        .iter()
        .map(|p| path_str(p).to_string())
        .collect::<Vec<_>>()
        .join(",");
    let out = reproduce(&[
        "sweep-merge",
        "--inputs",
        &input_list,
        "--out",
        path_str(&merged),
    ]);
    assert!(out.status.success(), "{out:?}");

    let full_bytes = std::fs::read(&full).unwrap();
    let merged_bytes = std::fs::read(&merged).unwrap();
    assert!(!full_bytes.is_empty());
    assert_eq!(full_bytes, merged_bytes, "merge is not byte-identical");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn interrupted_shard_resumes_without_recomputing_finished_cells() {
    let dir = temp_dir("resume");
    let csv = dir.join("shard-0-of-2.csv");
    let args: Vec<&str> = [BASE, &["--shard", "0/2", "--out", path_str(&csv)]].concat();
    let out = reproduce(&args);
    assert!(out.status.success(), "{out:?}");
    let clean = std::fs::read_to_string(&csv).unwrap();
    let rows = clean.lines().count() - 1;
    assert!(rows >= 4, "grid too small for a meaningful truncation");

    // Simulate a mid-run kill: drop the last two complete rows and leave a
    // torn final line, exactly what an interrupted append can produce. (The
    // manifest still claims the full count — resume must trust whichever
    // artifact is *behind*.)
    let keep: String = clean
        .lines()
        .take(1 + rows - 2)
        .flat_map(|l| [l, "\n"])
        .collect();
    std::fs::write(&csv, format!("{keep}Hera,1,0.1,amdahl,0.1,1e-")).unwrap();

    let out = reproduce(&[&args[..], &["--resume"]].concat());
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains(&format!("{} resumed, 2 evaluated", rows - 2)),
        "finished cells were recomputed: {stdout}"
    );
    assert_eq!(std::fs::read_to_string(&csv).unwrap(), clean);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn unknown_flags_and_experiments_fail_before_running_anything() {
    // Unknown flag: non-zero exit, usage on stderr.
    let out = reproduce(&["sweep", "--no-sim", "--bogus-flag"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("unknown flag `--bogus-flag`"), "{stderr}");
    assert!(stderr.contains("usage:"), "{stderr}");
    assert!(
        out.stdout.is_empty(),
        "output was produced before the error"
    );

    // Unknown experiment token: must fail up front — the valid experiment in
    // front of it must NOT run first (no partial success).
    let out = reproduce(&["table2", "bogus-experiment"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        stderr.contains("unknown experiment `bogus-experiment`"),
        "{stderr}"
    );
    assert!(stderr.contains("usage:"), "{stderr}");
    assert!(
        out.stdout.is_empty(),
        "table2 ran before the unknown token was rejected"
    );

    // Inconsistent shard arguments are caught at parse time too.
    let out = reproduce(&["sweep", "--shard", "0/2"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        stderr.contains("--shard/--resume require --out"),
        "{stderr}"
    );
}

#[test]
fn merge_refuses_shards_from_different_sweeps() {
    let dir = temp_dir("mismatch");
    let a = dir.join("a.csv");
    let b = dir.join("b.csv");
    let run = |csv: &Path, spec: &str, seed: &str| {
        let out = reproduce(
            &[
                BASE,
                &["--shard", spec, "--out", path_str(csv), "--seed", seed],
            ]
            .concat(),
        );
        assert!(out.status.success(), "{out:?}");
    };
    run(&a, "0/2", "1");
    run(&b, "1/2", "2"); // different seed → different sweep
    let inputs = format!("{},{}", path_str(&a), path_str(&b));
    let merged = dir.join("merged.csv");
    let out = reproduce(&[
        "sweep-merge",
        "--inputs",
        &inputs,
        "--out",
        path_str(&merged),
    ]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("different sweep"), "{stderr}");
    assert!(!merged.exists(), "a mismatched merge must not write output");
    std::fs::remove_dir_all(&dir).unwrap();
}
