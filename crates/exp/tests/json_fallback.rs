//! Regression test: `reproduce --json` must keep stdout machine-parseable.
//!
//! The offline build replaces `serde_json` with a no-op stand-in, so `--json`
//! falls back to CSV. The fallback *notice* must go to stderr — an earlier
//! layout risked interleaving it with the data stream, which breaks any
//! consumer piping stdout into a parser.

use std::process::Command;

fn reproduce(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_reproduce"))
        .args(args)
        .output()
        .expect("reproduce binary runs")
}

#[test]
fn json_fallback_keeps_stdout_clean() {
    let output = reproduce(&["table2", "table3", "--json"]);
    assert!(output.status.success());
    let stdout = String::from_utf8(output.stdout).unwrap();
    let stderr = String::from_utf8(output.stderr).unwrap();

    // The notice is on stderr, exactly once (despite two experiments).
    assert_eq!(stderr.matches("note: JSON output needs").count(), 1);

    // stdout carries only `#` title comments and CSV records.
    assert!(!stdout.contains("note:"), "stdout polluted:\n{stdout}");
    for line in stdout.lines().filter(|l| !l.is_empty()) {
        assert!(
            line.starts_with('#') || line.contains(','),
            "unexpected stdout line: {line}"
        );
    }
    // And the CSV is really there.
    assert!(stdout.contains("# Table II"), "stdout:\n{stdout}");
}

#[test]
fn csv_output_has_no_notice_at_all() {
    let output = reproduce(&["table2", "--csv"]);
    assert!(output.status.success());
    let stderr = String::from_utf8(output.stderr).unwrap();
    assert!(stderr.is_empty(), "unexpected stderr: {stderr}");
}

#[test]
fn sweep_smoke_runs_deterministically_across_thread_counts() {
    // End-to-end determinism: the sweep subcommand produces identical stdout
    // for 1 and 2 worker threads (and with the cache disabled).
    let base = ["sweep", "--no-sim", "--smoke", "--csv", "--threads"];
    let one = reproduce(&[&base[..], &["1"]].concat());
    let two = reproduce(&[&base[..], &["2"]].concat());
    let two_nocache = reproduce(&[&base[..], &["2", "--no-cache"]].concat());
    assert!(one.status.success() && two.status.success() && two_nocache.status.success());
    assert_eq!(one.stdout, two.stdout);
    assert_eq!(one.stdout, two_nocache.stdout);
    assert!(!one.stdout.is_empty());
}
