//! Subprocess integration test of `reproduce serve` (like `json_fallback.rs`):
//! boots the real binary on an ephemeral port, then drives one `/v1/optimize`
//! and one `/v1/sweep` round-trip through the same checks `loadgen --check`
//! runs ([`ayd_serve::smoke_check`]), and pins the served sweep CSV to the
//! golden rows of `tests/golden_sweep_csv.rs`.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use ayd_serve::{HttpClient, Json};

/// Kills the server process even when an assertion panics.
struct ServerProcess(Child);

impl Drop for ServerProcess {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Starts `reproduce serve` on an ephemeral port and returns (guard, addr).
/// `--io-model event` is explicit (it is also the default on supported
/// platforms), so the suite exercises the CLI flag and the epoll reactor
/// end-to-end; the startup announcement must name the effective model.
fn start_server() -> (ServerProcess, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_reproduce"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--threads",
            "2",
            "--io-model",
            "event",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("reproduce serve starts");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .expect("server announces its address");
    let addr = line
        .trim()
        .strip_prefix("ayd-serve listening on http://")
        .unwrap_or_else(|| panic!("unexpected announcement: {line:?}"))
        .to_string();
    let mut model_line = String::new();
    reader
        .read_line(&mut model_line)
        .expect("server announces its io model");
    let model = model_line
        .trim()
        .strip_prefix("ayd-serve io model: ")
        .unwrap_or_else(|| panic!("unexpected announcement: {model_line:?}"))
        .to_string();
    let expected = if ayd_serve::EVENT_IO_SUPPORTED {
        "event"
    } else {
        "blocking"
    };
    assert_eq!(model, expected, "effective io model");
    (ServerProcess(child), addr)
}

#[test]
fn serve_round_trips_match_the_offline_engine_and_the_golden_rows() {
    let (_server, addr) = start_server();

    // The full loadgen --check suite: /healthz, /v1/optimize bit-identical to
    // the offline Evaluator, /v1/sweep byte-identical to the in-process sweep
    // engine, /metrics parsable.
    ayd_serve::smoke_check(&addr).expect("smoke check against the subprocess");

    // Additionally pin the served sweep CSV to the same literal rows the
    // golden test pins, so a drift in either layer fails loudly here too.
    let mut client = HttpClient::connect(&addr).expect("connect");
    let accepted = client
        .post_json("/v1/sweep", ayd_serve::client::GOLDEN_SWEEP_BODY)
        .expect("submit sweep");
    assert_eq!(accepted.status, 202, "{}", accepted.body);
    let id = Json::parse(&accepted.body)
        .expect("submit response is JSON")
        .get("id")
        .and_then(Json::as_f64)
        .expect("submit response has an id") as u64;
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    let csv = loop {
        let poll = client
            .get(&format!("/v1/sweep/{id}"), Some("text/csv"))
            .expect("poll sweep");
        assert_eq!(poll.status, 200);
        if poll.content_type.starts_with("text/csv") {
            break poll.body;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "sweep did not finish in time"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    let lines: Vec<&str> = csv.lines().collect();
    assert_eq!(lines.len(), 1 + 8, "2 scenarios × 2 multipliers × 2 P");
    assert_eq!(lines[0], ayd_sweep::CSV_HEADER);
    assert_eq!(
        lines[1],
        "Hera,1,0.1,amdahl,0.1,exp,,0.0000000169,1,256,3600,256,6551.836818431605,\
0.10923732682928215,0.10874209350020253,,,256,6469.2375895385285,0.10923689384439697,,,\
0.11018235679785451,,,,"
    );
    assert_eq!(
        lines[8],
        "Hera,3,0.1,amdahl,0.1,exp,,0.000000169,10,1024,3600,1024,1430.5273600525854,\
0.17749510125302212,0.14536209184958257,,,1024,1280.6146752871186,0.17710358937015436,,,\
0.22113748594843097,,,,"
    );
}

#[test]
fn serve_enforces_the_request_contract_over_the_wire() {
    let (_server, addr) = start_server();
    let mut client = HttpClient::connect(&addr).expect("connect");

    // Wrong method and unknown route map to definite statuses.
    let response = client.get("/v1/optimize", None).expect("405 round trip");
    assert_eq!(response.status, 405);
    let response = client.get("/nope", None).expect("404 round trip");
    assert_eq!(response.status, 404);
    // Bad JSON and invalid parameters are 400s with an error document.
    let response = client
        .post_json("/v1/optimize", "{broken")
        .expect("400 round trip");
    assert_eq!(response.status, 400);
    assert!(response.body.contains("\"error\""));
    let response = client
        .post_json("/v1/optimize", r#"{"platform":"Nope"}"#)
        .expect("400 round trip");
    assert_eq!(response.status, 400);
    assert!(response.body.contains("unknown platform"));
    // Invalid model parameters come back as structured field + reason JSON.
    let response = client
        .post_json("/v1/optimize", r#"{"alpha":1.5}"#)
        .expect("structured 400 round trip");
    assert_eq!(response.status, 400);
    assert!(
        response.body.contains("\"field\":\"alpha\""),
        "{}",
        response.body
    );
    let response = client
        .post_json(
            "/v1/optimize",
            r#"{"profile":{"kind":"powerlaw","sigma":1.7}}"#,
        )
        .expect("structured 400 round trip");
    assert_eq!(response.status, 400);
    assert!(
        response.body.contains("\"field\":\"sigma\""),
        "{}",
        response.body
    );
    // The connection stays usable after errors (keep-alive survives 4xx), and
    // extension profiles answer with their exact round-trip spec.
    let response = client
        .post_json(
            "/v1/optimize",
            r#"{"platform":"Coastal","scenario":5,"profile":"powerlaw:0.8"}"#,
        )
        .expect("200 round trip");
    assert_eq!(response.status, 200);
    assert!(response.body.contains("\"numerical\""));
    assert!(
        response.body.contains("\"spec\":\"powerlaw:0.8\""),
        "{}",
        response.body
    );
}
