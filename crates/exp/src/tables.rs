//! Reproduction of Table II (platform parameters) and Table III (resilience
//! scenarios, plus the cost coefficients fitted to each platform).

use serde::{Deserialize, Serialize};

use ayd_platforms::{Platform, Scenario};

use crate::table::{fmt_value, TextTable};

/// Data behind the Table II reproduction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2 {
    /// The four platforms, in paper order.
    pub platforms: Vec<Platform>,
}

/// One row of the Table III reproduction: a scenario and the coefficients fitted
/// to a platform.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table3Row {
    /// Scenario number (1–6).
    pub scenario: usize,
    /// Shape of the checkpoint cost (`cP`, `a` or `b/P`) as printed in the paper.
    pub checkpoint_shape: String,
    /// Shape of the verification cost (`v` or `u/P`).
    pub verification_shape: String,
    /// Platform the coefficients are fitted for.
    pub platform: String,
    /// Fitted linear coefficient `c` (zero when not applicable).
    pub c: f64,
    /// Fitted constant checkpoint coefficient `a`.
    pub a: f64,
    /// Fitted per-processor checkpoint coefficient `b`.
    pub b: f64,
    /// Fitted constant verification coefficient `v`.
    pub v: f64,
    /// Fitted per-processor verification coefficient `u`.
    pub u: f64,
}

/// Data behind the Table III reproduction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table3 {
    /// One row per (scenario, platform) pair.
    pub rows: Vec<Table3Row>,
}

/// Builds the Table II data.
pub fn table2() -> Table2 {
    Table2 {
        platforms: Platform::all(),
    }
}

/// Renders Table II as text.
pub fn render_table2(data: &Table2) -> TextTable {
    let mut table = TextTable::new(
        "Table II — platform parameters",
        &[
            "platform",
            "lambda_ind",
            "f",
            "s",
            "P",
            "C_P (s)",
            "V_P (s)",
            "MTBF_ind (years)",
        ],
    );
    for p in &data.platforms {
        table.push_row(vec![
            p.id.name().to_string(),
            format!("{:.2e}", p.lambda_ind),
            format!("{:.4}", p.fail_stop_fraction),
            format!("{:.4}", p.silent_fraction()),
            p.measured_processors.to_string(),
            fmt_value(p.measured_checkpoint),
            fmt_value(p.measured_verification),
            format!("{:.1}", p.mtbf_ind_years()),
        ]);
    }
    table
}

fn shape_strings(scenario: &Scenario) -> (String, String) {
    use ayd_platforms::{CostShape, VerificationShape};
    let c = match scenario.checkpoint {
        CostShape::Linear => "cP",
        CostShape::Constant => "a",
        CostShape::PerProcessor => "b/P",
    };
    let v = match scenario.verification {
        VerificationShape::Constant => "v",
        VerificationShape::PerProcessor => "u/P",
    };
    (c.to_string(), v.to_string())
}

/// Builds the Table III data: the six scenarios and, for every platform, the
/// coefficients fitted from its Table II measurements.
pub fn table3() -> Table3 {
    let mut rows = Vec::new();
    for scenario in Scenario::all() {
        let (checkpoint_shape, verification_shape) = shape_strings(&scenario);
        for platform in Platform::all() {
            let costs = scenario
                .fit(&platform, 3600.0)
                .expect("embedded platform parameters always fit");
            rows.push(Table3Row {
                scenario: scenario.id.number(),
                checkpoint_shape: checkpoint_shape.clone(),
                verification_shape: verification_shape.clone(),
                platform: platform.id.name().to_string(),
                c: costs.checkpoint.c,
                a: costs.checkpoint.a,
                b: costs.checkpoint.b,
                v: costs.verification.v,
                u: costs.verification.u,
            });
        }
    }
    Table3 { rows }
}

/// Renders Table III (with fitted coefficients) as text.
pub fn render_table3(data: &Table3) -> TextTable {
    let mut table = TextTable::new(
        "Table III — resilience scenarios and fitted cost coefficients",
        &[
            "scenario", "C_P,R_P", "V_P", "platform", "c", "a", "b", "v", "u",
        ],
    );
    for row in &data.rows {
        table.push_row(vec![
            row.scenario.to_string(),
            row.checkpoint_shape.clone(),
            row.verification_shape.clone(),
            row.platform.clone(),
            fmt_value(row.c),
            fmt_value(row.a),
            fmt_value(row.b),
            fmt_value(row.v),
            fmt_value(row.u),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_four_platforms_in_paper_order() {
        let data = table2();
        assert_eq!(data.platforms.len(), 4);
        let rendered = render_table2(&data).render();
        assert!(rendered.contains("Hera"));
        assert!(rendered.contains("Coastal SSD"));
        assert!(rendered.contains("1.69e-8") || rendered.contains("1.69e-08"));
    }

    #[test]
    fn table3_has_one_row_per_scenario_platform_pair() {
        let data = table3();
        assert_eq!(data.rows.len(), 6 * 4);
        // Scenario 1 on Hera: c = 300/512, no other checkpoint coefficient.
        let row = data
            .rows
            .iter()
            .find(|r| r.scenario == 1 && r.platform == "Hera")
            .unwrap();
        assert!((row.c - 300.0 / 512.0).abs() < 1e-12);
        assert_eq!(row.a, 0.0);
        assert_eq!(row.b, 0.0);
        assert_eq!(row.v, 15.4);
        // Scenario 6 on Atlas: b = 439*1024, u = 9.1*1024.
        let row = data
            .rows
            .iter()
            .find(|r| r.scenario == 6 && r.platform == "Atlas")
            .unwrap();
        assert!((row.b - 439.0 * 1024.0).abs() < 1e-6);
        assert!((row.u - 9.1 * 1024.0).abs() < 1e-6);
        assert_eq!(row.c, 0.0);
    }

    #[test]
    fn table3_shapes_match_scenario_ids() {
        let data = table3();
        for row in &data.rows {
            match row.scenario {
                1 | 2 => assert_eq!(row.checkpoint_shape, "cP"),
                3 | 4 => assert_eq!(row.checkpoint_shape, "a"),
                5 | 6 => assert_eq!(row.checkpoint_shape, "b/P"),
                _ => unreachable!(),
            }
            if row.scenario % 2 == 1 {
                assert_eq!(row.verification_shape, "v");
            } else {
                assert_eq!(row.verification_shape, "u/P");
            }
        }
    }

    #[test]
    fn rendered_tables_are_csv_exportable() {
        let t2 = render_table2(&table2());
        let csv = t2.to_csv();
        assert_eq!(csv.lines().count(), 1 + 4);
        let t3 = render_table3(&table3());
        assert_eq!(t3.to_csv().lines().count(), 1 + 24);
    }
}
