//! Figure 7 — impact of the downtime `D` on the optimal pattern
//! (platform Hera, `α = 0.1`, scenarios 1, 3 and 5).
//!
//! The first-order formulas of Theorems 2 and 3 do not involve `D`, so the
//! first-order operating point is constant along this sweep; the numerical
//! optimum, by contrast, enrols slightly fewer processors as the downtime grows.
//! Because even a three-hour downtime stays much smaller than the platform MTBF,
//! the overheads of the two solutions remain close.

use serde::{Deserialize, Serialize};

use ayd_platforms::{ExperimentSetup, PlatformId, ScenarioId};

use crate::config::RunOptions;
use crate::evaluate::{Evaluator, OptimumComparison};
use crate::table::{fmt_option, fmt_value, TextTable};

/// One point of Figure 7.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Figure7Row {
    /// Scenario number (1, 3 or 5).
    pub scenario: usize,
    /// Downtime in seconds.
    pub downtime: f64,
    /// First-order and numerical optima.
    pub comparison: OptimumComparison,
}

/// All series of Figure 7.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Figure7Data {
    /// Downtimes swept (seconds).
    pub downtimes: Vec<f64>,
    /// One row per (scenario, downtime).
    pub rows: Vec<Figure7Row>,
}

/// The paper's downtime sweep: 0 to 3 hours.
pub fn default_downtime_sweep() -> Vec<f64> {
    (0..=6).map(|i| i as f64 * 1800.0).collect()
}

/// Runs Figure 7 for the given downtimes.
pub fn run_with_downtimes(downtimes: &[f64], options: &RunOptions) -> Figure7Data {
    let evaluator = Evaluator::new(*options);
    let mut rows = Vec::new();
    for &scenario in &ScenarioId::REPRESENTATIVE {
        for &downtime in downtimes {
            let model = ExperimentSetup::paper_default(PlatformId::Hera, scenario)
                .with_downtime(downtime)
                .model()
                .expect("downtime sweep setups are valid");
            rows.push(Figure7Row {
                scenario: scenario.number(),
                downtime,
                comparison: evaluator.compare(&model),
            });
        }
    }
    Figure7Data {
        downtimes: downtimes.to_vec(),
        rows,
    }
}

/// Runs Figure 7 with the paper's sweep.
pub fn run(options: &RunOptions) -> Figure7Data {
    run_with_downtimes(&default_downtime_sweep(), options)
}

/// Renders the series as a table.
pub fn render(data: &Figure7Data) -> TextTable {
    let mut table = TextTable::new(
        "Figure 7 — optimal pattern vs downtime (Hera, alpha = 0.1)",
        &[
            "scenario",
            "D (h)",
            "P* (first-order)",
            "P* (optimal)",
            "T* (first-order)",
            "T* (optimal)",
            "H (first-order)",
            "H (optimal)",
            "H (simulated @fo)",
            "H (simulated @opt)",
        ],
    );
    for row in &data.rows {
        let fo = row.comparison.first_order;
        let num = row.comparison.numerical;
        table.push_row(vec![
            row.scenario.to_string(),
            format!("{:.1}", row.downtime / 3600.0),
            fmt_option(fo.map(|p| p.processors)),
            fmt_value(num.processors),
            fmt_option(fo.map(|p| p.period)),
            fmt_value(num.period),
            fmt_option(fo.map(|p| p.predicted_overhead)),
            fmt_value(num.predicted_overhead),
            fmt_option(fo.and_then(|p| p.simulated.map(|s| s.mean))),
            fmt_option(num.simulated.map(|s| s.mean)),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analytical() -> RunOptions {
        RunOptions {
            simulate: false,
            ..RunOptions::smoke()
        }
    }

    #[test]
    fn first_order_point_does_not_depend_on_downtime() {
        let data = run_with_downtimes(&[0.0, 3600.0, 10_800.0], &analytical());
        for scenario in [1usize, 3, 5] {
            let series: Vec<&Figure7Row> = data
                .rows
                .iter()
                .filter(|r| r.scenario == scenario)
                .collect();
            let first = series[0].comparison.first_order.unwrap();
            for row in &series[1..] {
                let fo = row.comparison.first_order.unwrap();
                assert!((fo.processors - first.processors).abs() < 1e-9);
                assert!((fo.period - first.period).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn numerical_optimum_enrolls_fewer_processors_as_downtime_grows() {
        let data = run_with_downtimes(&[0.0, 10_800.0], &analytical());
        for scenario in [1usize, 3, 5] {
            let at = |d: f64| {
                data.rows
                    .iter()
                    .find(|r| r.scenario == scenario && r.downtime == d)
                    .unwrap()
                    .comparison
                    .numerical
                    .processors
            };
            assert!(
                at(10_800.0) <= at(0.0) + 1e-6,
                "scenario {scenario}: P*(3h)={} P*(0)={}",
                at(10_800.0),
                at(0.0)
            );
        }
    }

    #[test]
    fn overheads_of_both_solutions_stay_close_across_the_sweep() {
        // The paper's conclusion for this figure: even with a 3-hour downtime the
        // first-order solution loses very little against the numerical optimum.
        let data = run_with_downtimes(&[0.0, 5_400.0, 10_800.0], &analytical());
        for row in &data.rows {
            let gap = row.comparison.overhead_gap().unwrap();
            assert!(gap >= -1e-9, "first-order can never beat the optimum");
            // Scenario 5's Theorem-3 point ignores the (still sizeable) b/P part of
            // its checkpoint cost, so its gap is larger — the paper reports "up to
            // 5%" for the simulated overhead; the exact-model gap at the
            // first-order operating point is of the order of 10%.
            let tolerance = if row.scenario == 5 { 0.12 } else { 0.02 };
            assert!(
                gap < tolerance,
                "scenario {} D={}: gap={gap}",
                row.scenario,
                row.downtime
            );
        }
    }

    #[test]
    fn overhead_increases_with_downtime() {
        let data = run_with_downtimes(&[0.0, 10_800.0], &analytical());
        for scenario in [1usize, 3, 5] {
            let at = |d: f64| {
                data.rows
                    .iter()
                    .find(|r| r.scenario == scenario && r.downtime == d)
                    .unwrap()
                    .comparison
                    .numerical
                    .predicted_overhead
            };
            assert!(at(10_800.0) > at(0.0), "scenario {scenario}");
        }
    }

    #[test]
    fn render_has_one_row_per_point() {
        let data = run_with_downtimes(&[0.0, 3600.0], &analytical());
        assert_eq!(render(&data).len(), 6);
    }
}
