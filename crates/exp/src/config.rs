//! Run options shared by every experiment runner.
//!
//! The definitions moved down into `ayd-sweep` (the sweep engine and the
//! figure runners share one evaluation kernel); this module re-exports them
//! under the historical `ayd_exp::config` path.

pub use ayd_sweep::options::{Fidelity, RunOptions, SearchStrategy};
