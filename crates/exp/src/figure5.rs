//! Figure 5 — impact of the individual error rate `λ_ind` on the optimal pattern
//! (platform Hera, `α = 0.1`, scenarios 1, 3 and 5).
//!
//! The key asymptotic claims verified here are those of Theorems 2 and 3:
//! under scenario 1 (`C_P = cP`) the optimal allocation and period scale as
//! `P* = Θ(λ_ind^{-1/4})` and `T* = Θ(λ_ind^{-1/2})`, while under scenarios 3 and
//! 5 (`C_P + V_P` constant) both scale as `Θ(λ_ind^{-1/3})`. The figure also shows
//! the first-order approximation getting more accurate as `λ_ind` decreases, with
//! the overhead tending to the `α = 0.1` floor.

use serde::{Deserialize, Serialize};

use ayd_core::fit_power_law;
use ayd_platforms::{PlatformId, ScenarioId};
use ayd_sweep::{ScenarioGrid, SweepExecutor, SweepOptions};

use crate::config::RunOptions;
use crate::evaluate::OptimumComparison;
use crate::table::{fmt_option, fmt_value, TextTable};

/// One point of Figure 5: a scenario at a given individual error rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Figure5Row {
    /// Scenario number (1, 3 or 5).
    pub scenario: usize,
    /// Individual error rate `λ_ind`.
    pub lambda_ind: f64,
    /// First-order and numerical optima.
    pub comparison: OptimumComparison,
}

/// Fitted asymptotic exponents for one scenario (log-log slopes of `P*`, `T*`
/// versus `λ_ind`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AsymptoticSlopes {
    /// Scenario number.
    pub scenario: usize,
    /// Fitted exponent of the numerical `P*(λ_ind)` power law.
    pub processors_exponent: f64,
    /// Fitted exponent of the numerical `T*(λ_ind)` power law.
    pub period_exponent: f64,
    /// Fitted exponent of the first-order `P*(λ_ind)` series (when it exists).
    pub first_order_processors_exponent: Option<f64>,
    /// Fitted exponent of the first-order `T*(λ_ind)` series (when it exists).
    pub first_order_period_exponent: Option<f64>,
    /// Exponent predicted by the theory (−1/4 for scenario 1, −1/3 for 3 and 5).
    pub expected_processors_exponent: f64,
    /// Period exponent predicted by the theory (−1/2 for scenario 1, −1/3 otherwise).
    pub expected_period_exponent: f64,
}

/// All series of Figure 5.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Figure5Data {
    /// Sequential fraction used (0.1).
    pub alpha: f64,
    /// Error rates swept.
    pub lambdas: Vec<f64>,
    /// One row per (scenario, λ_ind).
    pub rows: Vec<Figure5Row>,
    /// Fitted asymptotic slopes per scenario.
    pub slopes: Vec<AsymptoticSlopes>,
}

/// The error rates of the paper's sweep: `1e-12` to `1e-8`.
pub fn default_lambda_sweep() -> Vec<f64> {
    (0..=8)
        .map(|i| 1e-12 * 10f64.powf(i as f64 * 0.5))
        .collect()
}

fn expected_exponents(scenario: usize) -> (f64, f64) {
    match scenario {
        1 | 2 => (-0.25, -0.5),
        _ => (-1.0 / 3.0, -1.0 / 3.0),
    }
}

/// Runs Figure 5 with the given error rates and sequential fraction.
///
/// The λ sweep — three scenarios crossed with the error-rate axis, first-order
/// and numerical optima per cell — is delegated to `ayd-sweep`; this module
/// keeps only the figure-specific slope fitting.
pub fn run_with(lambdas: &[f64], alpha: f64, options: &RunOptions) -> Figure5Data {
    // An empty sweep is a valid (empty) figure, not a grid-validation error.
    if lambdas.is_empty() {
        return Figure5Data {
            alpha,
            lambdas: Vec::new(),
            rows: Vec::new(),
            slopes: Vec::new(),
        };
    }
    let grid = ScenarioGrid::builder()
        .platforms(&[PlatformId::Hera])
        .scenarios(&ScenarioId::REPRESENTATIVE)
        .alphas(&[alpha])
        .lambda_values(lambdas)
        .build()
        .expect("the Figure 5 grid is valid");
    let results =
        SweepExecutor::new(SweepOptions::new(*options).with_processor_range(1.0, 1e9)).run(&grid);
    let rows: Vec<Figure5Row> = results
        .rows
        .iter()
        .map(|row| Figure5Row {
            scenario: row.scenario,
            lambda_ind: row.lambda_ind,
            comparison: row.comparison(),
        })
        .collect();
    let mut slopes = Vec::new();
    for &scenario in &ScenarioId::REPRESENTATIVE {
        let series: Vec<&ayd_sweep::SweepRow> = results
            .rows
            .iter()
            .filter(|r| r.scenario == scenario.number())
            .collect();
        let p_points: Vec<(f64, f64)> = series
            .iter()
            .map(|r| (r.lambda_ind, r.numerical.processors))
            .collect();
        let t_points: Vec<(f64, f64)> = series
            .iter()
            .map(|r| (r.lambda_ind, r.numerical.period))
            .collect();
        // The slope fit of the "first-order" series uses the closed forms of
        // Theorems 2 and 3 directly (the asymptotic laws being verified), not
        // the practical operating point of `Evaluator::first_order_point`.
        let fo_p_points: Vec<(f64, f64)> = series
            .iter()
            .filter_map(|r| r.closed_form.map(|c| (r.lambda_ind, c.processors)))
            .collect();
        let fo_t_points: Vec<(f64, f64)> = series
            .iter()
            .filter_map(|r| r.closed_form.map(|c| (r.lambda_ind, c.period)))
            .collect();
        if lambdas.len() >= 2 {
            let (expected_p, expected_t) = expected_exponents(scenario.number());
            let fit_option = |points: &Vec<(f64, f64)>| {
                (points.len() >= 2).then(|| fit_power_law(points).exponent)
            };
            slopes.push(AsymptoticSlopes {
                scenario: scenario.number(),
                processors_exponent: fit_power_law(&p_points).exponent,
                period_exponent: fit_power_law(&t_points).exponent,
                first_order_processors_exponent: fit_option(&fo_p_points),
                first_order_period_exponent: fit_option(&fo_t_points),
                expected_processors_exponent: expected_p,
                expected_period_exponent: expected_t,
            });
        }
    }
    Figure5Data {
        alpha,
        lambdas: lambdas.to_vec(),
        rows,
        slopes,
    }
}

/// Runs Figure 5 with the paper's sweep (`α = 0.1`).
pub fn run(options: &RunOptions) -> Figure5Data {
    run_with(&default_lambda_sweep(), 0.1, options)
}

/// Renders the per-point series as a table.
pub fn render(data: &Figure5Data) -> TextTable {
    let mut table = TextTable::new(
        format!(
            "Figure 5 — optimal pattern vs lambda_ind (Hera, alpha = {})",
            data.alpha
        ),
        &[
            "scenario",
            "lambda_ind",
            "P* (first-order)",
            "P* (optimal)",
            "T* (first-order)",
            "T* (optimal)",
            "H (first-order)",
            "H (optimal)",
            "H (simulated @opt)",
        ],
    );
    for row in &data.rows {
        let fo = row.comparison.first_order;
        let num = row.comparison.numerical;
        table.push_row(vec![
            row.scenario.to_string(),
            format!("{:.2e}", row.lambda_ind),
            fmt_option(fo.map(|p| p.processors)),
            fmt_value(num.processors),
            fmt_option(fo.map(|p| p.period)),
            fmt_value(num.period),
            fmt_option(fo.and_then(|p| p.formula_overhead)),
            fmt_value(num.predicted_overhead),
            fmt_option(num.simulated.map(|s| s.mean)),
        ]);
    }
    table
}

/// Renders the fitted asymptotic slopes as a table (the reference lines of the
/// paper's figure).
pub fn render_slopes(data: &Figure5Data) -> TextTable {
    let mut table = TextTable::new(
        "Figure 5 — fitted asymptotic exponents vs theory",
        &[
            "scenario",
            "P* exponent (fit)",
            "P* exponent (theory)",
            "T* exponent (fit)",
            "T* exponent (theory)",
        ],
    );
    for s in &data.slopes {
        table.push_row(vec![
            s.scenario.to_string(),
            format!("{:.3}", s.processors_exponent),
            format!("{:.3}", s.expected_processors_exponent),
            format!("{:.3}", s.period_exponent),
            format!("{:.3}", s.expected_period_exponent),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analytical() -> RunOptions {
        RunOptions {
            simulate: false,
            ..RunOptions::smoke()
        }
    }

    fn small_sweep() -> Vec<f64> {
        vec![1e-12, 1e-11, 1e-10, 1e-9, 1e-8]
    }

    #[test]
    fn asymptotic_slopes_match_theorems_2_and_3() {
        let data = run_with(&small_sweep(), 0.1, &analytical());
        for s in &data.slopes {
            // The first-order series follows the closed forms exactly.
            assert!(
                (s.first_order_processors_exponent.unwrap() - s.expected_processors_exponent).abs()
                    < 0.02,
                "scenario {}: first-order P* exponent {:?}",
                s.scenario,
                s.first_order_processors_exponent
            );
            assert!(
                (s.first_order_period_exponent.unwrap() - s.expected_period_exponent).abs() < 0.02,
                "scenario {}: first-order T* exponent {:?}",
                s.scenario,
                s.first_order_period_exponent
            );
            // The numerical optimum approaches the same asymptotics; scenario 5's
            // period converges more slowly because its b/P cost term is not yet
            // negligible at λ_ind ≈ 1e-8 (the paper makes the same observation
            // about scenario 5's first-order accuracy), hence the looser bound.
            let period_tolerance = if s.scenario == 5 { 0.15 } else { 0.06 };
            assert!(
                (s.processors_exponent - s.expected_processors_exponent).abs() < 0.06,
                "scenario {}: fitted P* exponent {} vs expected {}",
                s.scenario,
                s.processors_exponent,
                s.expected_processors_exponent
            );
            assert!(
                (s.period_exponent - s.expected_period_exponent).abs() < period_tolerance,
                "scenario {}: fitted T* exponent {} vs expected {}",
                s.scenario,
                s.period_exponent,
                s.expected_period_exponent
            );
        }
    }

    #[test]
    fn more_reliable_processors_allow_more_parallelism_and_longer_periods() {
        let data = run_with(&small_sweep(), 0.1, &analytical());
        for scenario in [1usize, 3, 5] {
            let series: Vec<&Figure5Row> = data
                .rows
                .iter()
                .filter(|r| r.scenario == scenario)
                .collect();
            // Rows are ordered by increasing λ; decreasing λ (reverse order) must
            // increase both P* and T*.
            for w in series.windows(2) {
                assert!(
                    w[0].comparison.numerical.processors > w[1].comparison.numerical.processors
                );
                assert!(w[0].comparison.numerical.period > w[1].comparison.numerical.period);
                assert!(
                    w[0].comparison.numerical.predicted_overhead
                        < w[1].comparison.numerical.predicted_overhead
                );
            }
        }
    }

    #[test]
    fn overhead_tends_to_the_alpha_floor_as_lambda_decreases() {
        let data = run_with(&[1e-12, 1e-8], 0.1, &analytical());
        for scenario in [1usize, 3, 5] {
            let at = |lambda: f64| {
                data.rows
                    .iter()
                    .find(|r| r.scenario == scenario && r.lambda_ind == lambda)
                    .unwrap()
                    .comparison
                    .numerical
                    .predicted_overhead
            };
            assert!(at(1e-12) < at(1e-8));
            assert!(at(1e-12) < 0.102, "scenario {scenario}: H={}", at(1e-12));
            assert!(
                at(1e-12) > 0.1,
                "overhead can never beat the sequential fraction"
            );
        }
    }

    #[test]
    fn first_order_accuracy_improves_with_smaller_lambda() {
        let data = run_with(&[1e-12, 1e-8], 0.1, &analytical());
        for scenario in [1usize, 3, 5] {
            let gap = |lambda: f64| {
                data.rows
                    .iter()
                    .find(|r| r.scenario == scenario && r.lambda_ind == lambda)
                    .unwrap()
                    .comparison
                    .overhead_gap()
                    .unwrap()
                    .abs()
            };
            assert!(gap(1e-12) <= gap(1e-8) + 1e-9, "scenario {scenario}");
            assert!(gap(1e-12) < 5e-3, "scenario {scenario}: gap {}", gap(1e-12));
        }
    }

    #[test]
    fn render_tables_have_expected_sizes() {
        let data = run_with(&[1e-10, 1e-9], 0.1, &analytical());
        assert_eq!(render(&data).len(), 6);
        assert_eq!(render_slopes(&data).len(), 3);
    }

    #[test]
    fn empty_lambda_sweep_produces_empty_data() {
        let data = run_with(&[], 0.1, &analytical());
        assert!(data.rows.is_empty());
        assert!(data.slopes.is_empty());
        assert_eq!(data.alpha, 0.1);
    }
}
