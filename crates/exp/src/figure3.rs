//! Figure 3 — impact of the processor allocation on the optimal period and the
//! execution overhead (platform Hera, `α = 0.1`).
//!
//! Panel (a): first-order optimal period `T*_P` versus the processor count for
//! each of the six scenarios. Panel (b): simulated execution overhead at that
//! period. Panel (c): relative difference in overhead between the first-order
//! period and the numerically optimal period for the same processor count
//! (the paper reports it stays within 0.2%).

use serde::{Deserialize, Serialize};

use ayd_platforms::{PlatformId, ScenarioId};
use ayd_sweep::{ProcessorAxis, ScenarioGrid, SweepExecutor, SweepOptions};

use crate::config::RunOptions;
use crate::evaluate::SimSummary;
use crate::table::{fmt_option, fmt_value, TextTable};

/// One point of Figure 3: a scenario at a fixed processor count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Figure3Row {
    /// Scenario number (1–6).
    pub scenario: usize,
    /// Processor count `P`.
    pub processors: f64,
    /// First-order optimal period `T*_P` (Theorem 1).
    pub first_order_period: f64,
    /// Exact-model overhead at the first-order period.
    pub first_order_overhead: f64,
    /// Simulated overhead at the first-order period (panel b), when requested.
    pub simulated: Option<SimSummary>,
    /// Numerically optimal period for this processor count.
    pub numerical_period: f64,
    /// Exact-model overhead at the numerically optimal period.
    pub numerical_overhead: f64,
    /// Relative overhead excess of the first-order period over the numerical one,
    /// in percent (panel c).
    pub overhead_difference_percent: f64,
}

/// All series of Figure 3.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Figure3Data {
    /// Platform used (the paper uses Hera).
    pub platform: PlatformId,
    /// Processor counts swept.
    pub processors: Vec<f64>,
    /// One row per (scenario, processor count).
    pub rows: Vec<Figure3Row>,
}

/// Default sweep of processor counts (the paper's x-axis spans 200–1400).
pub fn default_processor_sweep() -> Vec<f64> {
    (1..=7).map(|i| (i * 200) as f64).collect()
}

/// Runs Figure 3 on the given processor counts.
///
/// The sweep itself — six scenarios crossed with the processor axis, the
/// first-order period and the numerically optimal period per cell, optional
/// simulation at the first-order point — is delegated to `ayd-sweep`, which
/// parallelises the cells and memoises repeated evaluations.
pub fn run_with_processors(processors: &[f64], options: &RunOptions) -> Figure3Data {
    // An empty sweep is a valid (empty) figure, not a grid-validation error.
    if processors.is_empty() {
        return Figure3Data {
            platform: PlatformId::Hera,
            processors: Vec::new(),
            rows: Vec::new(),
        };
    }
    let grid = ScenarioGrid::builder()
        .platforms(&[PlatformId::Hera])
        .scenarios(&ScenarioId::ALL)
        .processors(ProcessorAxis::Fixed(processors.to_vec()))
        .build()
        .expect("the Figure 3 grid is valid");
    let results = SweepExecutor::new(SweepOptions::new(*options)).run(&grid);
    let rows = results
        .rows
        .iter()
        .map(|row| {
            let fo = row
                .first_order
                .expect("fixed-P cells always carry a first-order period");
            Figure3Row {
                scenario: row.scenario,
                processors: fo.processors,
                first_order_period: fo.period,
                first_order_overhead: fo.predicted_overhead,
                simulated: fo.simulated,
                numerical_period: row.numerical.period,
                numerical_overhead: row.numerical.predicted_overhead,
                overhead_difference_percent: 100.0
                    * (fo.predicted_overhead - row.numerical.predicted_overhead)
                    / row.numerical.predicted_overhead,
            }
        })
        .collect();
    Figure3Data {
        platform: PlatformId::Hera,
        processors: processors.to_vec(),
        rows,
    }
}

/// Runs Figure 3 with the default processor sweep.
pub fn run(options: &RunOptions) -> Figure3Data {
    run_with_processors(&default_processor_sweep(), options)
}

/// Renders the figure's three panels as one table.
pub fn render(data: &Figure3Data) -> TextTable {
    let mut table = TextTable::new(
        "Figure 3 — optimal period and overhead vs processor count (Hera)",
        &[
            "scenario",
            "P",
            "T*_P (first-order)",
            "T (numerical)",
            "H (first-order)",
            "H (simulated)",
            "H (numerical)",
            "diff (%)",
        ],
    );
    for row in &data.rows {
        table.push_row(vec![
            row.scenario.to_string(),
            fmt_value(row.processors),
            fmt_value(row.first_order_period),
            fmt_value(row.numerical_period),
            fmt_value(row.first_order_overhead),
            fmt_option(row.simulated.map(|s| s.mean)),
            fmt_value(row.numerical_overhead),
            format!("{:.4}", row.overhead_difference_percent),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analytical() -> RunOptions {
        RunOptions {
            simulate: false,
            ..RunOptions::smoke()
        }
    }

    #[test]
    fn period_decreases_with_processor_count_in_all_scenarios() {
        // Figure 3(a): in every scenario the optimal period shrinks as P grows
        // (to compensate for the increased error rate).
        let data = run_with_processors(&[200.0, 400.0, 800.0, 1_400.0], &analytical());
        for scenario in 1..=6 {
            let periods: Vec<f64> = data
                .rows
                .iter()
                .filter(|r| r.scenario == scenario)
                .map(|r| r.first_order_period)
                .collect();
            for w in periods.windows(2) {
                assert!(w[1] < w[0], "scenario {scenario}: periods {periods:?}");
            }
        }
    }

    #[test]
    fn scenarios_sharing_checkpoint_shape_have_similar_periods() {
        // The paper notes the curves of scenarios sharing the same C_P almost
        // overlap (the verification cost is second-order).
        let data = run_with_processors(&[600.0], &analytical());
        let period = |s: usize| {
            data.rows
                .iter()
                .find(|r| r.scenario == s)
                .unwrap()
                .first_order_period
        };
        assert!((period(1) - period(2)).abs() / period(1) < 0.05);
        assert!((period(3) - period(4)).abs() / period(3) < 0.05);
        assert!((period(5) - period(6)).abs() / period(5) < 0.25);
    }

    #[test]
    fn first_order_overhead_is_within_a_fraction_of_percent_of_numerical() {
        // Figure 3(c): the difference stays below ~0.2% over the swept range.
        let data = run_with_processors(&[200.0, 600.0, 1_000.0, 1_400.0], &analytical());
        for row in &data.rows {
            assert!(
                row.overhead_difference_percent >= -1e-6,
                "numerical optimum cannot be worse than the first-order period"
            );
            assert!(
                row.overhead_difference_percent < 0.5,
                "scenario {} at P={}: diff={}%",
                row.scenario,
                row.processors,
                row.overhead_difference_percent
            );
        }
    }

    #[test]
    fn overhead_exhibits_the_u_shape_of_panel_b() {
        // For scenario 1 the overhead first improves with parallelism and then
        // degrades once errors dominate; over 200..1400 processors on Hera the
        // minimum is interior (around 300-400 processors).
        let sweep: Vec<f64> = (1..=14).map(|i| (i * 100) as f64).collect();
        let data = run_with_processors(&sweep, &analytical());
        let overheads: Vec<f64> = data
            .rows
            .iter()
            .filter(|r| r.scenario == 1)
            .map(|r| r.first_order_overhead)
            .collect();
        let min_index = overheads
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!(
            min_index > 0 && min_index < overheads.len() - 1,
            "minimum must be interior"
        );
        assert!(overheads.last().unwrap() > &overheads[min_index]);
        assert!(overheads.first().unwrap() > &overheads[min_index]);
    }

    #[test]
    fn render_contains_every_row() {
        let data = run_with_processors(&[400.0, 800.0], &analytical());
        assert_eq!(render(&data).len(), 12);
    }

    #[test]
    fn empty_processor_sweep_produces_empty_data() {
        let data = run_with_processors(&[], &analytical());
        assert!(data.rows.is_empty());
        assert!(data.processors.is_empty());
        assert!(render(&data).is_empty());
    }
}
