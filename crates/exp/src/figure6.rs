//! Figure 6 — optimal pattern versus `λ_ind` for a perfectly parallel application
//! (`α = 0`, platform Hera, scenarios 1, 3 and 5).
//!
//! This regime admits no first-order solution, so only the numerical optimum is
//! reported. The paper's numerical analysis suggests `P* ≈ Θ(λ^{-1/2})`,
//! `T* ≈ Θ(λ^{-1/2})` and `H* ≈ Θ(λ^{1/2})` under scenario 1, and
//! `P* ≈ Θ(λ^{-1})`, `T* ≈ O(1)` and `H* ≈ Θ(λ)` under scenarios 3 and 5.

use serde::{Deserialize, Serialize};

use ayd_core::fit_power_law;
use ayd_platforms::{PlatformId, ScenarioId};
use ayd_sweep::{ScenarioGrid, SweepExecutor, SweepOptions};

use crate::config::RunOptions;
use crate::evaluate::OperatingPoint;
use crate::table::{fmt_option, fmt_value, TextTable};

/// One point of Figure 6.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Figure6Row {
    /// Scenario number (1, 3 or 5).
    pub scenario: usize,
    /// Individual error rate `λ_ind`.
    pub lambda_ind: f64,
    /// Numerical optimum (no first-order solution exists for `α = 0`).
    pub numerical: OperatingPoint,
}

/// Fitted asymptotic exponents of the `α = 0` regime for one scenario.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Figure6Slopes {
    /// Scenario number.
    pub scenario: usize,
    /// Fitted exponent of `P*(λ_ind)`.
    pub processors_exponent: f64,
    /// Fitted exponent of `H*(λ_ind)`.
    pub overhead_exponent: f64,
    /// Exponent of `P*` suggested by the paper's numerical analysis
    /// (−1/2 for scenario 1, −1 for scenarios 3 and 5).
    pub expected_processors_exponent: f64,
    /// Exponent of `H*` suggested by the paper (+1/2 for scenario 1, +1 otherwise).
    pub expected_overhead_exponent: f64,
}

/// All series of Figure 6.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Figure6Data {
    /// Error rates swept.
    pub lambdas: Vec<f64>,
    /// One row per (scenario, λ_ind).
    pub rows: Vec<Figure6Row>,
    /// Fitted slopes per scenario.
    pub slopes: Vec<Figure6Slopes>,
}

/// The error rates of the paper's sweep.
pub fn default_lambda_sweep() -> Vec<f64> {
    vec![1e-12, 1e-11, 1e-10, 1e-9, 1e-8]
}

fn expected_exponents(scenario: usize) -> (f64, f64) {
    match scenario {
        1 | 2 => (-0.5, 0.5),
        _ => (-1.0, 1.0),
    }
}

/// Runs Figure 6 with the given error rates.
///
/// The α = 0 sweep is delegated to `ayd-sweep`; no first-order series exists
/// in this regime, so only the numerical optimum of each cell is consumed.
pub fn run_with(lambdas: &[f64], options: &RunOptions) -> Figure6Data {
    // An empty sweep is a valid (empty) figure, not a grid-validation error.
    if lambdas.is_empty() {
        return Figure6Data {
            lambdas: Vec::new(),
            rows: Vec::new(),
            slopes: Vec::new(),
        };
    }
    let grid = ScenarioGrid::builder()
        .platforms(&[PlatformId::Hera])
        .scenarios(&ScenarioId::REPRESENTATIVE)
        .alphas(&[0.0])
        .lambda_values(lambdas)
        .build()
        .expect("the Figure 6 grid is valid");
    // The α = 0 optimum grows very fast as λ decreases (up to ~λ^{-1}); allow a
    // very wide search range. Periods can also become short.
    let results = SweepExecutor::new(
        SweepOptions::new(*options)
            .with_processor_range(1.0, 1e14)
            .with_period_range(1e-2, 1e9),
    )
    .run(&grid);
    let rows: Vec<Figure6Row> = results
        .rows
        .iter()
        .map(|row| Figure6Row {
            scenario: row.scenario,
            lambda_ind: row.lambda_ind,
            numerical: row.numerical,
        })
        .collect();
    let mut slopes = Vec::new();
    for &scenario in &ScenarioId::REPRESENTATIVE {
        let p_points: Vec<(f64, f64)> = rows
            .iter()
            .filter(|r| r.scenario == scenario.number())
            .map(|r| (r.lambda_ind, r.numerical.processors))
            .collect();
        let h_points: Vec<(f64, f64)> = rows
            .iter()
            .filter(|r| r.scenario == scenario.number())
            .map(|r| (r.lambda_ind, r.numerical.predicted_overhead))
            .collect();
        if lambdas.len() >= 2 {
            let (expected_p, expected_h) = expected_exponents(scenario.number());
            slopes.push(Figure6Slopes {
                scenario: scenario.number(),
                processors_exponent: fit_power_law(&p_points).exponent,
                overhead_exponent: fit_power_law(&h_points).exponent,
                expected_processors_exponent: expected_p,
                expected_overhead_exponent: expected_h,
            });
        }
    }
    Figure6Data {
        lambdas: lambdas.to_vec(),
        rows,
        slopes,
    }
}

/// Runs Figure 6 with the paper's sweep.
pub fn run(options: &RunOptions) -> Figure6Data {
    run_with(&default_lambda_sweep(), options)
}

/// Renders the series as a table.
pub fn render(data: &Figure6Data) -> TextTable {
    let mut table = TextTable::new(
        "Figure 6 — optimal pattern vs lambda_ind for a perfectly parallel job (alpha = 0)",
        &[
            "scenario",
            "lambda_ind",
            "P* (optimal)",
            "T* (optimal)",
            "H (optimal)",
            "H (simulated)",
        ],
    );
    for row in &data.rows {
        table.push_row(vec![
            row.scenario.to_string(),
            format!("{:.2e}", row.lambda_ind),
            fmt_value(row.numerical.processors),
            fmt_value(row.numerical.period),
            fmt_value(row.numerical.predicted_overhead),
            fmt_option(row.numerical.simulated.map(|s| s.mean)),
        ]);
    }
    table
}

/// Renders the fitted slopes against the paper's suggested asymptotics.
pub fn render_slopes(data: &Figure6Data) -> TextTable {
    let mut table = TextTable::new(
        "Figure 6 — fitted asymptotic exponents (alpha = 0)",
        &[
            "scenario",
            "P* exponent (fit)",
            "P* (paper)",
            "H exponent (fit)",
            "H (paper)",
        ],
    );
    for s in &data.slopes {
        table.push_row(vec![
            s.scenario.to_string(),
            format!("{:.3}", s.processors_exponent),
            format!("{:.3}", s.expected_processors_exponent),
            format!("{:.3}", s.overhead_exponent),
            format!("{:.3}", s.expected_overhead_exponent),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analytical() -> RunOptions {
        RunOptions {
            simulate: false,
            ..RunOptions::smoke()
        }
    }

    #[test]
    fn overhead_vanishes_with_lambda_but_stays_positive() {
        let data = run_with(&[1e-10, 1e-8], &analytical());
        for row in &data.rows {
            assert!(row.numerical.predicted_overhead > 0.0);
            assert!(
                row.numerical.predicted_overhead < 0.1,
                "alpha = 0 removes the Amdahl floor"
            );
        }
        // Overhead decreases as processors get more reliable.
        for scenario in [1usize, 3, 5] {
            let at = |lambda: f64| {
                data.rows
                    .iter()
                    .find(|r| r.scenario == scenario && r.lambda_ind == lambda)
                    .unwrap()
                    .numerical
                    .predicted_overhead
            };
            assert!(at(1e-10) < at(1e-8), "scenario {scenario}");
        }
    }

    #[test]
    fn scenario1_slopes_follow_minus_half_and_plus_half() {
        let data = run_with(&[1e-11, 1e-10, 1e-9, 1e-8], &analytical());
        let s1 = data.slopes.iter().find(|s| s.scenario == 1).unwrap();
        assert!(
            (s1.processors_exponent - (-0.5)).abs() < 0.12,
            "P* exponent {}",
            s1.processors_exponent
        );
        assert!(
            (s1.overhead_exponent - 0.5).abs() < 0.12,
            "H exponent {}",
            s1.overhead_exponent
        );
    }

    #[test]
    fn constant_cost_scenarios_scale_faster_than_scenario1() {
        // Scenarios 3 and 5 approach P* = Θ(λ^{-1}) and H = Θ(λ): their exponents
        // must be clearly steeper than scenario 1's.
        let data = run_with(&[1e-11, 1e-10, 1e-9, 1e-8], &analytical());
        let exp = |scenario: usize| data.slopes.iter().find(|s| s.scenario == scenario).unwrap();
        assert!(exp(3).processors_exponent < exp(1).processors_exponent - 0.1);
        assert!(exp(5).processors_exponent < exp(1).processors_exponent - 0.1);
        assert!(exp(3).overhead_exponent > exp(1).overhead_exponent + 0.1);
        assert!(exp(5).overhead_exponent > exp(1).overhead_exponent + 0.1);
    }

    #[test]
    fn processor_counts_far_exceed_the_alpha_positive_regime() {
        // With α = 0 the optimal allocation grows way beyond the few hundred
        // processors of Figure 2.
        let data = run_with(&[1e-10], &analytical());
        for row in &data.rows {
            assert!(
                row.numerical.processors > 1e4,
                "scenario {}: {}",
                row.scenario,
                row.numerical.processors
            );
        }
    }

    #[test]
    fn render_tables_have_expected_sizes() {
        let data = run_with(&[1e-9, 1e-8], &analytical());
        assert_eq!(render(&data).len(), 6);
        assert_eq!(render_slopes(&data).len(), 3);
    }

    #[test]
    fn empty_lambda_sweep_produces_empty_data() {
        let data = run_with(&[], &analytical());
        assert!(data.rows.is_empty());
        assert!(data.slopes.is_empty());
    }
}
