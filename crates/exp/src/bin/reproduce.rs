//! `reproduce` — CLI for regenerating the paper's tables and figures.
//!
//! ```text
//! reproduce <experiment> [--paper|--smoke] [--no-sim] [--json] [--csv] [--seed N]
//!                        [--threads N] [--no-cache] [--search STRATEGY]
//!                        [--profiles SPEC,...] [--failure-models SPEC,...]
//!                        [--shard I/N] [--out PATH] [--resume]
//!                        [--inputs CSV,...] [--addr HOST:PORT] [--cache-capacity N]
//!                        [--max-body BYTES] [--io-model blocking|event] [--trace-log PATH]
//!                        [--coordinator [--lease-ms N]]
//!                        [--worker-of HOST:PORT [--advertise HOST:PORT]]
//!
//! experiments:
//!   table2 table3 fig2 fig3 fig4 fig5 fig6 fig7 ablation engines extensions
//!   sweep       parallel scenario sweep (ayd-sweep demo grid; large when --no-sim)
//!   sweep-merge merge shard CSVs (--inputs) into the unsharded CSV (--out)
//!   checks      headline shape checks (figures 5 and 6 slopes)
//!   serve       ayd-serve HTTP query service (runs until killed; not in `all`)
//!   obs-report  paper-style time accounting from a --trace-log file (standalone)
//!   all         everything above except serve, sweep-merge and obs-report
//! ```
//!
//! Experiment names are validated up front: an unknown name (or flag) fails
//! with a usage message *before* anything runs, so a typo can never yield a
//! partial-success exit.
//!
//! `--profiles` (sweep only) replaces the demo grid's application axis with an
//! explicit comma-separated list of speedup-profile specs, e.g.
//! `--profiles amdahl:0.1,powerlaw:0.8,gustafson:0.05,perfect`.
//!
//! `--failure-models` (sweep only) likewise replaces the failure-model axis,
//! e.g. `--failure-models exp,weibull:0.7,shifted:600`. The specs must be
//! rate-free — grid cells take their rate from the λ axis. Non-exponential
//! cells simulate under the true law; when simulation is on, the sweep prints
//! a misspecification report comparing the exponential model's prediction
//! with those simulations.
//!
//! `--out PATH` (sweep only) writes the canonical sweep CSV to `PATH` plus an
//! atomically-updated progress manifest at `PATH.manifest`, instead of
//! printing a table. `--shard I/N` restricts the run to one shard of the grid
//! (cells with `index % N == I`); `--resume` skips rows an interrupted run
//! already materialised. `sweep-merge --inputs a.csv,b.csv,... --out PATH`
//! validates the sidecar manifests and re-assembles the shards into bytes
//! identical to the unsharded sweep.
//!
//! `serve` exposes the optimiser over HTTP (see the `ayd-serve` crate docs):
//! `--addr` picks the listen address (port 0 = ephemeral; the bound address is
//! printed on stdout), `--threads` sizes the connection/compute pools,
//! `--cache-capacity` the shared evaluation cache and `--max-body` the largest
//! accepted request body. `--io-model` picks the serving core: `event` (the
//! default where supported) runs per-core epoll reactors with `SO_REUSEPORT`
//! accept sharding; `blocking` is the thread-per-connection pool. Both answer
//! bit-identical bytes; the effective model is printed at startup.
//!
//! Cluster roles (serve only): `--coordinator` makes the instance decompose
//! sharded `/v1/sweep` jobs and dispatch them to registered workers, with
//! `--lease-ms` tuning the worker lease (default 3000; expiry re-issues the
//! dead worker's shard from its last checkpoint). `--worker-of HOST:PORT`
//! makes the instance register with that coordinator, heartbeat and compute
//! dispatched shards; `--advertise` overrides the dial-back address when the
//! bound one is not reachable from the coordinator. See `docs/OPERATIONS.md`.
//!
//! `--trace-log PATH` wears two hats. On any running experiment it installs
//! an `ayd-obs` JSON-lines sink, so every span the run records (sweep stages,
//! server requests, optimiser fallbacks) streams to `PATH`; the sweep CSV is
//! byte-identical with tracing on or off — tracing reads clocks and counters,
//! never values. On `obs-report` the same flag names the *input*: the log is
//! parsed and re-rendered as paper-style time-accounting tables (per-endpoint
//! request stages, connection queue waits, per-strategy sweep execution).
//!
//! `--json` requires `serde_json`, which this offline build replaces with a
//! no-op stand-in (see `vendor/serde`); the flag is accepted but falls back to
//! CSV with a notice on **stderr** (stdout stays machine-parseable) until the
//! real dependency is restored.

use std::io::Write;
use std::process::ExitCode;

use ayd_exp::config::{Fidelity, RunOptions, SearchStrategy};
use ayd_exp::{ablation, extensions, figure2, figure3, figure4, figure5, figure6, figure7, sweep};
use ayd_exp::{report, tables, TextTable};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OutputFormat {
    Text,
    Json,
    Csv,
}

/// Flags of the `serve` experiment (ignored by every other experiment).
#[derive(Debug, Clone, Default, PartialEq)]
struct ServeArgs {
    addr: Option<String>,
    cache_capacity: Option<usize>,
    max_body: Option<usize>,
    io_model: Option<ayd_serve::IoModel>,
    /// `--coordinator`: accept worker registrations and dispatch sweep shards.
    coordinator: bool,
    /// `--worker-of HOST:PORT`: register with that coordinator and compute
    /// dispatched shards.
    worker_of: Option<String>,
    /// `--lease-ms N` (coordinator): worker lease length.
    lease_ms: Option<u64>,
    /// `--advertise HOST:PORT` (worker): the address the coordinator should
    /// dial back, when the bound address is not reachable from it.
    advertise: Option<String>,
}

/// Flags of the sharded/file-backed sweep modes (`sweep --out/--shard/--resume`
/// and `sweep-merge --inputs/--out`).
#[derive(Debug, Clone, Default, PartialEq)]
struct ShardArgs {
    out: Option<std::path::PathBuf>,
    shard: Option<ayd_sweep::ShardSpec>,
    resume: bool,
    inputs: Vec<std::path::PathBuf>,
}

#[derive(Debug)]
struct Cli {
    experiments: Vec<String>,
    options: RunOptions,
    format: OutputFormat,
    serve: ServeArgs,
    shard: ShardArgs,
    /// Speedup-profile override of the sweep demo grid (`--profiles`).
    profiles: Option<Vec<ayd_core::SpeedupProfile>>,
    /// Failure-model axis override of the sweep demo grid
    /// (`--failure-models`).
    failure_models: Option<Vec<ayd_core::FailureModelSpec>>,
    /// `--trace-log PATH`: ayd-obs JSON-lines sink for running experiments,
    /// or the input log for `obs-report`.
    trace_log: Option<std::path::PathBuf>,
}

/// The experiments `all` runs, in order. This single table also drives the
/// parse-time name validation (via [`is_known_experiment`]), so a new
/// experiment added here is automatically accepted — the standalone-only
/// entries (`sweep-merge`, `serve`, `all` itself) are the one extra list.
const ALL_EXPERIMENTS: &[&str] = &[
    "table2",
    "table3",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "ablation",
    "engines",
    "extensions",
    "sweep",
    "checks",
];

/// True when the CLI accepts `name` as an experiment; anything else is
/// rejected at parse time, before any experiment runs.
fn is_known_experiment(name: &str) -> bool {
    ALL_EXPERIMENTS.contains(&name)
        || matches!(name, "sweep-merge" | "serve" | "obs-report" | "all")
}

fn parse_profiles(value: &str) -> Result<Vec<ayd_core::SpeedupProfile>, String> {
    let specs: Vec<&str> = value.split(',').filter(|s| !s.trim().is_empty()).collect();
    if specs.is_empty() {
        return Err("--profiles requires at least one profile spec".to_string());
    }
    specs
        .into_iter()
        .map(|spec| {
            ayd_core::ProfileSpec::parse(spec)
                .map(|parsed| parsed.profile())
                .map_err(|e| format!("invalid profile spec `{spec}`: {e}"))
        })
        .collect()
}

fn parse_failure_models(value: &str) -> Result<Vec<ayd_core::FailureModelSpec>, String> {
    let specs: Vec<&str> = value.split(',').filter(|s| !s.trim().is_empty()).collect();
    if specs.is_empty() {
        return Err("--failure-models requires at least one failure-model spec".to_string());
    }
    specs
        .into_iter()
        .map(|spec| {
            let parsed = ayd_core::FailureModelSpec::parse(spec)
                .map_err(|e| format!("invalid failure-model spec `{spec}`: {e}"))?;
            if parsed.lambda().is_some() {
                return Err(format!(
                    "failure-model spec `{spec}` pins an explicit rate; \
                     grid cells take their rate from the lambda axis"
                ));
            }
            Ok(parsed)
        })
        .collect()
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut experiments = Vec::new();
    let mut options = RunOptions::default();
    let mut format = OutputFormat::Text;
    let mut serve = ServeArgs::default();
    let mut shard = ShardArgs::default();
    let mut profiles = None;
    let mut failure_models = None;
    let mut trace_log = None;
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--shard" => {
                let value = iter.next().ok_or("--shard requires a value (I/N)")?;
                shard.shard = Some(ayd_sweep::ShardSpec::parse(value).map_err(|e| e.to_string())?);
            }
            "--out" => {
                let value = iter.next().ok_or("--out requires a path")?;
                shard.out = Some(std::path::PathBuf::from(value));
            }
            "--resume" => shard.resume = true,
            "--inputs" => {
                let value = iter
                    .next()
                    .ok_or("--inputs requires a comma-separated list")?;
                shard.inputs = value
                    .split(',')
                    .filter(|s| !s.trim().is_empty())
                    .map(std::path::PathBuf::from)
                    .collect();
                if shard.inputs.is_empty() {
                    return Err("--inputs requires at least one CSV path".to_string());
                }
            }
            "--paper" => options.fidelity = Fidelity::Paper,
            "--smoke" => options.fidelity = Fidelity::Smoke,
            "--no-sim" => options.simulate = false,
            "--json" => format = OutputFormat::Json,
            "--csv" => format = OutputFormat::Csv,
            "--no-cache" => options.cache = false,
            "--search" => {
                let value = iter
                    .next()
                    .ok_or("--search requires a value (reference, fast or fast-strict)")?;
                options.search = SearchStrategy::parse(value)?;
            }
            "--seed" => {
                let value = iter.next().ok_or("--seed requires a value")?;
                options.seed = value
                    .parse()
                    .map_err(|_| format!("invalid seed `{value}`"))?;
            }
            "--threads" => {
                let value = iter.next().ok_or("--threads requires a value")?;
                let parsed: usize = value
                    .parse()
                    .map_err(|_| format!("invalid thread count `{value}`"))?;
                if parsed == 0 {
                    return Err("--threads must be at least 1".to_string());
                }
                options.threads = Some(parsed);
            }
            "--profiles" => {
                let value = iter.next().ok_or("--profiles requires a value")?;
                profiles = Some(parse_profiles(value)?);
            }
            "--failure-models" => {
                let value = iter.next().ok_or("--failure-models requires a value")?;
                failure_models = Some(parse_failure_models(value)?);
            }
            "--addr" => {
                let value = iter.next().ok_or("--addr requires a value")?;
                serve.addr = Some(value.clone());
            }
            "--cache-capacity" => {
                let value = iter.next().ok_or("--cache-capacity requires a value")?;
                let parsed: usize = value
                    .parse()
                    .map_err(|_| format!("invalid cache capacity `{value}`"))?;
                if parsed == 0 {
                    return Err("--cache-capacity must be at least 1".to_string());
                }
                serve.cache_capacity = Some(parsed);
            }
            "--max-body" => {
                let value = iter.next().ok_or("--max-body requires a value")?;
                serve.max_body = Some(
                    value
                        .parse()
                        .map_err(|_| format!("invalid body limit `{value}`"))?,
                );
            }
            "--io-model" => {
                let value = iter.next().ok_or("--io-model requires a value")?;
                serve.io_model = Some(value.parse()?);
            }
            "--coordinator" => serve.coordinator = true,
            "--worker-of" => {
                let value = iter
                    .next()
                    .ok_or("--worker-of requires a HOST:PORT value")?;
                serve.worker_of = Some(value.clone());
            }
            "--lease-ms" => {
                let value = iter.next().ok_or("--lease-ms requires a value")?;
                let parsed: u64 = value
                    .parse()
                    .map_err(|_| format!("invalid lease `{value}`"))?;
                if parsed < 10 {
                    return Err("--lease-ms must be at least 10".to_string());
                }
                serve.lease_ms = Some(parsed);
            }
            "--advertise" => {
                let value = iter
                    .next()
                    .ok_or("--advertise requires a HOST:PORT value")?;
                serve.advertise = Some(value.clone());
            }
            "--trace-log" => {
                let value = iter.next().ok_or("--trace-log requires a path")?;
                trace_log = Some(std::path::PathBuf::from(value));
            }
            "--help" | "-h" => return Err(usage()),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}`\n{}", usage()))
            }
            other => experiments.push(other.to_string()),
        }
    }
    if experiments.is_empty() {
        return Err(usage());
    }
    // Validate experiment names *before* anything runs: a typo'd token must
    // fail the whole invocation with a usage message, not run the experiments
    // in front of it and only then error out.
    for experiment in &experiments {
        if !is_known_experiment(experiment) {
            return Err(format!("unknown experiment `{experiment}`\n{}", usage()));
        }
    }
    if (shard.shard.is_some() || shard.resume) && shard.out.is_none() {
        return Err(format!("--shard/--resume require --out PATH\n{}", usage()));
    }
    // The shard/file flags only mean something to the sweep experiments; on
    // anything else they would be silently dropped — fail instead.
    let runs_a_sweep = experiments
        .iter()
        .any(|e| e == "sweep" || e == "sweep-merge" || e == "all");
    if (shard.out.is_some() || shard.shard.is_some() || shard.resume) && !runs_a_sweep {
        return Err(format!(
            "--out/--shard/--resume only apply to sweep and sweep-merge\n{}",
            usage()
        ));
    }
    if !shard.inputs.is_empty() && !experiments.iter().any(|e| e == "sweep-merge") {
        return Err(format!("--inputs only applies to sweep-merge\n{}", usage()));
    }
    if experiments.iter().any(|e| e == "sweep-merge") {
        if shard.inputs.is_empty() || shard.out.is_none() {
            return Err(format!(
                "sweep-merge requires --inputs CSV,... and --out PATH\n{}",
                usage()
            ));
        }
        if shard.resume || shard.shard.is_some() {
            return Err(format!(
                "sweep-merge takes --inputs/--out only, not --shard/--resume\n{}",
                usage()
            ));
        }
        // Both would write the single --out path, the second clobbering the
        // first's validated output.
        if experiments.iter().any(|e| e == "sweep" || e == "all") {
            return Err(format!(
                "sweep-merge cannot be combined with sweep/all (they would share --out)\n{}",
                usage()
            ));
        }
    }
    // File output is always the canonical CSV; a stdout format flag alongside
    // it would be silently meaningless.
    if shard.out.is_some() && format != OutputFormat::Text {
        return Err(format!(
            "--csv/--json cannot be combined with --out (the file is always canonical CSV)\n{}",
            usage()
        ));
    }
    // One process plays one cluster role; a coordinator that is also a
    // worker of itself would deadlock its own shard queue.
    if serve.coordinator && serve.worker_of.is_some() {
        return Err(format!(
            "--coordinator and --worker-of are mutually exclusive\n{}",
            usage()
        ));
    }
    if serve.lease_ms.is_some() && !serve.coordinator {
        return Err(format!(
            "--lease-ms only applies to --coordinator\n{}",
            usage()
        ));
    }
    if serve.advertise.is_some() && serve.worker_of.is_none() {
        return Err(format!(
            "--advertise only applies to --worker-of\n{}",
            usage()
        ));
    }
    if (serve.coordinator || serve.worker_of.is_some()) && !experiments.iter().any(|e| e == "serve")
    {
        return Err(format!(
            "--coordinator/--worker-of only apply to serve\n{}",
            usage()
        ));
    }
    // `--trace-log` flips meaning on obs-report (input, not sink), so the
    // report can never run in the same invocation as the experiments that
    // would be writing the very file it reads.
    if experiments.iter().any(|e| e == "obs-report") {
        if experiments.len() > 1 {
            return Err(format!(
                "obs-report must be the only experiment (its --trace-log is an input, \
                 not a sink)\n{}",
                usage()
            ));
        }
        if trace_log.is_none() {
            return Err(format!("obs-report requires --trace-log PATH\n{}", usage()));
        }
    }
    Ok(Cli {
        experiments,
        options,
        format,
        serve,
        shard,
        profiles,
        failure_models,
        trace_log,
    })
}

fn usage() -> String {
    "usage: reproduce <experiment...> [--paper|--smoke] [--no-sim] [--json] [--csv] [--seed N] \
     [--threads N] [--no-cache] [--search STRATEGY] [--profiles SPEC,...] \
     [--failure-models SPEC,...] [--shard I/N] \
     [--out PATH] [--resume] [--inputs CSV,...] [--addr HOST:PORT] [--cache-capacity N] \
     [--max-body BYTES] [--io-model blocking|event] [--trace-log PATH] \
     [--coordinator [--lease-ms N]] [--worker-of HOST:PORT [--advertise HOST:PORT]]\n\
     experiments: table2 table3 fig2 fig3 fig4 fig5 fig6 fig7 ablation engines extensions sweep \
     sweep-merge checks serve obs-report all\n\
     search strategies: reference | fast | fast-strict (default; all three are bit-identical, \
     the fast paths only change cold-evaluation cost)\n\
     profile specs: amdahl:A powerlaw:S gustafson:A perfect (e.g. \
     --profiles amdahl:0.1,powerlaw:0.8)\n\
     failure-model specs: exp weibull:K shifted:D trace:PATH, rate-free (e.g. \
     --failure-models exp,weibull:0.7)\n\
     sharding: sweep --shard 0/4 --out shard0.csv [--resume]; \
     sweep-merge --inputs shard0.csv,...,shard3.csv --out merged.csv\n\
     tracing: any experiment --trace-log trace.jsonl streams ayd-obs spans to the file; \
     obs-report --trace-log trace.jsonl renders the time-accounting tables"
        .to_string()
}

/// The file-backed `sweep --out` mode: runs one shard (default: the whole
/// grid as shard 0/1) into the CSV + `.manifest` sidecar pair, resuming an
/// interrupted run when asked. A human-readable progress summary goes to
/// stdout; the canonical bytes live in the file.
fn run_sweep_to_files(cli: &Cli, out: &std::path::Path) -> Result<(), String> {
    let grid = sweep::demo_grid_with_axes(
        cli.options.simulate,
        cli.profiles.as_deref(),
        cli.failure_models.as_deref(),
    );
    let shard = cli.shard.shard.unwrap_or(ayd_sweep::ShardSpec::WHOLE);
    let executor = ayd_sweep::SweepExecutor::new(ayd_sweep::SweepOptions::new(cli.options));
    let report =
        ayd_sweep::run_shard_to_files(&executor, &grid, shard, out, cli.shard.resume, None)
            .map_err(|e| format!("sweep: {e}"))?;
    println!(
        "sweep shard {shard}: {} of {} grid cells ({} resumed, {} evaluated) -> {}",
        report.shard_cells,
        grid.len(),
        report.resumed_rows,
        report.results.rows.len(),
        out.display()
    );
    Ok(())
}

/// The `sweep-merge` experiment: loads every `--inputs` CSV with its sidecar
/// manifest, validates that they form one complete partition of one sweep,
/// and writes the deterministic merge (byte-identical to an unsharded run)
/// to `--out`, with a completed whole-grid manifest alongside.
fn run_sweep_merge(cli: &Cli, out: &std::path::Path) -> Result<(), String> {
    let parts: Vec<ayd_sweep::ShardPart> = cli
        .shard
        .inputs
        .iter()
        .map(|path| ayd_sweep::ShardPart::load(path).map_err(|e| format!("sweep-merge: {e}")))
        .collect::<Result<_, String>>()?;
    let merged = ayd_sweep::merge_parts(&parts).map_err(|e| format!("sweep-merge: {e}"))?;
    // Atomic like every other shard artifact: a kill mid-write must never
    // leave a truncated merged CSV next to a manifest vouching for it.
    let mut tmp = out.as_os_str().to_os_string();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    std::fs::write(&tmp, &merged)
        .map_err(|e| format!("sweep-merge: write {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, out).map_err(|e| {
        format!(
            "sweep-merge: rename {} -> {}: {e}",
            tmp.display(),
            out.display()
        )
    })?;
    // The merged output gets a whole-grid manifest, so it can itself be
    // validated (or fed onward) like any other shard artifact.
    let mut manifest = parts[0].manifest.clone();
    manifest.shard = ayd_sweep::ShardSpec::WHOLE;
    manifest.shard_cells = manifest.grid_cells;
    manifest.completed = manifest.grid_cells;
    manifest
        .write_atomic(&ayd_sweep::manifest_path(out))
        .map_err(|e| format!("sweep-merge: {e}"))?;
    println!(
        "sweep-merge: {} shards, {} rows -> {}",
        parts.len(),
        manifest.grid_cells,
        out.display()
    );
    Ok(())
}

/// Runs the `ayd-serve` query service until the process is killed. The bound
/// address goes to stdout first (and is flushed), so scripts can start the
/// server on an ephemeral port and parse where it landed.
fn run_serve(cli: &Cli) -> Result<(), String> {
    let mut config = ayd_serve::ServerConfig::default();
    if let Some(addr) = &cli.serve.addr {
        config.addr = addr.clone();
    }
    if let Some(threads) = cli.options.threads {
        config.threads = threads;
        config.queue_capacity = 4 * threads;
    }
    if let Some(capacity) = cli.serve.cache_capacity {
        config.cache_capacity = capacity;
    }
    if let Some(max_body) = cli.serve.max_body {
        config.limits.max_body = max_body;
    }
    if let Some(io_model) = cli.serve.io_model {
        config.io_model = io_model;
    }
    config.cluster.coordinator = cli.serve.coordinator;
    config.cluster.worker_of = cli.serve.worker_of.clone();
    config.cluster.advertise = cli.serve.advertise.clone();
    if let Some(lease_ms) = cli.serve.lease_ms {
        config.cluster.lease = std::time::Duration::from_millis(lease_ms);
    }
    config.run = cli.options;
    let server = ayd_serve::Server::bind(config).map_err(|e| format!("serve: bind failed: {e}"))?;
    let addr = server
        .local_addr()
        .map_err(|e| format!("serve: no local address: {e}"))?;
    println!("ayd-serve listening on http://{addr}");
    // The *effective* model: an `event` request quietly degrades to
    // `blocking` on platforms without the epoll reactor.
    println!("ayd-serve io model: {}", server.io_model().as_str());
    if cli.serve.coordinator {
        println!(
            "ayd-serve role: coordinator (lease {} ms)",
            cli.serve.lease_ms.unwrap_or(3000)
        );
    } else if let Some(coordinator) = &cli.serve.worker_of {
        println!("ayd-serve role: worker of http://{coordinator}");
    }
    std::io::stdout().flush().expect("flush stdout");
    server.serve().map_err(|e| format!("serve: {e}"))
}

/// The `obs-report` experiment: parses a `--trace-log` file back into span
/// records and renders the paper-style time-accounting tables (per-endpoint
/// request stages that sum to the total, connection queue waits, per-strategy
/// sweep execution).
fn run_obs_report(cli: &Cli) -> Result<(), String> {
    let path = cli
        .trace_log
        .as_ref()
        .expect("parse_args enforces --trace-log for obs-report");
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("obs-report: read {}: {e}", path.display()))?;
    let spans = ayd_exp::obsreport::parse_trace_log(&text)
        .map_err(|e| format!("obs-report: {}: {e}", path.display()))?;
    let accounting = ayd_exp::obsreport::account(&spans);
    emit(cli.format, ayd_exp::obsreport::render(&accounting));
    Ok(())
}

const JSON_FALLBACK_NOTICE: &str = "note: JSON output needs the real serde_json (unavailable in \
     this offline build); emitting CSV instead";

/// True when this call should print the JSON-fallback notice (at most once per
/// process, and only for the JSON format).
fn take_json_notice(format: OutputFormat) -> bool {
    static NOTICE: std::sync::Once = std::sync::Once::new();
    let mut first = false;
    if format == OutputFormat::Json {
        NOTICE.call_once(|| first = true);
    }
    first
}

/// Writes the tables to `out` in the requested format. Anything that is not
/// data — like the JSON-fallback notice — goes to `err`, so stdout stays
/// machine-parseable (title lines are emitted as `#` CSV comments).
fn emit_to(
    format: OutputFormat,
    tables: Vec<TextTable>,
    json_notice: bool,
    out: &mut dyn Write,
    err: &mut dyn Write,
) {
    match format {
        OutputFormat::Text => {
            for table in tables {
                writeln!(out, "{}", table.render()).expect("write to stdout failed");
            }
        }
        OutputFormat::Csv | OutputFormat::Json => {
            if format == OutputFormat::Json && json_notice {
                writeln!(err, "{JSON_FALLBACK_NOTICE}").expect("write to stderr failed");
            }
            for table in tables {
                writeln!(out, "# {}", table.title()).expect("write to stdout failed");
                writeln!(out, "{}", table.to_csv()).expect("write to stdout failed");
            }
        }
    }
}

fn emit(format: OutputFormat, tables: Vec<TextTable>) {
    emit_to(
        format,
        tables,
        take_json_notice(format),
        &mut std::io::stdout().lock(),
        &mut std::io::stderr().lock(),
    );
}

/// Writes sweep results in the *canonical* sweep CSV (full precision,
/// golden-pinned header from `ayd_sweep::CSV_HEADER`) rather than the rounded
/// table export — machine consumers of `sweep --csv` get the same bytes the
/// golden test pins.
fn emit_sweep_csv_to(
    results: &ayd_sweep::SweepResults,
    json_notice: bool,
    out: &mut dyn Write,
    err: &mut dyn Write,
) {
    if json_notice {
        writeln!(err, "{JSON_FALLBACK_NOTICE}").expect("write to stderr failed");
    }
    writeln!(out, "# Scenario sweep — {} cells", results.rows.len())
        .expect("write to stdout failed");
    write!(out, "{}", results.to_csv()).expect("write to stdout failed");
}

fn emit_sweep_csv(format: OutputFormat, results: &ayd_sweep::SweepResults) {
    emit_sweep_csv_to(
        results,
        take_json_notice(format),
        &mut std::io::stdout().lock(),
        &mut std::io::stderr().lock(),
    );
}

fn run_experiment(name: &str, cli: &Cli) -> Result<(), String> {
    let options = &cli.options;
    let format = cli.format;
    match name {
        "table2" => {
            let data = tables::table2();
            emit(format, vec![tables::render_table2(&data)]);
        }
        "table3" => {
            let data = tables::table3();
            emit(format, vec![tables::render_table3(&data)]);
        }
        "fig2" => {
            let data = figure2::run(options);
            emit(format, vec![figure2::render(&data)]);
        }
        "fig3" => {
            let data = figure3::run(options);
            emit(format, vec![figure3::render(&data)]);
        }
        "fig4" => {
            let data = figure4::run(options);
            emit(format, vec![figure4::render(&data)]);
        }
        "fig5" => {
            let data = figure5::run(options);
            emit(
                format,
                vec![figure5::render(&data), figure5::render_slopes(&data)],
            );
        }
        "fig6" => {
            let data = figure6::run(options);
            emit(
                format,
                vec![figure6::render(&data), figure6::render_slopes(&data)],
            );
        }
        "fig7" => {
            let data = figure7::run(options);
            emit(format, vec![figure7::render(&data)]);
        }
        "ablation" => {
            let data = ablation::run_first_order_gap(options);
            emit(format, vec![ablation::render_first_order_gap(&data)]);
        }
        "engines" => {
            let data = ablation::run_engine_comparison(options);
            emit(format, vec![ablation::render_engine_comparison(&data)]);
        }
        "extensions" => {
            let data = extensions::run(options);
            emit(format, vec![extensions::render(&data)]);
        }
        "sweep" => match &cli.shard.out {
            Some(out) => run_sweep_to_files(cli, out)?,
            None => {
                let results = sweep::run_with_axes(
                    options,
                    cli.profiles.as_deref(),
                    cli.failure_models.as_deref(),
                );
                match format {
                    OutputFormat::Text => {
                        let mut tables = vec![sweep::render(&results)];
                        // Non-exponential cells carry simulations under the
                        // true law; report how far the exponential analytics
                        // drift from them.
                        let misspec = sweep::misspecification(&results);
                        if !misspec.is_empty() {
                            tables.push(sweep::render_misspecification(&misspec));
                        }
                        emit(format, tables)
                    }
                    OutputFormat::Csv | OutputFormat::Json => emit_sweep_csv(format, &results),
                }
            }
        },
        "sweep-merge" => {
            let out = cli
                .shard
                .out
                .as_ref()
                .expect("parse_args enforces --out for sweep-merge");
            run_sweep_merge(cli, out)?
        }
        "serve" => run_serve(cli)?,
        "obs-report" => run_obs_report(cli)?,
        "checks" => {
            // The slope checks do not need simulation; force it off for speed.
            let analytic = RunOptions {
                simulate: false,
                ..*options
            };
            let fig5 = figure5::run(&analytic);
            let fig6 = figure6::run(&analytic);
            let checks = report::headline_checks(&fig5, &fig6);
            let table =
                report::render_checks("Headline shape checks (paper vs reproduction)", &checks);
            emit(format, vec![table]);
        }
        "all" => {
            for experiment in ALL_EXPERIMENTS {
                run_experiment(experiment, cli)?;
            }
        }
        other => return Err(format!("unknown experiment `{other}`\n{}", usage())),
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    // Install the JSON-lines trace sink before anything runs (obs-report
    // *reads* the file instead). Tracing is enabled ring-only by default in
    // the server; the CLI turns recording on exactly when a sink wants the
    // spans, so a sink-less run records nothing.
    let tracing = cli.trace_log.is_some() && cli.experiments.iter().all(|e| e != "obs-report");
    if tracing {
        let path = cli.trace_log.as_ref().expect("checked above");
        match ayd_obs::JsonLinesSink::create(path) {
            Ok(sink) => {
                ayd_obs::set_sink(Some(std::sync::Arc::new(sink)));
                ayd_obs::enable();
            }
            Err(error) => {
                eprintln!("--trace-log: create {}: {error}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }
    for experiment in &cli.experiments {
        if let Err(message) = run_experiment(experiment, &cli) {
            eprintln!("{message}");
            if tracing {
                ayd_obs::flush();
                ayd_obs::set_sink(None);
            }
            return ExitCode::FAILURE;
        }
    }
    if tracing {
        // Drain thread buffers and the process ring through the sink, then
        // detach it so its BufWriter flushes on drop.
        ayd_obs::flush();
        ayd_obs::set_sink(None);
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_experiments_and_flags() {
        let cli = parse_args(&strings(&[
            "fig2", "fig5", "--no-sim", "--json", "--seed", "7",
        ]))
        .unwrap();
        assert_eq!(cli.experiments, vec!["fig2", "fig5"]);
        assert!(!cli.options.simulate);
        assert_eq!(cli.options.seed, 7);
        assert_eq!(cli.format, OutputFormat::Json);
        assert_eq!(cli.options.threads, None);
        assert!(cli.options.cache);
    }

    #[test]
    fn parses_sweep_flags() {
        let cli = parse_args(&strings(&["sweep", "--threads", "2", "--no-cache"])).unwrap();
        assert_eq!(cli.options.threads, Some(2));
        assert!(!cli.options.cache);
        assert!(parse_args(&strings(&["sweep", "--threads", "0"])).is_err());
        assert!(parse_args(&strings(&["sweep", "--threads"])).is_err());
        assert!(parse_args(&strings(&["sweep", "--threads", "x"])).is_err());
    }

    #[test]
    fn parses_search_strategies() {
        // Default is the strict fast path; every spec string round-trips.
        assert_eq!(
            parse_args(&strings(&["sweep"])).unwrap().options.search,
            SearchStrategy::FastStrict
        );
        assert_eq!(
            parse_args(&strings(&["sweep", "--search", "reference"]))
                .unwrap()
                .options
                .search,
            SearchStrategy::Reference
        );
        assert_eq!(
            parse_args(&strings(&["sweep", "--search", "fast"]))
                .unwrap()
                .options
                .search,
            SearchStrategy::Fast
        );
        assert_eq!(
            parse_args(&strings(&["serve", "--search", "fast-strict"]))
                .unwrap()
                .options
                .search,
            SearchStrategy::FastStrict
        );
        let err = parse_args(&strings(&["sweep", "--search", "newton"])).unwrap_err();
        assert!(err.contains("newton"), "{err}");
        assert!(parse_args(&strings(&["sweep", "--search"])).is_err());
    }

    #[test]
    fn parses_profile_specs() {
        let cli = parse_args(&strings(&[
            "sweep",
            "--profiles",
            "amdahl:0.1,powerlaw:0.8,gustafson:0.05,perfect",
        ]))
        .unwrap();
        let profiles = cli.profiles.unwrap();
        assert_eq!(profiles.len(), 4);
        assert_eq!(profiles[0], ayd_core::SpeedupProfile::amdahl(0.1).unwrap());
        assert_eq!(profiles[3], ayd_core::SpeedupProfile::perfectly_parallel());
        // Every other experiment leaves the override unset.
        assert!(parse_args(&strings(&["fig2"])).unwrap().profiles.is_none());
        // Malformed specs are rejected with the offending spec named.
        let err = parse_args(&strings(&["sweep", "--profiles", "amdahl:2"])).unwrap_err();
        assert!(err.contains("amdahl:2"), "{err}");
        assert!(parse_args(&strings(&["sweep", "--profiles", ""])).is_err());
        assert!(parse_args(&strings(&["sweep", "--profiles"])).is_err());
        assert!(parse_args(&strings(&["sweep", "--profiles", "bogus"])).is_err());
    }

    #[test]
    fn parses_failure_model_specs() {
        let cli = parse_args(&strings(&[
            "sweep",
            "--failure-models",
            "exp,weibull:0.7,shifted:600",
        ]))
        .unwrap();
        let models = cli.failure_models.unwrap();
        assert_eq!(models.len(), 3);
        assert_eq!(models[0], ayd_core::FailureModelSpec::exponential());
        assert_eq!(models[1], ayd_core::FailureModelSpec::weibull(0.7).unwrap());
        assert_eq!(
            models[2],
            ayd_core::FailureModelSpec::shifted(600.0).unwrap()
        );
        // Every other experiment leaves the override unset.
        assert!(parse_args(&strings(&["fig2"]))
            .unwrap()
            .failure_models
            .is_none());
        // Malformed specs are rejected with the offending spec named; so are
        // specs that pin an explicit rate (the grid's λ axis owns the rate).
        let err = parse_args(&strings(&["sweep", "--failure-models", "weibull:0"])).unwrap_err();
        assert!(err.contains("weibull:0"), "{err}");
        let err = parse_args(&strings(&["sweep", "--failure-models", "exp:1e-8"])).unwrap_err();
        assert!(err.contains("lambda axis"), "{err}");
        assert!(parse_args(&strings(&["sweep", "--failure-models", ""])).is_err());
        assert!(parse_args(&strings(&["sweep", "--failure-models"])).is_err());
        assert!(parse_args(&strings(&["sweep", "--failure-models", "gamma:2"])).is_err());
    }

    #[test]
    fn parses_serve_flags() {
        let cli = parse_args(&strings(&[
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--cache-capacity",
            "1024",
            "--max-body",
            "4096",
            "--threads",
            "2",
            "--io-model",
            "event",
        ]))
        .unwrap();
        assert_eq!(cli.experiments, vec!["serve"]);
        assert_eq!(cli.serve.addr.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(cli.serve.cache_capacity, Some(1024));
        assert_eq!(cli.serve.max_body, Some(4096));
        assert_eq!(cli.serve.io_model, Some(ayd_serve::IoModel::Event));
        assert_eq!(cli.options.threads, Some(2));
        assert_eq!(
            parse_args(&strings(&["serve", "--io-model", "blocking"]))
                .unwrap()
                .serve
                .io_model,
            Some(ayd_serve::IoModel::Blocking)
        );
        assert!(parse_args(&strings(&["serve", "--cache-capacity", "0"])).is_err());
        assert!(parse_args(&strings(&["serve", "--addr"])).is_err());
        assert!(parse_args(&strings(&["serve", "--max-body", "x"])).is_err());
        let err = parse_args(&strings(&["serve", "--io-model", "uring"])).unwrap_err();
        assert!(err.contains("unknown io model"), "{err}");
        assert!(parse_args(&strings(&["serve", "--io-model"])).is_err());
        // The serve flags default to "unset" for every other experiment.
        assert_eq!(
            parse_args(&strings(&["fig2"])).unwrap().serve,
            ServeArgs::default()
        );
    }

    #[test]
    fn parses_cluster_roles() {
        let cli = parse_args(&strings(&["serve", "--coordinator", "--lease-ms", "500"])).unwrap();
        assert!(cli.serve.coordinator);
        assert_eq!(cli.serve.lease_ms, Some(500));

        let cli = parse_args(&strings(&[
            "serve",
            "--worker-of",
            "127.0.0.1:8080",
            "--advertise",
            "10.0.0.2:8081",
        ]))
        .unwrap();
        assert_eq!(cli.serve.worker_of.as_deref(), Some("127.0.0.1:8080"));
        assert_eq!(cli.serve.advertise.as_deref(), Some("10.0.0.2:8081"));

        // One process plays one role, and the tuning flags belong to it.
        assert!(parse_args(&strings(&["serve", "--coordinator", "--worker-of", "h:1"])).is_err());
        assert!(parse_args(&strings(&["serve", "--lease-ms", "500"])).is_err());
        assert!(parse_args(&strings(&["serve", "--advertise", "h:1"])).is_err());
        assert!(parse_args(&strings(&["serve", "--lease-ms", "5", "--coordinator"])).is_err());
        assert!(parse_args(&strings(&["fig2", "--coordinator"])).is_err());
        assert!(parse_args(&strings(&["serve", "--worker-of"])).is_err());
    }

    #[test]
    fn paper_and_smoke_set_fidelity() {
        assert_eq!(
            parse_args(&strings(&["fig2", "--paper"]))
                .unwrap()
                .options
                .fidelity,
            Fidelity::Paper
        );
        assert_eq!(
            parse_args(&strings(&["fig2", "--smoke"]))
                .unwrap()
                .options
                .fidelity,
            Fidelity::Smoke
        );
    }

    #[test]
    fn rejects_unknown_flags_and_empty_invocations() {
        assert!(parse_args(&strings(&["fig2", "--bogus"])).is_err());
        assert!(parse_args(&strings(&[])).is_err());
        assert!(parse_args(&strings(&["--seed"])).is_err());
        assert!(parse_args(&strings(&["fig2", "--seed", "abc"])).is_err());
    }

    fn test_cli(names: &[&str]) -> Cli {
        Cli {
            experiments: names.iter().map(|s| s.to_string()).collect(),
            options: RunOptions {
                simulate: false,
                threads: Some(2),
                ..RunOptions::smoke()
            },
            format: OutputFormat::Text,
            serve: ServeArgs::default(),
            shard: ShardArgs::default(),
            profiles: None,
            failure_models: None,
            trace_log: None,
        }
    }

    #[test]
    fn parses_shard_flags() {
        let cli = parse_args(&strings(&[
            "sweep", "--shard", "1/4", "--out", "s1.csv", "--resume",
        ]))
        .unwrap();
        assert_eq!(
            cli.shard.shard,
            Some(ayd_sweep::ShardSpec { index: 1, count: 4 })
        );
        assert_eq!(
            cli.shard.out.as_deref(),
            Some(std::path::Path::new("s1.csv"))
        );
        assert!(cli.shard.resume);
        // Shard coordinates are validated at parse time…
        assert!(parse_args(&strings(&["sweep", "--shard", "4/4", "--out", "x"])).is_err());
        assert!(parse_args(&strings(&["sweep", "--shard", "nope", "--out", "x"])).is_err());
        assert!(parse_args(&strings(&["sweep", "--shard"])).is_err());
        // …and --shard/--resume are meaningless without a file target.
        assert!(parse_args(&strings(&["sweep", "--shard", "0/2"])).is_err());
        assert!(parse_args(&strings(&["sweep", "--resume"])).is_err());
        // The shard/file flags are rejected (not silently dropped) on
        // experiments that never read them.
        let err =
            parse_args(&strings(&["checks", "--shard", "0/2", "--out", "x.csv"])).unwrap_err();
        assert!(err.contains("only apply to sweep"), "{err}");
        assert!(parse_args(&strings(&["fig2", "--out", "x.csv"])).is_err());
        // `all` includes sweep, so a file target is legitimate there.
        assert!(parse_args(&strings(&["all", "--out", "x.csv"])).is_ok());
        // Stdout format flags are meaningless (and silently dropped) in file
        // mode, and sweep+sweep-merge would clobber one another's --out.
        assert!(parse_args(&strings(&["sweep", "--out", "x.csv", "--csv"])).is_err());
        assert!(parse_args(&strings(&["sweep", "--out", "x.csv", "--json"])).is_err());
        let err = parse_args(&strings(&[
            "sweep-merge",
            "sweep",
            "--inputs",
            "a.csv",
            "--out",
            "m.csv",
        ]))
        .unwrap_err();
        assert!(err.contains("cannot be combined"), "{err}");
    }

    #[test]
    fn sweep_merge_arguments_are_validated() {
        let cli = parse_args(&strings(&[
            "sweep-merge",
            "--inputs",
            "a.csv,b.csv",
            "--out",
            "m.csv",
        ]))
        .unwrap();
        assert_eq!(cli.shard.inputs.len(), 2);
        assert!(parse_args(&strings(&["sweep-merge", "--out", "m.csv"])).is_err());
        assert!(parse_args(&strings(&["sweep-merge", "--inputs", "a.csv"])).is_err());
        assert!(parse_args(&strings(&["sweep-merge", "--inputs", ",", "--out", "m"])).is_err());
        // --inputs on any other experiment is rejected.
        assert!(parse_args(&strings(&["sweep", "--inputs", "a.csv"])).is_err());
    }

    #[test]
    fn parses_trace_log_and_obs_report() {
        // --trace-log as a sink on a running experiment…
        let cli = parse_args(&strings(&["sweep", "--trace-log", "t.jsonl"])).unwrap();
        assert_eq!(
            cli.trace_log.as_deref(),
            Some(std::path::Path::new("t.jsonl"))
        );
        // …and as the input of the standalone report.
        let cli = parse_args(&strings(&["obs-report", "--trace-log", "t.jsonl"])).unwrap();
        assert_eq!(cli.experiments, vec!["obs-report"]);
        assert!(parse_args(&strings(&["sweep", "--trace-log"])).is_err());
        // obs-report needs the log and cannot share an invocation with the
        // experiments that would be writing it.
        let err = parse_args(&strings(&["obs-report"])).unwrap_err();
        assert!(err.contains("requires --trace-log"), "{err}");
        let err =
            parse_args(&strings(&["sweep", "obs-report", "--trace-log", "t.jsonl"])).unwrap_err();
        assert!(err.contains("only experiment"), "{err}");
        // `all` keeps excluding the standalone experiments.
        assert!(!ALL_EXPERIMENTS.contains(&"obs-report"));
    }

    #[test]
    fn obs_report_renders_accounting_tables_from_a_log() {
        let dir = std::env::temp_dir().join("ayd-obs-report-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        let records = [
            ayd_obs::SpanRecord {
                trace: 0xfeed,
                id: 1,
                parent: 0,
                name: "request",
                start_ns: 0,
                duration_ns: 1_000,
                fields: vec![("endpoint", ayd_obs::FieldValue::Str("optimize".to_string()))],
            },
            ayd_obs::SpanRecord {
                trace: 0xfeed,
                id: 2,
                parent: 1,
                name: "parse",
                start_ns: 0,
                duration_ns: 990,
                fields: vec![],
            },
        ];
        let log: String = records.iter().map(|r| r.to_json_line() + "\n").collect();
        std::fs::write(&path, log).unwrap();
        let mut cli = test_cli(&["obs-report"]);
        cli.trace_log = Some(path.clone());
        run_obs_report(&cli).unwrap();
        // A malformed log fails with the path and line named.
        std::fs::write(&path, "not json\n").unwrap();
        let err = run_obs_report(&cli).unwrap_err();
        assert!(err.contains("trace line 1"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unknown_experiments_fail_at_parse_time_with_usage() {
        let err = parse_args(&strings(&["sweep", "bogus-experiment"])).unwrap_err();
        assert!(
            err.contains("unknown experiment `bogus-experiment`"),
            "{err}"
        );
        assert!(err.contains("usage:"), "{err}");
        let err = parse_args(&strings(&["sweep", "--bogus"])).unwrap_err();
        assert!(err.contains("unknown flag `--bogus`"), "{err}");
        assert!(err.contains("usage:"), "{err}");
    }

    #[test]
    fn unknown_experiment_is_an_error() {
        assert!(run_experiment("fig999", &test_cli(&["fig999"])).is_err());
    }

    #[test]
    fn table_experiments_run_quickly() {
        let mut cli = test_cli(&["table2"]);
        run_experiment("table2", &cli).unwrap();
        cli.format = OutputFormat::Csv;
        run_experiment("table3", &cli).unwrap();
    }

    #[test]
    fn json_fallback_notice_goes_to_stderr_not_stdout() {
        let mut table = TextTable::new("demo", &["a", "b"]);
        table.push_row(vec!["1".into(), "2".into()]);
        let mut out = Vec::new();
        let mut err = Vec::new();
        emit_to(OutputFormat::Json, vec![table], true, &mut out, &mut err);
        let out = String::from_utf8(out).unwrap();
        let err = String::from_utf8(err).unwrap();
        // stdout carries only data: `#` title comments and CSV lines.
        assert!(!out.contains("note:"), "stdout polluted: {out}");
        assert!(out.starts_with("# demo\n"));
        assert!(out.contains("a,b\n1,2\n"));
        assert!(err.contains("note: JSON output needs the real serde_json"));
        // Without the notice flag (already printed earlier), stderr stays empty.
        let mut table = TextTable::new("demo", &["a"]);
        table.push_row(vec!["1".into()]);
        let mut out2: Vec<u8> = Vec::new();
        let mut err2: Vec<u8> = Vec::new();
        emit_to(OutputFormat::Json, vec![table], false, &mut out2, &mut err2);
        assert!(err2.is_empty());
    }

    #[test]
    fn sweep_csv_output_uses_the_canonical_full_precision_format() {
        let options = RunOptions {
            simulate: false,
            threads: Some(2),
            ..RunOptions::smoke()
        };
        let results = sweep::run(&options);
        let mut out: Vec<u8> = Vec::new();
        let mut err: Vec<u8> = Vec::new();
        emit_sweep_csv_to(&results, true, &mut out, &mut err);
        let out = String::from_utf8(out).unwrap();
        let mut lines = out.lines();
        assert!(lines.next().unwrap().starts_with("# Scenario sweep — "));
        // The golden-pinned header, not the rounded TextTable export.
        assert_eq!(lines.next().unwrap(), ayd_sweep::CSV_HEADER);
        assert_eq!(out.lines().count(), 2 + results.rows.len());
        assert!(String::from_utf8(err).unwrap().contains("note:"));
    }
}
