//! `reproduce` — CLI for regenerating the paper's tables and figures.
//!
//! ```text
//! reproduce <experiment> [--paper|--smoke] [--no-sim] [--json] [--csv] [--seed N]
//!
//! experiments:
//!   table2 table3 fig2 fig3 fig4 fig5 fig6 fig7 ablation engines extensions
//!   checks      headline shape checks (figures 5 and 6 slopes)
//!   all         everything above
//! ```
//!
//! `--json` requires `serde_json`, which this offline build replaces with a
//! no-op stand-in (see `vendor/serde`); the flag is accepted but falls back to
//! CSV with a notice on stderr until the real dependency is restored.

use std::process::ExitCode;

use ayd_exp::config::{Fidelity, RunOptions};
use ayd_exp::{ablation, extensions, figure2, figure3, figure4, figure5, figure6, figure7};
use ayd_exp::{report, tables, TextTable};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OutputFormat {
    Text,
    Json,
    Csv,
}

struct Cli {
    experiments: Vec<String>,
    options: RunOptions,
    format: OutputFormat,
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut experiments = Vec::new();
    let mut options = RunOptions::default();
    let mut format = OutputFormat::Text;
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--paper" => options.fidelity = Fidelity::Paper,
            "--smoke" => options.fidelity = Fidelity::Smoke,
            "--no-sim" => options.simulate = false,
            "--json" => format = OutputFormat::Json,
            "--csv" => format = OutputFormat::Csv,
            "--seed" => {
                let value = iter.next().ok_or("--seed requires a value")?;
                options.seed = value
                    .parse()
                    .map_err(|_| format!("invalid seed `{value}`"))?;
            }
            "--help" | "-h" => return Err(usage()),
            other if other.starts_with('-') => return Err(format!("unknown flag `{other}`")),
            other => experiments.push(other.to_string()),
        }
    }
    if experiments.is_empty() {
        return Err(usage());
    }
    Ok(Cli {
        experiments,
        options,
        format,
    })
}

fn usage() -> String {
    "usage: reproduce <experiment...> [--paper|--smoke] [--no-sim] [--json] [--csv] [--seed N]\n\
     experiments: table2 table3 fig2 fig3 fig4 fig5 fig6 fig7 ablation engines extensions checks all"
        .to_string()
}

fn emit(format: OutputFormat, tables: Vec<TextTable>) {
    match format {
        OutputFormat::Text => {
            for table in tables {
                println!("{}", table.render());
            }
        }
        OutputFormat::Csv | OutputFormat::Json => {
            if format == OutputFormat::Json {
                static NOTICE: std::sync::Once = std::sync::Once::new();
                NOTICE.call_once(|| {
                    eprintln!(
                        "note: JSON output needs the real serde_json (unavailable in this \
                         offline build); emitting CSV instead"
                    );
                });
            }
            for table in tables {
                println!("# {}", table.title());
                println!("{}", table.to_csv());
            }
        }
    }
}

fn run_experiment(name: &str, options: &RunOptions, format: OutputFormat) -> Result<(), String> {
    match name {
        "table2" => {
            let data = tables::table2();
            emit(format, vec![tables::render_table2(&data)]);
        }
        "table3" => {
            let data = tables::table3();
            emit(format, vec![tables::render_table3(&data)]);
        }
        "fig2" => {
            let data = figure2::run(options);
            emit(format, vec![figure2::render(&data)]);
        }
        "fig3" => {
            let data = figure3::run(options);
            emit(format, vec![figure3::render(&data)]);
        }
        "fig4" => {
            let data = figure4::run(options);
            emit(format, vec![figure4::render(&data)]);
        }
        "fig5" => {
            let data = figure5::run(options);
            emit(
                format,
                vec![figure5::render(&data), figure5::render_slopes(&data)],
            );
        }
        "fig6" => {
            let data = figure6::run(options);
            emit(
                format,
                vec![figure6::render(&data), figure6::render_slopes(&data)],
            );
        }
        "fig7" => {
            let data = figure7::run(options);
            emit(format, vec![figure7::render(&data)]);
        }
        "ablation" => {
            let data = ablation::run_first_order_gap(options);
            emit(format, vec![ablation::render_first_order_gap(&data)]);
        }
        "engines" => {
            let data = ablation::run_engine_comparison(options);
            emit(format, vec![ablation::render_engine_comparison(&data)]);
        }
        "extensions" => {
            let data = extensions::run(options);
            emit(format, vec![extensions::render(&data)]);
        }
        "checks" => {
            // The slope checks do not need simulation; force it off for speed.
            let analytic = RunOptions {
                simulate: false,
                ..*options
            };
            let fig5 = figure5::run(&analytic);
            let fig6 = figure6::run(&analytic);
            let checks = report::headline_checks(&fig5, &fig6);
            let table =
                report::render_checks("Headline shape checks (paper vs reproduction)", &checks);
            emit(format, vec![table]);
        }
        "all" => {
            for experiment in [
                "table2",
                "table3",
                "fig2",
                "fig3",
                "fig4",
                "fig5",
                "fig6",
                "fig7",
                "ablation",
                "engines",
                "extensions",
                "checks",
            ] {
                run_experiment(experiment, options, format)?;
            }
        }
        other => return Err(format!("unknown experiment `{other}`\n{}", usage())),
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    for experiment in &cli.experiments {
        if let Err(message) = run_experiment(experiment, &cli.options, cli.format) {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_experiments_and_flags() {
        let cli = parse_args(&strings(&[
            "fig2", "fig5", "--no-sim", "--json", "--seed", "7",
        ]))
        .unwrap();
        assert_eq!(cli.experiments, vec!["fig2", "fig5"]);
        assert!(!cli.options.simulate);
        assert_eq!(cli.options.seed, 7);
        assert_eq!(cli.format, OutputFormat::Json);
    }

    #[test]
    fn paper_and_smoke_set_fidelity() {
        assert_eq!(
            parse_args(&strings(&["fig2", "--paper"]))
                .unwrap()
                .options
                .fidelity,
            Fidelity::Paper
        );
        assert_eq!(
            parse_args(&strings(&["fig2", "--smoke"]))
                .unwrap()
                .options
                .fidelity,
            Fidelity::Smoke
        );
    }

    #[test]
    fn rejects_unknown_flags_and_empty_invocations() {
        assert!(parse_args(&strings(&["fig2", "--bogus"])).is_err());
        assert!(parse_args(&strings(&[])).is_err());
        assert!(parse_args(&strings(&["--seed"])).is_err());
        assert!(parse_args(&strings(&["fig2", "--seed", "abc"])).is_err());
    }

    #[test]
    fn unknown_experiment_is_an_error() {
        let options = RunOptions {
            simulate: false,
            ..RunOptions::smoke()
        };
        assert!(run_experiment("fig999", &options, OutputFormat::Text).is_err());
    }

    #[test]
    fn table_experiments_run_quickly() {
        let options = RunOptions {
            simulate: false,
            ..RunOptions::smoke()
        };
        run_experiment("table2", &options, OutputFormat::Text).unwrap();
        run_experiment("table3", &options, OutputFormat::Csv).unwrap();
    }
}
