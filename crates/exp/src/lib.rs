//! # ayd-exp — experiment harness
//!
//! Reproduces every table and figure of the evaluation section of *"When Amdahl
//! Meets Young/Daly"* (CLUSTER 2016):
//!
//! | Experiment | Module | Content |
//! |------------|--------|---------|
//! | Table II   | [`tables`]  | platform parameters |
//! | Table III  | [`tables`]  | resilience scenarios + fitted coefficients |
//! | Figure 2   | [`figure2`] | optimal `P*`, `T*`, overhead per scenario on the four platforms |
//! | Figure 3   | [`figure3`] | `T*_P`, simulated overhead and first-order gap vs processor count (Hera) |
//! | Figure 4   | [`figure4`] | optima and overhead vs sequential fraction `α` (Hera) |
//! | Figure 5   | [`figure5`] | optima and overhead vs `λ_ind`, `α = 0.1` (Hera), with asymptotic slopes |
//! | Figure 6   | [`figure6`] | optima and overhead vs `λ_ind`, `α = 0` (numerical only) |
//! | Figure 7   | [`figure7`] | optima and overhead vs downtime `D` (Hera) |
//! | Ablations  | [`ablation`] | first-order-vs-numerical gap; window vs event-stream engines |
//! | Extension  | [`extensions`] | non-Amdahl speedup profiles (paper's future work) |
//! | Sweep      | [`sweep`]   | demonstration grids for the `ayd-sweep` parallel sweep engine |
//!
//! The sweep-shaped figures (3, 5, 6) and both ablations delegate their inner
//! loops to the [`ayd_sweep`] engine (parallel, memoised, deterministic); the
//! remaining modules use the shared [`evaluate::Evaluator`] kernel directly.
//!
//! Each runner returns plain serialisable data, renders a text table resembling
//! the figure's series/rows, and is reachable from the `reproduce` CLI
//! (`cargo run -p ayd-exp --bin reproduce -- fig2`) as well as from the Criterion
//! benches of `ayd-bench`.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod ablation;
pub mod config;
pub mod evaluate;
pub mod extensions;
pub mod figure2;
pub mod figure3;
pub mod figure4;
pub mod figure5;
pub mod figure6;
pub mod figure7;
pub mod obsreport;
pub mod report;
pub mod sweep;
pub mod table;
pub mod tables;

pub use config::{Fidelity, RunOptions};
pub use evaluate::{Evaluator, OperatingPoint, OptimumComparison};
pub use table::TextTable;
