//! The `sweep` subcommand: demonstration grids for the `ayd-sweep` engine.
//!
//! Two presets are exposed through the `reproduce` CLI:
//!
//! * **Analytical** (`--no-sim`): a large grid — every platform × every
//!   scenario × two sequential fractions × two error-rate multipliers × three
//!   processor counts × four pattern lengths (1152 cells) — evaluated with the
//!   exact and first-order models only. Engine time is ~2 ms in release mode
//!   (~40 ms end-to-end CLI including process startup); the pattern-length
//!   axis exercises the memoisation cache (the optimiser runs once per 4
//!   cells).
//! * **Simulated** (default): a small grid (24 cells) that also simulates the
//!   first-order operating point of every cell.
//!
//! Both presets honour the sweep determinism contract: for a fixed seed the
//! output is byte-identical regardless of `--threads` and `--no-cache`.

use ayd_core::{FailureModelSpec, ProfileSpec, SpeedupProfile};
use ayd_platforms::{PlatformId, ScenarioId};
use ayd_sweep::{
    misspecification_report, MisspecificationReport, ProcessorAxis, ScenarioGrid, SweepExecutor,
    SweepOptions, SweepResults,
};

use crate::config::RunOptions;
use crate::table::{fmt_option, fmt_value, TextTable};

/// The demonstration grid of the `sweep` subcommand. The analytical preset is
/// the large one; the simulating preset keeps the cell count small enough for
/// interactive use.
pub fn demo_grid(simulate: bool) -> ScenarioGrid {
    demo_grid_with_profiles(simulate, None)
}

/// [`demo_grid`] with the application axis overridden by an explicit list of
/// speedup profiles (the CLI's `--profiles` flag). `None` keeps each preset's
/// default Amdahl axis.
pub fn demo_grid_with_profiles(
    simulate: bool,
    profiles: Option<&[SpeedupProfile]>,
) -> ScenarioGrid {
    demo_grid_with_axes(simulate, profiles, None)
}

/// [`demo_grid`] with the application and failure-model axes overridden by
/// explicit lists (the CLI's `--profiles` and `--failure-models` flags).
/// `None` keeps each preset's default: the Amdahl application axis and the
/// paper's exponential failure law.
pub fn demo_grid_with_axes(
    simulate: bool,
    profiles: Option<&[SpeedupProfile]>,
    failure_models: Option<&[FailureModelSpec]>,
) -> ScenarioGrid {
    let mut builder = if simulate {
        ScenarioGrid::builder()
            .platforms(&[PlatformId::Hera, PlatformId::Atlas])
            .scenarios(&ScenarioId::REPRESENTATIVE)
            .lambda_multipliers(&[1.0, 10.0])
            .processors(ProcessorAxis::Fixed(vec![512.0, 1024.0]))
    } else {
        ScenarioGrid::builder()
            .platforms(&PlatformId::ALL)
            .scenarios(&ScenarioId::ALL)
            .alphas(&[0.05, 0.1])
            .lambda_multipliers(&[1.0, 10.0])
            .processors(ProcessorAxis::Fixed(vec![256.0, 1024.0, 4096.0]))
            .pattern_lengths(&[900.0, 3_600.0, 14_400.0, 57_600.0])
    };
    if let Some(profiles) = profiles {
        builder = builder.profiles(profiles);
    }
    if let Some(failure_models) = failure_models {
        builder = builder.failure_models(failure_models);
    }
    builder.build().expect("the demo grids are valid")
}

/// Runs the demo sweep. The worker-thread count and the cache switch come
/// from the run options (`--threads` / `--no-cache` on the CLI).
pub fn run(options: &RunOptions) -> SweepResults {
    run_with_profiles(options, None)
}

/// [`run`] over a demo grid whose application axis is the given profiles
/// (`--profiles` on the CLI); `None` keeps the preset's Amdahl axis.
pub fn run_with_profiles(
    options: &RunOptions,
    profiles: Option<&[SpeedupProfile]>,
) -> SweepResults {
    run_with_axes(options, profiles, None)
}

/// [`run`] over a demo grid with both the application and failure-model axes
/// overridden (`--profiles` / `--failure-models` on the CLI).
pub fn run_with_axes(
    options: &RunOptions,
    profiles: Option<&[SpeedupProfile]>,
    failure_models: Option<&[FailureModelSpec]>,
) -> SweepResults {
    SweepExecutor::new(SweepOptions::new(*options)).run(&demo_grid_with_axes(
        options.simulate,
        profiles,
        failure_models,
    ))
}

/// Renders sweep results as a text table (one row per cell).
pub fn render(results: &SweepResults) -> TextTable {
    // The title deliberately omits the cache hit/miss counters: they may vary
    // with thread scheduling (concurrent misses can compute twice), while the
    // rendered table must honour the byte-identical determinism contract.
    let mut table = TextTable::new(
        format!("Scenario sweep — {} cells", results.rows.len()),
        &[
            "platform",
            "scenario",
            "profile",
            "failure",
            "lambda_x",
            "P",
            "T*_P (first-order)",
            "H (first-order)",
            "T (numerical)",
            "H (numerical)",
            "T (pattern)",
            "H (pattern)",
            "H (simulated)",
            "H (stream)",
        ],
    );
    for row in &results.rows {
        let fo = row.first_order;
        let simulated = row
            .prescribed
            .and_then(|p| p.simulated)
            .or_else(|| fo.and_then(|p| p.simulated));
        table.push_row(vec![
            row.platform.name().to_string(),
            row.scenario.to_string(),
            ProfileSpec::from(row.profile).to_string(),
            row.failure_model.to_string(),
            fmt_value(row.lambda_multiplier),
            fmt_option(row.fixed_processors),
            fmt_option(fo.map(|p| p.period)),
            fmt_option(fo.map(|p| p.predicted_overhead)),
            fmt_value(row.numerical.period),
            fmt_value(row.numerical.predicted_overhead),
            fmt_option(row.pattern_length),
            fmt_option(row.prescribed.map(|p| p.predicted_overhead)),
            fmt_option(simulated.map(|s| s.mean)),
            fmt_option(row.stream_simulated.map(|s| s.mean)),
        ]);
    }
    table
}

/// The misspecification report of a sweep: how far the paper's exponential
/// analytics drift on non-exponential cells (empty on all-exponential or
/// analytic-only runs).
pub fn misspecification(results: &SweepResults) -> MisspecificationReport {
    misspecification_report(results)
}

/// Renders a misspecification report as a text table (one row per
/// non-exponential cell that carries a primary-point simulation).
pub fn render_misspecification(report: &MisspecificationReport) -> TextTable {
    let mut table = TextTable::new(
        format!(
            "Misspecification under non-exponential failures — {} of {} rows beyond 3 sigma",
            report.significant_count(),
            report.rows.len()
        ),
        &[
            "platform",
            "scenario",
            "failure",
            "lambda_ind",
            "H (model)",
            "H (simulated)",
            "ci95",
            "rel_error_%",
            "3-sigma",
        ],
    );
    for row in &report.rows {
        table.push_row(vec![
            row.platform.name().to_string(),
            row.scenario.to_string(),
            row.failure_model.to_string(),
            fmt_value(row.lambda_ind),
            fmt_value(row.predicted_overhead),
            fmt_value(row.simulated_overhead),
            fmt_value(row.simulated_ci95),
            format!("{:+.2}", 100.0 * row.relative_error),
            (if row.significant { "yes" } else { "no" }).to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analytical_demo_grid_has_over_a_thousand_cells() {
        let grid = demo_grid(false);
        assert_eq!(grid.len(), 4 * 6 * 2 * 2 * 3 * 4);
        assert!(grid.len() >= 1_000);
        assert_eq!(demo_grid(true).len(), 2 * 3 * 2 * 2);
    }

    #[test]
    fn analytical_sweep_renders_every_cell() {
        let options = RunOptions {
            simulate: false,
            threads: Some(2),
            ..RunOptions::smoke()
        };
        let results = run(&options);
        assert_eq!(results.rows.len(), demo_grid(false).len());
        assert_eq!(render(&results).len(), results.rows.len());
        // The pattern-length axis reuses each optimiser evaluation, so the
        // cache must score hits.
        assert!(results.cache.hits > 0);
    }

    #[test]
    fn profile_override_reshapes_the_application_axis() {
        let profiles = [
            SpeedupProfile::amdahl(0.1).unwrap(),
            SpeedupProfile::power_law(0.8).unwrap(),
            SpeedupProfile::gustafson(0.05).unwrap(),
            SpeedupProfile::perfectly_parallel(),
        ];
        let grid = demo_grid_with_profiles(true, Some(&profiles));
        // 2 platforms × 3 scenarios × 4 profiles × 2 λ × 2 P.
        assert_eq!(grid.len(), 2 * 3 * 4 * 2 * 2);
        // Smoke-level simulation on the small preset: the override must also
        // hold under the simulating grid (and stay deterministic there).
        let options = RunOptions {
            threads: Some(2),
            ..RunOptions::smoke()
        };
        let results = run_with_profiles(&options, Some(&profiles));
        assert_eq!(results.rows.len(), grid.len());
        // Extension-profile rows carry no first-order series; Amdahl rows do.
        for row in &results.rows {
            match row.profile {
                SpeedupProfile::Amdahl { .. } | SpeedupProfile::PerfectlyParallel => {
                    assert!(row.first_order.is_some(), "{:?}", row.profile);
                }
                _ => assert!(row.first_order.is_none(), "{:?}", row.profile),
            }
        }
        // Determinism holds for mixed-profile grids too.
        let reran = run_with_profiles(
            &RunOptions {
                threads: Some(4),
                cache: false,
                ..options
            },
            Some(&profiles),
        );
        assert_eq!(results.to_csv(), reran.to_csv());
    }

    #[test]
    fn failure_model_override_reshapes_the_grid_and_reports_misspecification() {
        let models = [
            FailureModelSpec::exponential(),
            FailureModelSpec::weibull(0.7).unwrap(),
        ];
        let grid = demo_grid_with_axes(true, None, Some(&models));
        assert_eq!(grid.len(), 2 * 3 * 2 * 2 * 2);
        let options = RunOptions {
            threads: Some(2),
            ..RunOptions::smoke()
        };
        let results = run_with_axes(&options, None, Some(&models));
        assert_eq!(results.rows.len(), grid.len());
        // Every weibull:0.7 cell is compared against its simulation; no
        // exponential cell is.
        let report = misspecification(&results);
        assert_eq!(report.rows.len(), grid.len() / 2);
        let table = render_misspecification(&report);
        assert_eq!(table.len(), report.rows.len());
        assert!(table.render().contains("weibull:0.7"));
        // Determinism holds for mixed-law grids too.
        let reran = run_with_axes(
            &RunOptions {
                threads: Some(4),
                cache: false,
                ..options
            },
            None,
            Some(&models),
        );
        assert_eq!(results.to_csv(), reran.to_csv());
    }

    #[test]
    fn threads_and_cache_do_not_change_the_output() {
        let options = RunOptions {
            simulate: false,
            threads: Some(1),
            ..RunOptions::smoke()
        };
        let baseline = run(&options);
        let parallel = run(&RunOptions {
            threads: Some(4),
            cache: false,
            ..options
        });
        assert_eq!(baseline.rows, parallel.rows);
        assert_eq!(baseline.to_csv(), parallel.to_csv());
    }
}
