//! Figure 4 — impact of the sequential fraction `α` on the optimal pattern
//! (platform Hera, scenarios 1, 3 and 5).
//!
//! As `α` decreases, the optimal allocation enrols more processors (Amdahl's law
//! allows more parallelism to pay off) and the overhead drops; the checkpointing
//! period shrinks accordingly (except in scenario 1, where `T*` does not depend on
//! `P`). For `α = 0` the closed forms no longer apply and only the numerical
//! optimum is reported — and even then the allocation stays bounded, in sharp
//! contrast with the error-free setting.

use serde::{Deserialize, Serialize};

use ayd_platforms::{ExperimentSetup, PlatformId, ScenarioId};

use crate::config::RunOptions;
use crate::evaluate::{Evaluator, OptimumComparison};
use crate::table::{fmt_option, fmt_value, TextTable};

/// One point of Figure 4: a scenario at a given sequential fraction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Figure4Row {
    /// Scenario number (1, 3 or 5).
    pub scenario: usize,
    /// Sequential fraction `α`.
    pub alpha: f64,
    /// First-order and numerical optima.
    pub comparison: OptimumComparison,
}

/// All series of Figure 4.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Figure4Data {
    /// Platform used (Hera).
    pub platform: PlatformId,
    /// Sequential fractions swept.
    pub alphas: Vec<f64>,
    /// One row per (scenario, alpha).
    pub rows: Vec<Figure4Row>,
}

/// The sequential fractions of the paper's sweep (0 rendered on a log axis).
pub fn default_alpha_sweep() -> Vec<f64> {
    vec![0.0, 1e-4, 1e-3, 1e-2, 1e-1]
}

/// Runs Figure 4 for the given sequential fractions.
pub fn run_with_alphas(alphas: &[f64], options: &RunOptions) -> Figure4Data {
    // Smaller α pushes the optimum towards much larger processor counts; widen
    // the numerical search accordingly (the paper observes P* up to ~10^6).
    let evaluator = Evaluator::new(*options).with_processor_range(1.0, 1e9);
    let mut rows = Vec::new();
    for &scenario in &ScenarioId::REPRESENTATIVE {
        for &alpha in alphas {
            let model = ExperimentSetup::paper_default(PlatformId::Hera, scenario)
                .with_alpha(alpha)
                .model()
                .expect("alpha sweep setups are valid");
            rows.push(Figure4Row {
                scenario: scenario.number(),
                alpha,
                comparison: evaluator.compare(&model),
            });
        }
    }
    Figure4Data {
        platform: PlatformId::Hera,
        alphas: alphas.to_vec(),
        rows,
    }
}

/// Runs Figure 4 with the paper's α values.
pub fn run(options: &RunOptions) -> Figure4Data {
    run_with_alphas(&default_alpha_sweep(), options)
}

/// Renders the figure as one table.
pub fn render(data: &Figure4Data) -> TextTable {
    let mut table = TextTable::new(
        "Figure 4 — optimal pattern vs sequential fraction (Hera)",
        &[
            "scenario",
            "alpha",
            "P* (first-order)",
            "P* (optimal)",
            "T* (first-order)",
            "T* (optimal)",
            "H (first-order)",
            "H (optimal)",
            "H (simulated @opt)",
        ],
    );
    for row in &data.rows {
        let fo = row.comparison.first_order;
        let num = row.comparison.numerical;
        table.push_row(vec![
            row.scenario.to_string(),
            fmt_value(row.alpha),
            fmt_option(fo.map(|p| p.processors)),
            fmt_value(num.processors),
            fmt_option(fo.map(|p| p.period)),
            fmt_value(num.period),
            fmt_option(fo.and_then(|p| p.formula_overhead)),
            fmt_value(num.predicted_overhead),
            fmt_option(num.simulated.map(|s| s.mean)),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analytical() -> RunOptions {
        RunOptions {
            simulate: false,
            ..RunOptions::smoke()
        }
    }

    #[test]
    fn smaller_alpha_enrolls_more_processors_and_lowers_overhead() {
        let data = run_with_alphas(&[1e-3, 1e-2, 1e-1], &analytical());
        for scenario in [1usize, 3, 5] {
            let series: Vec<&Figure4Row> = data
                .rows
                .iter()
                .filter(|r| r.scenario == scenario)
                .collect();
            // Rows are ordered by increasing alpha; processors must decrease and
            // overhead must increase along the series.
            for w in series.windows(2) {
                assert!(
                    w[0].comparison.numerical.processors > w[1].comparison.numerical.processors,
                    "scenario {scenario}"
                );
                assert!(
                    w[0].comparison.numerical.predicted_overhead
                        < w[1].comparison.numerical.predicted_overhead,
                    "scenario {scenario}"
                );
            }
        }
    }

    #[test]
    fn alpha_zero_has_no_first_order_solution_but_bounded_numerical_optimum() {
        let data = run_with_alphas(&[0.0], &analytical());
        for row in &data.rows {
            assert!(
                row.comparison.first_order.is_none(),
                "scenario {}",
                row.scenario
            );
            let p = row.comparison.numerical.processors;
            // The paper observes P* bounded by ~10^6 on Hera even for α = 0.
            assert!(p > 1_000.0, "scenario {}: P*={p}", row.scenario);
            assert!(p < 1e8, "scenario {}: P*={p}", row.scenario);
            assert!(row.comparison.numerical.predicted_overhead > 1e-6);
        }
    }

    #[test]
    fn first_order_overhead_formula_stays_close_to_numerical_down_to_small_alpha() {
        // Figure 4(c): the closed-form first-order overhead H* remains in close
        // proximity to the optimal overhead down to α = 1e-4, even though the
        // first-order P* itself starts to deviate (it leaves the validity region
        // of Inequality (5) when α becomes very small).
        let data = run_with_alphas(&[1e-4, 1e-2], &analytical());
        for row in &data.rows {
            let fo = row
                .comparison
                .first_order
                .expect("alpha > 0 has a first-order optimum");
            let numerical = row.comparison.numerical.predicted_overhead;
            // Exact overhead achieved at the first-order operating point: never
            // better than the optimum, and within the same order of magnitude even
            // at α = 1e-4 (the paper's Figure 4(c) is a log-scale plot on which
            // the two curves visually overlap — i.e. they agree up to a small
            // constant factor once the first-order P* leaves the validity region).
            let achieved_ratio = fo.predicted_overhead / numerical;
            assert!(achieved_ratio >= 1.0 - 1e-9);
            let achieved_tolerance = if row.alpha >= 1e-2 { 1.03 } else { 1.6 };
            assert!(
                achieved_ratio < achieved_tolerance,
                "scenario {} alpha {}: achieved {} vs optimal {}",
                row.scenario,
                row.alpha,
                fo.predicted_overhead,
                numerical
            );
            // The closed-form promise H* stays within the same order of magnitude
            // as well (it under-estimates once outside the validity region).
            let formula = fo.formula_overhead.unwrap();
            let formula_ratio = formula / numerical;
            assert!(
                formula_ratio > 0.3 && formula_ratio < 1.1,
                "scenario {} alpha {}: formula {} vs optimal {}",
                row.scenario,
                row.alpha,
                formula,
                numerical
            );
        }
    }

    #[test]
    fn scenario5_gains_the_most_at_small_alpha() {
        // Scenario 5's checkpoint cost shrinks with P, so it achieves the lowest
        // overhead once α is small.
        let data = run_with_alphas(&[1e-4], &analytical());
        let overhead = |s: usize| {
            data.rows
                .iter()
                .find(|r| r.scenario == s)
                .unwrap()
                .comparison
                .numerical
                .predicted_overhead
        };
        assert!(overhead(5) < overhead(1));
        assert!(overhead(5) < overhead(3));
    }

    #[test]
    fn render_includes_all_rows() {
        let data = run_with_alphas(&[1e-2, 1e-1], &analytical());
        assert_eq!(render(&data).len(), 6);
    }
}
