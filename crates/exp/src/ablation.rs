//! Ablation studies of the reproduction's own design choices.
//!
//! * **A1 — first-order gap across the validity region**: how far can the
//!   processor count be pushed (as an order of `λ_ind`) before the first-order
//!   period of Theorem 1 stops being a good surrogate for the numerically optimal
//!   period? This quantifies the validity bounds of Section III.B.
//! * **A2 — simulation engines**: the window-sampling and event-stream engines
//!   implement the same stochastic process with different mechanics; this ablation
//!   measures how closely their outputs agree (they must differ only by
//!   Monte-Carlo noise).

use serde::{Deserialize, Serialize};

use ayd_core::ValidityBounds;
use ayd_platforms::{ExperimentSetup, PlatformId, ScenarioId};
use ayd_sweep::{ProcessorAxis, ScenarioGrid, SweepExecutor, SweepOptions};

use crate::config::RunOptions;
use crate::table::{fmt_value, TextTable};

/// One row of ablation A1: the first-order-versus-numerical overhead gap at a
/// processor count of a given order in `λ_ind`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FirstOrderGapRow {
    /// Scenario number.
    pub scenario: usize,
    /// Order `x` such that the evaluated processor count is `λ_ind^{-x}`.
    pub processor_order: f64,
    /// The concrete processor count.
    pub processors: f64,
    /// Whether the point lies inside the validity region of Inequality (5).
    pub within_validity_bounds: bool,
    /// Relative overhead excess of the first-order period over the numerically
    /// optimal period at this processor count (percent).
    pub gap_percent: f64,
}

/// Results of ablation A1.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FirstOrderGapData {
    /// One row per (scenario, processor order).
    pub rows: Vec<FirstOrderGapRow>,
}

/// Runs ablation A1 on Hera for scenarios 1, 3 and 5, sweeping the order of the
/// processor count from 0.1 to 0.45 (`P = λ_ind^{-x}`).
///
/// The sweep (three scenarios × seven lambda orders, first-order period versus
/// numerically optimal period at each fixed `P`) runs on `ayd-sweep`'s
/// lambda-order processor axis; only the validity-bound classification stays
/// figure-specific.
pub fn run_first_order_gap(options: &RunOptions) -> FirstOrderGapData {
    let orders = [0.10, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45];
    let grid = ScenarioGrid::builder()
        .platforms(&[PlatformId::Hera])
        .scenarios(&ScenarioId::REPRESENTATIVE)
        .processors(ProcessorAxis::LambdaOrders(orders.to_vec()))
        .build()
        .expect("the ablation A1 grid is valid");
    let analytic = RunOptions {
        simulate: false,
        ..*options
    };
    let results = SweepExecutor::new(SweepOptions::new(analytic)).run(&grid);
    // The validity bound of Inequality (5) is constant per scenario: derive the
    // three bounds once, not per output row.
    let order_bounds: Vec<(usize, f64)> = ScenarioId::REPRESENTATIVE
        .iter()
        .map(|&scenario| {
            let model = ExperimentSetup::paper_default(PlatformId::Hera, scenario)
                .model()
                .expect("paper defaults are valid");
            let bounds = ValidityBounds::for_costs(&model.costs);
            (scenario.number(), bounds.effective_processor_order_bound())
        })
        .collect();
    let rows = results
        .rows
        .iter()
        .map(|row| {
            let (_, order_bound) = order_bounds
                .iter()
                .find(|(number, _)| *number == row.scenario)
                .expect("every sweep row maps to a representative scenario");
            let order = row
                .processor_order
                .expect("lambda-order cells carry their order");
            let fo = row
                .first_order
                .expect("fixed-P cells always carry a first-order period");
            FirstOrderGapRow {
                scenario: row.scenario,
                processor_order: order,
                processors: fo.processors,
                within_validity_bounds: order < *order_bound,
                gap_percent: 100.0 * (fo.predicted_overhead - row.numerical.predicted_overhead)
                    / row.numerical.predicted_overhead,
            }
        })
        .collect();
    FirstOrderGapData { rows }
}

/// Renders ablation A1 as a table.
pub fn render_first_order_gap(data: &FirstOrderGapData) -> TextTable {
    let mut table = TextTable::new(
        "Ablation A1 — first-order gap vs processor order x (P = lambda^-x, Hera)",
        &["scenario", "x", "P", "within bounds", "gap (%)"],
    );
    for row in &data.rows {
        table.push_row(vec![
            row.scenario.to_string(),
            format!("{:.2}", row.processor_order),
            fmt_value(row.processors),
            row.within_validity_bounds.to_string(),
            format!("{:.4}", row.gap_percent),
        ]);
    }
    table
}

/// One row of ablation A2: both engines simulated at the same operating point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EngineComparisonRow {
    /// Scenario number.
    pub scenario: usize,
    /// Operating point: processor count.
    pub processors: f64,
    /// Operating point: period (seconds).
    pub period: f64,
    /// Analytical expected overhead (Proposition 1).
    pub analytical: f64,
    /// Simulated overhead, window-sampling engine.
    pub window_engine: f64,
    /// Simulated overhead, event-stream engine.
    pub stream_engine: f64,
    /// Relative disagreement between the two engines.
    pub relative_disagreement: f64,
}

/// Results of ablation A2.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EngineComparisonData {
    /// One row per scenario.
    pub rows: Vec<EngineComparisonRow>,
}

/// Runs ablation A2: simulates the first-order optimum of Hera scenarios 1, 3
/// and 5 with both engines.
///
/// Runs on `ayd-sweep`'s engine-comparison mode: each cell's primary operating
/// point (the first-order optimum, or the numerical one when no first-order
/// solution exists) is simulated with the window-sampling engine and again
/// with the event-stream engine.
pub fn run_engine_comparison(options: &RunOptions) -> EngineComparisonData {
    let grid = ScenarioGrid::builder()
        .platforms(&[PlatformId::Hera])
        .scenarios(&ScenarioId::REPRESENTATIVE)
        .build()
        .expect("the ablation A2 grid is valid");
    // A2 always simulates (that is the whole point of the ablation), and only
    // at the primary point: skip the numerical-optimum simulation.
    let sweep_options = SweepOptions::new(RunOptions {
        simulate: true,
        ..*options
    })
    .with_compare_engines(true)
    .with_simulate_numerical(false);
    let results = SweepExecutor::new(sweep_options).run(&grid);
    let rows = results
        .rows
        .iter()
        .map(|row| {
            let point = row.primary_point();
            let window = point
                .simulated
                .expect("A2 simulates the primary point of every cell");
            let stream = row
                .stream_simulated
                .expect("engine-comparison mode simulates the event-stream engine");
            EngineComparisonRow {
                scenario: row.scenario,
                processors: point.processors,
                period: point.period,
                analytical: point.predicted_overhead,
                window_engine: window.mean,
                stream_engine: stream.mean,
                relative_disagreement: (window.mean - stream.mean).abs() / window.mean,
            }
        })
        .collect();
    EngineComparisonData { rows }
}

/// Renders ablation A2 as a table.
pub fn render_engine_comparison(data: &EngineComparisonData) -> TextTable {
    let mut table = TextTable::new(
        "Ablation A2 — window-sampling vs event-stream engines (Hera)",
        &[
            "scenario",
            "P",
            "T",
            "analytical H",
            "window H",
            "stream H",
            "disagreement",
        ],
    );
    for row in &data.rows {
        table.push_row(vec![
            row.scenario.to_string(),
            fmt_value(row.processors),
            fmt_value(row.period),
            fmt_value(row.analytical),
            fmt_value(row.window_engine),
            fmt_value(row.stream_engine),
            format!("{:.4}%", 100.0 * row.relative_disagreement),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gap_is_tiny_inside_the_validity_region() {
        let options = RunOptions {
            simulate: false,
            ..RunOptions::smoke()
        };
        let data = run_first_order_gap(&options);
        assert_eq!(data.rows.len(), 3 * 7);
        for row in &data.rows {
            assert!(row.gap_percent >= -1e-6);
            if row.within_validity_bounds && row.processor_order <= 0.3 {
                assert!(
                    row.gap_percent < 1.0,
                    "scenario {} x={}: gap {}%",
                    row.scenario,
                    row.processor_order,
                    row.gap_percent
                );
            }
        }
    }

    #[test]
    fn validity_bound_is_half_for_scenario1_and_larger_otherwise() {
        let options = RunOptions {
            simulate: false,
            ..RunOptions::smoke()
        };
        let data = run_first_order_gap(&options);
        // Scenario 1 (c ≠ 0): x = 0.45 is still below δ = 0.5 → within bounds.
        // Scenario 3/5 (c = 0): δ = 1, all sampled orders are within bounds.
        for row in &data.rows {
            assert!(
                row.within_validity_bounds,
                "all sampled orders are below their δ"
            );
        }
        let rendered = render_first_order_gap(&data);
        assert_eq!(rendered.len(), data.rows.len());
    }

    #[test]
    fn engines_agree_to_monte_carlo_noise() {
        let data = run_engine_comparison(&RunOptions::smoke());
        assert_eq!(data.rows.len(), 3);
        for row in &data.rows {
            assert!(
                row.relative_disagreement < 0.05,
                "scenario {}: window={} stream={}",
                row.scenario,
                row.window_engine,
                row.stream_engine
            );
            // Both engines also agree with the analytical expectation.
            assert!((row.window_engine - row.analytical).abs() / row.analytical < 0.1);
            assert!((row.stream_engine - row.analytical).abs() / row.analytical < 0.1);
        }
        assert_eq!(render_engine_comparison(&data).len(), 3);
    }
}
