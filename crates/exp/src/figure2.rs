//! Figure 2 — performance of the optimal patterns in the six resilience
//! scenarios on the four platforms (`α = 0.1`).
//!
//! For every (platform, scenario) pair the paper plots three panels: the optimal
//! number of processors `P*`, the optimal checkpointing period `T*` and the
//! execution overhead, each with a "First-order" and an "Optimal" (numerical)
//! series; the overhead panel additionally separates analytical predictions from
//! simulation results. [`run`] regenerates all of those series.

use serde::{Deserialize, Serialize};

use ayd_platforms::{ExperimentSetup, PlatformId, ScenarioId};

use crate::config::RunOptions;
use crate::evaluate::{Evaluator, OptimumComparison};
use crate::table::{fmt_option, fmt_value, TextTable};

/// One (platform, scenario) cell of Figure 2.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Figure2Row {
    /// Platform name.
    pub platform: PlatformId,
    /// Scenario number (1–6).
    pub scenario: usize,
    /// First-order and numerical optima (with simulations when requested).
    pub comparison: OptimumComparison,
}

/// All series of Figure 2.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Figure2Data {
    /// Sequential fraction used (the paper fixes 0.1).
    pub alpha: f64,
    /// One row per (platform, scenario) pair, platforms outermost.
    pub rows: Vec<Figure2Row>,
}

/// Runs Figure 2 for a single platform (all six scenarios).
pub fn run_platform(platform: PlatformId, options: &RunOptions) -> Vec<Figure2Row> {
    let evaluator = Evaluator::new(*options);
    ScenarioId::ALL
        .iter()
        .map(|&scenario| {
            let model = ExperimentSetup::paper_default(platform, scenario)
                .model()
                .expect("paper-default setups are valid");
            Figure2Row {
                platform,
                scenario: scenario.number(),
                comparison: evaluator.compare(&model),
            }
        })
        .collect()
}

/// Runs the full Figure 2 (four platforms × six scenarios).
pub fn run(options: &RunOptions) -> Figure2Data {
    let mut rows = Vec::with_capacity(24);
    for platform in PlatformId::ALL {
        rows.extend(run_platform(platform, options));
    }
    Figure2Data { alpha: 0.1, rows }
}

/// Renders the figure's series as one table (a row per platform/scenario pair).
pub fn render(data: &Figure2Data) -> TextTable {
    let mut table = TextTable::new(
        format!(
            "Figure 2 — optimal patterns per scenario (alpha = {})",
            data.alpha
        ),
        &[
            "platform",
            "scenario",
            "P* (first-order)",
            "P* (optimal)",
            "T* (first-order)",
            "T* (optimal)",
            "H (fo prediction)",
            "H (fo simulation)",
            "H (opt prediction)",
            "H (opt simulation)",
        ],
    );
    for row in &data.rows {
        let fo = row.comparison.first_order;
        let num = row.comparison.numerical;
        table.push_row(vec![
            format!("{:?}", row.platform),
            row.scenario.to_string(),
            fmt_option(fo.map(|p| p.processors)),
            fmt_value(num.processors),
            fmt_option(fo.map(|p| p.period)),
            fmt_value(num.period),
            fmt_option(fo.and_then(|p| p.formula_overhead)),
            fmt_option(fo.and_then(|p| p.simulated.map(|s| s.mean))),
            fmt_value(num.predicted_overhead),
            fmt_option(num.simulated.map(|s| s.mean)),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analytical() -> RunOptions {
        RunOptions {
            simulate: false,
            ..RunOptions::smoke()
        }
    }

    #[test]
    fn hera_matches_paper_magnitudes() {
        // Figure 2, Hera panels: P* between ~200 and ~900 across scenarios,
        // T* between ~2000 s and ~10000 s, overhead ≈ 0.11 in scenarios 1–4.
        let rows = run_platform(PlatformId::Hera, &analytical());
        assert_eq!(rows.len(), 6);
        for row in &rows {
            let p = row.comparison.numerical.processors;
            assert!(
                p > 100.0 && p < 2_000.0,
                "scenario {}: P*={p}",
                row.scenario
            );
            let h = row.comparison.numerical.predicted_overhead;
            assert!(h > 0.10 && h < 0.14, "scenario {}: H={h}", row.scenario);
        }
        // Scenarios 1–4 have first-order optima close to the numerical ones.
        for row in rows.iter().filter(|r| r.scenario <= 4) {
            let gap = row.comparison.overhead_gap().expect("first-order exists");
            assert!(gap.abs() < 0.02, "scenario {}: gap={gap}", row.scenario);
        }
        // Scenario 6 has no first-order solution (only the numerical one is shown
        // in the paper).
        assert!(rows[5].comparison.first_order.is_none());
        // Scenarios 5 and 6 enrol more processors than scenario 1 (their
        // checkpoint cost decreases with P).
        let p1 = rows[0].comparison.numerical.processors;
        let p5 = rows[4].comparison.numerical.processors;
        let p6 = rows[5].comparison.numerical.processors;
        assert!(p5 > p1, "P*(S5)={p5} should exceed P*(S1)={p1}");
        assert!(
            p6 >= p5 * 0.8,
            "P*(S6)={p6} should be comparable to or above P*(S5)={p5}"
        );
    }

    #[test]
    fn full_figure_covers_all_platform_scenario_pairs() {
        let data = run(&analytical());
        assert_eq!(data.rows.len(), 24);
        let rendered = render(&data);
        assert_eq!(rendered.len(), 24);
        // Coastal SSD has the largest checkpoint cost, hence the longest periods.
        let t_hera_s1 = data.rows[0].comparison.numerical.period;
        let t_ssd_s1 = data
            .rows
            .iter()
            .find(|r| r.platform == PlatformId::CoastalSsd && r.scenario == 1)
            .unwrap()
            .comparison
            .numerical
            .period;
        assert!(t_ssd_s1 > t_hera_s1);
    }

    #[test]
    fn simulation_series_track_predictions_when_enabled() {
        let mut options = RunOptions::smoke();
        options.simulate = true;
        // Just Hera scenario 1 and 3 to keep the test fast.
        let evaluator = Evaluator::new(options);
        for scenario in [ScenarioId::S1, ScenarioId::S3] {
            let model = ExperimentSetup::paper_default(PlatformId::Hera, scenario)
                .model()
                .unwrap();
            let cmp = evaluator.compare(&model);
            let fo = cmp.first_order.unwrap();
            let sim = fo.simulated.unwrap();
            assert!(
                (sim.mean - fo.predicted_overhead).abs() / fo.predicted_overhead < 0.1,
                "{scenario:?}: sim={} predicted={}",
                sim.mean,
                fo.predicted_overhead
            );
        }
    }
}
