//! `obs-report` — paper-style time accounting from an `ayd-obs` trace log.
//!
//! The paper decomposes a pattern's wall-clock time into named components
//! (work, checkpoint, verification, re-execution); this module applies the
//! same discipline to the reproduction's own runtime. It parses the JSON-lines
//! format `reproduce --trace-log PATH` writes (one [`ayd_obs::SpanRecord`] per
//! line, stable field order), reconstructs the span trees, and charges every
//! nanosecond of each root span to a named stage:
//!
//! * **request** roots (one per served HTTP request) decompose into
//!   `parse + route + evaluate + render + other`, where each stage is the
//!   span's *exclusive* time (its duration minus its children's), so the
//!   stages sum to the root's duration exactly. `other` is whatever no named
//!   span covered; the coverage column reports `1 - other/total`.
//! * **connection** roots carry the worker-pool queue wait (accept → pickup),
//!   which is deliberately kept separate from per-request service time.
//! * **sweep** spans (CLI sweeps and served sweep jobs) aggregate per search
//!   strategy: grid cells, emitted rows, worker-chunk CPU time and the
//!   fast/fallback tallies of the warm-started optimiser.

use std::collections::BTreeMap;

use ayd_serve::Json;

use crate::table::TextTable;

/// One span parsed back from a trace log line.
#[derive(Debug, Clone)]
pub struct TraceSpan {
    /// Trace ID (16 lowercase hex digits — the `x-ayd-trace-id` value for
    /// request traces).
    pub trace: String,
    /// Span ID, unique process-wide.
    pub id: u64,
    /// Parent span ID (0 for roots).
    pub parent: u64,
    /// Span name (`request`, `parse`, `sweep`, …).
    pub name: String,
    /// Start offset in nanoseconds since the tracing epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub duration_ns: u64,
    /// The span's key/value fields, as parsed JSON.
    pub fields: Json,
}

impl TraceSpan {
    /// String field by key.
    pub fn field_str(&self, key: &str) -> Option<&str> {
        self.fields.get(key).and_then(Json::as_str)
    }

    /// Numeric field by key, truncated to `u64`.
    pub fn field_u64(&self, key: &str) -> Option<u64> {
        self.fields
            .get(key)
            .and_then(Json::as_f64)
            .map(|v| v as u64)
    }
}

/// Parses a whole trace log (one JSON object per line; blank lines ignored).
pub fn parse_trace_log(text: &str) -> Result<Vec<TraceSpan>, String> {
    let mut spans = Vec::new();
    for (index, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let context = |what: &str| format!("trace line {}: {what}", index + 1);
        let doc = Json::parse(line).map_err(|e| context(&format!("{e}")))?;
        let num = |key: &str| -> Result<u64, String> {
            doc.get(key)
                .and_then(Json::as_f64)
                .map(|v| v as u64)
                .ok_or_else(|| context(&format!("missing numeric `{key}`")))
        };
        spans.push(TraceSpan {
            trace: doc
                .get("trace")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string(),
            id: num("span")?,
            parent: num("parent")?,
            name: doc
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| context("missing `name`"))?
                .to_string(),
            start_ns: num("start_ns")?,
            duration_ns: num("dur_ns")?,
            fields: doc.get("fields").cloned().unwrap_or(Json::Null),
        });
    }
    Ok(spans)
}

/// Per-endpoint request accounting: exclusive stage times summing (with
/// `other`) to the total exactly.
#[derive(Debug, Clone, Default)]
pub struct EndpointAccount {
    /// Number of request roots charged to this endpoint.
    pub requests: u64,
    /// Total wall-clock of the request roots, ns.
    pub total_ns: u64,
    /// Exclusive time per named stage (`parse`, `route`, `evaluate`,
    /// `render`, …), ns.
    pub stages: BTreeMap<String, u64>,
}

impl EndpointAccount {
    /// Nanoseconds charged to a named stage.
    pub fn stage_ns(&self, stage: &str) -> u64 {
        self.stages.get(stage).copied().unwrap_or(0)
    }

    /// Nanoseconds no named span covered (root exclusive time).
    pub fn other_ns(&self) -> u64 {
        self.total_ns
            .saturating_sub(self.stages.values().sum::<u64>())
    }

    /// Fraction of the total reconstructed into named stages.
    pub fn coverage(&self) -> f64 {
        if self.total_ns == 0 {
            return 1.0;
        }
        1.0 - self.other_ns() as f64 / self.total_ns as f64
    }
}

/// Per-search-strategy sweep accounting.
#[derive(Debug, Clone, Default)]
pub struct StrategyAccount {
    /// Number of `sweep` spans under this strategy.
    pub sweeps: u64,
    /// Grid cells across those sweeps.
    pub cells: u64,
    /// Rows emitted across those sweeps.
    pub rows: u64,
    /// Wall-clock of the sweep spans, ns.
    pub wall_ns: u64,
    /// Worker chunks executed.
    pub chunks: u64,
    /// Summed chunk durations (CPU time across workers), ns.
    pub chunk_ns: u64,
    /// Warm-started scalar searches answered on the fast path.
    pub fast: u64,
    /// Scalar searches that fell back to the reference search.
    pub fallback: u64,
    /// Evaluation-cache hits.
    pub cache_hits: u64,
    /// Evaluation-cache misses.
    pub cache_misses: u64,
}

/// The full accounting of one trace log.
#[derive(Debug, Clone, Default)]
pub struct Accounting {
    /// Request decomposition per endpoint.
    pub endpoints: BTreeMap<String, EndpointAccount>,
    /// Number of `connection` roots seen.
    pub connections: u64,
    /// Total worker-pool queue wait across connections, ns.
    pub queue_wait_ns: u64,
    /// Sweep aggregation per search strategy.
    pub strategies: BTreeMap<String, StrategyAccount>,
    /// Total spans parsed.
    pub spans: usize,
}

impl Accounting {
    /// Aggregate coverage over every request root: the fraction of request
    /// wall-clock reconstructed into named stages (the acceptance target is
    /// ≥ 0.99).
    pub fn coverage(&self) -> f64 {
        let total: u64 = self.endpoints.values().map(|a| a.total_ns).sum();
        if total == 0 {
            return 1.0;
        }
        let other: u64 = self.endpoints.values().map(|a| a.other_ns()).sum();
        1.0 - other as f64 / total as f64
    }
}

/// Charges every span of the log to the accounting buckets.
pub fn account(spans: &[TraceSpan]) -> Accounting {
    // Span IDs are process-unique, so one child index serves every trace.
    let mut child_ns: BTreeMap<u64, u64> = BTreeMap::new();
    let mut children: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    for (index, span) in spans.iter().enumerate() {
        if span.parent != 0 {
            *child_ns.entry(span.parent).or_default() += span.duration_ns;
            children.entry(span.parent).or_default().push(index);
        }
    }
    let exclusive = |span: &TraceSpan| {
        span.duration_ns
            .saturating_sub(child_ns.get(&span.id).copied().unwrap_or(0))
    };

    let mut accounting = Accounting {
        spans: spans.len(),
        ..Accounting::default()
    };
    for span in spans {
        match span.name.as_str() {
            "request" if span.parent == 0 => {
                let endpoint = span.field_str("endpoint").unwrap_or("unknown").to_string();
                let account = accounting.endpoints.entry(endpoint).or_default();
                account.requests += 1;
                account.total_ns += span.duration_ns;
                // Depth-first over the request's subtree: every descendant's
                // exclusive time lands on its own name, the root's exclusive
                // remainder is `other`.
                let mut stack: Vec<usize> = children.get(&span.id).cloned().unwrap_or_default();
                while let Some(index) = stack.pop() {
                    let descendant = &spans[index];
                    *account.stages.entry(descendant.name.clone()).or_default() +=
                        exclusive(descendant);
                    if let Some(grandchildren) = children.get(&descendant.id) {
                        stack.extend_from_slice(grandchildren);
                    }
                }
            }
            "connection" if span.parent == 0 => {
                accounting.connections += 1;
                accounting.queue_wait_ns += span.field_u64("queue_wait_ns").unwrap_or(0);
            }
            "sweep" => {
                let strategy = span.field_str("strategy").unwrap_or("unknown").to_string();
                let account = accounting.strategies.entry(strategy).or_default();
                account.sweeps += 1;
                account.cells += span.field_u64("cells").unwrap_or(0);
                account.rows += span.field_u64("rows").unwrap_or(0);
                account.wall_ns += span.duration_ns;
                account.fast += span.field_u64("search_fast").unwrap_or(0);
                account.fallback += span.field_u64("search_fallback").unwrap_or(0);
                account.cache_hits += span.field_u64("cache_hits").unwrap_or(0);
                account.cache_misses += span.field_u64("cache_misses").unwrap_or(0);
                for &index in children.get(&span.id).into_iter().flatten() {
                    let child = &spans[index];
                    if child.name == "chunk" {
                        account.chunks += 1;
                        account.chunk_ns += child.duration_ns;
                    }
                }
            }
            _ => {}
        }
    }
    accounting
}

fn seconds(ns: u64) -> String {
    format!("{:.6}", ns as f64 / 1e9)
}

/// Renders the accounting as paper-style text tables (empty sections are
/// omitted; an empty log still yields the summary table).
pub fn render(accounting: &Accounting) -> Vec<TextTable> {
    let mut tables = Vec::new();

    if !accounting.endpoints.is_empty() {
        let mut table = TextTable::new(
            "Request time accounting (seconds; stages are exclusive and sum to total)",
            &[
                "endpoint", "requests", "total", "parse", "route", "evaluate", "render", "other",
                "coverage",
            ],
        );
        let mut all = EndpointAccount::default();
        for (endpoint, account) in &accounting.endpoints {
            all.requests += account.requests;
            all.total_ns += account.total_ns;
            for (stage, ns) in &account.stages {
                *all.stages.entry(stage.clone()).or_default() += ns;
            }
            table.push_row(endpoint_row(endpoint, account));
        }
        if accounting.endpoints.len() > 1 {
            table.push_row(endpoint_row("(all)", &all));
        }
        tables.push(table);
    }

    if accounting.connections > 0 {
        let mut table = TextTable::new(
            "Connection queue wait (accept -> worker pickup; separate from service time)",
            &["connections", "total wait s", "mean wait ms"],
        );
        table.push_row(vec![
            accounting.connections.to_string(),
            seconds(accounting.queue_wait_ns),
            format!(
                "{:.3}",
                accounting.queue_wait_ns as f64 / 1e6 / accounting.connections as f64
            ),
        ]);
        tables.push(table);
    }

    if !accounting.strategies.is_empty() {
        let mut table = TextTable::new(
            "Sweep execution (per search strategy)",
            &[
                "strategy",
                "sweeps",
                "cells",
                "rows",
                "wall s",
                "chunks",
                "chunk cpu s",
                "fast",
                "fallback",
                "cache hit/miss",
            ],
        );
        for (strategy, account) in &accounting.strategies {
            table.push_row(vec![
                strategy.clone(),
                account.sweeps.to_string(),
                account.cells.to_string(),
                account.rows.to_string(),
                seconds(account.wall_ns),
                account.chunks.to_string(),
                seconds(account.chunk_ns),
                account.fast.to_string(),
                account.fallback.to_string(),
                format!("{}/{}", account.cache_hits, account.cache_misses),
            ]);
        }
        tables.push(table);
    }

    let mut summary = TextTable::new(
        "Trace summary",
        &["spans", "request wall s", "stage coverage"],
    );
    let request_total: u64 = accounting.endpoints.values().map(|a| a.total_ns).sum();
    summary.push_row(vec![
        accounting.spans.to_string(),
        seconds(request_total),
        format!("{:.2}%", accounting.coverage() * 100.0),
    ]);
    tables.push(summary);
    tables
}

fn endpoint_row(endpoint: &str, account: &EndpointAccount) -> Vec<String> {
    vec![
        endpoint.to_string(),
        account.requests.to_string(),
        seconds(account.total_ns),
        seconds(account.stage_ns("parse")),
        seconds(account.stage_ns("route")),
        seconds(account.stage_ns("evaluate")),
        seconds(account.stage_ns("render")),
        seconds(account.other_ns()),
        format!("{:.2}%", account.coverage() * 100.0),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ayd_obs::{FieldValue, SpanRecord};

    fn record(
        trace: u64,
        id: u64,
        parent: u64,
        name: &'static str,
        duration_ns: u64,
        fields: Vec<(&'static str, FieldValue)>,
    ) -> SpanRecord {
        SpanRecord {
            trace,
            id,
            parent,
            name,
            start_ns: 0,
            duration_ns,
            fields,
        }
    }

    fn log_of(records: &[SpanRecord]) -> String {
        records
            .iter()
            .map(|r| r.to_json_line())
            .collect::<Vec<_>>()
            .join("\n")
    }

    #[test]
    fn stages_are_exclusive_and_sum_to_the_total() {
        // request(1000) > parse(200), route(500) > evaluate(300), render(100):
        // exclusive route = 200, other = 1000 - 200 - 500 - 100 = 200.
        let records = [
            record(
                0xA,
                1,
                0,
                "request",
                1_000,
                vec![("endpoint", FieldValue::Str("optimize".into()))],
            ),
            record(0xA, 2, 1, "parse", 200, vec![]),
            record(0xA, 3, 1, "route", 500, vec![]),
            record(0xA, 4, 3, "evaluate", 300, vec![]),
            record(0xA, 5, 1, "render", 100, vec![]),
        ];
        let spans = parse_trace_log(&log_of(&records)).unwrap();
        assert_eq!(spans.len(), 5);
        let accounting = account(&spans);
        let optimize = &accounting.endpoints["optimize"];
        assert_eq!(optimize.requests, 1);
        assert_eq!(optimize.total_ns, 1_000);
        assert_eq!(optimize.stage_ns("parse"), 200);
        assert_eq!(optimize.stage_ns("route"), 200, "route excludes evaluate");
        assert_eq!(optimize.stage_ns("evaluate"), 300);
        assert_eq!(optimize.stage_ns("render"), 100);
        assert_eq!(optimize.other_ns(), 200);
        let stage_sum: u64 = optimize.stages.values().sum::<u64>() + optimize.other_ns();
        assert_eq!(stage_sum, optimize.total_ns);
        assert!((optimize.coverage() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn connections_and_sweeps_aggregate_separately() {
        let records = [
            record(
                0xB,
                10,
                0,
                "connection",
                5_000,
                vec![("queue_wait_ns", FieldValue::U64(1_500))],
            ),
            record(
                0xC,
                11,
                0,
                "sweep",
                9_000,
                vec![
                    ("cells", FieldValue::U64(16)),
                    ("rows", FieldValue::U64(16)),
                    ("strategy", FieldValue::Str("fast-strict".into())),
                    ("search_fast", FieldValue::U64(30)),
                    ("search_fallback", FieldValue::U64(2)),
                    ("cache_hits", FieldValue::U64(4)),
                    ("cache_misses", FieldValue::U64(12)),
                ],
            ),
            record(0xC, 12, 11, "chunk", 4_000, vec![]),
            record(0xC, 13, 11, "chunk", 3_500, vec![]),
        ];
        let accounting = account(&parse_trace_log(&log_of(&records)).unwrap());
        assert_eq!(accounting.connections, 1);
        assert_eq!(accounting.queue_wait_ns, 1_500);
        let strategy = &accounting.strategies["fast-strict"];
        assert_eq!(strategy.sweeps, 1);
        assert_eq!(strategy.cells, 16);
        assert_eq!(strategy.chunks, 2);
        assert_eq!(strategy.chunk_ns, 7_500);
        assert_eq!(strategy.fast, 30);
        assert_eq!(strategy.fallback, 2);
        assert_eq!((strategy.cache_hits, strategy.cache_misses), (4, 12));
        // No request roots: coverage is vacuously full, and render still
        // produces the strategy + summary tables.
        assert_eq!(accounting.coverage(), 1.0);
        let tables = render(&accounting);
        assert_eq!(tables.len(), 3, "queue, sweep and summary tables");
    }

    #[test]
    fn malformed_lines_fail_with_the_line_number() {
        let error = parse_trace_log("{\"trace\":\"x\"}\nnot json").unwrap_err();
        assert!(error.starts_with("trace line 1"), "{error}");
        assert!(parse_trace_log("").unwrap().is_empty());
    }
}
