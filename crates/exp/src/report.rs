//! Shape checks: comparing the reproduction's measured trends against the
//! paper's claims.
//!
//! Exact numbers are not expected to match the original study (the paper's own
//! results are simulation-based and ours use independently seeded simulations),
//! but the *shape* of each result — who wins, how quantities scale, where
//! crossovers occur — must hold. [`ShapeCheck`] records one such claim together
//! with the measured value, and [`render_checks`] summarises a list of them as a
//! table that EXPERIMENTS.md mirrors.

use serde::{Deserialize, Serialize};

use crate::table::TextTable;

/// One verifiable claim extracted from the paper, together with what the
/// reproduction measured.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShapeCheck {
    /// Short identifier (e.g. `"fig5.P*.scenario1.slope"`).
    pub name: String,
    /// The value the paper predicts or reports.
    pub expected: f64,
    /// The value the reproduction measured.
    pub measured: f64,
    /// Acceptable absolute deviation.
    pub tolerance: f64,
}

impl ShapeCheck {
    /// Creates a check.
    pub fn new(name: impl Into<String>, expected: f64, measured: f64, tolerance: f64) -> Self {
        Self {
            name: name.into(),
            expected,
            measured,
            tolerance,
        }
    }

    /// Whether the measured value is within tolerance of the expectation.
    pub fn passes(&self) -> bool {
        (self.measured - self.expected).abs() <= self.tolerance
    }
}

/// Renders a list of checks as a pass/fail table.
pub fn render_checks(title: &str, checks: &[ShapeCheck]) -> TextTable {
    let mut table = TextTable::new(
        title,
        &["check", "expected", "measured", "tolerance", "status"],
    );
    for check in checks {
        table.push_row(vec![
            check.name.clone(),
            format!("{:.4}", check.expected),
            format!("{:.4}", check.measured),
            format!("{:.4}", check.tolerance),
            if check.passes() {
                "PASS".to_string()
            } else {
                "FAIL".to_string()
            },
        ]);
    }
    table
}

/// Counts how many checks pass.
pub fn passing(checks: &[ShapeCheck]) -> usize {
    checks.iter().filter(|c| c.passes()).count()
}

/// Builds the headline shape checks from a Figure 5 run (the asymptotic scaling
/// laws of Theorems 2 and 3) and a Figure 6 run (the `α = 0` regime).
pub fn headline_checks(
    fig5: &crate::figure5::Figure5Data,
    fig6: &crate::figure6::Figure6Data,
) -> Vec<ShapeCheck> {
    let mut checks = Vec::new();
    for s in &fig5.slopes {
        // The first-order series follows the theorems exactly; the numerical
        // optimum approaches the same asymptotics but converges more slowly for
        // scenario 5 (its b/P cost term is not negligible at λ_ind ≈ 1e-8).
        checks.push(ShapeCheck::new(
            format!("fig5.P*.scenario{}.slope.first-order", s.scenario),
            s.expected_processors_exponent,
            s.first_order_processors_exponent
                .unwrap_or(s.processors_exponent),
            0.03,
        ));
        checks.push(ShapeCheck::new(
            format!("fig5.T*.scenario{}.slope.first-order", s.scenario),
            s.expected_period_exponent,
            s.first_order_period_exponent.unwrap_or(s.period_exponent),
            0.03,
        ));
        checks.push(ShapeCheck::new(
            format!("fig5.P*.scenario{}.slope.numerical", s.scenario),
            s.expected_processors_exponent,
            s.processors_exponent,
            0.08,
        ));
        checks.push(ShapeCheck::new(
            format!("fig5.T*.scenario{}.slope.numerical", s.scenario),
            s.expected_period_exponent,
            s.period_exponent,
            if s.scenario == 5 { 0.15 } else { 0.08 },
        ));
    }
    for s in &fig6.slopes {
        checks.push(ShapeCheck::new(
            format!("fig6.P*.scenario{}.slope", s.scenario),
            s.expected_processors_exponent,
            s.processors_exponent,
            0.2,
        ));
        checks.push(ShapeCheck::new(
            format!("fig6.H.scenario{}.slope", s.scenario),
            s.expected_overhead_exponent,
            s.overhead_exponent,
            0.2,
        ));
    }
    checks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RunOptions;

    #[test]
    fn pass_fail_logic() {
        assert!(ShapeCheck::new("x", -0.25, -0.26, 0.05).passes());
        assert!(!ShapeCheck::new("x", -0.25, -0.40, 0.05).passes());
        let checks = vec![
            ShapeCheck::new("a", 1.0, 1.0, 0.1),
            ShapeCheck::new("b", 1.0, 2.0, 0.1),
        ];
        assert_eq!(passing(&checks), 1);
        let table = render_checks("demo", &checks);
        let text = table.render();
        assert!(text.contains("PASS"));
        assert!(text.contains("FAIL"));
    }

    #[test]
    fn headline_checks_pass_on_analytical_sweeps() {
        let options = RunOptions {
            simulate: false,
            ..RunOptions::smoke()
        };
        let fig5 = crate::figure5::run_with(&[1e-11, 1e-10, 1e-9, 1e-8], 0.1, &options);
        let fig6 = crate::figure6::run_with(&[1e-10, 1e-9, 1e-8], &options);
        let checks = headline_checks(&fig5, &fig6);
        assert_eq!(checks.len(), 4 * 3 + 2 * 3);
        let pass = passing(&checks);
        assert!(
            pass >= checks.len() - 2,
            "{} / {} headline checks pass: {:?}",
            pass,
            checks.len(),
            checks.iter().filter(|c| !c.passes()).collect::<Vec<_>>()
        );
    }
}
