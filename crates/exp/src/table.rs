//! Plain-text table rendering and CSV export for experiment results.

use std::fmt::Write as _;

/// A simple column-aligned text table (monospace rendering of a figure's series
/// or a paper table's rows), with CSV export.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. The number of cells must match the number of headers.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row has {} cells but the table has {} columns",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Renders the table as aligned monospace text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let header_line: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{:width$}", h, width = widths[i]))
            .collect();
        let _ = writeln!(out, "| {} |", header_line.join(" | "));
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        let _ = writeln!(out, "|-{}-|", rule.join("-|-"));
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
                .collect();
            let _ = writeln!(out, "| {} |", line.join(" | "));
        }
        out
    }

    /// Renders the table as CSV (headers first, comma-separated, quoted when a
    /// cell contains a comma or a quote).
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// Formats a floating-point quantity with a sensible number of significant
/// digits for table cells (scientific notation for very large/small magnitudes).
pub fn fmt_value(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if !(1e-3..1e6).contains(&x.abs()) {
        format!("{x:.3e}")
    } else if x.abs() >= 100.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.4}")
    }
}

/// Formats an optional value, rendering `None` as a dash.
pub fn fmt_option(x: Option<f64>) -> String {
    x.map(fmt_value).unwrap_or_else(|| "-".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns_and_includes_all_rows() {
        let mut t = TextTable::new("Demo", &["name", "value"]);
        t.push_row(vec!["alpha".into(), "0.1".into()]);
        t.push_row(vec!["lambda_ind".into(), "1.69e-8".into()]);
        let text = t.render();
        assert!(text.contains("# Demo"));
        assert!(text.contains("alpha"));
        assert!(text.contains("lambda_ind"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        // All data lines have the same width.
        let widths: Vec<usize> = text.lines().skip(1).map(|l| l.chars().count()).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "{widths:?}");
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = TextTable::new("x", &["a", "b"]);
        t.push_row(vec!["hello, world".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"hello, world\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
        assert!(csv.starts_with("a,b\n"));
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn mismatched_row_length_panics() {
        let mut t = TextTable::new("x", &["a", "b"]);
        t.push_row(vec!["only one".into()]);
    }

    #[test]
    fn value_formatting_switches_to_scientific() {
        assert_eq!(fmt_value(0.0), "0");
        assert!(fmt_value(1.69e-8).contains('e'));
        assert!(fmt_value(1.2e9).contains('e'));
        assert!(!fmt_value(0.1134).contains('e'));
        assert_eq!(fmt_option(None), "-");
        assert_eq!(fmt_option(Some(0.0)), "0");
    }
}
