//! Extension experiment E1 — non-Amdahl speedup profiles.
//!
//! The paper's conclusion lists "jobs with different speedup profiles" as future
//! work. This experiment exercises that direction with the extension profiles of
//! [`ayd_core::SpeedupProfile`]: the numerical optimiser (which never relied on
//! Amdahl's law) computes the optimal pattern for power-law and Gustafson-style
//! profiles and compares it with the Amdahl baseline on the same platform and
//! scenario.

use serde::{Deserialize, Serialize};

use ayd_core::{ExactModel, SpeedupProfile};
use ayd_platforms::{ExperimentSetup, PlatformId, ScenarioId};

use crate::config::RunOptions;
use crate::evaluate::{Evaluator, OperatingPoint};
use crate::table::{fmt_option, fmt_value, TextTable};

/// One row of the extension experiment: a speedup profile under a scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExtensionRow {
    /// Scenario number.
    pub scenario: usize,
    /// Human-readable profile description.
    pub profile: String,
    /// Numerically optimal operating point for that profile.
    pub numerical: OperatingPoint,
}

/// Results of the extension experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExtensionData {
    /// One row per (scenario, profile).
    pub rows: Vec<ExtensionRow>,
}

/// The profiles exercised: the Amdahl baseline plus the three extension profiles.
pub fn profiles() -> Vec<(String, SpeedupProfile)> {
    vec![
        (
            "Amdahl(alpha=0.1)".to_string(),
            SpeedupProfile::amdahl(0.1).unwrap(),
        ),
        (
            "PowerLaw(sigma=0.9)".to_string(),
            SpeedupProfile::power_law(0.9).unwrap(),
        ),
        (
            "Gustafson(alpha=0.1)".to_string(),
            SpeedupProfile::gustafson(0.1).unwrap(),
        ),
        (
            "PerfectlyParallel".to_string(),
            SpeedupProfile::perfectly_parallel(),
        ),
    ]
}

/// Runs the extension experiment on Hera, scenarios 1 and 3.
pub fn run(options: &RunOptions) -> ExtensionData {
    let evaluator = Evaluator::new(*options).with_processor_range(1.0, 1e10);
    let mut rows = Vec::new();
    for scenario in [ScenarioId::S1, ScenarioId::S3] {
        let base = ExperimentSetup::paper_default(PlatformId::Hera, scenario)
            .model()
            .expect("paper defaults are valid");
        for (name, profile) in profiles() {
            let model = ExactModel::new(profile, base.costs, base.failures);
            rows.push(ExtensionRow {
                scenario: scenario.number(),
                profile: name,
                numerical: evaluator.numerical_point(&model),
            });
        }
    }
    ExtensionData { rows }
}

/// Renders the extension experiment as a table.
pub fn render(data: &ExtensionData) -> TextTable {
    let mut table = TextTable::new(
        "Extension E1 — optimal pattern for non-Amdahl speedup profiles (Hera)",
        &[
            "scenario",
            "profile",
            "P* (optimal)",
            "T* (optimal)",
            "H (optimal)",
            "H (simulated)",
        ],
    );
    for row in &data.rows {
        table.push_row(vec![
            row.scenario.to_string(),
            row.profile.clone(),
            fmt_value(row.numerical.processors),
            fmt_value(row.numerical.period),
            fmt_value(row.numerical.predicted_overhead),
            fmt_option(row.numerical.simulated.map(|s| s.mean)),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analytical() -> RunOptions {
        RunOptions {
            simulate: false,
            ..RunOptions::smoke()
        }
    }

    #[test]
    fn profiles_with_better_scalability_enroll_more_processors() {
        let data = run(&analytical());
        for scenario in [1usize, 3] {
            let p_of = |name: &str| {
                data.rows
                    .iter()
                    .find(|r| r.scenario == scenario && r.profile.starts_with(name))
                    .unwrap()
                    .numerical
                    .processors
            };
            // Amdahl saturates earliest; power-law and Gustafson scale further;
            // the perfectly parallel profile scales the furthest.
            assert!(p_of("PowerLaw") > p_of("Amdahl"), "scenario {scenario}");
            assert!(p_of("Gustafson") > p_of("Amdahl"), "scenario {scenario}");
            assert!(
                p_of("PerfectlyParallel") >= p_of("Amdahl"),
                "scenario {scenario}"
            );
        }
    }

    #[test]
    fn amdahl_overhead_is_bounded_below_by_alpha_but_others_are_not() {
        let data = run(&analytical());
        for row in &data.rows {
            if row.profile.starts_with("Amdahl") {
                assert!(row.numerical.predicted_overhead > 0.1);
            }
            if row.profile.starts_with("Gustafson") || row.profile.starts_with("PerfectlyParallel")
            {
                assert!(row.numerical.predicted_overhead < 0.1, "{}", row.profile);
            }
        }
    }

    #[test]
    fn render_lists_every_profile_for_both_scenarios() {
        let data = run(&analytical());
        assert_eq!(data.rows.len(), 8);
        assert_eq!(render(&data).len(), 8);
    }
}
