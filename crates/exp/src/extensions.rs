//! Extension experiment E1 — non-Amdahl speedup profiles.
//!
//! The paper's conclusion lists "jobs with different speedup profiles" as future
//! work. This experiment exercises that direction with the extension profiles of
//! [`ayd_core::SpeedupProfile`], running them through the shared `ayd-sweep`
//! engine's generic profile axis: the per-cell kernel dispatches the
//! first-order closed forms for the Amdahl family and falls back to the
//! numerical optimiser (which never relied on Amdahl's law) for the power-law
//! and Gustafson profiles, so this module no longer carries any bespoke
//! evaluation loop of its own.

use serde::{Deserialize, Serialize};

use ayd_core::{ProfileSpec, SpeedupProfile};
use ayd_platforms::{PlatformId, ScenarioId};
use ayd_sweep::{ScenarioGrid, SweepExecutor, SweepOptions};

use crate::config::RunOptions;
use crate::evaluate::OperatingPoint;
use crate::table::{fmt_option, fmt_value, TextTable};

/// One row of the extension experiment: a speedup profile under a scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExtensionRow {
    /// Scenario number.
    pub scenario: usize,
    /// Canonical profile spec (`amdahl:0.1`, `powerlaw:0.9`, …).
    pub profile: String,
    /// Numerically optimal operating point for that profile.
    pub numerical: OperatingPoint,
}

/// Results of the extension experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExtensionData {
    /// One row per (scenario, profile).
    pub rows: Vec<ExtensionRow>,
}

/// The profiles exercised: the Amdahl baseline plus the three extension profiles.
pub fn profiles() -> Vec<SpeedupProfile> {
    vec![
        SpeedupProfile::amdahl(0.1).unwrap(),
        SpeedupProfile::power_law(0.9).unwrap(),
        SpeedupProfile::gustafson(0.1).unwrap(),
        SpeedupProfile::perfectly_parallel(),
    ]
}

/// Runs the extension experiment on Hera, scenarios 1 and 3, through the
/// sweep engine's profile axis.
pub fn run(options: &RunOptions) -> ExtensionData {
    let grid = ScenarioGrid::builder()
        .platforms(&[PlatformId::Hera])
        .scenarios(&[ScenarioId::S1, ScenarioId::S3])
        .profiles(&profiles())
        .build()
        .expect("the extension grid is valid");
    let sweep = SweepOptions::new(*options)
        .with_processor_range(1.0, 1e10)
        .with_simulate_first_order(false);
    let results = SweepExecutor::new(sweep).run(&grid);
    let rows = results
        .rows
        .into_iter()
        .map(|row| ExtensionRow {
            scenario: row.scenario,
            profile: ProfileSpec::from(row.profile).to_string(),
            numerical: row.numerical,
        })
        .collect();
    ExtensionData { rows }
}

/// Renders the extension experiment as a table.
pub fn render(data: &ExtensionData) -> TextTable {
    let mut table = TextTable::new(
        "Extension E1 — optimal pattern for non-Amdahl speedup profiles (Hera)",
        &[
            "scenario",
            "profile",
            "P* (optimal)",
            "T* (optimal)",
            "H (optimal)",
            "H (simulated)",
        ],
    );
    for row in &data.rows {
        table.push_row(vec![
            row.scenario.to_string(),
            row.profile.clone(),
            fmt_value(row.numerical.processors),
            fmt_value(row.numerical.period),
            fmt_value(row.numerical.predicted_overhead),
            fmt_option(row.numerical.simulated.map(|s| s.mean)),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analytical() -> RunOptions {
        RunOptions {
            simulate: false,
            ..RunOptions::smoke()
        }
    }

    #[test]
    fn profiles_with_better_scalability_enroll_more_processors() {
        let data = run(&analytical());
        for scenario in [1usize, 3] {
            let p_of = |name: &str| {
                data.rows
                    .iter()
                    .find(|r| r.scenario == scenario && r.profile.starts_with(name))
                    .unwrap()
                    .numerical
                    .processors
            };
            // Amdahl saturates earliest; power-law and Gustafson scale further;
            // the perfectly parallel profile scales the furthest.
            assert!(p_of("powerlaw") > p_of("amdahl"), "scenario {scenario}");
            assert!(p_of("gustafson") > p_of("amdahl"), "scenario {scenario}");
            assert!(p_of("perfect") >= p_of("amdahl"), "scenario {scenario}");
        }
    }

    #[test]
    fn amdahl_overhead_is_bounded_below_by_alpha_but_others_are_not() {
        let data = run(&analytical());
        for row in &data.rows {
            if row.profile.starts_with("amdahl") {
                assert!(row.numerical.predicted_overhead > 0.1);
            }
            if row.profile.starts_with("gustafson") || row.profile.starts_with("perfect") {
                assert!(row.numerical.predicted_overhead < 0.1, "{}", row.profile);
            }
        }
    }

    #[test]
    fn render_lists_every_profile_for_both_scenarios() {
        let data = run(&analytical());
        assert_eq!(data.rows.len(), 8);
        assert_eq!(render(&data).len(), 8);
        // Profiles are reported by their canonical spec strings.
        assert!(data.rows.iter().any(|r| r.profile == "amdahl:0.1"));
        assert!(data.rows.iter().any(|r| r.profile == "powerlaw:0.9"));
        assert!(data.rows.iter().any(|r| r.profile == "gustafson:0.1"));
        assert!(data.rows.iter().any(|r| r.profile == "perfect"));
    }

    #[test]
    fn engine_backed_run_matches_the_direct_evaluator() {
        // Folding the experiment onto the sweep engine must not change the
        // numbers: the numerical series equals a direct Evaluator call over
        // the same extension-profile model, bit for bit.
        use ayd_platforms::ExperimentSetup;
        let data = run(&analytical());
        let evaluator =
            crate::evaluate::Evaluator::new(analytical()).with_processor_range(1.0, 1e10);
        let base = ExperimentSetup::paper_default(PlatformId::Hera, ScenarioId::S1)
            .with_profile(SpeedupProfile::power_law(0.9).unwrap())
            .model()
            .unwrap();
        let direct = evaluator.numerical_point(&base);
        let engine = &data
            .rows
            .iter()
            .find(|r| r.scenario == 1 && r.profile == "powerlaw:0.9")
            .unwrap()
            .numerical;
        assert_eq!(engine.processors, direct.processors);
        assert_eq!(engine.period, direct.period);
        assert_eq!(engine.predicted_overhead, direct.predicted_overhead);
    }
}
