//! Shared evaluation machinery: first-order optima, numerical optima and
//! simulation at both operating points.
//!
//! The implementation moved down into `ayd-sweep`, where it doubles as the
//! per-cell kernel of the parallel sweep executor; this module re-exports it
//! under the historical `ayd_exp::evaluate` path.

pub use ayd_sweep::evaluate::{Evaluator, OperatingPoint, OptimumComparison, SimSummary};
