//! # ayd-platforms — platform catalogue, resilience scenarios and cost fitting
//!
//! The paper evaluates its model on four real platforms that were used to assess
//! the Scalable Checkpoint/Restart (SCR) library — Hera, Atlas, Coastal and
//! Coastal SSD — whose measured parameters are reported in Table II, and on six
//! resilience scenarios (Table III) describing how the checkpoint and verification
//! costs scale with the processor count.
//!
//! This crate embeds those measurements ([`platform`]), describes the scenarios
//! ([`scenario`]) and fits the general cost model `C_P = a + b/P + cP`,
//! `V_P = v + u/P` of `ayd-core` to a platform's measured costs under a given
//! scenario ([`scenario::Scenario::fit`]). The [`builder`] module assembles
//! complete [`ayd_core::ExactModel`]s ready for analysis, optimisation or
//! simulation.
//!
//! ```
//! use ayd_platforms::{ExperimentSetup, PlatformId, ScenarioId};
//!
//! let setup = ExperimentSetup::paper_default(PlatformId::Hera, ScenarioId::S1);
//! let model = setup.model().unwrap();
//! // Scenario 1 on Hera: checkpoint cost 300 s at the measured 512 processors.
//! assert!((model.costs.checkpoint_at(512.0) - 300.0).abs() < 1e-9);
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod builder;
pub mod platform;
pub mod scenario;

pub use builder::ExperimentSetup;
pub use platform::{Platform, PlatformId};
pub use scenario::{CostShape, Scenario, ScenarioId, VerificationShape};
