//! The six resilience scenarios of Table III and the cost-model fitting.
//!
//! A scenario prescribes how the checkpoint/recovery cost and the verification
//! cost scale with the processor count:
//!
//! | Scenario | 1    | 2    | 3   | 4   | 5    | 6    |
//! |----------|------|------|-----|-----|------|------|
//! | `C_P, R_P` | `cP` | `cP` | `a` | `a` | `b/P`| `b/P`|
//! | `V_P`      | `v`  | `u/P`| `v` | `u/P`| `v` | `u/P`|
//!
//! Scenarios 1–2 model coordinated checkpointing whose synchronisation cost grows
//! with `P` (Theorem 2 / case 1); scenarios 3–5 have a constant combined cost
//! (Theorem 3 / case 2 — note that scenario 5's constant part is the verification
//! only); scenario 6 has a fully decreasing cost (case 3, no first-order optimum).
//!
//! Given a platform's measured `C_P` and `V_P` at its measured processor count,
//! [`Scenario::fit`] derives the coefficients (`a`, `b`, `c`, `v`, `u`) so that
//! the projected costs reproduce the measurements at the measured `P` and
//! extrapolate to any other processor count.

use serde::{Deserialize, Serialize};

use ayd_core::{CheckpointCost, ModelError, ResilienceCosts, VerificationCost};

use crate::platform::Platform;

/// How the checkpoint (and recovery) cost scales with the processor count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CostShape {
    /// `C_P = cP` — grows linearly with `P` (coordinated checkpointing).
    Linear,
    /// `C_P = a` — constant in `P` (storage-bandwidth-bound I/O).
    Constant,
    /// `C_P = b/P` — decreases with `P` (in-memory / network-bound I/O).
    PerProcessor,
}

/// How the verification cost scales with the processor count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VerificationShape {
    /// `V_P = v` — constant in `P`.
    Constant,
    /// `V_P = u/P` — decreases with `P`.
    PerProcessor,
}

/// Identifier of one of the six scenarios of Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ScenarioId {
    /// Scenario 1: `C_P = cP`, `V_P = v`.
    S1,
    /// Scenario 2: `C_P = cP`, `V_P = u/P`.
    S2,
    /// Scenario 3: `C_P = a`, `V_P = v`.
    S3,
    /// Scenario 4: `C_P = a`, `V_P = u/P`.
    S4,
    /// Scenario 5: `C_P = b/P`, `V_P = v`.
    S5,
    /// Scenario 6: `C_P = b/P`, `V_P = u/P`.
    S6,
}

impl ScenarioId {
    /// All six scenarios in Table III order.
    pub const ALL: [ScenarioId; 6] = [
        ScenarioId::S1,
        ScenarioId::S2,
        ScenarioId::S3,
        ScenarioId::S4,
        ScenarioId::S5,
        ScenarioId::S6,
    ];

    /// The scenarios the paper focuses on after Figure 3 (1, 3 and 5): scenarios
    /// 2, 4 and 6 behave like their odd counterparts.
    pub const REPRESENTATIVE: [ScenarioId; 3] = [ScenarioId::S1, ScenarioId::S3, ScenarioId::S5];

    /// The scenario number (1–6) as printed in the paper.
    pub fn number(&self) -> usize {
        match self {
            ScenarioId::S1 => 1,
            ScenarioId::S2 => 2,
            ScenarioId::S3 => 3,
            ScenarioId::S4 => 4,
            ScenarioId::S5 => 5,
            ScenarioId::S6 => 6,
        }
    }

    /// Parses a scenario from its number.
    pub fn from_number(n: usize) -> Option<Self> {
        ScenarioId::ALL.get(n.checked_sub(1)?).copied()
    }
}

/// A resilience scenario: the scaling shapes of the checkpoint and verification
/// costs (one column of Table III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Scenario {
    /// Which of the six scenarios this is.
    pub id: ScenarioId,
    /// Scaling of the checkpoint (and recovery) cost.
    pub checkpoint: CostShape,
    /// Scaling of the verification cost.
    pub verification: VerificationShape,
}

impl Scenario {
    /// Returns the definition of a scenario (Table III).
    pub fn get(id: ScenarioId) -> Self {
        let (checkpoint, verification) = match id {
            ScenarioId::S1 => (CostShape::Linear, VerificationShape::Constant),
            ScenarioId::S2 => (CostShape::Linear, VerificationShape::PerProcessor),
            ScenarioId::S3 => (CostShape::Constant, VerificationShape::Constant),
            ScenarioId::S4 => (CostShape::Constant, VerificationShape::PerProcessor),
            ScenarioId::S5 => (CostShape::PerProcessor, VerificationShape::Constant),
            ScenarioId::S6 => (CostShape::PerProcessor, VerificationShape::PerProcessor),
        };
        Self {
            id,
            checkpoint,
            verification,
        }
    }

    /// All six scenarios in Table III order.
    pub fn all() -> Vec<Self> {
        ScenarioId::ALL.iter().map(|&id| Self::get(id)).collect()
    }

    /// Fits the general cost model of `ayd-core` to a platform's measured costs
    /// under this scenario, with downtime `downtime` seconds.
    ///
    /// The fitted coefficients reproduce the measured `C_P` and `V_P` exactly at
    /// the platform's measured processor count, and extrapolate according to the
    /// scenario's shapes elsewhere.
    pub fn fit(&self, platform: &Platform, downtime: f64) -> Result<ResilienceCosts, ModelError> {
        let p = platform.measured_processors as f64;
        let checkpoint = match self.checkpoint {
            CostShape::Linear => CheckpointCost::linear(platform.measured_checkpoint / p),
            CostShape::Constant => CheckpointCost::constant(platform.measured_checkpoint),
            CostShape::PerProcessor => {
                CheckpointCost::per_processor(platform.measured_checkpoint * p)
            }
        };
        let verification = match self.verification {
            VerificationShape::Constant => {
                VerificationCost::constant(platform.measured_verification)
            }
            VerificationShape::PerProcessor => {
                VerificationCost::per_processor(platform.measured_verification * p)
            }
        };
        ResilienceCosts::new(checkpoint, verification, downtime)
    }

    /// Which of the paper's analysis cases the scenario belongs to (Section IV.A):
    /// scenarios 1–2 are case 1 (Theorem 2), scenarios 3–5 are case 2 (Theorem 3),
    /// scenario 6 is case 3.
    pub fn analysis_case(&self) -> usize {
        match self.id {
            ScenarioId::S1 | ScenarioId::S2 => 1,
            ScenarioId::S3 | ScenarioId::S4 | ScenarioId::S5 => 2,
            ScenarioId::S6 => 3,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::{Platform, PlatformId};

    fn hera() -> Platform {
        Platform::get(PlatformId::Hera)
    }

    #[test]
    fn table3_shapes_are_correct() {
        assert_eq!(Scenario::get(ScenarioId::S1).checkpoint, CostShape::Linear);
        assert_eq!(
            Scenario::get(ScenarioId::S1).verification,
            VerificationShape::Constant
        );
        assert_eq!(
            Scenario::get(ScenarioId::S2).verification,
            VerificationShape::PerProcessor
        );
        assert_eq!(
            Scenario::get(ScenarioId::S3).checkpoint,
            CostShape::Constant
        );
        assert_eq!(
            Scenario::get(ScenarioId::S4).checkpoint,
            CostShape::Constant
        );
        assert_eq!(
            Scenario::get(ScenarioId::S5).checkpoint,
            CostShape::PerProcessor
        );
        assert_eq!(
            Scenario::get(ScenarioId::S6).checkpoint,
            CostShape::PerProcessor
        );
        assert_eq!(
            Scenario::get(ScenarioId::S6).verification,
            VerificationShape::PerProcessor
        );
    }

    #[test]
    fn fitted_costs_reproduce_measurements_at_measured_p() {
        for platform in Platform::all() {
            let p = platform.measured_processors as f64;
            for scenario in Scenario::all() {
                let costs = scenario.fit(&platform, 3600.0).unwrap();
                assert!(
                    (costs.checkpoint_at(p) - platform.measured_checkpoint).abs() < 1e-9,
                    "{:?}/{:?}",
                    platform.id,
                    scenario.id
                );
                assert!(
                    (costs.verification_at(p) - platform.measured_verification).abs() < 1e-9,
                    "{:?}/{:?}",
                    platform.id,
                    scenario.id
                );
                assert_eq!(costs.downtime, 3600.0);
            }
        }
    }

    #[test]
    fn extrapolation_follows_scenario_shape() {
        let platform = hera();
        let p = platform.measured_processors as f64;
        // Scenario 1: doubling P doubles the checkpoint cost.
        let s1 = Scenario::get(ScenarioId::S1).fit(&platform, 0.0).unwrap();
        assert!((s1.checkpoint_at(2.0 * p) - 2.0 * platform.measured_checkpoint).abs() < 1e-9);
        // Scenario 3: doubling P leaves it unchanged.
        let s3 = Scenario::get(ScenarioId::S3).fit(&platform, 0.0).unwrap();
        assert!((s3.checkpoint_at(2.0 * p) - platform.measured_checkpoint).abs() < 1e-9);
        // Scenario 5: doubling P halves it.
        let s5 = Scenario::get(ScenarioId::S5).fit(&platform, 0.0).unwrap();
        assert!((s5.checkpoint_at(2.0 * p) - platform.measured_checkpoint / 2.0).abs() < 1e-9);
    }

    #[test]
    fn analysis_case_mapping_matches_paper() {
        assert_eq!(Scenario::get(ScenarioId::S1).analysis_case(), 1);
        assert_eq!(Scenario::get(ScenarioId::S2).analysis_case(), 1);
        assert_eq!(Scenario::get(ScenarioId::S3).analysis_case(), 2);
        assert_eq!(Scenario::get(ScenarioId::S4).analysis_case(), 2);
        assert_eq!(Scenario::get(ScenarioId::S5).analysis_case(), 2);
        assert_eq!(Scenario::get(ScenarioId::S6).analysis_case(), 3);
    }

    #[test]
    fn scenario_numbers_round_trip() {
        for id in ScenarioId::ALL {
            assert_eq!(ScenarioId::from_number(id.number()), Some(id));
        }
        assert_eq!(ScenarioId::from_number(0), None);
        assert_eq!(ScenarioId::from_number(7), None);
    }

    #[test]
    fn representative_scenarios_are_one_three_five() {
        let numbers: Vec<usize> = ScenarioId::REPRESENTATIVE
            .iter()
            .map(|s| s.number())
            .collect();
        assert_eq!(numbers, vec![1, 3, 5]);
    }

    #[test]
    fn negative_downtime_is_rejected() {
        assert!(Scenario::get(ScenarioId::S1).fit(&hera(), -1.0).is_err());
    }
}

/// Golden values: the cost coefficients fitted from Table II under every
/// scenario of Table III, pinned as literals for all 24 (scenario, platform)
/// pairs so refactors of the fitting cannot silently drift from the paper.
#[cfg(test)]
mod golden_tests {
    use super::*;
    use crate::platform::PlatformId;

    /// (scenario, platform, c, a, b, v, u) with the convention that exactly one
    /// checkpoint coefficient and one verification coefficient are non-zero.
    const GOLDEN: [(usize, PlatformId, f64, f64, f64, f64, f64); 24] = [
        (1, PlatformId::Hera, 0.585_937_5, 0.0, 0.0, 15.4, 0.0),
        (1, PlatformId::Atlas, 0.428_710_937_5, 0.0, 0.0, 9.1, 0.0),
        (1, PlatformId::Coastal, 0.513_183_593_75, 0.0, 0.0, 4.5, 0.0),
        (
            1,
            PlatformId::CoastalSsd,
            1.220_703_125,
            0.0,
            0.0,
            180.0,
            0.0,
        ),
        (2, PlatformId::Hera, 0.585_937_5, 0.0, 0.0, 0.0, 7_884.8),
        (
            2,
            PlatformId::Atlas,
            0.428_710_937_5,
            0.0,
            0.0,
            0.0,
            9_318.4,
        ),
        (
            2,
            PlatformId::Coastal,
            0.513_183_593_75,
            0.0,
            0.0,
            0.0,
            9_216.0,
        ),
        (
            2,
            PlatformId::CoastalSsd,
            1.220_703_125,
            0.0,
            0.0,
            0.0,
            368_640.0,
        ),
        (3, PlatformId::Hera, 0.0, 300.0, 0.0, 15.4, 0.0),
        (3, PlatformId::Atlas, 0.0, 439.0, 0.0, 9.1, 0.0),
        (3, PlatformId::Coastal, 0.0, 1_051.0, 0.0, 4.5, 0.0),
        (3, PlatformId::CoastalSsd, 0.0, 2_500.0, 0.0, 180.0, 0.0),
        (4, PlatformId::Hera, 0.0, 300.0, 0.0, 0.0, 7_884.8),
        (4, PlatformId::Atlas, 0.0, 439.0, 0.0, 0.0, 9_318.4),
        (4, PlatformId::Coastal, 0.0, 1_051.0, 0.0, 0.0, 9_216.0),
        (4, PlatformId::CoastalSsd, 0.0, 2_500.0, 0.0, 0.0, 368_640.0),
        (5, PlatformId::Hera, 0.0, 0.0, 153_600.0, 15.4, 0.0),
        (5, PlatformId::Atlas, 0.0, 0.0, 449_536.0, 9.1, 0.0),
        (5, PlatformId::Coastal, 0.0, 0.0, 2_152_448.0, 4.5, 0.0),
        (5, PlatformId::CoastalSsd, 0.0, 0.0, 5_120_000.0, 180.0, 0.0),
        (6, PlatformId::Hera, 0.0, 0.0, 153_600.0, 0.0, 7_884.8),
        (6, PlatformId::Atlas, 0.0, 0.0, 449_536.0, 0.0, 9_318.4),
        (6, PlatformId::Coastal, 0.0, 0.0, 2_152_448.0, 0.0, 9_216.0),
        (
            6,
            PlatformId::CoastalSsd,
            0.0,
            0.0,
            5_120_000.0,
            0.0,
            368_640.0,
        ),
    ];

    #[test]
    fn golden_table3_fitted_coefficients() {
        for (number, platform_id, c, a, b, v, u) in GOLDEN {
            let scenario = Scenario::get(ScenarioId::from_number(number).unwrap());
            let platform = Platform::get(platform_id);
            let costs = scenario.fit(&platform, 3600.0).unwrap();
            let close = |label: &str, got: f64, want: f64| {
                // The products of measured values with powers of two are exact
                // in binary; decimal literals like 15.4 carry one rounding, so
                // compare with a tight relative tolerance instead of bitwise.
                let tolerance = 1e-12 * want.abs().max(1.0);
                assert!(
                    (got - want).abs() <= tolerance,
                    "scenario {number} {platform_id:?} {label}: got {got}, want {want}"
                );
            };
            close("c", costs.checkpoint.c, c);
            close("a", costs.checkpoint.a, a);
            close("b", costs.checkpoint.b, b);
            close("v", costs.verification.v, v);
            close("u", costs.verification.u, u);
        }
    }

    #[test]
    fn golden_covers_every_scenario_platform_pair_once() {
        let mut seen = std::collections::HashSet::new();
        for (number, platform_id, ..) in GOLDEN {
            assert!(
                seen.insert((number, platform_id)),
                "duplicate ({number}, {platform_id:?})"
            );
        }
        assert_eq!(seen.len(), 6 * 4);
    }
}
