//! The four SCR platforms of Table II.
//!
//! Each platform is described by the measurements reported in the paper:
//! individual error rate `λ_ind`, fail-stop fraction `f`, the processor count the
//! measurements were taken on, and the measured checkpoint and verification costs
//! at that processor count. Following the paper (and Benoit et al., IPDPS 2016),
//! the verification cost is set to that of an in-memory checkpoint, since the
//! whole memory footprint must be inspected to detect silent errors.

use serde::{Deserialize, Serialize};

use ayd_core::FailureModel;

/// Identifier of one of the four platforms of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlatformId {
    /// LLNL Hera: 512 processors, λ_ind = 1.69e-8, f = 0.2188.
    Hera,
    /// LLNL Atlas: 1024 processors, λ_ind = 1.62e-8, f = 0.0625.
    Atlas,
    /// LLNL Coastal: 2048 processors, λ_ind = 2.34e-9, f = 0.1667.
    Coastal,
    /// LLNL Coastal with SSD storage: same error profile as Coastal, larger
    /// checkpoint and verification costs.
    CoastalSsd,
}

impl PlatformId {
    /// All four platforms, in the order of Table II.
    pub const ALL: [PlatformId; 4] = [
        PlatformId::Hera,
        PlatformId::Atlas,
        PlatformId::Coastal,
        PlatformId::CoastalSsd,
    ];

    /// Human-readable name as printed in the paper.
    pub fn name(&self) -> &'static str {
        match self {
            PlatformId::Hera => "Hera",
            PlatformId::Atlas => "Atlas",
            PlatformId::Coastal => "Coastal",
            PlatformId::CoastalSsd => "Coastal SSD",
        }
    }

    /// Parses a (case-insensitive) platform name.
    pub fn parse(name: &str) -> Option<Self> {
        match name
            .to_ascii_lowercase()
            .replace(['-', '_', ' '], "")
            .as_str()
        {
            "hera" => Some(PlatformId::Hera),
            "atlas" => Some(PlatformId::Atlas),
            "coastal" => Some(PlatformId::Coastal),
            "coastalssd" => Some(PlatformId::CoastalSsd),
            _ => None,
        }
    }
}

/// Measured parameters of a platform (one column of Table II).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Platform {
    /// Which platform this is.
    pub id: PlatformId,
    /// Individual-processor error rate `λ_ind` (errors per second), all error
    /// sources combined.
    pub lambda_ind: f64,
    /// Fraction of errors that are fail-stop.
    pub fail_stop_fraction: f64,
    /// Processor count the measurements were taken on.
    pub measured_processors: u64,
    /// Measured checkpoint cost `C_P` (seconds) at `measured_processors`.
    pub measured_checkpoint: f64,
    /// Measured verification cost `V_P` (seconds) at `measured_processors`
    /// (the cost of an in-memory checkpoint, following the paper).
    pub measured_verification: f64,
}

impl Platform {
    /// Returns the measured parameters of a platform (Table II).
    pub fn get(id: PlatformId) -> Self {
        match id {
            PlatformId::Hera => Self {
                id,
                lambda_ind: 1.69e-8,
                fail_stop_fraction: 0.2188,
                measured_processors: 512,
                measured_checkpoint: 300.0,
                measured_verification: 15.4,
            },
            PlatformId::Atlas => Self {
                id,
                lambda_ind: 1.62e-8,
                fail_stop_fraction: 0.0625,
                measured_processors: 1024,
                measured_checkpoint: 439.0,
                measured_verification: 9.1,
            },
            PlatformId::Coastal => Self {
                id,
                lambda_ind: 2.34e-9,
                fail_stop_fraction: 0.1667,
                measured_processors: 2048,
                measured_checkpoint: 1051.0,
                measured_verification: 4.5,
            },
            PlatformId::CoastalSsd => Self {
                id,
                lambda_ind: 2.34e-9,
                fail_stop_fraction: 0.1667,
                measured_processors: 2048,
                measured_checkpoint: 2500.0,
                measured_verification: 180.0,
            },
        }
    }

    /// All four platforms in Table II order.
    pub fn all() -> Vec<Self> {
        PlatformId::ALL.iter().map(|&id| Self::get(id)).collect()
    }

    /// Silent-error fraction `s = 1 - f`.
    pub fn silent_fraction(&self) -> f64 {
        1.0 - self.fail_stop_fraction
    }

    /// The failure model of this platform (possibly with an overridden `λ_ind`,
    /// for the sweeps of Figures 5 and 6).
    pub fn failure_model(&self) -> FailureModel {
        FailureModel::new(self.lambda_ind, self.fail_stop_fraction)
            .expect("embedded Table II parameters are valid")
    }

    /// Individual-processor MTBF in years (useful for reporting).
    pub fn mtbf_ind_years(&self) -> f64 {
        1.0 / self.lambda_ind / (365.25 * 86_400.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_values_are_embedded_verbatim() {
        let hera = Platform::get(PlatformId::Hera);
        assert_eq!(hera.lambda_ind, 1.69e-8);
        assert_eq!(hera.fail_stop_fraction, 0.2188);
        assert_eq!(hera.measured_processors, 512);
        assert_eq!(hera.measured_checkpoint, 300.0);
        assert_eq!(hera.measured_verification, 15.4);

        let atlas = Platform::get(PlatformId::Atlas);
        assert_eq!(atlas.lambda_ind, 1.62e-8);
        assert_eq!(atlas.fail_stop_fraction, 0.0625);
        assert_eq!(atlas.measured_processors, 1024);
        assert_eq!(atlas.measured_checkpoint, 439.0);
        assert_eq!(atlas.measured_verification, 9.1);

        let coastal = Platform::get(PlatformId::Coastal);
        assert_eq!(coastal.lambda_ind, 2.34e-9);
        assert_eq!(coastal.fail_stop_fraction, 0.1667);
        assert_eq!(coastal.measured_processors, 2048);
        assert_eq!(coastal.measured_checkpoint, 1051.0);
        assert_eq!(coastal.measured_verification, 4.5);

        let ssd = Platform::get(PlatformId::CoastalSsd);
        assert_eq!(ssd.lambda_ind, 2.34e-9);
        assert_eq!(ssd.measured_checkpoint, 2500.0);
        assert_eq!(ssd.measured_verification, 180.0);
    }

    #[test]
    fn silent_fractions_match_table2() {
        assert!((Platform::get(PlatformId::Hera).silent_fraction() - 0.7812).abs() < 1e-12);
        assert!((Platform::get(PlatformId::Atlas).silent_fraction() - 0.9375).abs() < 1e-12);
        assert!((Platform::get(PlatformId::Coastal).silent_fraction() - 0.8333).abs() < 1e-12);
    }

    #[test]
    fn all_returns_four_distinct_platforms() {
        let all = Platform::all();
        assert_eq!(all.len(), 4);
        for (i, p) in all.iter().enumerate() {
            assert_eq!(p.id, PlatformId::ALL[i]);
        }
    }

    #[test]
    fn failure_model_is_valid() {
        for p in Platform::all() {
            let fm = p.failure_model();
            assert_eq!(fm.lambda_ind, p.lambda_ind);
            assert_eq!(fm.fail_stop_fraction, p.fail_stop_fraction);
        }
    }

    #[test]
    fn individual_mtbf_is_on_the_order_of_years() {
        // The paper argues λ_ind corresponds to MTBFs of the order of years.
        for p in Platform::all() {
            let years = p.mtbf_ind_years();
            assert!(
                years > 1.0 && years < 50.0,
                "{}: {years} years",
                p.id.name()
            );
        }
    }

    #[test]
    fn parse_round_trips_names() {
        for id in PlatformId::ALL {
            assert_eq!(PlatformId::parse(id.name()), Some(id));
        }
        assert_eq!(
            PlatformId::parse("coastal-ssd"),
            Some(PlatformId::CoastalSsd)
        );
        assert_eq!(PlatformId::parse("unknown"), None);
    }
}

/// Golden values: the complete Table II, pinned as literal tuples so that any
/// refactor silently drifting from the paper's constants fails loudly here.
#[cfg(test)]
mod golden_tests {
    use super::*;

    #[test]
    fn golden_table2() {
        // (id, lambda_ind, f, P, C_P, V_P) — transcribed from Table II.
        let expected: [(PlatformId, f64, f64, u64, f64, f64); 4] = [
            (PlatformId::Hera, 1.69e-8, 0.2188, 512, 300.0, 15.4),
            (PlatformId::Atlas, 1.62e-8, 0.0625, 1024, 439.0, 9.1),
            (PlatformId::Coastal, 2.34e-9, 0.1667, 2048, 1051.0, 4.5),
            (PlatformId::CoastalSsd, 2.34e-9, 0.1667, 2048, 2500.0, 180.0),
        ];
        for (id, lambda, f, p, checkpoint, verification) in expected {
            let platform = Platform::get(id);
            assert_eq!(
                platform.lambda_ind.to_bits(),
                lambda.to_bits(),
                "{id:?} lambda"
            );
            assert_eq!(
                platform.fail_stop_fraction.to_bits(),
                f.to_bits(),
                "{id:?} f"
            );
            assert_eq!(platform.measured_processors, p, "{id:?} P");
            assert_eq!(
                platform.measured_checkpoint.to_bits(),
                checkpoint.to_bits(),
                "{id:?} C"
            );
            assert_eq!(
                platform.measured_verification.to_bits(),
                verification.to_bits(),
                "{id:?} V"
            );
        }
    }
}
