//! Assembling complete experiment setups (platform × scenario × application).

use serde::{Deserialize, Serialize};

use ayd_core::{ExactModel, FailureModel, ModelError, SpeedupProfile};

use crate::platform::{Platform, PlatformId};
use crate::scenario::{Scenario, ScenarioId};

/// A fully specified experiment setup: a platform, a resilience scenario, the
/// application's speedup profile, the downtime and (optionally) an overridden
/// individual error rate. This is the unit every figure of the paper sweeps over.
///
/// The profile is stored *unvalidated* (its variant fields may hold any `f64`
/// the caller supplied, e.g. from a builder or a deserialized request);
/// [`ExperimentSetup::model`] validates it, so an out-of-range parameter
/// surfaces as a [`ModelError`] rather than a panic.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentSetup {
    /// Platform whose Table II measurements parameterise the costs and rates.
    pub platform: PlatformId,
    /// Resilience scenario (Table III) describing cost scaling.
    pub scenario: ScenarioId,
    /// Speedup profile of the application (paper default: Amdahl, `α = 0.1`).
    pub profile: SpeedupProfile,
    /// Downtime `D` in seconds after each fail-stop error (paper default: 3600 s,
    /// a repair-based restoration).
    pub downtime: f64,
    /// Optional override of the individual error rate `λ_ind` (used by the sweeps
    /// of Figures 5 and 6); `None` keeps the platform's measured rate.
    pub lambda_ind_override: Option<f64>,
}

impl ExperimentSetup {
    /// The paper's default configuration for a platform/scenario pair:
    /// Amdahl with `α = 0.1`, `D = 3600 s`, measured `λ_ind`.
    pub fn paper_default(platform: PlatformId, scenario: ScenarioId) -> Self {
        Self {
            platform,
            scenario,
            profile: SpeedupProfile::Amdahl { alpha: 0.1 },
            downtime: 3600.0,
            lambda_ind_override: None,
        }
    }

    /// Returns a copy with a different Amdahl sequential fraction (Figure 4
    /// sweep). Convenience wrapper over [`Self::with_profile`].
    pub fn with_alpha(self, alpha: f64) -> Self {
        self.with_profile(SpeedupProfile::Amdahl { alpha })
    }

    /// Returns a copy with a different speedup profile.
    pub fn with_profile(mut self, profile: SpeedupProfile) -> Self {
        self.profile = profile;
        self
    }

    /// The Amdahl-equivalent sequential fraction of the profile (`α` for
    /// Amdahl, `0` for perfectly parallel), `None` for extension profiles.
    pub fn alpha(&self) -> Option<f64> {
        self.profile.sequential_fraction()
    }

    /// Returns a copy with a different downtime (Figure 7 sweep).
    pub fn with_downtime(mut self, downtime: f64) -> Self {
        self.downtime = downtime;
        self
    }

    /// Returns a copy with an overridden individual error rate (Figures 5–6).
    pub fn with_lambda_ind(mut self, lambda_ind: f64) -> Self {
        self.lambda_ind_override = Some(lambda_ind);
        self
    }

    /// The platform measurements backing this setup.
    pub fn platform_data(&self) -> Platform {
        Platform::get(self.platform)
    }

    /// The scenario definition backing this setup.
    pub fn scenario_data(&self) -> Scenario {
        Scenario::get(self.scenario)
    }

    /// The failure model of this setup (platform rate or override).
    pub fn failure_model(&self) -> Result<FailureModel, ModelError> {
        let platform = self.platform_data();
        match self.lambda_ind_override {
            Some(lambda) => FailureModel::new(lambda, platform.fail_stop_fraction),
            None => Ok(platform.failure_model()),
        }
    }

    /// Builds the exact analytical model of this setup.
    pub fn model(&self) -> Result<ExactModel, ModelError> {
        let platform = self.platform_data();
        let scenario = self.scenario_data();
        let costs = scenario.fit(&platform, self.downtime)?;
        let speedup = self.profile.validate()?;
        Ok(ExactModel::new(speedup, costs, self.failure_model()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ayd_core::{CostCase, FirstOrder};

    #[test]
    fn default_setup_uses_paper_parameters() {
        let setup = ExperimentSetup::paper_default(PlatformId::Hera, ScenarioId::S1);
        assert_eq!(setup.alpha(), Some(0.1));
        assert_eq!(setup.profile, SpeedupProfile::Amdahl { alpha: 0.1 });
        assert_eq!(setup.downtime, 3600.0);
        assert!(setup.lambda_ind_override.is_none());
        let model = setup.model().unwrap();
        assert_eq!(model.costs.downtime, 3600.0);
        assert_eq!(model.failures.lambda_ind, 1.69e-8);
    }

    #[test]
    fn scenario_cost_cases_are_classified_as_in_the_paper() {
        // Scenarios 1–2 → Theorem 2 (linear growth), 3–5 → Theorem 3 (constant),
        // 6 → decreasing.
        let expected = [
            (ScenarioId::S1, CostCase::LinearGrowth),
            (ScenarioId::S2, CostCase::LinearGrowth),
            (ScenarioId::S3, CostCase::Constant),
            (ScenarioId::S4, CostCase::Constant),
            (ScenarioId::S5, CostCase::Constant),
            (ScenarioId::S6, CostCase::Decreasing),
        ];
        for (scenario, case) in expected {
            let model = ExperimentSetup::paper_default(PlatformId::Hera, scenario)
                .model()
                .unwrap();
            assert_eq!(FirstOrder::new(&model).cost_case(), case, "{scenario:?}");
        }
    }

    #[test]
    fn overrides_apply() {
        let setup = ExperimentSetup::paper_default(PlatformId::Atlas, ScenarioId::S3)
            .with_alpha(0.01)
            .with_downtime(60.0)
            .with_lambda_ind(1e-10);
        let model = setup.model().unwrap();
        assert_eq!(model.failures.lambda_ind, 1e-10);
        assert_eq!(model.costs.downtime, 60.0);
        assert_eq!(model.speedup.sequential_fraction(), Some(0.01));
        // The fail-stop fraction stays that of Atlas.
        assert_eq!(model.failures.fail_stop_fraction, 0.0625);
    }

    #[test]
    fn non_amdahl_profiles_build_models() {
        let setup = ExperimentSetup::paper_default(PlatformId::Hera, ScenarioId::S1)
            .with_profile(SpeedupProfile::PowerLaw { sigma: 0.8 });
        assert_eq!(setup.alpha(), None);
        let model = setup.model().unwrap();
        assert_eq!(model.speedup, SpeedupProfile::power_law(0.8).unwrap());
        // Invalid extension-profile parameters error at model() time, exactly
        // like an out-of-range alpha.
        assert!(
            ExperimentSetup::paper_default(PlatformId::Hera, ScenarioId::S1)
                .with_profile(SpeedupProfile::PowerLaw { sigma: 1.5 })
                .model()
                .is_err()
        );
    }

    #[test]
    fn invalid_overrides_surface_as_errors() {
        assert!(
            ExperimentSetup::paper_default(PlatformId::Hera, ScenarioId::S1)
                .with_alpha(1.5)
                .model()
                .is_err()
        );
        assert!(
            ExperimentSetup::paper_default(PlatformId::Hera, ScenarioId::S1)
                .with_lambda_ind(0.0)
                .model()
                .is_err()
        );
        assert!(
            ExperimentSetup::paper_default(PlatformId::Hera, ScenarioId::S1)
                .with_downtime(-5.0)
                .model()
                .is_err()
        );
    }

    #[test]
    fn first_order_optimum_on_hera_matches_figure2_magnitudes() {
        // Figure 2 (Hera, α = 0.1): P* of a few hundred, T* of a few thousand
        // seconds, overhead ≈ 0.11 for the first four scenarios.
        for scenario in [
            ScenarioId::S1,
            ScenarioId::S2,
            ScenarioId::S3,
            ScenarioId::S4,
        ] {
            let model = ExperimentSetup::paper_default(PlatformId::Hera, scenario)
                .model()
                .unwrap();
            let opt = FirstOrder::new(&model).joint_optimum().unwrap();
            assert!(
                opt.processors > 100.0 && opt.processors < 1500.0,
                "{scenario:?}: P*={}",
                opt.processors
            );
            assert!(
                opt.period > 500.0 && opt.period < 20_000.0,
                "{scenario:?}: T*={}",
                opt.period
            );
            assert!(
                opt.overhead > 0.10 && opt.overhead < 0.13,
                "{scenario:?}: H*={}",
                opt.overhead
            );
        }
    }
}
