//! The sweep coordinator: decomposes a `/v1/sweep` job into [`ShardSpec`]
//! units and dispatches them to registered worker nodes.
//!
//! One ayd-serve instance started with `--coordinator` owns the cluster
//! state: a registry of workers (each leased — a worker that stops
//! heartbeating is declared *suspect* after one lease and *dead* after two),
//! and a work-stealing shard queue per distributed job. A dispatcher thread
//! pushes pending shards to idle workers over the zero-dependency
//! [`crate::client::HttpClient`]; workers stream result rows back in
//! [`ShardChunk`] frames, each carrying the manifest snapshot that makes it
//! verifiable against the job's fingerprints and the coordinator's own
//! checkpoint.
//!
//! Failure handling is the paper's checkpoint/restart discipline applied to
//! the cluster itself: when a worker's lease expires mid-shard, the shard is
//! re-queued **from the last accepted chunk** (the coordinator-side
//! checkpoint, mirrored by the worker's atomically-renamed spool manifest) —
//! at most the in-flight suffix is recomputed, never a completed cell. Every
//! re-issue bumps the shard's *epoch*; chunk uploads carry the worker id,
//! its registration token and the epoch they were dispatched under, so a
//! resurrected worker (or a slow upload racing a re-issued shard) is fenced
//! out with `409` instead of corrupting the row stream.
//!
//! Rows merge incrementally as chunks arrive (the same global-index
//! interleaving as [`merge_parts`]); the finished CSV is assembled by
//! [`merge_parts`] itself over the per-shard manifests and is byte-identical
//! to the single-process sweep by the determinism contract.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use ayd_sweep::{merge_parts, ShardChunk, ShardPart, ShardSpec, CSV_HEADER};

use crate::client::HttpClient;
use crate::json::Json;

/// How long a dead worker's record lingers (for the `/v1/workers` view and
/// the `ayd_workers{state="dead"}` gauge) before it is purged, in leases.
const DEAD_RETENTION_LEASES: u32 = 10;

/// One registered worker node.
struct WorkerRecord {
    addr: String,
    token: u64,
    last_seen: Instant,
    /// The shard currently dispatched to this worker, if any.
    assignment: Option<Assignment>,
    /// Set when the lease expired; the record stays for visibility until
    /// purged, but the worker must re-register to be dispatched to again.
    dead: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Assignment {
    job: u64,
    shard: usize,
    epoch: u64,
}

/// Dispatch state of one shard of a distributed job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ShardState {
    Pending,
    Dispatched { worker: u64 },
    Done,
}

/// One shard of a distributed job: its dispatch state, fencing epoch and the
/// rows checkpointed at the coordinator so far.
struct DistShard {
    total: usize,
    state: ShardState,
    /// Bumped on every re-issue; uploads carrying an older epoch are stale.
    epoch: u64,
    /// Checkpointed rows (newline-free CSV lines), shard-local order.
    rows: Vec<String>,
    /// Last worker the shard was dispatched to (kept through `Done` for the
    /// per-worker progress view).
    worker: Option<u64>,
    reissues: u64,
}

/// One distributed sweep job.
struct DistJob {
    /// The original `/v1/sweep` body (re-rendered), forwarded to workers so
    /// they rebuild the exact grid; cross-checked by fingerprint.
    grid_json: String,
    grid_fingerprint: u64,
    options_fingerprint: u64,
    grid_cells: usize,
    count: usize,
    shards: Vec<DistShard>,
    cancelled: bool,
    /// Rows merged into global order so far (the streaming-merge frontier).
    merged_rows: usize,
}

impl DistJob {
    fn completed(&self) -> usize {
        self.shards.iter().map(|s| s.rows.len()).sum()
    }

    fn total(&self) -> usize {
        self.shards.iter().map(|s| s.total).sum()
    }

    fn is_done(&self) -> bool {
        self.shards
            .iter()
            .all(|s| matches!(s.state, ShardState::Done))
    }

    /// Advances the streaming merge frontier: global cell `g` lives in shard
    /// `g % count` at local index `g / count` (the [`ShardSpec`] mapping), so
    /// the merged prefix grows as soon as every shard has checkpointed its
    /// next interleaved row.
    fn advance_merge(&mut self) {
        loop {
            let shard = self.merged_rows % self.count;
            let local = self.merged_rows / self.count;
            if self.shards[shard].rows.len() > local {
                self.merged_rows += 1;
            } else {
                break;
            }
        }
    }
}

struct ClusterState {
    next_worker: u64,
    token_seed: u64,
    workers: HashMap<u64, WorkerRecord>,
    jobs: HashMap<u64, DistJob>,
}

/// A planned shard dispatch: everything the dispatcher thread needs to POST
/// `/v1/shards/run` to the worker *outside* the coordinator lock.
#[derive(Debug, Clone)]
pub struct Dispatch {
    /// Target worker id.
    pub worker: u64,
    /// Target worker address (`host:port`).
    pub addr: String,
    /// Distributed job id (the `/v1/sweep` job id).
    pub job: u64,
    /// Shard index.
    pub shard: usize,
    /// Shard count of the job.
    pub count: usize,
    /// Fencing epoch the shard is dispatched under.
    pub epoch: u64,
    /// First shard-local row the worker must compute (earlier rows are
    /// already checkpointed at the coordinator).
    pub start_row: usize,
    /// The job's grid as the original sweep request JSON.
    pub grid_json: String,
    /// Fingerprint of the job's grid.
    pub grid_fingerprint: u64,
    /// Fingerprint of the job's output-relevant options.
    pub options_fingerprint: u64,
}

/// Why a chunk upload was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChunkError {
    /// Unknown job or shard (404).
    NotFound(String),
    /// The job was cancelled (410).
    Gone(String),
    /// Stale sender: unknown/superseded worker, wrong token, or an epoch
    /// older than the shard's current one (409). The checkpoint is unchanged.
    Stale(String),
    /// The chunk contradicts the job (fingerprints, checkpoint offset) (400).
    Invalid(String),
}

impl ChunkError {
    /// The HTTP mapping of the rejection.
    pub fn status(&self) -> (u16, &'static str) {
        match self {
            ChunkError::NotFound(_) => (404, "Not Found"),
            ChunkError::Gone(_) => (410, "Gone"),
            ChunkError::Stale(_) => (409, "Conflict"),
            ChunkError::Invalid(_) => (400, "Bad Request"),
        }
    }

    /// The human-readable reason.
    pub fn reason(&self) -> &str {
        match self {
            ChunkError::NotFound(reason)
            | ChunkError::Gone(reason)
            | ChunkError::Stale(reason)
            | ChunkError::Invalid(reason) => reason,
        }
    }
}

/// Outcome of an accepted chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkOutcome {
    /// Rows appended to the shard's checkpoint by this chunk.
    pub accepted_rows: usize,
    /// True when the chunk completed its shard.
    pub shard_done: bool,
    /// True when the chunk completed the whole job.
    pub job_done: bool,
}

/// A worker row of the `/v1/workers` operator view.
#[derive(Debug, Clone)]
pub struct WorkerView {
    /// Worker id.
    pub id: u64,
    /// Worker address.
    pub addr: String,
    /// `alive`, `suspect` or `dead`.
    pub state: &'static str,
    /// Milliseconds since the last heartbeat.
    pub age_ms: u64,
    /// `(job, shard, epoch)` currently dispatched to the worker, if any.
    pub assignment: Option<(u64, usize, u64)>,
}

/// One shard row of the distributed `GET /v1/sweep/{id}/shards` view.
#[derive(Debug, Clone)]
pub struct DistShardView {
    /// Shard index.
    pub index: usize,
    /// Cells the shard owns.
    pub total: usize,
    /// Rows checkpointed at the coordinator.
    pub completed: usize,
    /// `pending`, `dispatched` or `done`.
    pub status: &'static str,
    /// The worker the shard is (or was last) dispatched to.
    pub worker: Option<u64>,
    /// That worker's address, when it is still registered.
    pub worker_addr: Option<String>,
    /// Current fencing epoch.
    pub epoch: u64,
    /// Times the shard was re-issued after a lease expiry.
    pub reissues: u64,
}

/// The distributed-job progress document: per-shard rows plus the streaming
/// merge frontier.
#[derive(Debug, Clone)]
pub struct DistJobView {
    /// Per-shard progress.
    pub shards: Vec<DistShardView>,
    /// Rows already merged into global order.
    pub merged_rows: usize,
    /// Total cells of the grid.
    pub total: usize,
    /// True when the job was cancelled.
    pub cancelled: bool,
}

/// Point-in-time cluster counters for the `/metrics` families.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterStats {
    /// Workers heartbeating within one lease.
    pub workers_alive: usize,
    /// Workers between one and two leases behind.
    pub workers_suspect: usize,
    /// Workers declared dead (lease expired), not yet purged.
    pub workers_dead: usize,
    /// Shard dispatches attempted (`ayd_shards_dispatched_total`).
    pub shards_dispatched_total: u64,
    /// Shards re-issued after a lease expiry (`ayd_shard_reissues_total`).
    pub shard_reissues_total: u64,
    /// Worker leases expired (`ayd_lease_expiries_total`).
    pub lease_expiries_total: u64,
}

/// What a finished distributed job hands to the job registry.
#[derive(Debug)]
pub struct DistOutcome {
    /// True when the job was cancelled before every shard completed.
    pub cancelled: bool,
    /// The merged canonical CSV (header only for cancelled jobs).
    pub csv: String,
    /// Merged row count.
    pub rows: usize,
    /// Shard count.
    pub count: usize,
    /// Grid fingerprint.
    pub grid_fingerprint: u64,
    /// Options fingerprint.
    pub options_fingerprint: u64,
    /// Cells each shard owns.
    pub totals: Vec<usize>,
    /// Rows each shard checkpointed.
    pub completed: Vec<usize>,
}

/// The coordinator: cluster state behind one mutex, counters on atomics, and
/// `Instant`-parameterised lease arithmetic so tests drive time synthetically.
pub struct Coordinator {
    lease: Duration,
    state: Mutex<ClusterState>,
    dispatched_total: AtomicU64,
    reissues_total: AtomicU64,
    lease_expiries_total: AtomicU64,
    stop: AtomicBool,
}

/// SplitMix64 finalizer — the token generator (uniqueness, not secrecy, is
/// the point: tokens fence *accidental* stale writers, the cluster protocol
/// is not an authentication boundary).
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl Coordinator {
    /// Builds a coordinator with the given worker lease.
    pub fn new(lease: Duration) -> Arc<Self> {
        let seed = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5EED)
            ^ (std::process::id() as u64) << 32;
        Arc::new(Self {
            lease: lease.max(Duration::from_millis(10)),
            state: Mutex::new(ClusterState {
                next_worker: 1,
                token_seed: mix64(seed),
                workers: HashMap::new(),
                jobs: HashMap::new(),
            }),
            dispatched_total: AtomicU64::new(0),
            reissues_total: AtomicU64::new(0),
            lease_expiries_total: AtomicU64::new(0),
            stop: AtomicBool::new(false),
        })
    }

    /// The worker lease.
    pub fn lease(&self) -> Duration {
        self.lease
    }

    /// Asks the dispatcher thread to exit.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// True once [`Coordinator::stop`] was called.
    pub fn stopped(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ClusterState> {
        // Same poison policy as the job registry: the protected maps stay
        // structurally valid across our critical sections.
        self.state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Registers a worker node, returning `(id, token)`. Re-registration
    /// (same address again) creates a fresh identity; any shard dispatched to
    /// the old identity stays fenced to it.
    pub fn register_worker(&self, addr: &str, now: Instant) -> (u64, u64) {
        let mut state = self.lock();
        state.token_seed = mix64(state.token_seed);
        let token = state.token_seed;
        let id = state.next_worker;
        state.next_worker += 1;
        state.workers.insert(
            id,
            WorkerRecord {
                addr: addr.to_string(),
                token,
                last_seen: now,
                assignment: None,
                dead: false,
            },
        );
        (id, token)
    }

    /// Renews a worker's lease. `Err` (worker unknown, token mismatch or
    /// declared dead) tells the worker to re-register.
    pub fn heartbeat(&self, id: u64, token: u64, now: Instant) -> Result<(), String> {
        let mut state = self.lock();
        match state.workers.get_mut(&id) {
            Some(record) if record.token == token && !record.dead => {
                record.last_seen = now;
                Ok(())
            }
            Some(record) if record.dead => {
                Err(format!("worker {id} was declared dead; re-register"))
            }
            Some(_) => Err(format!("worker {id} token mismatch; re-register")),
            None => Err(format!("unknown worker {id}; re-register")),
        }
    }

    /// Registers a distributed job: `count` pending shards over a
    /// `grid_cells`-cell grid.
    pub fn submit(
        &self,
        job: u64,
        grid_json: String,
        grid_fingerprint: u64,
        options_fingerprint: u64,
        count: usize,
        grid_cells: usize,
    ) {
        let shards = (0..count)
            .map(|index| {
                let spec = ShardSpec::new(index, count).expect("count validated by the API layer");
                DistShard {
                    total: spec.cell_count(grid_cells),
                    state: ShardState::Pending,
                    epoch: 0,
                    rows: Vec::new(),
                    worker: None,
                    reissues: 0,
                }
            })
            .collect();
        self.lock().jobs.insert(
            job,
            DistJob {
                grid_json,
                grid_fingerprint,
                options_fingerprint,
                grid_cells,
                count,
                shards,
                cancelled: false,
                merged_rows: 0,
            },
        );
    }

    /// Expires leases: workers more than two leases behind are declared dead
    /// — their in-flight shard re-queues from its coordinator checkpoint
    /// under a bumped epoch — and dead records past the retention window are
    /// purged. Returns the ids of workers declared dead by this call.
    pub fn expire(&self, now: Instant) -> Vec<u64> {
        let mut state = self.lock();
        let mut died = Vec::new();
        let dead_after = 2 * self.lease;
        let purge_after = DEAD_RETENTION_LEASES * self.lease;
        let mut requeue = Vec::new();
        for (&id, record) in state.workers.iter_mut() {
            if !record.dead && now.duration_since(record.last_seen) > dead_after {
                record.dead = true;
                died.push(id);
                self.lease_expiries_total.fetch_add(1, Ordering::Relaxed);
                let mut span = ayd_obs::span("lease_expire");
                span.field_u64("worker", id);
                if let Some(assignment) = record.assignment.take() {
                    span.field_u64("job", assignment.job);
                    span.field_u64("shard", assignment.shard as u64);
                    requeue.push(assignment);
                }
                span.finish();
            }
        }
        state.workers.retain(|_, record| {
            !record.dead || now.duration_since(record.last_seen) <= purge_after
        });
        for assignment in requeue {
            let Some(job) = state.jobs.get_mut(&assignment.job) else {
                continue;
            };
            let shard = &mut job.shards[assignment.shard];
            // Only the epoch the worker held can be re-queued: a `Done`
            // shard, or one already re-issued, is left alone.
            if shard.epoch == assignment.epoch
                && matches!(shard.state, ShardState::Dispatched { .. })
            {
                shard.state = ShardState::Pending;
                shard.epoch += 1;
                shard.reissues += 1;
                self.reissues_total.fetch_add(1, Ordering::Relaxed);
                let mut span = ayd_obs::span("shard_reissue");
                span.field_u64("job", assignment.job);
                span.field_u64("shard", assignment.shard as u64);
                span.field_u64("epoch", shard.epoch);
                span.field_u64("checkpointed_rows", shard.rows.len() as u64);
                span.finish();
            }
        }
        died
    }

    /// Plans dispatches: pending shards are assigned to idle alive workers
    /// under the lock (shard marked `Dispatched`, worker's assignment set),
    /// and the HTTP posts happen outside it. A failed post must be reported
    /// back via [`Coordinator::dispatch_failed`].
    pub fn dispatch_plan(&self, now: Instant) -> Vec<Dispatch> {
        let mut state = self.lock();
        let mut idle: Vec<u64> = state
            .workers
            .iter()
            .filter(|(_, record)| {
                !record.dead
                    && record.assignment.is_none()
                    && now.duration_since(record.last_seen) <= self.lease
            })
            .map(|(&id, _)| id)
            .collect();
        idle.sort_unstable();
        if idle.is_empty() {
            return Vec::new();
        }
        let mut plan = Vec::new();
        let mut job_ids: Vec<u64> = state.jobs.keys().copied().collect();
        job_ids.sort_unstable();
        'jobs: for job_id in job_ids {
            let job = &state.jobs[&job_id];
            if job.cancelled {
                continue;
            }
            let pending: Vec<usize> = job
                .shards
                .iter()
                .enumerate()
                .filter(|(_, s)| matches!(s.state, ShardState::Pending))
                .map(|(i, _)| i)
                .collect();
            for shard_index in pending {
                let Some(worker_id) = idle.pop() else {
                    break 'jobs;
                };
                let addr = state.workers[&worker_id].addr.clone();
                let job = state.jobs.get_mut(&job_id).expect("job present");
                let shard = &mut job.shards[shard_index];
                shard.state = ShardState::Dispatched { worker: worker_id };
                shard.worker = Some(worker_id);
                let dispatch = Dispatch {
                    worker: worker_id,
                    addr,
                    job: job_id,
                    shard: shard_index,
                    count: job.count,
                    epoch: shard.epoch,
                    start_row: shard.rows.len(),
                    grid_json: job.grid_json.clone(),
                    grid_fingerprint: job.grid_fingerprint,
                    options_fingerprint: job.options_fingerprint,
                };
                state
                    .workers
                    .get_mut(&worker_id)
                    .expect("worker present")
                    .assignment = Some(Assignment {
                    job: job_id,
                    shard: shard_index,
                    epoch: dispatch.epoch,
                });
                self.dispatched_total.fetch_add(1, Ordering::Relaxed);
                plan.push(dispatch);
            }
        }
        plan
    }

    /// Reverts a dispatch whose HTTP post failed: the shard goes back to
    /// pending (same epoch — nothing was computed) and the worker back to
    /// idle, provided neither moved on in the meantime.
    pub fn dispatch_failed(&self, dispatch: &Dispatch) {
        let mut state = self.lock();
        if let Some(record) = state.workers.get_mut(&dispatch.worker) {
            if record.assignment
                == Some(Assignment {
                    job: dispatch.job,
                    shard: dispatch.shard,
                    epoch: dispatch.epoch,
                })
            {
                record.assignment = None;
            }
        }
        if let Some(job) = state.jobs.get_mut(&dispatch.job) {
            let shard = &mut job.shards[dispatch.shard];
            if shard.epoch == dispatch.epoch
                && shard.state
                    == (ShardState::Dispatched {
                        worker: dispatch.worker,
                    })
            {
                shard.state = ShardState::Pending;
            }
        }
    }

    /// Accepts (or refuses) one uploaded chunk. The sender must hold the
    /// shard's current assignment — worker id, registration token and epoch
    /// all have to match — and the chunk's manifest must agree with the job's
    /// fingerprints and the coordinator's checkpoint. A refused chunk leaves
    /// the checkpoint unchanged.
    #[allow(clippy::too_many_arguments)]
    pub fn accept_chunk(
        &self,
        job_id: u64,
        shard_index: usize,
        worker: u64,
        token: u64,
        epoch: u64,
        chunk: &ShardChunk,
        now: Instant,
    ) -> Result<ChunkOutcome, ChunkError> {
        let mut span = ayd_obs::span("shard_chunk");
        span.field_u64("job", job_id);
        span.field_u64("shard", shard_index as u64);
        span.field_u64("worker", worker);
        span.field_u64("rows", chunk.row_count() as u64);
        let result = self.accept_chunk_inner(job_id, shard_index, worker, token, epoch, chunk, now);
        span.field_bool("accepted", result.is_ok());
        span.finish();
        result
    }

    #[allow(clippy::too_many_arguments)]
    fn accept_chunk_inner(
        &self,
        job_id: u64,
        shard_index: usize,
        worker: u64,
        token: u64,
        epoch: u64,
        chunk: &ShardChunk,
        now: Instant,
    ) -> Result<ChunkOutcome, ChunkError> {
        let mut state = self.lock();
        // Fence the sender before touching the job: only the worker the
        // shard's current epoch was dispatched to may advance the checkpoint.
        match state.workers.get(&worker) {
            Some(record) if record.dead => {
                return Err(ChunkError::Stale(format!(
                    "worker {worker} was declared dead; its shard was re-issued"
                )))
            }
            Some(record) if record.token != token => {
                return Err(ChunkError::Stale(format!(
                    "worker {worker} token mismatch (stale registration)"
                )))
            }
            Some(_) => {}
            None => {
                return Err(ChunkError::Stale(format!(
                    "unknown worker {worker} (purged after lease expiry?)"
                )))
            }
        }
        let Some(job) = state.jobs.get_mut(&job_id) else {
            return Err(ChunkError::NotFound(format!("no sweep job {job_id}")));
        };
        if job.cancelled {
            return Err(ChunkError::Gone(format!(
                "sweep job {job_id} was cancelled"
            )));
        }
        if shard_index >= job.count {
            return Err(ChunkError::NotFound(format!(
                "job {job_id} has {} shards, no shard {shard_index}",
                job.count
            )));
        }
        let manifest = &chunk.manifest;
        if manifest.grid_fingerprint != job.grid_fingerprint
            || manifest.options_fingerprint != job.options_fingerprint
            || manifest.grid_cells != job.grid_cells
        {
            return Err(ChunkError::Invalid(
                "chunk manifest belongs to a different sweep (fingerprint mismatch)".to_string(),
            ));
        }
        if manifest.shard.index != shard_index || manifest.shard.count != job.count {
            return Err(ChunkError::Invalid(format!(
                "chunk manifest covers shard {}, upload targets shard {shard_index}/{}",
                manifest.shard, job.count
            )));
        }
        let shard = &mut job.shards[shard_index];
        match shard.state {
            ShardState::Dispatched { worker: assigned } if assigned == worker => {}
            ShardState::Done => {
                return Err(ChunkError::Stale(format!(
                    "shard {shard_index} already completed"
                )))
            }
            _ => {
                return Err(ChunkError::Stale(format!(
                    "shard {shard_index} is not dispatched to worker {worker}"
                )))
            }
        }
        if shard.epoch != epoch {
            return Err(ChunkError::Stale(format!(
                "stale epoch {epoch} for shard {shard_index} (current {})",
                shard.epoch
            )));
        }
        if chunk.from_row != shard.rows.len() {
            return Err(ChunkError::Invalid(format!(
                "chunk starts at row {} but the checkpoint holds {} rows",
                chunk.from_row,
                shard.rows.len()
            )));
        }
        let accepted_rows = chunk.row_count();
        if shard.rows.len() + accepted_rows > shard.total {
            return Err(ChunkError::Invalid(format!(
                "chunk overruns the shard: {} + {accepted_rows} rows > {} cells",
                shard.rows.len(),
                shard.total
            )));
        }
        shard
            .rows
            .extend(chunk.rows.lines().map(|line| line.to_string()));
        let shard_done = shard.rows.len() == shard.total;
        if shard_done {
            shard.state = ShardState::Done;
        }
        job.advance_merge();
        let job_done = job.is_done();
        // The upload doubles as a heartbeat, and a finished shard frees the
        // worker for the next dispatch tick.
        if let Some(record) = state.workers.get_mut(&worker) {
            record.last_seen = now;
            if shard_done {
                record.assignment = None;
            }
        }
        Ok(ChunkOutcome {
            accepted_rows,
            shard_done,
            job_done,
        })
    }

    /// Marks a job cancelled: pending shards stop dispatching and in-flight
    /// uploads are refused with `410`.
    pub fn cancel_job(&self, job: u64) {
        let mut state = self.lock();
        if let Some(entry) = state.jobs.get_mut(&job) {
            entry.cancelled = true;
        }
    }

    /// `(completed, total)` cells of a live job.
    pub fn job_progress(&self, job: u64) -> Option<(usize, usize)> {
        let state = self.lock();
        state
            .jobs
            .get(&job)
            .map(|entry| (entry.completed(), entry.total()))
    }

    /// True when the job can be joined: every shard done, or cancelled.
    /// Unknown jobs count as finished so the registry never spins on one.
    pub fn job_finished(&self, job: u64) -> bool {
        let state = self.lock();
        state
            .jobs
            .get(&job)
            .map(|entry| entry.cancelled || entry.is_done())
            .unwrap_or(true)
    }

    /// The distributed per-shard progress view of a live job.
    pub fn shards_view(&self, job: u64) -> Option<DistJobView> {
        let state = self.lock();
        let entry = state.jobs.get(&job)?;
        let shards = entry
            .shards
            .iter()
            .enumerate()
            .map(|(index, shard)| DistShardView {
                index,
                total: shard.total,
                completed: shard.rows.len(),
                status: match shard.state {
                    ShardState::Pending => "pending",
                    ShardState::Dispatched { .. } => "dispatched",
                    ShardState::Done => "done",
                },
                worker: shard.worker,
                worker_addr: shard
                    .worker
                    .and_then(|id| state.workers.get(&id))
                    .map(|record| record.addr.clone()),
                epoch: shard.epoch,
                reissues: shard.reissues,
            })
            .collect();
        Some(DistJobView {
            shards,
            merged_rows: entry.merged_rows,
            total: entry.total(),
            cancelled: entry.cancelled,
        })
    }

    /// The `/v1/workers` operator view.
    pub fn workers_view(&self, now: Instant) -> Vec<WorkerView> {
        let state = self.lock();
        let mut views: Vec<WorkerView> = state
            .workers
            .iter()
            .map(|(&id, record)| WorkerView {
                id,
                addr: record.addr.clone(),
                state: self.liveness(record, now),
                age_ms: now.duration_since(record.last_seen).as_millis() as u64,
                assignment: record.assignment.map(|a| (a.job, a.shard, a.epoch)),
            })
            .collect();
        views.sort_unstable_by_key(|view| view.id);
        views
    }

    fn liveness(&self, record: &WorkerRecord, now: Instant) -> &'static str {
        if record.dead {
            "dead"
        } else if now.duration_since(record.last_seen) <= self.lease {
            "alive"
        } else {
            "suspect"
        }
    }

    /// Point-in-time counters for the cluster `/metrics` families.
    pub fn stats(&self, now: Instant) -> ClusterStats {
        let state = self.lock();
        let mut stats = ClusterStats {
            shards_dispatched_total: self.dispatched_total.load(Ordering::Relaxed),
            shard_reissues_total: self.reissues_total.load(Ordering::Relaxed),
            lease_expiries_total: self.lease_expiries_total.load(Ordering::Relaxed),
            ..ClusterStats::default()
        };
        for record in state.workers.values() {
            match self.liveness(record, now) {
                "alive" => stats.workers_alive += 1,
                "suspect" => stats.workers_suspect += 1,
                _ => stats.workers_dead += 1,
            }
        }
        stats
    }

    /// Takes a finished job out of the coordinator, merging its shards into
    /// the canonical CSV via [`merge_parts`] (byte-identical to the
    /// single-process sweep). Cancelled or incomplete jobs yield a
    /// header-only CSV marked cancelled.
    pub fn take_finished(&self, job: u64) -> Option<DistOutcome> {
        let mut state = self.lock();
        let entry = state.jobs.remove(&job)?;
        let totals: Vec<usize> = entry.shards.iter().map(|s| s.total).collect();
        let completed: Vec<usize> = entry.shards.iter().map(|s| s.rows.len()).collect();
        let base = DistOutcome {
            cancelled: true,
            csv: format!("{CSV_HEADER}\n"),
            rows: 0,
            count: entry.count,
            grid_fingerprint: entry.grid_fingerprint,
            options_fingerprint: entry.options_fingerprint,
            totals,
            completed,
        };
        if entry.cancelled || !entry.is_done() {
            return Some(base);
        }
        let parts: Vec<ShardPart> = entry
            .shards
            .iter()
            .enumerate()
            .map(|(index, shard)| {
                let spec = ShardSpec::new(index, entry.count).expect("validated at submit");
                let mut manifest = ayd_sweep::SweepManifest {
                    grid_fingerprint: entry.grid_fingerprint,
                    options_fingerprint: entry.options_fingerprint,
                    shard: spec,
                    grid_cells: entry.grid_cells,
                    shard_cells: shard.total,
                    completed: shard.rows.len(),
                    profiles: Vec::new(),
                };
                let mut csv = String::with_capacity(
                    CSV_HEADER.len() + 1 + shard.rows.iter().map(|r| r.len() + 1).sum::<usize>(),
                );
                csv.push_str(CSV_HEADER);
                csv.push('\n');
                for row in &shard.rows {
                    csv.push_str(row);
                    csv.push('\n');
                }
                manifest.completed = shard.rows.len();
                ShardPart { manifest, csv }
            })
            .collect();
        match merge_parts(&parts) {
            Ok(csv) => {
                let rows = entry.total();
                Some(DistOutcome {
                    cancelled: false,
                    rows,
                    csv,
                    ..base
                })
            }
            // Structurally impossible once every chunk was validated on
            // entry; surface as a cancelled (failed) job rather than panic.
            Err(_) => Some(base),
        }
    }
}

/// Renders the `/v1/shards/run` dispatch body a worker receives.
pub fn dispatch_body(dispatch: &Dispatch) -> String {
    let grid = Json::parse(&dispatch.grid_json).unwrap_or(Json::Obj(Vec::new()));
    Json::obj(vec![
        ("job", Json::num(dispatch.job as f64)),
        ("shard", Json::num(dispatch.shard as f64)),
        ("count", Json::num(dispatch.count as f64)),
        ("epoch", Json::num(dispatch.epoch as f64)),
        ("start_row", Json::num(dispatch.start_row as f64)),
        ("worker", Json::num(dispatch.worker as f64)),
        (
            "grid_fingerprint",
            Json::str(format!("{:016x}", dispatch.grid_fingerprint)),
        ),
        (
            "options_fingerprint",
            Json::str(format!("{:016x}", dispatch.options_fingerprint)),
        ),
        ("grid", grid),
    ])
    .render()
}

/// Posts one dispatch to its worker; true on a `202` acknowledgement.
fn send_dispatch(dispatch: &Dispatch) -> bool {
    let mut span = ayd_obs::span("dispatch");
    span.field_u64("job", dispatch.job);
    span.field_u64("shard", dispatch.shard as u64);
    span.field_u64("worker", dispatch.worker);
    span.field_u64("epoch", dispatch.epoch);
    span.field_u64("start_row", dispatch.start_row as u64);
    let body = dispatch_body(dispatch);
    let ok = HttpClient::connect(&dispatch.addr)
        .and_then(|mut client| client.post_json("/v1/shards/run", &body))
        .map(|response| response.status == 202)
        .unwrap_or(false);
    span.field_bool("ok", ok);
    span.finish();
    ok
}

/// The dispatcher loop: expire leases, plan dispatches under the lock, post
/// them outside it, revert failures; ticks at a quarter lease (capped at
/// 250 ms) until [`Coordinator::stop`].
pub fn run_dispatcher(coordinator: Arc<Coordinator>) {
    let tick = (coordinator.lease() / 4)
        .min(Duration::from_millis(250))
        .max(Duration::from_millis(10));
    while !coordinator.stopped() {
        let now = Instant::now();
        coordinator.expire(now);
        for dispatch in coordinator.dispatch_plan(now) {
            if !send_dispatch(&dispatch) {
                coordinator.dispatch_failed(&dispatch);
            }
        }
        std::thread::sleep(tick);
    }
}

/// Spawns [`run_dispatcher`] on a named thread.
pub fn spawn_dispatcher(coordinator: Arc<Coordinator>) -> std::thread::JoinHandle<()> {
    std::thread::Builder::new()
        .name("ayd-dispatch".to_string())
        .spawn(move || run_dispatcher(coordinator))
        .expect("spawn the dispatcher thread")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ayd_platforms::ScenarioId;
    use ayd_sweep::{
        ProcessorAxis, RunOptions, ScenarioGrid, SweepManifest, SweepOptions, CSV_HEADER,
    };

    const LEASE: Duration = Duration::from_millis(1_000);

    fn grid() -> ScenarioGrid {
        ScenarioGrid::builder()
            .scenarios(&[ScenarioId::S1, ScenarioId::S3])
            .processors(ProcessorAxis::Fixed(vec![256.0, 1024.0]))
            .build()
            .unwrap()
    }

    fn options() -> SweepOptions {
        SweepOptions::new(RunOptions {
            simulate: false,
            ..RunOptions::smoke()
        })
    }

    fn fake_row() -> String {
        vec!["x"; CSV_HEADER.matches(',').count() + 1].join(",")
    }

    /// A coordinator with one registered worker and one 2-shard job over the
    /// 4-cell test grid, plus the dispatches the first plan hands out.
    fn cluster() -> (Arc<Coordinator>, Instant, u64, u64, Vec<Dispatch>) {
        let coordinator = Coordinator::new(LEASE);
        let t0 = Instant::now();
        let (worker, token) = coordinator.register_worker("127.0.0.1:1", t0);
        let g = grid();
        coordinator.submit(
            7,
            "{}".to_string(),
            g.fingerprint(),
            options().output_fingerprint(),
            2,
            g.len(),
        );
        let plan = coordinator.dispatch_plan(t0);
        (coordinator, t0, worker, token, plan)
    }

    /// Builds a valid chunk for shard `index/count` of the test grid covering
    /// rows `from..from+rows`.
    fn chunk(index: usize, count: usize, from: usize, rows: usize) -> ShardChunk {
        let g = grid();
        let spec = ShardSpec::new(index, count).unwrap();
        let mut manifest = SweepManifest::new(&g, &options(), spec);
        manifest.completed = from + rows;
        let mut text = String::new();
        for _ in 0..rows {
            text.push_str(&fake_row());
            text.push('\n');
        }
        ShardChunk::new(manifest, from, text).unwrap()
    }

    #[test]
    fn dispatch_assigns_pending_shards_to_idle_alive_workers() {
        let (coordinator, t0, worker, _token, plan) = cluster();
        // One idle worker → exactly one of the two shards dispatched.
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0].worker, worker);
        assert_eq!(plan[0].start_row, 0);
        assert_eq!(plan[0].count, 2);
        // The worker is busy now: nothing further to dispatch.
        assert!(coordinator.dispatch_plan(t0).is_empty());
        let stats = coordinator.stats(t0);
        assert_eq!(stats.workers_alive, 1);
        assert_eq!(stats.shards_dispatched_total, 1);
        // A failed post reverts shard and worker; the next plan retries.
        coordinator.dispatch_failed(&plan[0]);
        let retry = coordinator.dispatch_plan(t0);
        assert_eq!(retry.len(), 1);
        assert_eq!(retry[0].shard, plan[0].shard);
        assert_eq!(retry[0].epoch, plan[0].epoch, "no recompute → same epoch");
    }

    #[test]
    fn chunks_advance_the_checkpoint_and_complete_shards() {
        let (coordinator, t0, worker, token, plan) = cluster();
        let d = &plan[0];
        let total = coordinator.shards_view(7).unwrap().shards[d.shard].total;
        let first = coordinator
            .accept_chunk(
                7,
                d.shard,
                worker,
                token,
                d.epoch,
                &chunk(d.shard, 2, 0, 1),
                t0,
            )
            .unwrap();
        assert_eq!(first.accepted_rows, 1);
        assert!(!first.shard_done);
        // Replay (same from_row) is refused, checkpoint unchanged.
        let replay = coordinator
            .accept_chunk(
                7,
                d.shard,
                worker,
                token,
                d.epoch,
                &chunk(d.shard, 2, 0, 1),
                t0,
            )
            .unwrap_err();
        assert!(matches!(replay, ChunkError::Invalid(_)), "{replay:?}");
        let view = coordinator.shards_view(7).unwrap();
        assert_eq!(view.shards[d.shard].completed, 1);
        // Finishing the shard frees the worker and marks the shard done.
        let done = coordinator
            .accept_chunk(
                7,
                d.shard,
                worker,
                token,
                d.epoch,
                &chunk(d.shard, 2, 1, total - 1),
                t0,
            )
            .unwrap();
        assert!(done.shard_done);
        assert!(!done.job_done, "the second shard is still pending");
        let next = coordinator.dispatch_plan(t0);
        assert_eq!(next.len(), 1, "freed worker picks up the second shard");
        assert_ne!(next[0].shard, d.shard);
    }

    #[test]
    fn lease_expiry_requeues_the_shard_from_its_checkpoint() {
        let (coordinator, t0, worker, token, plan) = cluster();
        let d = &plan[0];
        coordinator
            .accept_chunk(
                7,
                d.shard,
                worker,
                token,
                d.epoch,
                &chunk(d.shard, 2, 0, 1),
                t0,
            )
            .unwrap();
        // Within two leases the worker is only suspect; nothing re-queues.
        let suspect_at = t0 + LEASE + LEASE / 2;
        assert!(coordinator.expire(suspect_at).is_empty());
        assert_eq!(coordinator.stats(suspect_at).workers_suspect, 1);
        // Past two leases the worker dies and the shard re-queues.
        let dead_at = t0 + 2 * LEASE + Duration::from_millis(1);
        assert_eq!(coordinator.expire(dead_at), vec![worker]);
        let stats = coordinator.stats(dead_at);
        assert_eq!(stats.workers_dead, 1);
        assert_eq!(stats.lease_expiries_total, 1);
        assert_eq!(stats.shard_reissues_total, 1);
        // Its heartbeat now demands re-registration.
        assert!(coordinator.heartbeat(worker, token, dead_at).is_err());
        // A new worker receives the re-issued shard *from the checkpoint*.
        let (worker2, _token2) = coordinator.register_worker("127.0.0.1:2", dead_at);
        let plan2 = coordinator.dispatch_plan(dead_at);
        let reissued = plan2
            .iter()
            .find(|p| p.shard == d.shard)
            .expect("expired shard re-dispatched");
        assert_eq!(reissued.worker, worker2);
        assert_eq!(reissued.start_row, 1, "completed cells are not recomputed");
        assert_eq!(reissued.epoch, d.epoch + 1);
    }

    #[test]
    fn stale_uploads_from_a_dead_or_reregistered_worker_are_fenced() {
        let (coordinator, t0, worker, token, plan) = cluster();
        let d = &plan[0];
        let dead_at = t0 + 2 * LEASE + Duration::from_millis(1);
        coordinator.expire(dead_at);
        // The declared-dead identity cannot advance the checkpoint.
        let err = coordinator
            .accept_chunk(
                7,
                d.shard,
                worker,
                token,
                d.epoch,
                &chunk(d.shard, 2, 0, 1),
                dead_at,
            )
            .unwrap_err();
        assert!(matches!(err, ChunkError::Stale(_)), "{err:?}");
        // The same node re-registers (new identity) — its *old* token and
        // epoch still cannot write, even though the worker is alive again.
        let (worker2, token2) = coordinator.register_worker("127.0.0.1:1", dead_at);
        let err = coordinator
            .accept_chunk(
                7,
                d.shard,
                worker2,
                token2,
                d.epoch,
                &chunk(d.shard, 2, 0, 1),
                dead_at,
            )
            .unwrap_err();
        assert!(
            matches!(err, ChunkError::Stale(_)),
            "shard not dispatched to the new identity yet: {err:?}"
        );
        // Once re-dispatched (epoch bumped), only the new epoch writes.
        let plan2 = coordinator.dispatch_plan(dead_at);
        let reissued = plan2.iter().find(|p| p.shard == d.shard).unwrap();
        let err = coordinator
            .accept_chunk(
                7,
                d.shard,
                worker2,
                token2,
                d.epoch, // stale epoch
                &chunk(d.shard, 2, 0, 1),
                dead_at,
            )
            .unwrap_err();
        assert!(matches!(err, ChunkError::Stale(_)), "{err:?}");
        coordinator
            .accept_chunk(
                7,
                d.shard,
                worker2,
                token2,
                reissued.epoch,
                &chunk(d.shard, 2, 0, 1),
                dead_at,
            )
            .expect("the re-issued epoch writes");
        let view = coordinator.shards_view(7).unwrap();
        assert_eq!(view.shards[d.shard].completed, 1);
        assert_eq!(view.shards[d.shard].reissues, 1);
    }

    #[test]
    fn two_workers_racing_a_reissued_shard_cannot_both_write() {
        let (coordinator, t0, worker_a, token_a, plan) = cluster();
        let d = &plan[0];
        // Worker A uploads one row, then goes silent; the shard re-issues to
        // worker B from row 1.
        coordinator
            .accept_chunk(
                7,
                d.shard,
                worker_a,
                token_a,
                d.epoch,
                &chunk(d.shard, 2, 0, 1),
                t0,
            )
            .unwrap();
        let dead_at = t0 + 2 * LEASE + Duration::from_millis(1);
        coordinator.expire(dead_at);
        let (worker_b, token_b) = coordinator.register_worker("127.0.0.1:2", dead_at);
        let plan2 = coordinator.dispatch_plan(dead_at);
        let reissued = plan2.iter().find(|p| p.shard == d.shard).unwrap();
        assert_eq!(reissued.worker, worker_b);
        assert_eq!(reissued.start_row, 1);
        // A resurrects and races B for row 1 with its original credentials:
        // fenced (dead identity + stale epoch), checkpoint unchanged.
        let err = coordinator
            .accept_chunk(
                7,
                d.shard,
                worker_a,
                token_a,
                d.epoch,
                &chunk(d.shard, 2, 1, 1),
                dead_at,
            )
            .unwrap_err();
        assert!(matches!(err, ChunkError::Stale(_)), "{err:?}");
        assert_eq!(
            coordinator.shards_view(7).unwrap().shards[d.shard].completed,
            1
        );
        // B's upload under the re-issued epoch lands exactly once.
        coordinator
            .accept_chunk(
                7,
                d.shard,
                worker_b,
                token_b,
                reissued.epoch,
                &chunk(d.shard, 2, 1, 1),
                dead_at,
            )
            .unwrap();
        assert_eq!(
            coordinator.shards_view(7).unwrap().shards[d.shard].completed,
            2
        );
    }

    #[test]
    fn fingerprint_mismatches_are_invalid_not_stale() {
        let (coordinator, t0, worker, token, plan) = cluster();
        let d = &plan[0];
        // A chunk from a different sweep configuration: same shard shape,
        // different options fingerprint.
        let g = grid();
        let other_options = SweepOptions::new(RunOptions {
            simulate: false,
            seed: 999,
            ..RunOptions::smoke()
        });
        let spec = ShardSpec::new(d.shard, 2).unwrap();
        let mut manifest = SweepManifest::new(&g, &other_options, spec);
        manifest.completed = 1;
        let mut text = fake_row();
        text.push('\n');
        let foreign = ShardChunk::new(manifest, 0, text).unwrap();
        let err = coordinator
            .accept_chunk(7, d.shard, worker, token, d.epoch, &foreign, t0)
            .unwrap_err();
        assert!(matches!(err, ChunkError::Invalid(_)), "{err:?}");
        assert_eq!(err.status().0, 400);
        // Unknown job and cancelled job map to 404/410.
        let err = coordinator
            .accept_chunk(99, 0, worker, token, 0, &chunk(0, 2, 0, 1), t0)
            .unwrap_err();
        assert_eq!(err.status().0, 404);
        coordinator.cancel_job(7);
        let err = coordinator
            .accept_chunk(
                7,
                d.shard,
                worker,
                token,
                d.epoch,
                &chunk(d.shard, 2, 0, 1),
                t0,
            )
            .unwrap_err();
        assert_eq!(err.status().0, 410);
    }

    #[test]
    fn finished_jobs_merge_their_shards_and_stream_progress() {
        let coordinator = Coordinator::new(LEASE);
        let t0 = Instant::now();
        let g = grid();
        let count = 2;
        coordinator.submit(
            1,
            "{}".to_string(),
            g.fingerprint(),
            options().output_fingerprint(),
            count,
            g.len(),
        );
        let (worker, token) = coordinator.register_worker("127.0.0.1:1", t0);
        // Run both shards through one worker, checking the streaming merge
        // frontier along the way.
        for _ in 0..count {
            let plan = coordinator.dispatch_plan(t0);
            let d = &plan[0];
            let total = coordinator.shards_view(1).unwrap().shards[d.shard].total;
            coordinator
                .accept_chunk(
                    1,
                    d.shard,
                    worker,
                    token,
                    d.epoch,
                    &chunk(d.shard, count, 0, total),
                    t0,
                )
                .unwrap();
        }
        let view = coordinator.shards_view(1).unwrap();
        assert_eq!(view.merged_rows, g.len(), "every row merged in order");
        assert!(coordinator.job_finished(1));
        let outcome = coordinator.take_finished(1).expect("job present");
        assert!(!outcome.cancelled);
        assert_eq!(outcome.rows, g.len());
        assert_eq!(outcome.csv.lines().count(), g.len() + 1);
        assert!(outcome.csv.starts_with(CSV_HEADER));
        // The job is gone afterwards.
        assert!(coordinator.take_finished(1).is_none());
        assert!(coordinator.job_finished(1), "unknown jobs count finished");
    }
}
