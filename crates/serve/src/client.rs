//! A minimal keep-alive HTTP/1.1 client, plus the end-to-end smoke check
//! shared by `loadgen --check`, the CI gate and the subprocess integration
//! tests.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use ayd_core::SpeedupProfile;
use ayd_platforms::{ExperimentSetup, PlatformId, ScenarioId};
use ayd_sweep::{Evaluator, ProcessorAxis, RunOptions, ScenarioGrid, SweepExecutor, SweepOptions};

use crate::json::Json;

/// One parsed response.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// Status code of the response.
    pub status: u16,
    /// `Content-Type` header value (empty when absent).
    pub content_type: String,
    /// `x-ayd-trace-id` header value (empty when absent): the server-side
    /// request ID this response's spans are recorded under.
    pub trace_id: String,
    /// Body, decoded as UTF-8 (the service only emits text media types).
    pub body: String,
}

/// A keep-alive connection to one server.
pub struct HttpClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl HttpClient {
    /// Connects to `addr` (`host:port`) with generous timeouts.
    pub fn connect(addr: &str) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        stream.set_nodelay(true)?;
        Ok(Self {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    /// Sends one request and reads the response. `accept` sets an `Accept`
    /// header; `body` implies `Content-Length`.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        accept: Option<&str>,
        body: Option<&str>,
    ) -> std::io::Result<ClientResponse> {
        let mut head = format!("{method} {path} HTTP/1.1\r\nhost: ayd-serve\r\n");
        if let Some(accept) = accept {
            head.push_str(&format!("accept: {accept}\r\n"));
        }
        if let Some(body) = body {
            head.push_str(&format!("content-length: {}\r\n", body.len()));
        }
        head.push_str("\r\n");
        self.writer.write_all(head.as_bytes())?;
        if let Some(body) = body {
            self.writer.write_all(body.as_bytes())?;
        }
        self.writer.flush()?;
        self.read_response()
    }

    /// `GET path`, optionally with an `Accept` header.
    pub fn get(&mut self, path: &str, accept: Option<&str>) -> std::io::Result<ClientResponse> {
        self.request("GET", path, accept, None)
    }

    /// `POST path` with a JSON body.
    pub fn post_json(&mut self, path: &str, body: &str) -> std::io::Result<ClientResponse> {
        self.request("POST", path, None, Some(body))
    }

    /// `POST path` with a JSON body, dripped onto the wire at roughly
    /// `bytes_per_sec`: the raw request bytes go out in small chunks with
    /// sleeps in between, simulating a slow client and exercising the
    /// server's partial-read path. Reads the response normally.
    pub fn post_json_paced(
        &mut self,
        path: &str,
        body: &str,
        bytes_per_sec: u64,
    ) -> std::io::Result<ClientResponse> {
        let mut request = format!(
            "POST {path} HTTP/1.1\r\nhost: ayd-serve\r\ncontent-length: {}\r\n\r\n",
            body.len()
        )
        .into_bytes();
        request.extend_from_slice(body.as_bytes());
        // Pace in ~20 ms ticks; at very low rates this degrades to one byte
        // per tick, which is the most adversarial framing for the server.
        let rate = bytes_per_sec.max(1);
        let chunk = ((rate / 50).max(1)) as usize;
        for piece in request.chunks(chunk) {
            self.writer.write_all(piece)?;
            self.writer.flush()?;
            let nanos = piece.len() as u64 * 1_000_000_000 / rate;
            std::thread::sleep(Duration::from_nanos(nanos));
        }
        self.read_response()
    }

    fn read_response(&mut self) -> std::io::Result<ClientResponse> {
        let bad = |message: &str| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, message.to_string())
        };
        let mut status_line = String::new();
        if self.reader.read_line(&mut status_line)? == 0 {
            return Err(bad("connection closed before a status line"));
        }
        let status = status_line
            .strip_prefix("HTTP/1.1 ")
            .and_then(|rest| rest.split(' ').next())
            .and_then(|code| code.parse::<u16>().ok())
            .ok_or_else(|| bad("malformed status line"))?;
        let mut content_length: Option<usize> = None;
        let mut content_type = String::new();
        let mut trace_id = String::new();
        loop {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(bad("connection closed inside response headers"));
            }
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                let value = value.trim();
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = Some(value.parse().map_err(|_| bad("bad content-length"))?);
                } else if name.eq_ignore_ascii_case("content-type") {
                    content_type = value.to_string();
                } else if name.eq_ignore_ascii_case("x-ayd-trace-id") {
                    trace_id = value.to_string();
                }
            }
        }
        let length = content_length.ok_or_else(|| bad("response without content-length"))?;
        let mut body = vec![0u8; length];
        self.reader.read_exact(&mut body)?;
        Ok(ClientResponse {
            status,
            content_type,
            trace_id,
            body: String::from_utf8(body).map_err(|_| bad("non-UTF-8 response body"))?,
        })
    }
}

/// The golden sweep grid of `tests/golden_sweep_csv.rs`, as a `/v1/sweep`
/// request body. The smoke check recomputes the same grid in-process and
/// compares the CSV byte-for-byte.
pub const GOLDEN_SWEEP_BODY: &str = r#"{"platforms":["Hera"],"scenarios":[1,3],"lambda_multipliers":[1,10],"processors":[256,1024],"pattern_lengths":[3600]}"#;

/// A mixed-profile sweep (all four profile families) as a `/v1/sweep` request
/// body; the smoke check compares the served CSV byte-for-byte against the
/// in-process engine over the equivalent grid.
pub const PROFILE_SWEEP_BODY: &str = r#"{"platforms":["Hera"],"scenarios":[1,3],"profiles":["amdahl:0.1","powerlaw:0.8","gustafson:0.05","perfect"],"processors":[256,1024]}"#;

fn offline_sweep_csv(grid: &ScenarioGrid) -> String {
    SweepExecutor::new(SweepOptions::new(RunOptions {
        simulate: false,
        ..RunOptions::default()
    }))
    .run(grid)
    .to_csv()
}

fn golden_sweep_csv() -> String {
    let grid = ScenarioGrid::builder()
        .platforms(&[PlatformId::Hera])
        .scenarios(&[ScenarioId::S1, ScenarioId::S3])
        .lambda_multipliers(&[1.0, 10.0])
        .processors(ProcessorAxis::Fixed(vec![256.0, 1024.0]))
        .pattern_lengths(&[3_600.0])
        .build()
        .expect("the golden grid is valid");
    offline_sweep_csv(&grid)
}

fn profile_sweep_csv() -> String {
    let grid = ScenarioGrid::builder()
        .platforms(&[PlatformId::Hera])
        .scenarios(&[ScenarioId::S1, ScenarioId::S3])
        .profiles(&[
            SpeedupProfile::amdahl(0.1).expect("valid alpha"),
            SpeedupProfile::power_law(0.8).expect("valid sigma"),
            SpeedupProfile::gustafson(0.05).expect("valid alpha"),
            SpeedupProfile::perfectly_parallel(),
        ])
        .processors(ProcessorAxis::Fixed(vec![256.0, 1024.0]))
        .build()
        .expect("the profile grid is valid");
    offline_sweep_csv(&grid)
}

fn expect_f64(doc: &Json, object: &str, field: &str) -> Result<f64, String> {
    doc.get(object)
        .and_then(|inner| inner.get(field))
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("response missing {object}.{field}"))
}

/// Submits a sweep job and polls until its CSV arrives.
fn run_sweep(client: &mut HttpClient, addr: &str, body: &str) -> Result<String, String> {
    run_sweep_with_deadline(client, addr, body, Duration::from_secs(60))
}

fn run_sweep_with_deadline(
    client: &mut HttpClient,
    addr: &str,
    body: &str,
    timeout: Duration,
) -> Result<String, String> {
    let io = |e: std::io::Error| format!("i/o against {addr}: {e}");
    let accepted = client.post_json("/v1/sweep", body).map_err(io)?;
    if accepted.status != 202 {
        return Err(format!(
            "sweep submit: status {} body {}",
            accepted.status, accepted.body
        ));
    }
    let doc = Json::parse(&accepted.body).map_err(|e| format!("sweep JSON: {e}"))?;
    let id = doc
        .get("id")
        .and_then(Json::as_f64)
        .ok_or("sweep submit: no id")? as u64;
    let deadline = std::time::Instant::now() + timeout;
    loop {
        let poll = client
            .get(&format!("/v1/sweep/{id}"), Some("text/csv"))
            .map_err(io)?;
        if poll.status != 200 {
            return Err(format!("sweep poll: status {}", poll.status));
        }
        if poll.content_type.starts_with("text/csv") {
            return Ok(poll.body);
        }
        if std::time::Instant::now() > deadline {
            return Err(format!(
                "sweep job did not finish within {} s",
                timeout.as_secs()
            ));
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Submits `body` to `/v1/sweep` on `addr` and polls until the CSV arrives.
/// The wire protocol is identical for plain, locally-sharded and
/// coordinator-distributed jobs — 202 + id, then poll with `Accept:
/// text/csv` — so this is the one client the cluster smoke and CI both use.
pub fn fetch_sweep_csv(addr: &str, body: &str, timeout: Duration) -> Result<String, String> {
    let mut client = HttpClient::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    run_sweep_with_deadline(&mut client, addr, body, timeout)
}

/// Computes the CSV for a `/v1/sweep` request body with the in-process
/// engine (default serve options, no simulation): the byte-identical
/// reference a cluster sweep must reproduce.
pub fn engine_sweep_csv(body: &str) -> Result<String, String> {
    let doc = Json::parse(body).map_err(|e| format!("grid body: {e}"))?;
    let grid = crate::api::parse_grid(&doc).map_err(|e| format!("grid body: {}", e.reason))?;
    Ok(offline_sweep_csv(&grid))
}

/// Polls `GET /v1/workers` on a coordinator until at least `want` workers are
/// alive (or `timeout` passes). Workers register asynchronously after their
/// agent threads start, so cluster tests and CI must wait before submitting.
pub fn await_workers(addr: &str, want: usize, timeout: Duration) -> Result<(), String> {
    let deadline = std::time::Instant::now() + timeout;
    loop {
        let mut client = HttpClient::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
        let response = client
            .get("/v1/workers", None)
            .map_err(|e| format!("i/o against {addr}: {e}"))?;
        if response.status != 200 {
            return Err(format!(
                "workers view: status {} body {}",
                response.status, response.body
            ));
        }
        let doc = Json::parse(&response.body).map_err(|e| format!("workers JSON: {e}"))?;
        let alive = doc.get("alive").and_then(Json::as_f64).unwrap_or(0.0) as usize;
        if alive >= want {
            return Ok(());
        }
        if std::time::Instant::now() > deadline {
            return Err(format!(
                "only {alive} of {want} workers registered within {} s",
                timeout.as_secs()
            ));
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Cluster-mode smoke check against a running coordinator (`loadgen
/// --cluster-check`): waits for `workers` live workers, runs the golden grid
/// as a distributed 3-shard job, compares the merged CSV byte-for-byte
/// against the in-process engine, and asserts the worker/shard metric
/// families moved.
pub fn cluster_smoke_check(addr: &str, workers: usize) -> Result<(), String> {
    let io = |e: std::io::Error| format!("i/o against {addr}: {e}");
    await_workers(addr, workers, Duration::from_secs(30))?;

    let sharded_body = format!(
        "{}{}",
        &GOLDEN_SWEEP_BODY[..GOLDEN_SWEEP_BODY.len() - 1],
        r#","shards":3}"#
    );
    let csv = fetch_sweep_csv(addr, &sharded_body, Duration::from_secs(120))?;
    let expected_csv = golden_sweep_csv();
    if csv != expected_csv {
        return Err(format!(
            "distributed sweep CSV differs from the in-process engine \
             ({} vs {} bytes)",
            csv.len(),
            expected_csv.len()
        ));
    }

    let mut client = HttpClient::connect(addr).map_err(io)?;
    let metrics = client.get("/metrics", None).map_err(io)?;
    if metrics.status != 200 {
        return Err(format!("metrics: status {}", metrics.status));
    }
    let scrape = crate::metrics::PrometheusText::parse(&metrics.body)
        .map_err(|e| format!("metrics: {e}"))?;
    let alive = scrape
        .samples
        .iter()
        .find(|s| s.name == "ayd_workers" && s.label("state") == Some("alive"))
        .map(|s| s.value)
        .ok_or("metrics: ayd_workers{state=\"alive\"} gauge missing")?;
    if alive < workers as f64 {
        return Err(format!(
            "metrics: ayd_workers alive is {alive}, want at least {workers}"
        ));
    }
    let dispatched = scrape
        .value("ayd_shards_dispatched_total")
        .ok_or("metrics: ayd_shards_dispatched_total counter missing")?;
    if dispatched < 3.0 {
        return Err(format!(
            "metrics: ayd_shards_dispatched_total is {dispatched} after a 3-shard job"
        ));
    }
    if scrape.value("ayd_shard_reissues_total").is_none()
        || scrape.value("ayd_lease_expiries_total").is_none()
    {
        return Err("metrics: shard re-issue / lease expiry counters missing".into());
    }
    Ok(())
}

/// End-to-end smoke check against a running server (`loadgen --check`):
///
/// 1. `/healthz` answers ok.
/// 2. `/v1/optimize` answers numbers **bit-identical** to the offline
///    [`Evaluator`] for the same inputs — for the default Amdahl profile and
///    for a Gustafson extension profile sent through the `profile` field.
/// 3. `/v1/sweep` jobs over the golden grid and over a mixed-profile grid
///    both stream a CSV byte-identical to the in-process sweep engine (the
///    golden grid's bytes are the ones the golden test pins).
/// 4. `/metrics` renders parsable Prometheus text.
pub fn smoke_check(addr: &str) -> Result<(), String> {
    let io = |e: std::io::Error| format!("i/o against {addr}: {e}");
    let mut client = HttpClient::connect(addr).map_err(io)?;

    // 1. Health — and the trace-id contract: every response, 2xx or 4xx,
    // carries a well-formed `x-ayd-trace-id`, and IDs are per-request.
    let health = client.get("/healthz", None).map_err(io)?;
    if health.status != 200 || !health.body.contains("\"ok\"") {
        return Err(format!(
            "healthz: status {} body {}",
            health.status, health.body
        ));
    }
    let well_formed = |id: &str| {
        id.len() == 16
            && id
                .chars()
                .all(|c| c.is_ascii_hexdigit() && !c.is_uppercase())
    };
    if !well_formed(&health.trace_id) {
        return Err(format!(
            "healthz: bad x-ayd-trace-id {:?} (want 16 lowercase hex digits)",
            health.trace_id
        ));
    }
    let missing = client.get("/v1/no-such-route", None).map_err(io)?;
    if missing.status != 404 {
        return Err(format!("unknown route: status {}", missing.status));
    }
    if !well_formed(&missing.trace_id) {
        return Err(format!(
            "404 response: bad x-ayd-trace-id {:?}",
            missing.trace_id
        ));
    }
    if missing.trace_id == health.trace_id {
        return Err("trace IDs repeat across requests".into());
    }

    // 2. Optimize, checked bit-for-bit against the offline evaluator.
    let response = client
        .post_json("/v1/optimize", r#"{"platform":"Hera","scenario":1}"#)
        .map_err(io)?;
    if response.status != 200 {
        return Err(format!("optimize: status {}", response.status));
    }
    let doc = Json::parse(&response.body).map_err(|e| format!("optimize JSON: {e}"))?;
    let model = ayd_platforms::ExperimentSetup::paper_default(PlatformId::Hera, ScenarioId::S1)
        .model()
        .map_err(|e| format!("local model: {e}"))?;
    let expected = Evaluator::new(RunOptions {
        simulate: false,
        ..RunOptions::default()
    })
    .compare(&model);
    let pairs = [
        ("numerical", "processors", expected.numerical.processors),
        ("numerical", "period", expected.numerical.period),
        (
            "numerical",
            "overhead",
            expected.numerical.predicted_overhead,
        ),
    ];
    for (object, field, local) in pairs {
        let served = expect_f64(&doc, object, field)?;
        if served.to_bits() != local.to_bits() {
            return Err(format!(
                "optimize: {object}.{field} differs from the offline evaluator: \
                 served {served:?}, local {local:?}"
            ));
        }
    }
    let fo = expected
        .first_order
        .ok_or("local first-order optimum missing")?;
    let served_fo = expect_f64(&doc, "first_order", "overhead")?;
    if served_fo.to_bits() != fo.predicted_overhead.to_bits() {
        return Err("optimize: first_order.overhead differs from the offline evaluator".into());
    }

    // 2b. A non-Amdahl query through the `profile` field: Gustafson weak
    // scaling, answered numerically only, bit-identical to the offline
    // evaluator over the same extension-profile model.
    let response = client
        .post_json(
            "/v1/optimize",
            r#"{"platform":"Hera","scenario":1,"profile":{"kind":"gustafson","alpha":0.05}}"#,
        )
        .map_err(io)?;
    if response.status != 200 {
        return Err(format!("optimize (gustafson): status {}", response.status));
    }
    let doc = Json::parse(&response.body).map_err(|e| format!("optimize JSON: {e}"))?;
    let gustafson_model = ExperimentSetup::paper_default(PlatformId::Hera, ScenarioId::S1)
        .with_profile(SpeedupProfile::gustafson(0.05).expect("valid alpha"))
        .model()
        .map_err(|e| format!("local gustafson model: {e}"))?;
    let expected = Evaluator::new(RunOptions {
        simulate: false,
        ..RunOptions::default()
    })
    .compare(&gustafson_model);
    for (field, local) in [
        ("processors", expected.numerical.processors),
        ("period", expected.numerical.period),
        ("overhead", expected.numerical.predicted_overhead),
    ] {
        let served = expect_f64(&doc, "numerical", field)?;
        if served.to_bits() != local.to_bits() {
            return Err(format!(
                "optimize (gustafson): numerical.{field} differs from the offline \
                 evaluator: served {served:?}, local {local:?}"
            ));
        }
    }
    if !matches!(doc.get("first_order"), Some(Json::Null)) {
        return Err(
            "optimize (gustafson): extension profiles must not report a \
                    first-order optimum"
                .into(),
        );
    }
    let served_spec = doc
        .get("profile")
        .and_then(|p| p.get("spec"))
        .and_then(Json::as_str)
        .ok_or("optimize (gustafson): response missing profile.spec")?;
    if served_spec != "gustafson:0.05" {
        return Err(format!(
            "optimize (gustafson): profile.spec round-trip broke: {served_spec}"
        ));
    }

    // 3. Sweep round-trips: the golden Amdahl grid (the bytes the golden test
    // pins) and a mixed-profile grid, both byte-identical to the in-process
    // engine.
    let csv = run_sweep(&mut client, addr, GOLDEN_SWEEP_BODY)?;
    let expected_csv = golden_sweep_csv();
    if csv != expected_csv {
        return Err(format!(
            "sweep CSV differs from the in-process engine ({} vs {} bytes)",
            csv.len(),
            expected_csv.len()
        ));
    }
    let csv = run_sweep(&mut client, addr, PROFILE_SWEEP_BODY)?;
    let expected_csv = profile_sweep_csv();
    if csv != expected_csv {
        return Err(format!(
            "mixed-profile sweep CSV differs from the in-process engine \
             ({} vs {} bytes)",
            csv.len(),
            expected_csv.len()
        ));
    }

    // 3b. The same golden grid as a 3-shard job: the deterministic merge
    // must reproduce the exact unsharded bytes, the submission must hand
    // back a resume token, and the shards progress view must account for
    // every cell.
    let sharded_body = format!(
        "{}{}",
        &GOLDEN_SWEEP_BODY[..GOLDEN_SWEEP_BODY.len() - 1],
        r#","shards":3}"#
    );
    let accepted = client.post_json("/v1/sweep", &sharded_body).map_err(io)?;
    if accepted.status != 202 {
        return Err(format!("sharded sweep submit: status {}", accepted.status));
    }
    let doc = Json::parse(&accepted.body).map_err(|e| format!("sharded sweep JSON: {e}"))?;
    let id = doc
        .get("id")
        .and_then(Json::as_f64)
        .ok_or("sharded sweep submit: no id")? as u64;
    if doc.get("shards").and_then(Json::as_f64) != Some(3.0) {
        return Err("sharded sweep submit: response lacks shards: 3".into());
    }
    if doc.get("resume_token").and_then(Json::as_str).is_none() {
        return Err("sharded sweep submit: response lacks a resume_token".into());
    }
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    let csv = loop {
        let poll = client
            .get(&format!("/v1/sweep/{id}"), Some("text/csv"))
            .map_err(io)?;
        if poll.status != 200 {
            return Err(format!("sharded sweep poll: status {}", poll.status));
        }
        if poll.content_type.starts_with("text/csv") {
            break poll.body;
        }
        if std::time::Instant::now() > deadline {
            return Err("sharded sweep job did not finish within 60 s".to_string());
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    let expected_csv = golden_sweep_csv();
    if csv != expected_csv {
        return Err(format!(
            "sharded sweep CSV differs from the unsharded engine ({} vs {} bytes)",
            csv.len(),
            expected_csv.len()
        ));
    }
    let shards = client
        .get(&format!("/v1/sweep/{id}/shards"), None)
        .map_err(io)?;
    if shards.status != 200 {
        return Err(format!("sweep shards view: status {}", shards.status));
    }
    let doc = Json::parse(&shards.body).map_err(|e| format!("shards view JSON: {e}"))?;
    let progress = doc
        .get("progress")
        .and_then(Json::as_array)
        .ok_or("shards view: no progress array")?;
    if progress.len() != 3 {
        return Err(format!(
            "shards view: expected 3 shards, got {}",
            progress.len()
        ));
    }
    let total: f64 = progress
        .iter()
        .filter_map(|p| p.get("total").and_then(Json::as_f64))
        .sum();
    let cells = (expected_csv.lines().count() - 1) as f64;
    if total != cells {
        return Err(format!(
            "shards view: totals sum to {total}, grid has {cells} cells"
        ));
    }

    // 4. Cold-path latency: cache-busting optimize queries (a unique error
    // rate per request, so every evaluation misses the cache) must keep the
    // client-observed p99 under the acceptance bound. The CI bound is 1 ms
    // for a release build; the documented local target is 100 µs (see
    // EXPERIMENTS.md). Debug builds run the unoptimised optimiser and get a
    // proportionally generous bound — the CI gate runs `--release`.
    let cold_requests = 64usize;
    let mut cold_us: Vec<u64> = Vec::with_capacity(cold_requests);
    for index in 0..cold_requests {
        let body = format!(
            r#"{{"platform":"Hera","scenario":1,"processors":1024,"lambda_multiplier":{}}}"#,
            2.0 + index as f64 * 1e-3
        );
        let begun = std::time::Instant::now();
        let response = client.post_json("/v1/optimize", &body).map_err(io)?;
        if response.status != 200 {
            return Err(format!("cold optimize: status {}", response.status));
        }
        cold_us.push(begun.elapsed().as_micros() as u64);
    }
    cold_us.sort_unstable();
    let p99 = cold_us[((cold_us.len() - 1) as f64 * 0.99).round() as usize];
    let bound_us: u64 = if cfg!(debug_assertions) {
        100_000
    } else {
        1_000
    };
    if p99 > bound_us {
        return Err(format!(
            "cold-path p99 is {p99} µs, above the {bound_us} µs acceptance bound"
        ));
    }

    // 5. Metrics parse into the typed model, and the cold histogram accounts
    // for the cache-miss evaluations the cold loop just forced.
    let metrics = client.get("/metrics", None).map_err(io)?;
    if metrics.status != 200 {
        return Err(format!("metrics: status {}", metrics.status));
    }
    crate::metrics::validate_prometheus(&metrics.body).map_err(|e| format!("metrics: {e}"))?;
    let scrape = crate::metrics::PrometheusText::parse(&metrics.body)
        .map_err(|e| format!("metrics: {e}"))?;
    let cold_count = scrape
        .value("ayd_optimize_cold_seconds_count")
        .ok_or("metrics: ayd_optimize_cold_seconds histogram missing")?;
    if cold_count < cold_requests as f64 {
        return Err(format!(
            "metrics: cold histogram counts {cold_count} evaluations, \
             expected at least {cold_requests}"
        ));
    }
    if scrape.value("ayd_search_fast_total").is_none()
        || scrape.value("ayd_search_fallback_total").is_none()
    {
        return Err("metrics: search fast/fallback counters missing".into());
    }

    // 5b. Connection-level families from the serving core. The gauge counts
    // at least this client's own keep-alive connection; every connection was
    // accepted by exactly one acceptor (a reactor shard or the blocking
    // accept loop), so the per-acceptor counters must sum to the connection
    // total; and the readiness-wait histogram renders whichever io model is
    // serving (it stays at zero under the blocking pool).
    let open = scrape
        .value("ayd_open_connections")
        .ok_or("metrics: ayd_open_connections gauge missing")?;
    if open < 1.0 {
        return Err(format!(
            "metrics: ayd_open_connections is {open} while this client holds one open"
        ));
    }
    let accepts: f64 = scrape
        .samples
        .iter()
        .filter(|s| s.name == "ayd_accepts_total")
        .map(|s| s.value)
        .sum();
    let connections = scrape
        .value("ayd_connections_total")
        .ok_or("metrics: ayd_connections_total counter missing")?;
    if accepts < 1.0 || accepts != connections {
        return Err(format!(
            "metrics: ayd_accepts_total sums to {accepts} across acceptors, \
             but ayd_connections_total is {connections}"
        ));
    }
    if scrape.value("ayd_readiness_wait_seconds_count").is_none() {
        return Err("metrics: ayd_readiness_wait_seconds histogram missing".into());
    }

    // 6. The trace ring has recorded the requests this check just made, and
    // the debug endpoint serves them as JSON.
    let traces = client.get("/v1/trace/recent?limit=256", None).map_err(io)?;
    if traces.status != 200 || !traces.content_type.starts_with("application/json") {
        return Err(format!(
            "trace/recent: status {} content-type {}",
            traces.status, traces.content_type
        ));
    }
    let doc = Json::parse(&traces.body).map_err(|e| format!("trace/recent JSON: {e}"))?;
    let spans = doc
        .get("spans")
        .and_then(Json::as_array)
        .ok_or("trace/recent: no spans array")?;
    if !spans.is_empty() {
        // Tracing is on in served builds; the ring must hold request spans
        // by now, including the one for the 404 probe above.
        let has_request = spans.iter().any(|span| {
            span.get("name").and_then(Json::as_str) == Some("request")
                || span.get("name").and_then(Json::as_str) == Some("parse")
        });
        if !has_request {
            return Err("trace/recent: ring holds no request spans".into());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::ServerConfig;
    use crate::server::Server;

    #[test]
    fn smoke_check_passes_against_an_in_process_server() {
        let server = Server::bind(ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 2,
            ..ServerConfig::default()
        })
        .unwrap();
        let handle = server.handle().unwrap();
        let addr = handle.addr().to_string();
        let thread = std::thread::spawn(move || server.serve());
        smoke_check(&addr).unwrap();
        handle.shutdown();
        thread.join().unwrap().unwrap();
    }
}
