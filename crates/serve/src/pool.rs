//! A fixed worker pool over a bounded MPMC job queue.
//!
//! `std` only: the queue is a `Mutex<VecDeque>` with two condvars (one for
//! "queue not empty", one for "queue not full"). Submitting to a full queue
//! blocks the producer — that backpressure is what bounds memory when the
//! accept loop outruns the workers. The server runs two independent
//! instances: one whose jobs are whole connections, and one whose jobs are
//! batch-query evaluations (so a connection worker can fan a `/v1/batch` body
//! out without ever waiting on its own pool).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Queue {
    jobs: VecDeque<Job>,
    closed: bool,
}

struct Shared {
    queue: Mutex<Queue>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
    /// Workers currently executing a job (not parked on the queue).
    busy: AtomicUsize,
    /// Worker-thread count, fixed at construction.
    workers: usize,
}

/// A cloneable, read-only view of a pool's load: queue depth and worker
/// saturation, for gauges scraped by `/metrics`. Stays valid (reporting a
/// drained queue) after the pool itself is dropped.
#[derive(Clone)]
pub struct PoolStats {
    shared: Arc<Shared>,
}

impl PoolStats {
    /// Jobs waiting in the queue right now.
    pub fn queue_depth(&self) -> usize {
        self.shared
            .queue
            .lock()
            .expect("pool queue poisoned")
            .jobs
            .len()
    }

    /// Workers currently executing a job.
    pub fn busy_workers(&self) -> usize {
        self.shared.busy.load(Ordering::Relaxed)
    }

    /// Total worker threads.
    pub fn worker_count(&self) -> usize {
        self.shared.workers
    }
}

/// Error returned by [`WorkerPool::submit`] after [`WorkerPool::close`]; the
/// rejected job is handed back so the caller can run it inline.
pub struct PoolClosed(pub Job);

impl std::fmt::Debug for PoolClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("PoolClosed(..)")
    }
}

/// A fixed set of worker threads draining a bounded FIFO of jobs.
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `threads` workers (minimum 1) over a queue holding at most
    /// `capacity` pending jobs (minimum 1). `name` labels the worker threads.
    pub fn new(name: &str, threads: usize, capacity: usize) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue {
                jobs: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
            busy: AtomicUsize::new(0),
            workers: threads.max(1),
        });
        let workers = (0..threads.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("{name}-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawning a pool worker failed")
            })
            .collect();
        Self { shared, workers }
    }

    /// Number of worker threads.
    pub fn thread_count(&self) -> usize {
        self.workers.len()
    }

    /// A load-gauge handle ([`PoolStats`]) usable after the pool moves away.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Enqueues a job, blocking while the queue is full. Returns the job back
    /// inside [`PoolClosed`] when the pool has been closed.
    pub fn submit(&self, job: Job) -> Result<(), PoolClosed> {
        let mut queue = self.shared.queue.lock().expect("pool queue poisoned");
        loop {
            if queue.closed {
                return Err(PoolClosed(job));
            }
            if queue.jobs.len() < self.shared.capacity {
                queue.jobs.push_back(job);
                drop(queue);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            queue = self
                .shared
                .not_full
                .wait(queue)
                .expect("pool queue poisoned");
        }
    }

    /// Runs `work` over every item on the pool, blocking until all results are
    /// in. Items are evaluated in parallel (bounded by the pool width); the
    /// results come back in item order. Falls back to inline evaluation for
    /// jobs rejected by a closing pool, so the call always completes.
    ///
    /// # Panics
    /// A panic inside `work` is caught on the worker (the pool stays intact
    /// and `remaining` still drains — the caller never hangs) and re-raised
    /// here once every other item has finished.
    pub fn run_batch<T, R, F>(&self, items: Vec<T>, work: F) -> Vec<R>
    where
        T: Send + 'static,
        R: Send + 'static,
        F: Fn(T) -> R + Send + Sync + 'static,
    {
        let total = items.len();
        let work = Arc::new(work);
        let collector = Arc::new((Mutex::new(BatchState::<R>::new(total)), Condvar::new()));
        for (index, item) in items.into_iter().enumerate() {
            let work = Arc::clone(&work);
            let collector = Arc::clone(&collector);
            let job: Job = Box::new(move || {
                let outcome =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || work(item)));
                let (state, done) = &*collector;
                let mut state = state.lock().expect("batch collector poisoned");
                if let Ok(result) = outcome {
                    state.results[index] = Some(result);
                }
                state.remaining -= 1;
                if state.remaining == 0 {
                    done.notify_all();
                }
            });
            if let Err(PoolClosed(job)) = self.submit(job) {
                job();
            }
        }
        let (state, done) = &*collector;
        let mut state = state.lock().expect("batch collector poisoned");
        while state.remaining > 0 {
            state = done.wait(state).expect("batch collector poisoned");
        }
        state
            .results
            .iter_mut()
            .map(|slot| slot.take().expect("a batch job panicked"))
            .collect()
    }

    /// Closes the queue: pending jobs still run, further submissions fail.
    pub fn close(&self) {
        let mut queue = self.shared.queue.lock().expect("pool queue poisoned");
        queue.closed = true;
        drop(queue);
        self.shared.not_empty.notify_all();
        self.shared.not_full.notify_all();
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.close();
        for worker in self.workers.drain(..) {
            // A worker that panicked already surfaced its panic message; the
            // drop path only reclaims the threads.
            let _ = worker.join();
        }
    }
}

struct BatchState<R> {
    results: Vec<Option<R>>,
    remaining: usize,
}

impl<R> BatchState<R> {
    fn new(total: usize) -> Self {
        Self {
            results: (0..total).map(|_| None).collect(),
            remaining: total,
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("pool queue poisoned");
            loop {
                if let Some(job) = queue.jobs.pop_front() {
                    break job;
                }
                if queue.closed {
                    return;
                }
                queue = shared.not_empty.wait(queue).expect("pool queue poisoned");
            }
        };
        shared.not_full.notify_one();
        shared.busy.fetch_add(1, Ordering::Relaxed);
        // A panicking job must not take its worker thread down with it — one
        // poisonous connection or batch item would otherwise shrink the pool
        // permanently. The panic message still reaches stderr via the hook.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
        shared.busy.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn jobs_run_and_batches_keep_item_order() {
        let pool = WorkerPool::new("test", 4, 2);
        assert_eq!(pool.thread_count(), 4);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..32 {
            let counter = Arc::clone(&counter);
            pool.submit(Box::new(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            }))
            .unwrap();
        }
        let squares = pool.run_batch((0usize..64).collect(), |x| x * x);
        assert_eq!(squares.len(), 64);
        for (i, sq) in squares.iter().enumerate() {
            assert_eq!(*sq, i * i);
        }
        // run_batch acts as a barrier for its own jobs, not the earlier ones;
        // close + drop drains everything.
        drop(pool);
        assert_eq!(counter.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn bounded_queue_applies_backpressure_but_completes() {
        let pool = WorkerPool::new("bp", 1, 1);
        let counter = Arc::new(AtomicUsize::new(0));
        // 16 slow-ish jobs through a single worker and a 1-slot queue: the
        // submitter must block repeatedly, and every job must still run.
        for _ in 0..16 {
            let counter = Arc::clone(&counter);
            pool.submit(Box::new(move || {
                std::thread::sleep(std::time::Duration::from_millis(1));
                counter.fetch_add(1, Ordering::Relaxed);
            }))
            .unwrap();
        }
        drop(pool);
        assert_eq!(counter.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn closed_pools_reject_but_run_batch_degrades_inline() {
        let pool = WorkerPool::new("closed", 2, 4);
        pool.close();
        assert!(pool.submit(Box::new(|| {})).is_err());
        // Inline fallback: the batch still completes on the caller's thread.
        let doubled = pool.run_batch(vec![1, 2, 3], |x| x * 2);
        assert_eq!(doubled, vec![2, 4, 6]);
    }

    #[test]
    fn stats_track_queue_depth_and_busy_workers() {
        let pool = WorkerPool::new("gauge", 1, 8);
        let stats = pool.stats();
        assert_eq!(stats.worker_count(), 1);
        assert_eq!(stats.busy_workers(), 0);
        let (tx, rx) = std::sync::mpsc::channel::<()>();
        let (started_tx, started_rx) = std::sync::mpsc::channel::<()>();
        pool.submit(Box::new(move || {
            started_tx.send(()).unwrap();
            rx.recv().unwrap();
        }))
        .unwrap();
        started_rx.recv().unwrap();
        // The single worker is now blocked inside the job: busy == 1, and a
        // second submission sits in the queue.
        assert_eq!(stats.busy_workers(), 1);
        pool.submit(Box::new(|| {})).unwrap();
        assert_eq!(stats.queue_depth(), 1);
        tx.send(()).unwrap();
        drop(pool);
        assert_eq!(stats.busy_workers(), 0);
        assert_eq!(stats.queue_depth(), 0);
    }

    #[test]
    fn empty_batches_return_immediately() {
        let pool = WorkerPool::new("empty", 1, 1);
        let none: Vec<u32> = pool.run_batch(Vec::<u32>::new(), |x| x);
        assert!(none.is_empty());
    }

    #[test]
    fn panicking_jobs_neither_kill_workers_nor_hang_batches() {
        let pool = WorkerPool::new("panic", 1, 4);
        // A panicking fire-and-forget job: the single worker must survive it.
        pool.submit(Box::new(|| panic!("poison job"))).unwrap();
        let counter = Arc::new(AtomicUsize::new(0));
        let after = Arc::clone(&counter);
        pool.submit(Box::new(move || {
            after.fetch_add(1, Ordering::Relaxed);
        }))
        .unwrap();
        // A batch with one panicking item: the call returns (re-raising the
        // panic) instead of hanging, and the pool still works afterwards.
        let batch = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run_batch(vec![1u32, 2, 3], |x| {
                if x == 2 {
                    panic!("poison item");
                }
                x
            })
        }));
        assert!(batch.is_err(), "the batch panic must be re-raised");
        let doubled = pool.run_batch(vec![4u32, 5], |x| x * 2);
        assert_eq!(doubled, vec![8, 10]);
        drop(pool);
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }
}
