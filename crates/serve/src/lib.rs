//! # ayd-serve — a zero-dependency concurrent query service
//!
//! The paper's deliverable is a decision procedure: platform, scenario, `α`
//! and `λ` in — optimal processor count `P` and checkpoint period `T` out.
//! This crate serves that procedure over HTTP/1.1 on `std::net` alone (the
//! offline build has no async runtime and no HTTP dependencies):
//!
//! | Endpoint | Method | Answer |
//! |----------|--------|--------|
//! | `/v1/optimize` | POST | one query → first-order + numerical operating points (JSON, or the canonical sweep CSV via `Accept: text/csv`) |
//! | `/v1/batch` | POST | many queries, fanned out over the compute pool |
//! | `/v1/sweep` | POST | a [`ayd_sweep::ScenarioGrid`] as an async job (202 + id) |
//! | `/v1/sweep/{id}` | GET | job status while running; the canonical CSV when done |
//! | `/v1/sweep/{id}` | DELETE | cooperative cancellation |
//! | `/v1/sweep/{id}/shards` | GET | per-shard progress; on a coordinator: per-worker assignment, epoch, re-issues |
//! | `/v1/workers/register` | POST | coordinator only: a worker node joins the cluster (id + lease token) |
//! | `/v1/workers/{id}/heartbeat` | POST | coordinator only: lease renewal |
//! | `/v1/workers` | GET | coordinator only: operator view of worker liveness and assignments |
//! | `/v1/shards/run` | POST | worker only: the coordinator dispatching one shard to this node |
//! | `/v1/sweep/{job}/shards/{i}/chunk` | POST | coordinator only: a worker uploading checkpointed shard rows |
//! | `/healthz` | GET | liveness + uptime |
//! | `/metrics` | GET | Prometheus text: request counts, latency histograms, pool/job gauges, cache hit rate |
//! | `/v1/trace/recent` | GET | newest completed `ayd-obs` spans from the in-process ring (JSON) |
//!
//! Every response carries an `x-ayd-trace-id` header naming the request's
//! server-side trace; with tracing enabled the same ID appears in the span
//! records (ring, `--trace-log` sink).
//!
//! Architecture: two interchangeable serving cores behind
//! [`app::IoModel`]. The default (`event`, Linux x86-64/aarch64) is a set of
//! per-worker epoll reactors ([`reactor`], one `SO_REUSEPORT` listener each,
//! so the kernel shards accepts), driving nonblocking edge-triggered
//! connections through an incremental parser ([`conn::IncrementalParser`] —
//! the same strict one-shot parser re-run over the accumulating buffer, so
//! partial reads and pipelining answer byte-identically) and dispatching CPU
//! work to a handler [`pool::WorkerPool`]; completed responses return to the
//! owning reactor over an `eventfd`. The raw syscall layer is the vendored
//! [`sys`] shim — no libc, no async runtime. The fallback (`blocking`, and
//! every other platform) is the original fixed pool of connection-handler
//! threads behind a bounded MPMC queue (accept-loop backpressure). Both
//! cores share: a second pool for `/v1/batch` fan-out, a process-wide
//! [`ayd_sweep::ShardedEvalCache`] shared by every request (answers are
//! bit-identical to the offline [`ayd_sweep::Evaluator`] — asserted by
//! [`client::smoke_check`]), async sweeps on
//! [`ayd_sweep::SweepExecutor::spawn`] job handles, and graceful shutdown
//! via a flag + listener wake-up ([`server::ServeHandle`]) that drains
//! in-flight connections without truncating a response.
//!
//! The request parser ([`http`]) is strict and bounded (header count, line
//! lengths, body size) with exact 400/404/405/413/414/431/501 mapping; the
//! malformed-input property suite asserts it never panics and always answers
//! with a well-formed status line. JSON ([`json`]) is a small strict
//! parser/renderer whose `f64` round-trips are bit-exact.
//!
//! Cluster mode ([`coordinator`], [`worker`]) distributes one sweep across
//! processes: the coordinator decomposes a `/v1/sweep` job into
//! [`ayd_sweep::ShardSpec`] units, dispatches them to registered workers over
//! [`client::HttpClient`], checkpoints uploaded row chunks, re-issues a dead
//! worker's shard from its checkpoint when the lease expires, and merges via
//! [`ayd_sweep::merge_parts`] so the CSV is byte-identical to a
//! single-process sweep. See `docs/ARCHITECTURE.md` and
//! `docs/OPERATIONS.md` at the repository root.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod api;
pub mod app;
pub mod client;
pub mod conn;
pub mod coordinator;
pub mod http;
pub mod json;
pub mod metrics;
pub mod pool;
#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
pub mod reactor;
pub mod server;
#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
pub mod sys;
pub mod worker;

pub use api::ApiError;
pub use app::{AppState, ClusterConfig, IoModel, ServerConfig, EVENT_IO_SUPPORTED};
pub use client::{smoke_check, ClientResponse, HttpClient};
pub use conn::{serve_chunks, IncrementalParser};
pub use coordinator::{ClusterStats, Coordinator};
pub use http::{Limits, Request, Response};
pub use json::Json;
pub use metrics::{validate_prometheus, GaugeSnapshot, Metrics, PrometheusText, Sample};
pub use pool::WorkerPool;
pub use server::{serve_connection, ServeHandle, Server};
pub use worker::WorkerRuntime;
