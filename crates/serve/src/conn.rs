//! Incremental HTTP parsing over partial reads, for the event-driven I/O
//! layer.
//!
//! The reactor receives bytes in arbitrary chunks (a byte at a time from a
//! slow client, several pipelined requests in one burst from a fast one). To
//! keep the determinism contract — the exact status lines, limits and error
//! strings of [`crate::http::parse_request`] — this module does **not**
//! reimplement the grammar. It accumulates bytes and re-runs the one-shot
//! parser over the buffered prefix, classifying "the bytes so far are a
//! proper prefix of a request" apart from "the bytes so far can never become
//! a request". The classification is exact because the one-shot parser has a
//! closed set of incomplete-data errors (`ConnectionClosed`, truncated
//! line/headers/body), all of which are terminal only at end-of-stream.
//!
//! Parse attempts are gated so drip-fed input stays cheap and bounded:
//! re-parses fire only when the header section is complete (a blank line has
//! been scanned), at end-of-stream, or when the buffer exceeds the maximum
//! possible header-section size implied by [`Limits`] — at which point the
//! one-shot parser is guaranteed to return a definite over-limit error, so
//! memory per connection stays bounded no matter what the peer sends.

use std::io::Cursor;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::api::{endpoint_hint, route};
use crate::app::AppState;
use crate::http::{parse_request, Limits, ParseError, Request, Response};

/// Result of one [`IncrementalParser::poll`].
#[derive(Debug)]
pub enum Poll {
    /// The buffered bytes are a proper prefix of a request; feed more.
    NeedMore,
    /// One complete request, drained from the buffer (pipelined bytes after
    /// it remain buffered for the next poll).
    Ready(Request),
    /// The buffered bytes can never parse, or the stream ended mid-request.
    /// Identical to what the one-shot parser returns on the same bytes.
    Fail(ParseError),
}

/// The largest number of bytes the one-shot parser can consume for a request
/// head (request line + headers + blank line) before it must return an
/// over-limit error. Buffering past this without a complete head means the
/// next parse attempt yields a definite error, never `NeedMore`.
pub(crate) fn head_cap(limits: &Limits) -> usize {
    limits.max_request_line + 2 + (limits.max_headers + 1) * (limits.max_header_line + 2)
}

/// Buffers partial input and yields requests exactly as the one-shot parser
/// would, one [`poll`](IncrementalParser::poll) at a time.
#[derive(Debug, Default)]
pub struct IncrementalParser {
    buffer: Vec<u8>,
    /// Next unscanned byte (blank-line search resumes here).
    scan: usize,
    /// Start of the header-section line currently being scanned.
    line_start: usize,
    /// Offset just past the head's terminating blank line, once seen.
    head_end: Option<usize>,
    /// Total bytes (head + declared body) of the in-progress request, once
    /// the head has parsed far enough to know — gates body re-parses.
    total_needed: Option<usize>,
}

impl IncrementalParser {
    /// A parser with an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends freshly read bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buffer.extend_from_slice(bytes);
    }

    /// Bytes currently buffered (for memory accounting and pause decisions).
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Advances the blank-line scan over newly pushed bytes. The head ends at
    /// the first empty line (CRLF or bare LF), mirroring the parser's
    /// line-by-line reads.
    fn scan_for_head_end(&mut self) {
        while self.scan < self.buffer.len() {
            if self.buffer[self.scan] == b'\n' {
                let mut line = &self.buffer[self.line_start..self.scan];
                if line.last() == Some(&b'\r') {
                    line = &line[..line.len() - 1];
                }
                let next = self.scan + 1;
                if line.is_empty() {
                    self.head_end = Some(next);
                    self.scan = next;
                    return;
                }
                self.line_start = next;
            }
            self.scan += 1;
        }
    }

    /// True when `error` means "a proper prefix of a request" rather than "a
    /// malformed request" — terminal only once the stream has ended. The set
    /// is closed: every other error is invariant under appending bytes.
    fn is_incomplete(error: &ParseError) -> bool {
        matches!(
            error,
            ParseError::ConnectionClosed
                | ParseError::BadRequest("truncated line")
                | ParseError::BadRequest("connection closed inside headers")
                | ParseError::BadRequest("truncated body")
        )
    }

    /// Extracts the declared `Content-Length` from a complete, already
    /// head-validated buffer so body re-parses can be gated on a byte count
    /// instead of firing per chunk. Only called after the one-shot parser has
    /// accepted the head (it failed in the *body* read), so the single
    /// well-formed `content-length` header is guaranteed present-or-absent.
    fn note_body_needed(&mut self, head_end: usize) {
        let head = &self.buffer[..head_end];
        let mut content_length = 0usize;
        for line in head.split(|&b| b == b'\n') {
            let Some(colon) = line.iter().position(|&b| b == b':') else {
                continue;
            };
            if line[..colon].eq_ignore_ascii_case(b"content-length") {
                let value: String = String::from_utf8_lossy(&line[colon + 1..]).into_owned();
                if let Ok(n) = value.trim().parse::<usize>() {
                    content_length = n;
                }
            }
        }
        self.total_needed = Some(head_end + content_length);
    }

    /// Tries to produce the next request from the buffered bytes. `eof` means
    /// the peer's stream has ended — incomplete prefixes then fail exactly as
    /// the one-shot parser fails on the same truncated input.
    pub fn poll(&mut self, limits: &Limits, eof: bool) -> Poll {
        if self.head_end.is_none() {
            self.scan_for_head_end();
        }
        // Gate: only attempt a parse when it can make progress — the head is
        // complete, the stream ended, or the buffer is so large the parser is
        // guaranteed to return an over-limit error.
        let over_cap = self.buffer.len() > head_cap(limits);
        if self.head_end.is_none() && !eof && !over_cap {
            return Poll::NeedMore;
        }
        if let (Some(needed), false) = (self.total_needed, eof) {
            if self.buffer.len() < needed {
                return Poll::NeedMore;
            }
        }
        let mut cursor = Cursor::new(self.buffer.as_slice());
        match parse_request(&mut cursor, limits) {
            Ok(request) => {
                let consumed = cursor.position() as usize;
                self.buffer.drain(..consumed);
                self.scan = 0;
                self.line_start = 0;
                self.head_end = None;
                self.total_needed = None;
                Poll::Ready(request)
            }
            Err(error) if !eof && Self::is_incomplete(&error) => {
                if error == ParseError::BadRequest("truncated body") {
                    if let (Some(head_end), None) = (self.head_end, self.total_needed) {
                        self.note_body_needed(head_end);
                    }
                }
                Poll::NeedMore
            }
            Err(error) => Poll::Fail(error),
        }
    }
}

/// Serves one connection's bytes delivered in arbitrary chunks, mirroring the
/// blocking path's [`crate::server::serve_connection`] semantics request for
/// request (same routing, same trace-id header, same keep-alive and error
/// behaviour). This is the synchronous harness the malformed-request fuzz
/// suite drives to assert the incremental path answers byte-for-byte like the
/// one-shot path; the reactor runs the same state machine asynchronously.
pub fn serve_chunks(chunks: &[&[u8]], state: &Arc<AppState>, shutdown: &AtomicBool) -> Vec<u8> {
    let mut parser = IncrementalParser::new();
    let mut output = Vec::new();
    let mut served = 0usize;
    let mut feed = chunks.iter();
    let mut eof = false;
    loop {
        match parser.poll(&state.limits, eof) {
            Poll::NeedMore => {
                if eof {
                    return output;
                }
                match feed.next() {
                    Some(chunk) => parser.push(chunk),
                    None => eof = true,
                }
            }
            Poll::Ready(request) => {
                let trace = ayd_obs::fresh_trace_id();
                let mut root = ayd_obs::root_span("request", trace);
                let started = Instant::now();
                let endpoint_guess = endpoint_hint(&request.target);
                state.metrics.request_started(endpoint_guess);
                let route_span = ayd_obs::span("route");
                let (endpoint, response) = route(state, &request);
                route_span.finish();
                let response =
                    response.with_header("x-ayd-trace-id", crate::server::format_trace_id(trace));
                let keep_alive = !request.wants_close() && !shutdown.load(Ordering::SeqCst);
                output.extend_from_slice(&response.to_bytes(keep_alive));
                state.metrics.request_finished(endpoint_guess);
                root.field_str("endpoint", endpoint);
                root.field_u64("status", u64::from(response.status));
                root.finish();
                state
                    .metrics
                    .observe(endpoint, response.status, started.elapsed());
                served += 1;
                if !keep_alive || served >= crate::server::MAX_REQUESTS_PER_CONNECTION {
                    return output;
                }
            }
            Poll::Fail(error) => {
                if let Some((status, reason)) = error.status() {
                    let trace = ayd_obs::fresh_trace_id();
                    let mut root = ayd_obs::root_span("request", trace);
                    let response = Response::error(status, reason, &format!("{error:?}"))
                        .with_header("x-ayd-trace-id", crate::server::format_trace_id(trace));
                    output.extend_from_slice(&response.to_bytes(false));
                    root.field_str("endpoint", "parse_error");
                    root.field_u64("status", u64::from(status));
                    root.finish();
                    state
                        .metrics
                        .observe("parse_error", status, std::time::Duration::ZERO);
                }
                return output;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn limits() -> Limits {
        Limits::default()
    }

    fn poll_all(input: &[u8], chunk: usize) -> Vec<Result<Request, ParseError>> {
        let mut parser = IncrementalParser::new();
        let mut results = Vec::new();
        let mut chunks = input.chunks(chunk.max(1));
        let mut eof = false;
        loop {
            match parser.poll(&limits(), eof) {
                Poll::NeedMore => {
                    if eof {
                        return results;
                    }
                    match chunks.next() {
                        Some(c) => parser.push(c),
                        None => eof = true,
                    }
                }
                Poll::Ready(request) => results.push(Ok(request)),
                // A clean close after complete requests is the end of the
                // session, not a result.
                Poll::Fail(ParseError::ConnectionClosed) if !results.is_empty() => {
                    return results;
                }
                Poll::Fail(error) => {
                    results.push(Err(error));
                    return results;
                }
            }
        }
    }

    #[test]
    fn byte_at_a_time_equals_one_shot() {
        let input = b"POST /v1/optimize HTTP/1.1\r\ncontent-length: 2\r\n\r\n{}";
        let one_shot =
            parse_request(&mut Cursor::new(input.to_vec()), &limits()).expect("one-shot parses");
        let incremental = poll_all(input, 1);
        assert_eq!(incremental.len(), 1);
        assert_eq!(incremental[0].as_ref().unwrap(), &one_shot);
    }

    #[test]
    fn pipelined_requests_split_anywhere() {
        let input = b"GET /healthz HTTP/1.1\r\n\r\nPOST /v1/optimize HTTP/1.1\r\ncontent-length: 4\r\n\r\nabcdGET /metrics HTTP/1.1\r\nconnection: close\r\n\r\n";
        for chunk in [1, 2, 3, 7, 64, input.len()] {
            let results = poll_all(input, chunk);
            assert_eq!(results.len(), 3, "chunk={chunk}");
            assert_eq!(results[0].as_ref().unwrap().target, "/healthz");
            assert_eq!(results[1].as_ref().unwrap().body, b"abcd");
            assert_eq!(results[2].as_ref().unwrap().target, "/metrics");
            assert!(results[2].as_ref().unwrap().wants_close());
        }
    }

    #[test]
    fn malformed_input_fails_with_the_one_shot_error() {
        for input in [
            &b"BOGUS\r\n\r\n"[..],
            b"GET / HTTP/2\r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 50\r\n\r\nhello",
            b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
            b"GET / HTTP/1.1\r\nbad header\r\n\r\n",
        ] {
            let one_shot = parse_request(&mut Cursor::new(input.to_vec()), &limits()).unwrap_err();
            for chunk in [1, 3, input.len()] {
                let results = poll_all(input, chunk);
                assert_eq!(results.last().unwrap().as_ref().unwrap_err(), &one_shot);
            }
        }
    }

    #[test]
    fn truncated_input_fails_only_at_eof() {
        let input = b"POST / HTTP/1.1\r\ncontent-length: 10\r\n\r\nshort";
        let mut parser = IncrementalParser::new();
        parser.push(input);
        assert!(matches!(parser.poll(&limits(), false), Poll::NeedMore));
        match parser.poll(&limits(), true) {
            Poll::Fail(error) => {
                assert_eq!(error, ParseError::BadRequest("truncated body"));
            }
            other => panic!("expected failure at eof, got {other:?}"),
        }
    }

    #[test]
    fn clean_close_reports_connection_closed() {
        let mut parser = IncrementalParser::new();
        assert!(matches!(parser.poll(&limits(), false), Poll::NeedMore));
        match parser.poll(&limits(), true) {
            Poll::Fail(ParseError::ConnectionClosed) => {}
            other => panic!("expected ConnectionClosed, got {other:?}"),
        }
    }

    #[test]
    fn oversized_head_errors_without_eof_and_memory_stays_bounded() {
        let mut parser = IncrementalParser::new();
        let cap = head_cap(&limits());
        // A header section that never ends: the parser must fail (431) before
        // buffering much past the cap, even though the stream is still open.
        let mut failed = None;
        let chunk = vec![b'a'; 4096];
        for _ in 0..(cap / chunk.len() + 4) {
            parser.push(b"x-filler: ");
            parser.push(&chunk);
            parser.push(b"\r\n");
            if let Poll::Fail(error) = parser.poll(&limits(), false) {
                failed = Some(error);
                break;
            }
        }
        // The over-long first line is the request line, so the one-shot
        // parser's over-limit error for it is 414.
        assert_eq!(failed, Some(ParseError::TargetTooLong));
        assert!(parser.buffered() <= cap + 2 * chunk.len());
    }

    #[test]
    fn body_gate_waits_for_declared_length() {
        let mut parser = IncrementalParser::new();
        parser.push(b"POST / HTTP/1.1\r\ncontent-length: 5\r\n\r\n");
        assert!(matches!(parser.poll(&limits(), false), Poll::NeedMore));
        assert_eq!(parser.total_needed, Some(parser.buffered() + 5));
        parser.push(b"ab");
        assert!(matches!(parser.poll(&limits(), false), Poll::NeedMore));
        parser.push(b"cde");
        match parser.poll(&limits(), false) {
            Poll::Ready(request) => assert_eq!(request.body, b"abcde"),
            other => panic!("expected a request, got {other:?}"),
        }
    }
}
