//! Strict, bounded HTTP/1.1 request parsing and response writing.
//!
//! The parser reads exactly one request from a `BufRead`, enforcing hard
//! limits on the request-line length, header count, per-header size and body
//! size ([`Limits`]). Anything out of contract maps to a definite status code
//! (400/405/413/414/431/501) rather than a panic or an unbounded allocation —
//! the malformed-request property suite feeds it arbitrary bytes and asserts
//! the connection always answers with a well-formed status line.

use std::io::{BufRead, Read, Write};

/// Hard limits on one parsed request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    /// Maximum bytes of the request line (method + target + version).
    pub max_request_line: usize,
    /// Maximum number of headers.
    pub max_headers: usize,
    /// Maximum bytes of a single header line.
    pub max_header_line: usize,
    /// Maximum bytes of the body (`Content-Length` above this → 413).
    pub max_body: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Self {
            max_request_line: 4096,
            max_headers: 64,
            max_header_line: 4096,
            max_body: 1 << 20,
        }
    }
}

/// One parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method, upper-case as received (`GET`, `POST`, …).
    pub method: String,
    /// Request target (path + optional query), as received.
    pub target: String,
    /// True when the request was `HTTP/1.0` (whose default is
    /// connection-close) rather than `HTTP/1.1` (default keep-alive).
    pub http1_0: bool,
    /// Headers in order, with lower-cased names and trimmed values.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless a valid `Content-Length` was present).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a (lower-case) header name, if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// True when the connection should close after this request: an explicit
    /// `Connection: close`, or an HTTP/1.0 request without an explicit
    /// `Connection: keep-alive` (1.0 defaults to close, 1.1 to keep-alive).
    pub fn wants_close(&self) -> bool {
        match self.header("connection") {
            Some(value) => value.eq_ignore_ascii_case("close"),
            None => self.http1_0,
        }
    }

    /// True when the client's `Accept` header asks for the given media type.
    pub fn accepts(&self, media_type: &str) -> bool {
        self.header("accept")
            .is_some_and(|v| v.to_ascii_lowercase().contains(media_type))
    }
}

/// Why a request could not be parsed. Each variant maps to one response
/// status via [`ParseError::status`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The peer closed the connection before sending a request line — not an
    /// error, just the end of a keep-alive session.
    ConnectionClosed,
    /// Malformed request line, header or body framing → 400.
    BadRequest(&'static str),
    /// Request target longer than the limit → 414.
    TargetTooLong,
    /// Too many headers or an oversized header line → 431.
    HeadersTooLarge,
    /// Declared `Content-Length` above the body limit → 413.
    BodyTooLarge,
    /// `Transfer-Encoding` framing the parser does not implement → 501.
    UnsupportedTransferEncoding,
    /// An I/O error (including timeouts) while reading.
    Io(std::io::ErrorKind),
}

impl ParseError {
    /// The response status and reason phrase for this error (`None` for
    /// [`ParseError::ConnectionClosed`] and I/O errors, which have no
    /// well-defined response).
    pub fn status(&self) -> Option<(u16, &'static str)> {
        match self {
            ParseError::ConnectionClosed | ParseError::Io(_) => None,
            ParseError::BadRequest(_) => Some((400, "Bad Request")),
            ParseError::TargetTooLong => Some((414, "URI Too Long")),
            ParseError::HeadersTooLarge => Some((431, "Request Header Fields Too Large")),
            ParseError::BodyTooLarge => Some((413, "Payload Too Large")),
            ParseError::UnsupportedTransferEncoding => Some((501, "Not Implemented")),
        }
    }
}

/// Reads one CRLF- (or bare-LF-) terminated line of at most `limit` bytes,
/// without consuming past it. Returns `None` on a clean EOF before any byte.
fn read_line(
    reader: &mut impl BufRead,
    limit: usize,
    over_limit: ParseError,
) -> Result<Option<String>, ParseError> {
    let mut line: Vec<u8> = Vec::new();
    let mut limited = reader.take(limit as u64 + 2);
    let read = limited
        .read_until(b'\n', &mut line)
        .map_err(|e| ParseError::Io(e.kind()))?;
    if read == 0 {
        return Ok(None);
    }
    if line.last() != Some(&b'\n') {
        // Either the line exceeded the cap or the peer died mid-line.
        return Err(if line.len() > limit {
            over_limit
        } else {
            ParseError::BadRequest("truncated line")
        });
    }
    line.pop();
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    if line.len() > limit {
        return Err(over_limit);
    }
    String::from_utf8(line)
        .map(Some)
        .map_err(|_| ParseError::BadRequest("non-UTF-8 bytes in header section"))
}

/// Parses exactly one request from `reader`, honouring `limits`.
pub fn parse_request(reader: &mut impl BufRead, limits: &Limits) -> Result<Request, ParseError> {
    let request_line = read_line(reader, limits.max_request_line, ParseError::TargetTooLong)?
        .ok_or(ParseError::ConnectionClosed)?;
    if request_line.is_empty() {
        return Err(ParseError::BadRequest("empty request line"));
    }
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty() && m.bytes().all(|b| b.is_ascii_uppercase()))
        .ok_or(ParseError::BadRequest("malformed method"))?
        .to_string();
    let target = parts
        .next()
        .filter(|t| t.starts_with('/') || *t == "*")
        .ok_or(ParseError::BadRequest("malformed request target"))?
        .to_string();
    let version = parts
        .next()
        .ok_or(ParseError::BadRequest("missing version"))?;
    if parts.next().is_some() {
        return Err(ParseError::BadRequest("extra tokens in request line"));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(ParseError::BadRequest("unsupported HTTP version"));
    }

    let mut headers = Vec::new();
    loop {
        let line = read_line(reader, limits.max_header_line, ParseError::HeadersTooLarge)?
            .ok_or(ParseError::BadRequest("connection closed inside headers"))?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= limits.max_headers {
            return Err(ParseError::HeadersTooLarge);
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(ParseError::BadRequest("header without ':'"))?;
        if name.is_empty() || name.contains(' ') {
            return Err(ParseError::BadRequest("malformed header name"));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    let request = Request {
        method,
        target,
        http1_0: version == "HTTP/1.0",
        headers,
        body: Vec::new(),
    };
    if request.header("transfer-encoding").is_some() {
        return Err(ParseError::UnsupportedTransferEncoding);
    }
    // Duplicate Content-Length headers are a request-smuggling vector (two
    // framings of one byte stream); RFC 9112 says reject, so reject.
    if request
        .headers
        .iter()
        .filter(|(name, _)| name == "content-length")
        .count()
        > 1
    {
        return Err(ParseError::BadRequest("duplicate Content-Length"));
    }
    let content_length = match request.header("content-length") {
        None => 0,
        Some(value) => value
            .parse::<usize>()
            .map_err(|_| ParseError::BadRequest("malformed Content-Length"))?,
    };
    if content_length > limits.max_body {
        return Err(ParseError::BodyTooLarge);
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(|e| match e.kind() {
        std::io::ErrorKind::UnexpectedEof => ParseError::BadRequest("truncated body"),
        kind => ParseError::Io(kind),
    })?;
    Ok(Request { body, ..request })
}

/// One response, written as HTTP/1.1 with an explicit `Content-Length`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Reason phrase.
    pub reason: &'static str,
    /// `Content-Type` of the body.
    pub content_type: &'static str,
    /// Extra headers (name, value), written verbatim.
    pub extra_headers: Vec<(&'static str, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A response with the given status/reason and a plain-text body.
    pub fn text(status: u16, reason: &'static str, body: impl Into<String>) -> Self {
        Self {
            status,
            reason,
            content_type: "text/plain; charset=utf-8",
            extra_headers: Vec::new(),
            body: body.into().into_bytes(),
        }
    }

    /// A `200 OK` JSON response.
    pub fn json(body: &crate::json::Json) -> Self {
        Self::json_status(200, "OK", body)
    }

    /// A JSON response with an explicit status.
    pub fn json_status(status: u16, reason: &'static str, body: &crate::json::Json) -> Self {
        Self {
            status,
            reason,
            content_type: "application/json",
            extra_headers: Vec::new(),
            body: body.render().into_bytes(),
        }
    }

    /// A `200 OK` CSV response.
    pub fn csv(body: impl Into<String>) -> Self {
        Self {
            status: 200,
            reason: "OK",
            content_type: "text/csv; charset=utf-8",
            extra_headers: Vec::new(),
            body: body.into().into_bytes(),
        }
    }

    /// A JSON error response: `{"error": message}`.
    pub fn error(status: u16, reason: &'static str, message: &str) -> Self {
        Self::json_status(
            status,
            reason,
            &crate::json::Json::obj(vec![("error", crate::json::Json::str(message))]),
        )
    }

    /// Adds an extra header.
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Self {
        self.extra_headers.push((name, value.into()));
        self
    }

    /// The full wire bytes of the response — what [`Response::write_to`]
    /// would emit. The event loop renders responses off-reactor with this and
    /// writes the bytes as the socket accepts them.
    pub fn to_bytes(&self, keep_alive: bool) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.body.len() + 160);
        self.write_to(&mut out, keep_alive)
            .expect("writing to a Vec cannot fail");
        out
    }

    /// Writes the response (status line, headers, body) to `writer`.
    pub fn write_to(&self, writer: &mut impl Write, keep_alive: bool) -> std::io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\ncontent-length: {}\r\ncontent-type: {}\r\nconnection: {}\r\n",
            self.status,
            self.reason,
            self.body.len(),
            self.content_type,
            if keep_alive { "keep-alive" } else { "close" },
        );
        for (name, value) in &self.extra_headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        writer.write_all(head.as_bytes())?;
        writer.write_all(&self.body)?;
        writer.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(bytes: &[u8]) -> Result<Request, ParseError> {
        parse_request(&mut Cursor::new(bytes.to_vec()), &Limits::default())
    }

    #[test]
    fn parses_a_simple_get() {
        let req = parse(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.target, "/healthz");
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.body.is_empty());
        assert!(!req.wants_close());
    }

    #[test]
    fn parses_a_post_with_body_and_bare_lf_lines() {
        let req = parse(b"POST /v1/optimize HTTP/1.1\nContent-Length: 4\n\nabcd").unwrap();
        assert_eq!(req.body, b"abcd");
        assert_eq!(req.header("content-length"), Some("4"));
    }

    #[test]
    fn connection_close_and_accept_are_recognised() {
        let req =
            parse(b"GET / HTTP/1.1\r\nConnection: Close\r\nAccept: text/csv, */*\r\n\r\n").unwrap();
        assert!(req.wants_close());
        assert!(req.accepts("text/csv"));
        assert!(!req.accepts("application/json"));
    }

    #[test]
    fn http10_defaults_to_close_and_11_to_keep_alive() {
        let v10 = parse(b"GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(v10.http1_0);
        assert!(v10.wants_close(), "HTTP/1.0 defaults to close");
        let v10_ka = parse(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
        assert!(!v10_ka.wants_close(), "explicit keep-alive is honoured");
        let v11 = parse(b"GET / HTTP/1.1\r\n\r\n").unwrap();
        assert!(!v11.http1_0);
        assert!(!v11.wants_close(), "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn duplicate_content_length_is_rejected() {
        let err = parse(b"POST / HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 50\r\n\r\nhello")
            .unwrap_err();
        assert_eq!(err.status().unwrap().0, 400, "{err:?}");
    }

    #[test]
    fn error_mapping_is_exact() {
        // Malformed request lines → 400.
        for bad in [
            &b"GET\r\n\r\n"[..],
            b" / HTTP/1.1\r\n\r\n",
            b"get / HTTP/1.1\r\n\r\n",
            b"GET / HTTP/2\r\n\r\n",
            b"GET / HTTP/1.1 extra\r\n\r\n",
            b"GET nopath HTTP/1.1\r\n\r\n",
            b"GET / HTTP/1.1\r\nbad header\r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: two\r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort",
            b"\r\n",
        ] {
            let err = parse(bad).unwrap_err();
            assert_eq!(err.status().unwrap().0, 400, "{:?}", err);
        }
        // Oversized declared body → 413.
        let err = parse(b"POST / HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n").unwrap_err();
        assert_eq!(err, ParseError::BodyTooLarge);
        // Header bombs → 431.
        let mut many = b"GET / HTTP/1.1\r\n".to_vec();
        for i in 0..100 {
            many.extend_from_slice(format!("h{i}: v\r\n").as_bytes());
        }
        many.extend_from_slice(b"\r\n");
        assert_eq!(parse(&many).unwrap_err(), ParseError::HeadersTooLarge);
        let huge = format!("GET / HTTP/1.1\r\nh: {}\r\n\r\n", "x".repeat(10_000));
        assert_eq!(
            parse(huge.as_bytes()).unwrap_err(),
            ParseError::HeadersTooLarge
        );
        // Oversized request line → 414.
        let long = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(10_000));
        assert_eq!(
            parse(long.as_bytes()).unwrap_err(),
            ParseError::TargetTooLong
        );
        // Chunked framing is not implemented → 501.
        let err = parse(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n").unwrap_err();
        assert_eq!(err, ParseError::UnsupportedTransferEncoding);
        // EOF before any byte is a clean close, not an error response.
        assert_eq!(parse(b"").unwrap_err(), ParseError::ConnectionClosed);
    }

    #[test]
    fn responses_have_explicit_framing() {
        let mut out = Vec::new();
        Response::json(&crate::json::Json::obj(vec![(
            "ok",
            crate::json::Json::Bool(true),
        )]))
        .write_to(&mut out, true)
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 11\r\n"));
        assert!(text.contains("connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));

        let mut out = Vec::new();
        Response::error(404, "Not Found", "no such route")
            .with_header("allow", "GET")
            .write_to(&mut out, false)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 404 Not Found\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.contains("allow: GET\r\n"));
    }

    #[test]
    fn to_bytes_matches_write_to_exactly() {
        for keep_alive in [true, false] {
            let response = Response::csv("a,b\n1,2\n").with_header("x-ayd-trace-id", "00ff");
            let mut written = Vec::new();
            response.write_to(&mut written, keep_alive).unwrap();
            assert_eq!(response.to_bytes(keep_alive), written);
        }
    }
}
